// FIG2 — reproduces the paper's Figure 2: "Averaged daily marginal carbon
// intensities for the different geographical regions across Europe in
// January 2023."
//
// Paper anchors: Finland's monthly mean ~2.1x France's; Finland's daily
// standard deviation ~47.21 gCO2/kWh. The regional ordering (Nordics and
// France low, Poland highest) must match the published January-2023 grid
// data the paper drew on.

#include <cstdio>

#include "carbon/grid_model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::carbon;

  const Duration january = days(31.0);
  const RegionalTraces bundle = generate_european_traces(
      seconds(0.0), january, hours(1.0), /*seed=*/20230101, IntensityKind::Marginal);

  util::Table table({"region", "mean [g/kWh]", "daily sigma", "min day", "max day"});
  double france_mean = 0.0, finland_mean = 0.0, finland_sigma = 0.0;
  for (std::size_t i = 0; i < bundle.regions.size(); ++i) {
    const util::TimeSeries daily = bundle.series[i].daily_mean();
    const util::Summary s = daily.summary();
    const RegionTraits& t = traits(bundle.regions[i]);
    table.add_row({std::string(t.name), util::Table::fmt(s.mean, 1),
                   util::Table::fmt(s.stddev, 2), util::Table::fmt(s.min, 1),
                   util::Table::fmt(s.max, 1)});
    if (bundle.regions[i] == Region::France) france_mean = s.mean;
    if (bundle.regions[i] == Region::Finland) {
      finland_mean = s.mean;
      finland_sigma = s.stddev;
    }
  }
  std::printf("%s\n",
              table.str("Figure 2: averaged daily marginal carbon intensity, Europe, January").c_str());

  // Daily series for two contrasting regions (the figure's lines).
  std::printf("day, France[g/kWh], Finland[g/kWh], Germany[g/kWh], Poland[g/kWh]\n");
  const auto series_of = [&](Region r) {
    for (std::size_t i = 0; i < bundle.regions.size(); ++i) {
      if (bundle.regions[i] == r) return bundle.series[i].daily_mean();
    }
    return util::TimeSeries();
  };
  const auto fr = series_of(Region::France);
  const auto fi = series_of(Region::Finland);
  const auto de = series_of(Region::Germany);
  const auto pl = series_of(Region::Poland);
  for (std::size_t d = 0; d < fr.size(); ++d) {
    std::printf("%2zu, %7.1f, %7.1f, %7.1f, %7.1f\n", d + 1, fr.at(d), fi.at(d),
                de.at(d), pl.at(d));
  }

  // Average vs marginal accounting (the distinction the paper cites [2]):
  // marginal intensities are systematically higher because the marginal
  // generator is usually fossil.
  util::Table avm({"region", "average mean", "marginal mean", "uplift"});
  for (Region r : {Region::France, Region::Finland, Region::Germany, Region::Poland}) {
    GridModel m_avg(r, 5);
    GridModel m_marg(r, 5);
    const double avg =
        m_avg.generate(seconds(0.0), january, hours(1.0), IntensityKind::Average)
            .summary().mean;
    const double marg =
        m_marg.generate(seconds(0.0), january, hours(1.0), IntensityKind::Marginal)
            .summary().mean;
    avm.add_row({std::string(traits(r).name), util::Table::fmt(avg, 1),
                 util::Table::fmt(marg, 1), util::Table::fmt(marg / avg, 2)});
  }
  std::printf("\n%s", avm.str("Average vs marginal carbon intensity").c_str());

  std::printf("\nPaper anchors:\n");
  std::printf("  Finland/France mean ratio: measured %.2f (paper: 2.1)\n",
              finland_mean / france_mean);
  std::printf("  Finland daily stddev:      measured %.2f (paper: 47.21)\n",
              finland_sigma);
  return 0;
}
