// EXP-FAC — facility-level operational carbon: cooling technology, PUE
// and waste-heat reuse. The paper's host site (LRZ) pioneered warm-water
// direct liquid cooling with heat reuse; this bench quantifies how much
// of a site's operational footprint is decided by that facility design,
// alongside the grid-placement lever of Fig. 2.

#include <cstdio>
#include <vector>

#include "carbon/grid_model.hpp"
#include "facility/facility_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::facility;

  const Power it_power = megawatts(3.0);  // SuperMUC-NG class IT draw
  const Duration year = days(365.0);

  // One full year, Germany: cooling technology comparison.
  WeatherModel weather(carbon::Region::Germany, 11);
  const auto temp = weather.generate(seconds(0.0), year, hours(1.0));
  carbon::GridModel grid(carbon::Region::Germany, 11);
  const auto ci = grid.generate(seconds(0.0), year, hours(1.0));

  util::Table table({"cooling", "mean PUE", "facility [GWh/y]", "gross [t/y]",
                     "heat-reuse credit [t/y]", "net [t/y]"});
  for (auto tech : {CoolingTechnology::AirCooled, CoolingTechnology::ChilledWater,
                    CoolingTechnology::WarmWater}) {
    HeatReuseConfig reuse;
    // Only liquid designs capture meaningful heat.
    reuse.capture_fraction = tech == CoolingTechnology::WarmWater     ? 0.9
                             : tech == CoolingTechnology::ChilledWater ? 0.3
                                                                       : 0.05;
    const auto r = evaluate_facility_constant(it_power, seconds(0.0), year, temp, ci,
                                              CoolingModel(tech), reuse);
    table.add_row({cooling_name(tech), util::Table::fmt(r.mean_pue, 3),
                   util::Table::fmt(r.facility_energy.megawatt_hours() / 1000.0, 2),
                   util::Table::fmt(r.gross_carbon.tonnes(), 0),
                   util::Table::fmt(r.reuse_credit.tonnes(), 0),
                   util::Table::fmt(r.net_carbon().tonnes(), 0)});
  }
  std::printf("%s\n", table.str("Facility design, 3 MW IT in the German grid, one year").c_str());

  // Placement x facility interaction: the same warm-water machine across
  // regions (Fig. 2's lever compounded with the facility lever).
  util::Table place({"region", "mean PUE", "net carbon [t/y]"});
  for (auto region : {carbon::Region::Norway, carbon::Region::France,
                      carbon::Region::Germany, carbon::Region::Poland}) {
    WeatherModel w(region, 13);
    const auto t = w.generate(seconds(0.0), year, hours(1.0));
    carbon::GridModel g(region, 13);
    const auto c = g.generate(seconds(0.0), year, hours(1.0));
    const auto r = evaluate_facility_constant(it_power, seconds(0.0), year, t, c,
                                              CoolingModel(CoolingTechnology::WarmWater),
                                              HeatReuseConfig{});
    place.add_row({std::string(carbon::traits(region).name),
                   util::Table::fmt(r.mean_pue, 3),
                   util::Table::fmt(r.net_carbon().tonnes(), 0)});
  }
  std::printf("%s\n", place.str("Warm-water site across regions").c_str());
  std::printf("Reading: facility design (PUE + heat reuse) moves operational carbon by "
              "tens of percent; placement moves it by multiples — both levers compound "
              "with the section-3 software stack.\n");
  return 0;
}
