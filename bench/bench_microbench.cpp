// Microbenchmarks (google-benchmark) of the library's hot kernels: grid
// trace generation, the simulator tick loop, hierarchical budget
// distribution, DSE evaluation and the parallel sweep infrastructure.

#include <benchmark/benchmark.h>

#include <memory>

#include "carbon/grid_model.hpp"
#include "embodied/dse.hpp"
#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "powerstack/budget_tree.hpp"
#include "sched/easy_backfill.hpp"
#include "util/parallel.hpp"

namespace {

using namespace greenhpc;

void BM_GridTraceGeneration(benchmark::State& state) {
  const auto span = days(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    carbon::GridModel model(carbon::Region::Germany, 42);
    benchmark::DoNotOptimize(model.generate(seconds(0.0), span, minutes(15.0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 96);
}
BENCHMARK(BM_GridTraceGeneration)->Arg(7)->Arg(31)->Arg(365);

void BM_SimulatorWeek(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  carbon::GridModel grid_model(carbon::Region::Germany, 7);
  const auto trace = grid_model.generate(seconds(0.0), days(10.0), minutes(15.0));
  hpcsim::WorkloadConfig wl;
  wl.job_count = nodes;  // ~1 job per node over the week
  wl.span = days(7.0);
  wl.max_job_nodes = nodes / 4;
  const auto jobs = hpcsim::WorkloadGenerator(wl, 3).generate();
  for (auto _ : state) {
    hpcsim::Simulator::Config cfg;
    cfg.cluster.nodes = nodes;
    cfg.cluster.tick = minutes(2.0);
    cfg.carbon_intensity = trace;
    hpcsim::Simulator sim(cfg, jobs);
    sched::EasyBackfillScheduler sched;
    benchmark::DoNotOptimize(sim.run(sched));
  }
}
BENCHMARK(BM_SimulatorWeek)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_BudgetTreeDistribute(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  powerstack::ComponentBounds bounds;
  bounds.gpus_per_node = 4;
  const auto tree = powerstack::make_site_tree(jobs, 8, bounds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(powerstack::distribute(tree, megawatts(2.0)));
  }
}
BENCHMARK(BM_BudgetTreeDistribute)->Arg(8)->Arg(64)->Arg(256);

void BM_DseEvaluate(benchmark::State& state) {
  const embodied::ActModel model;
  embodied::DesignSpaceExplorer::Config cfg;
  const embodied::DesignSpaceExplorer dse(model, cfg);
  const embodied::DesignPoint point{embodied::ProcessNode::N7, 64, 2.5, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse.evaluate(point, grams_per_kwh(300.0)));
  }
}
BENCHMARK(BM_DseEvaluate);

void BM_DseFullSweep(benchmark::State& state) {
  const embodied::ActModel model;
  embodied::DesignSpaceExplorer::Config cfg;
  const embodied::DesignSpaceExplorer dse(model, cfg);
  const auto grid = dse.default_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse.best(grid, embodied::Objective::Cdp, grams_per_kwh(300.0)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(grid.size()));
}
BENCHMARK(BM_DseFullSweep)->Unit(benchmark::kMillisecond);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    util::parallel_for(n, [&](std::size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 1000; ++k) acc += static_cast<double>(i * k % 7);
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelFor)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
