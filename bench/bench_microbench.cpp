// Microbenchmarks (google-benchmark) of the library's hot kernels: grid
// trace generation, the simulator tick loop, hierarchical budget
// distribution, DSE evaluation, the parallel sweep infrastructure, and
// the observability primitives (disabled/enabled tracer spans, metric
// counters) against an uninstrumented reference loop.

#include <benchmark/benchmark.h>

#include <memory>

#include "carbon/grid_model.hpp"
#include "embodied/dse.hpp"
#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "powerstack/budget_tree.hpp"
#include "sched/easy_backfill.hpp"
#include "util/fault_injector.hpp"
#include "util/parallel.hpp"

namespace {

using namespace greenhpc;

void BM_GridTraceGeneration(benchmark::State& state) {
  const auto span = days(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    carbon::GridModel model(carbon::Region::Germany, 42);
    benchmark::DoNotOptimize(model.generate(seconds(0.0), span, minutes(15.0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 96);
}
BENCHMARK(BM_GridTraceGeneration)->Arg(7)->Arg(31)->Arg(365);

void BM_SimulatorWeek(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  carbon::GridModel grid_model(carbon::Region::Germany, 7);
  const auto trace = grid_model.generate(seconds(0.0), days(10.0), minutes(15.0));
  hpcsim::WorkloadConfig wl;
  wl.job_count = nodes;  // ~1 job per node over the week
  wl.span = days(7.0);
  wl.max_job_nodes = nodes / 4;
  const auto jobs = hpcsim::WorkloadGenerator(wl, 3).generate();
  for (auto _ : state) {
    hpcsim::Simulator::Config cfg;
    cfg.cluster.nodes = nodes;
    cfg.cluster.tick = minutes(2.0);
    cfg.carbon_intensity = trace;
    hpcsim::Simulator sim(cfg, jobs);
    sched::EasyBackfillScheduler sched;
    benchmark::DoNotOptimize(sim.run(sched));
  }
}
BENCHMARK(BM_SimulatorWeek)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_BudgetTreeDistribute(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  powerstack::ComponentBounds bounds;
  bounds.gpus_per_node = 4;
  const auto tree = powerstack::make_site_tree(jobs, 8, bounds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(powerstack::distribute(tree, megawatts(2.0)));
  }
}
BENCHMARK(BM_BudgetTreeDistribute)->Arg(8)->Arg(64)->Arg(256);

void BM_DseEvaluate(benchmark::State& state) {
  const embodied::ActModel model;
  embodied::DesignSpaceExplorer::Config cfg;
  const embodied::DesignSpaceExplorer dse(model, cfg);
  const embodied::DesignPoint point{embodied::ProcessNode::N7, 64, 2.5, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse.evaluate(point, grams_per_kwh(300.0)));
  }
}
BENCHMARK(BM_DseEvaluate);

void BM_DseFullSweep(benchmark::State& state) {
  const embodied::ActModel model;
  embodied::DesignSpaceExplorer::Config cfg;
  const embodied::DesignSpaceExplorer dse(model, cfg);
  const auto grid = dse.default_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse.best(grid, embodied::Objective::Cdp, grams_per_kwh(300.0)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(grid.size()));
}
BENCHMARK(BM_DseFullSweep)->Unit(benchmark::kMillisecond);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    util::parallel_for(n, [&](std::size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 1000; ++k) acc += static_cast<double>(i * k % 7);
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelFor)->Arg(64)->Arg(1024);

// --- observability overhead guard ---
// The same small work unit is timed bare, with a disabled tracer span,
// with a metrics counter, and with an enabled tracer span. The contract
// is that the disabled-span and counter variants stay within noise of
// the bare loop (a relaxed atomic load / fetch_add around ~100ns of
// work); the enabled-span variant prices the "tracing on" mode.

double obs_work_unit(std::size_t i) {
  double x = static_cast<double>(i % 17) + 1.0;
  for (int k = 0; k < 64; ++k) x = x * 1.0000001 + 1e-9;
  return x;
}

void BM_ObsUninstrumentedLoop(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(obs_work_unit(i++));
}
BENCHMARK(BM_ObsUninstrumentedLoop);

void BM_ObsDisabledSpanLoop(benchmark::State& state) {
  obs::Tracer::set_enabled(false);
  std::size_t i = 0;
  for (auto _ : state) {
    GREENHPC_TRACE_SPAN("bench.obs.disabled");
    benchmark::DoNotOptimize(obs_work_unit(i++));
  }
}
BENCHMARK(BM_ObsDisabledSpanLoop);

void BM_ObsCounterLoop(benchmark::State& state) {
  static obs::Counter& counter =
      obs::Registry::global().counter("bench.obs.counter");
  std::size_t i = 0;
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(obs_work_unit(i++));
  }
  counter.reset();
}
BENCHMARK(BM_ObsCounterLoop);

void BM_ObsEnabledSpanLoop(benchmark::State& state) {
  obs::Tracer::set_buffer_capacity(std::size_t{1} << 16);
  obs::Tracer::reset();
  obs::Tracer::set_enabled(true);
  std::size_t i = 0;
  for (auto _ : state) {
    GREENHPC_TRACE_SPAN("bench.obs.enabled");
    benchmark::DoNotOptimize(obs_work_unit(i++));
  }
  obs::Tracer::set_enabled(false);
  obs::Tracer::reset();
}
BENCHMARK(BM_ObsEnabledSpanLoop);

// The fault-injection hooks live on the sweep fabric's hot paths (case
// dispatch, journal append, heartbeat). The cost contract is that a
// DISARMED injector is one relaxed atomic load per consult — this pair
// of benchmarks keeps that honest against the armed (mutex + map) path.
void BM_FaultInjectorDisarmedConsult(benchmark::State& state) {
  auto& inj = util::FaultInjector::global();
  inj.disarm();
  const std::string site = "bench.site";
  util::FaultHit hit;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.consult(site, hit));
    benchmark::DoNotOptimize(obs_work_unit(i++));
  }
}
BENCHMARK(BM_FaultInjectorDisarmedConsult);

void BM_FaultInjectorArmedConsult(benchmark::State& state) {
  auto& inj = util::FaultInjector::global();
  // Armed with a spec for a DIFFERENT site: the worst common case is
  // paying the slow path without ever firing.
  inj.arm({{"bench.other", 0, 1, util::FaultAction::Fail, 0}});
  const std::string site = "bench.site";
  util::FaultHit hit;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.consult(site, hit));
    benchmark::DoNotOptimize(obs_work_unit(i++));
  }
  inj.disarm();
}
BENCHMARK(BM_FaultInjectorArmedConsult);

}  // namespace

BENCHMARK_MAIN();
