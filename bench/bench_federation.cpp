// EXP-GEO — the spatial counterpart of section 3.3's temporal shifting,
// quantifying the sentence that opens the paper's section 3: "depending
// on where an HPC center is situated, operational carbon can play a
// bigger role in its overall carbon impact" (Fig. 2's regional spread).
//
// A three-site federation (Germany / France / Poland) receives one job
// stream; dispatch policies from carbon-blind to carbon-aware are
// compared on job carbon, wait and placement.

#include <cstdio>
#include <memory>

#include "core/federation.hpp"
#include "hpcsim/workload.hpp"
#include "sched/easy_backfill.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::core;

  Federation::Config cfg;
  for (auto [name, region] :
       {std::pair{"Garching (DE)", carbon::Region::Germany},
        std::pair{"Lyon (FR)", carbon::Region::France},
        std::pair{"Krakow (PL)", carbon::Region::Poland}}) {
    SiteSpec site;
    site.name = name;
    site.cluster.nodes = 128;
    site.cluster.node_tdp = watts(500.0);
    site.cluster.node_idle = watts(110.0);
    site.cluster.tick = minutes(2.0);
    site.region = region;
    cfg.sites.push_back(site);
  }
  cfg.trace_span = days(11.0);
  cfg.seed = 2023;
  Federation fed(cfg);

  hpcsim::WorkloadConfig wl;
  wl.job_count = 900;
  wl.span = days(7.0);
  wl.max_job_nodes = 64;
  wl.node_power_mean = watts(420.0);
  const auto jobs = hpcsim::WorkloadGenerator(wl, 7).generate();
  const auto easy = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };

  util::Table table({"dispatch", "job carbon [t]", "vs round-robin [%]", "total [t]",
                     "mean wait [h]", "DE jobs", "FR jobs", "PL jobs", "done"});
  const DispatchPolicy policies[4] = {
      DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
      DispatchPolicy::GreenestNow, DispatchPolicy::GreenestForecast};
  // One independent federation run per dispatch policy, fanned out over
  // the pool into preallocated slots; rows print serially afterwards.
  std::vector<FederationResult> results(4);
  util::parallel_for(4, [&](std::size_t i) {
    results[i] = fed.run(jobs, policies[i], easy);
  });
  const FederationResult& baseline = results[0];  // round-robin
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    table.add_row({dispatch_name(policies[i]),
                   util::Table::fmt(result.job_carbon.tonnes(), 2),
                   util::Table::fmt(100.0 * (result.job_carbon / baseline.job_carbon - 1.0), 1),
                   util::Table::fmt(result.total_carbon.tonnes(), 2),
                   util::Table::fmt(result.mean_wait_hours, 2),
                   std::to_string(result.jobs_per_site[0]),
                   std::to_string(result.jobs_per_site[1]),
                   std::to_string(result.jobs_per_site[2]),
                   std::to_string(result.completed)});
  }
  std::printf("%s\n", table.str("Spatial carbon shifting across a DE/FR/PL federation "
                                "(128 nodes per site, 1 week)").c_str());
  std::printf("Reading: carbon-aware dispatch concentrates work in the French grid "
              "until the load penalty bites, cutting job carbon by tens of percent — "
              "the spatial lever is far stronger than temporal shifting within one "
              "grid (cf. bench_carbon_sched), exactly as Fig. 2's ~8x regional spread "
              "predicts.\n");
  return 0;
}
