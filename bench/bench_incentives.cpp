// EXP-USER — section 3.4 ("Making HPC Users Greener"): the over-allocation
// waste the paper observed in SuperMUC-NG job data, per-user carbon
// reports with the car-driving analogy, and the green-period core-hour
// incentive ("charging a fraction of the actual core hours used by the
// job during that time").

#include <cstdio>
#include <memory>

#include "accounting/incentives.hpp"
#include "accounting/job_carbon.hpp"
#include "bench_common.hpp"
#include "sched/easy_backfill.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  const auto easy = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };

  // Sweep 1: over-allocation -> wasted energy/carbon (the paper's
  // SuperMUC-NG observation, parameterized).
  util::Table waste({"over-allocation mean", "held/used node ratio", "mean waste [%]",
                     "total carbon [t]"});
  for (double oa : {1.0, 1.2, 1.5, 2.0}) {
    auto cfg = reference_scenario();
    cfg.workload.job_count = 600;
    cfg.workload.over_allocation_mean = oa;
    core::ScenarioRunner runner(cfg);
    const auto outcome = runner.run("easy", easy);
    const auto profiles = accounting::profile_jobs(outcome.result, cfg.cluster);
    double mean_waste = 0.0, ratio = 0.0;
    for (const auto& p : profiles) mean_waste += p.over_allocation_waste;
    for (const auto& rec : outcome.result.jobs) {
      ratio += static_cast<double>(rec.spec.nodes_requested) / rec.spec.nodes_used;
    }
    mean_waste /= static_cast<double>(profiles.size());
    ratio /= static_cast<double>(outcome.result.jobs.size());
    waste.add_row({util::Table::fmt(oa, 1), util::Table::fmt(ratio, 2),
                   util::Table::fmt(100.0 * mean_waste, 1),
                   util::Table::fmt(outcome.total_carbon_t, 1)});
  }
  std::printf("%s\n", waste.str("Section 3.4: over-allocation waste "
                                "(\"many users allocate more nodes ... than they require\")").c_str());

  // Per-user carbon reports on the reference workload.
  auto cfg = reference_scenario();
  cfg.workload.job_count = 600;
  cfg.workload.over_allocation_mean = 1.3;
  core::ScenarioRunner runner(cfg);
  const auto outcome = runner.run("easy", easy);
  const auto profiles = accounting::profile_jobs(outcome.result, cfg.cluster);
  const auto users = accounting::aggregate_by_user(profiles);
  util::Table report({"user", "jobs", "energy [MWh]", "carbon [kg]", "car-km equiv",
                      "timing savings potential [%]", "mean waste [%]"});
  for (std::size_t i = 0; i < std::min<std::size_t>(users.size(), 8); ++i) {
    const auto& u = users[i];
    report.add_row({u.key, std::to_string(u.jobs),
                    util::Table::fmt(u.energy.megawatt_hours(), 2),
                    util::Table::fmt(u.carbon.kilograms(), 0),
                    util::Table::fmt(u.car_km, 0),
                    util::Table::fmt(100.0 * u.timing_savings_potential.grams() /
                                         std::max(1.0, u.carbon.grams()), 1),
                    util::Table::fmt(100.0 * u.mean_over_allocation_waste, 1)});
  }
  std::printf("%s\n", report.str("Top users by carbon (the job-report aggregation DCDB "
                                 "would serve)").c_str());
  std::printf("Example per-job report mailed to a user:\n\n%s\n",
              accounting::format_job_report(profiles.front()).c_str());

  // Sweep 2: green-period discount -> behaviour shift -> carbon/revenue.
  util::Table inc({"discount [%]", "shifted jobs [%]", "carbon reduction [%]",
                   "billed node-hours [% of raw]"});
  for (double d : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    accounting::IncentiveConfig icfg;
    icfg.pricing.green_discount = d;
    icfg.flexible_fraction = 0.5;
    icfg.shift_elasticity = 2.0;
    const auto io = accounting::evaluate_incentive(outcome.result.jobs, runner.trace(),
                                                   icfg, 77);
    inc.add_row({util::Table::fmt(100.0 * d, 0),
                 util::Table::fmt(100.0 * io.shifted_job_fraction, 1),
                 util::Table::fmt(100.0 * io.carbon_reduction(), 1),
                 util::Table::fmt(100.0 * io.billed_node_hour_factor, 1)});
  }
  std::printf("%s\n", inc.str("Green-period core-hour incentive sweep").c_str());

  // Sweep 3: Countdown-class runtime library adoption (section 3.4 cites
  // Cesarini et al.: performance-neutral energy saving in MPI waits).
  util::Table lib({"adoption [%]", "energy [MWh]", "carbon [t]", "vs 0% [%]"});
  double base_energy = 0.0;
  for (double adoption : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto lib_cfg = reference_scenario();
    lib_cfg.workload.job_count = 600;
    lib_cfg.workload.mpi_wait_mean = 0.25;
    lib_cfg.workload.powersave_adoption = adoption;
    core::ScenarioRunner lib_runner(lib_cfg);
    const auto lib_outcome = lib_runner.run("easy", easy);
    if (adoption == 0.0) base_energy = lib_outcome.total_energy_mwh;
    lib.add_row({util::Table::fmt(100.0 * adoption, 0),
                 util::Table::fmt(lib_outcome.total_energy_mwh, 1),
                 util::Table::fmt(lib_outcome.total_carbon_t, 2),
                 util::Table::fmt(
                     100.0 * (lib_outcome.total_energy_mwh / base_energy - 1.0), 1)});
  }
  std::printf("%s\n", lib.str("Countdown-style runtime library adoption "
                               "(performance-neutral MPI-wait power saving)").c_str());
  std::printf("Paper claim check: incentives monotonically reduce carbon at bounded "
              "revenue cost -> see sweep above (reduction grows with discount); "
              "user-side library adoption compounds the savings.\n");
  return 0;
}
