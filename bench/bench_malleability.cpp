// EXP-MALL — section 3.2 ("Carbon-aware Dynamic Resource Scaling"):
// "Malleability is a desired feature also for power-constrained systems,
// as limiting the number of available nodes is an effective approach to
// keep the system under the given total power budget."
//
// Sweeps the malleable share of the workload under a CI-proportional
// dynamic power budget, comparing uniform power capping (rigid) against
// node-count scaling (malleable + controller).

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "powerstack/policies.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  const auto power_factory = [] {
    return std::make_unique<powerstack::IntensityProportionalPolicy>(
        powerstack::IntensityProportionalPolicy::Config{
            .ci_clean = 330.0, .ci_dirty = 600.0, .min_fraction = 0.35,
            .max_fraction = 0.8});
  };

  util::Table table({"malleable [%]", "carbon [t]", "g/node-h", "wait [h]",
                     "slowdown", "util [%]", "violations", "done"});
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto cfg = reference_scenario();
    cfg.workload.malleable_fraction = frac;
    core::ScenarioRunner runner(cfg);
    const auto outcome = runner.run(
        "easy+malleable",
        [] {
          return std::make_unique<sched::MalleableDecorator>(
              sched::MalleableDecorator::Config{},
              std::make_unique<sched::EasyBackfillScheduler>());
        },
        power_factory);
    table.add_row({util::Table::fmt(100.0 * frac, 0),
                   util::Table::fmt(outcome.total_carbon_t, 1),
                   util::Table::fmt(outcome.carbon_per_node_hour_g, 1),
                   util::Table::fmt(outcome.mean_wait_h, 2),
                   util::Table::fmt(outcome.mean_bounded_slowdown, 2),
                   util::Table::fmt(100.0 * outcome.utilization, 1),
                   std::to_string(outcome.result.budget_violations),
                   std::to_string(outcome.completed)});
  }
  std::printf("%s\n", table.str("Section 3.2: malleable share sweep under a dynamic "
                                "power budget (0.35-0.8 x max power)").c_str());

  // The section-3.2 job-class ladder: rigid-only vs moldable (sized at
  // start) vs malleable (resized at runtime), same budget and load.
  {
    util::Table ladder = outcome_table();
    {
      core::ScenarioRunner r0(reference_scenario());
      const auto rigid = r0.run(
          "easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); },
          power_factory);
      add_outcome_row(ladder, rigid);
    }
    {
      auto cfg2 = reference_scenario();
      cfg2.workload.moldable_fraction = 0.75;
      core::ScenarioRunner r1(cfg2);
      const auto mold = r1.run(
          "easy+mold",
          [] { return std::make_unique<sched::EasyBackfillScheduler>(true); },
          power_factory);
      add_outcome_row(ladder, mold);
    }
    {
      auto cfg2 = reference_scenario();
      cfg2.workload.malleable_fraction = 0.75;
      core::ScenarioRunner r2(cfg2);
      const auto mall = r2.run(
          "easy+malleable",
          [] {
            return std::make_unique<sched::MalleableDecorator>(
                sched::MalleableDecorator::Config{},
                std::make_unique<sched::EasyBackfillScheduler>());
          },
          power_factory);
      add_outcome_row(ladder, mall);
    }
    std::printf("%s\n", ladder.str("Job-class ladder at 75% dynamic share: rigid vs "
                                    "moldable vs malleable").c_str());
  }

  // Head-to-head at 75% malleable: with vs without the controller.
  auto cfg = reference_scenario();
  cfg.workload.malleable_fraction = 0.75;
  core::ScenarioRunner runner(cfg);
  const auto with_controller = runner.run(
      "easy+malleable",
      [] {
        return std::make_unique<sched::MalleableDecorator>(
            sched::MalleableDecorator::Config{},
            std::make_unique<sched::EasyBackfillScheduler>());
      },
      power_factory);
  const auto capped_only = runner.run(
      "easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); },
      power_factory);
  util::Table duel = outcome_table();
  add_outcome_row(duel, with_controller);
  add_outcome_row(duel, capped_only);
  std::printf("%s\n", duel.str("75% malleable workload: node-scaling controller vs "
                               "uniform power capping").c_str());
  std::printf("violations: controller=%d capping-only=%d\n",
              with_controller.result.budget_violations, capped_only.result.budget_violations);
  std::printf("Paper claim check: malleability keeps the system within budget more "
              "effectively than capping alone -> %s\n",
              with_controller.result.budget_violations <= capped_only.result.budget_violations
                  ? "CONFIRMED"
                  : "NOT REPRODUCED");
  return 0;
}
