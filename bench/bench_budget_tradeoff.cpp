// EXP-PROC — reproduces the section 2.2 claim: "Trading-off the embodied
// and operational carbon budgets under a total carbon footprint budget
// will be another optimization opportunity for system designs."
//
// For a fixed lifetime carbon budget, the fraction x assigned to
// manufacturing is swept; the rest buys operational energy. Delivered
// performance peaks at an interior split, and the optimal split moves
// toward hardware as the grid gets cleaner.

#include <cstdio>

#include "procure/catalog.hpp"
#include "procure/tradeoff.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::procure;

  const embodied::ActModel model;
  const ProcurementOptimizer optimizer(default_catalog(model));

  TradeoffConfig cfg;
  cfg.total_budget = tonnes_co2(30000.0);
  cfg.lifetime = days(365.0 * 6.0);
  cfg.base.cost_budget_keur = 2.0e6;
  cfg.base.power_limit = megawatts(50.0);
  cfg.base.max_nodes = 30000;
  cfg.power_elasticity = 0.7;

  for (double grid : {20.0, 300.0, 700.0}) {
    cfg.grid = grams_per_kwh(grid);
    const auto sweep = sweep_budget_split(optimizer, cfg, 19);
    util::Table table({"embodied x [%]", "nodes", "procured [PF]",
                       "sustainable power [MW]", "delivered [PF]"});
    for (const auto& p : sweep) {
      table.add_row({util::Table::fmt(100.0 * p.embodied_fraction, 0),
                     std::to_string(p.plan.total_nodes()),
                     util::Table::fmt(p.procured_pflops, 1),
                     util::Table::fmt(p.sustainable_power.megawatts(), 2),
                     util::Table::fmt(p.delivered_pflops, 1)});
    }
    const auto& best = best_split(sweep);
    std::printf("%s", table.str("Budget split sweep, grid = " +
                                util::Table::fmt(grid, 0) + " g/kWh (total budget 30,000 t, 6 years)")
                          .c_str());
    std::printf("-> optimal split: %.0f%% embodied / %.0f%% operational, %.1f PF delivered\n\n",
                100.0 * best.embodied_fraction, 100.0 * (1.0 - best.embodied_fraction),
                best.delivered_pflops);
  }

  cfg.grid = grams_per_kwh(20.0);
  const auto clean_best = best_split(sweep_budget_split(optimizer, cfg, 19));
  cfg.grid = grams_per_kwh(700.0);
  const auto dirty_best = best_split(sweep_budget_split(optimizer, cfg, 19));
  std::printf("Paper claim check: interior optimum exists and shifts toward embodied in "
              "clean grids -> %s (clean x*=%.2f, dirty x*=%.2f)\n",
              clean_best.embodied_fraction > dirty_best.embodied_fraction ? "CONFIRMED"
                                                                          : "NOT REPRODUCED",
              clean_best.embodied_fraction, dirty_best.embodied_fraction);
  return 0;
}
