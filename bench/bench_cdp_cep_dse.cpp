// EXP-CDP — reproduces the section 2.1 claim (after Gupta et al.'s ACT):
// "the optimal design point could change depending on the design
// objective metric such as CDP (Carbon Delay Product), CEP (Carbon Energy
// Product), and others", and that the optimum depends on "the carbon
// intensity of the power grid at which the processor will operate".

#include <cstdio>
#include <string>

#include "embodied/dse.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::embodied;

  const ActModel model;
  DesignSpaceExplorer::Config cfg;
  cfg.workload.total_ops = 1.0e15;
  cfg.workload.parallel_fraction = 0.97;
  const DesignSpaceExplorer dse(model, cfg);
  const auto grid = dse.default_grid();
  std::printf("Design space: %zu candidate processors "
              "(node x cores x frequency x chiplets)\n\n", grid.size());

  const Objective objectives[] = {Objective::Delay, Objective::Energy, Objective::Edp,
                                  Objective::TotalCarbon, Objective::Cdp, Objective::Cep};

  // Sweep 1: optimal design per objective at a fixed (EU-average) grid.
  util::Table by_objective({"objective", "node", "cores", "freq [GHz]", "chiplets",
                            "delay [s]", "energy [kJ]", "device embodied [kg]",
                            "total carbon/run [g]"});
  for (Objective o : objectives) {
    const auto best = dse.best(grid, o, grams_per_kwh(300.0));
    by_objective.add_row({objective_name(o), node_name(best.point.node),
                          std::to_string(best.point.cores),
                          util::Table::fmt(best.point.freq_ghz, 1),
                          std::to_string(best.point.chiplet_count),
                          util::Table::fmt(best.metrics.delay.seconds(), 1),
                          util::Table::fmt(best.metrics.energy.joules() / 1e3, 1),
                          util::Table::fmt(best.device_embodied.kilograms(), 1),
                          util::Table::fmt(best.metrics.total().grams(), 2)});
  }
  std::printf("%s\n", by_objective.str("Optimal design point by objective (grid = 300 g/kWh)").c_str());

  // Sweep 2: optimal total-carbon design across operating grids.
  util::Table by_grid({"grid [g/kWh]", "node", "cores", "freq [GHz]", "chiplets",
                       "embodied share of run [%]"});
  for (double g : {5.0, 20.0, 100.0, 300.0, 700.0, 1025.0}) {
    const auto best = dse.best(grid, Objective::TotalCarbon, grams_per_kwh(g));
    const double embodied_share =
        best.metrics.embodied / best.metrics.total();
    by_grid.add_row({util::Table::fmt(g, 0), node_name(best.point.node),
                     std::to_string(best.point.cores),
                     util::Table::fmt(best.point.freq_ghz, 1),
                     std::to_string(best.point.chiplet_count),
                     util::Table::fmt(100.0 * embodied_share, 1)});
  }
  std::printf("%s\n", by_grid.str("Optimal total-carbon design vs operating-grid intensity").c_str());

  // Sweep 3: CDP optimum across grids (the paper names CDP explicitly).
  util::Table cdp_grid({"grid [g/kWh]", "node", "cores", "freq [GHz]", "chiplets", "CDP [g*s]"});
  for (double g : {20.0, 300.0, 1025.0}) {
    const auto best = dse.best(grid, Objective::Cdp, grams_per_kwh(g));
    cdp_grid.add_row({util::Table::fmt(g, 0), node_name(best.point.node),
                      std::to_string(best.point.cores),
                      util::Table::fmt(best.point.freq_ghz, 1),
                      std::to_string(best.point.chiplet_count),
                      util::Table::fmt(best.metrics.cdp(), 1)});
  }
  std::printf("%s\n", cdp_grid.str("CDP-optimal design vs operating-grid intensity").c_str());

  // The delay-carbon Pareto front: what a section-2.1 designer actually
  // navigates (every front point is carbon-optimal for some speed target).
  const auto front = dse.pareto_front(grid, grams_per_kwh(300.0));
  util::Table pareto({"node", "cores", "freq [GHz]", "chiplets", "delay [s]",
                      "total carbon/run [g]"});
  for (const auto& ev : front) {
    pareto.add_row({node_name(ev.point.node), std::to_string(ev.point.cores),
                    util::Table::fmt(ev.point.freq_ghz, 1),
                    std::to_string(ev.point.chiplet_count),
                    util::Table::fmt(ev.metrics.delay.seconds(), 1),
                    util::Table::fmt(ev.metrics.total().grams(), 2)});
  }
  std::printf("%s\n", pareto.str("Delay-carbon Pareto front (grid = 300 g/kWh, " +
                                  std::to_string(front.size()) + " designs)").c_str());

  const auto d = dse.best(grid, Objective::Delay, grams_per_kwh(300.0));
  const auto c = dse.best(grid, Objective::Cdp, grams_per_kwh(300.0));
  const bool shifts = d.point.node != c.point.node || d.point.cores != c.point.cores ||
                      d.point.freq_ghz != c.point.freq_ghz ||
                      d.point.chiplet_count != c.point.chiplet_count;
  std::printf("Paper claim check: optimum shifts between delay and CDP objectives -> %s\n",
              shifts ? "CONFIRMED" : "NOT REPRODUCED");
  return 0;
}
