// FIG1 — reproduces the paper's Figure 1: "Estimated embodied carbon
// footprint contribution from the different components in the Top-3 HPC
// systems in Germany", using the ACT-style methodology of Li et al. [37].
//
// Paper anchors: memory+storage share = 43.5% (Juwels Booster),
// 59.6% (SuperMUC-NG), 55.5% (Hawk); GPUs dominate in Juwels Booster.

#include <cstdio>

#include "embodied/systems.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::embodied;
  const ActModel model;

  util::Table table({"system", "CPU[t]", "GPU[t]", "DRAM[t]", "storage[t]", "total[t]",
                     "CPU[%]", "GPU[%]", "DRAM[%]", "storage[%]", "mem+stor[%]",
                     "paper[%]"});
  const double paper_shares[] = {43.5, 59.6, 55.5};
  int row = 0;
  for (const auto& sys : fig1_systems()) {
    const EmbodiedBreakdown b = embodied_breakdown(model, sys);
    table.add_row({sys.name, util::Table::fmt(b.cpu.tonnes(), 1),
                   util::Table::fmt(b.gpu.tonnes(), 1),
                   util::Table::fmt(b.dram.tonnes(), 1),
                   util::Table::fmt(b.storage.tonnes(), 1),
                   util::Table::fmt(b.total().tonnes(), 1),
                   util::Table::fmt(100.0 * b.share(b.cpu), 1),
                   util::Table::fmt(100.0 * b.share(b.gpu), 1),
                   util::Table::fmt(100.0 * b.share(b.dram), 1),
                   util::Table::fmt(100.0 * b.share(b.storage), 1),
                   util::Table::fmt(100.0 * b.memory_storage_share(), 1),
                   util::Table::fmt(paper_shares[row], 1)});
    ++row;
  }
  std::printf("%s\n", table.str("Figure 1: embodied carbon by component, Top-3 German HPC systems").c_str());

  // Per-unit component footprints behind the figure.
  util::Table units({"component", "embodied [kgCO2e]"});
  units.add_row({"NVIDIA A100-40GB SXM module",
                 util::Table::fmt(processor_embodied(model, nvidia_a100_sxm()).kilograms(), 1)});
  units.add_row({"AMD EPYC 7402 (Juwels Booster)",
                 util::Table::fmt(processor_embodied(model, amd_epyc_7402()).kilograms(), 1)});
  units.add_row({"Intel Xeon 8174 (SuperMUC-NG)",
                 util::Table::fmt(processor_embodied(model, intel_xeon_8174()).kilograms(), 1)});
  units.add_row({"AMD EPYC 7742 (Hawk)",
                 util::Table::fmt(processor_embodied(model, amd_epyc_7742()).kilograms(), 1)});
  units.add_row({"DDR4 DRAM, per GB", util::Table::fmt(model.dram(1.0, DramType::DDR4).kilograms(), 3)});
  units.add_row({"HDD parallel-FS storage, per GB",
                 util::Table::fmt(model.storage(1.0, StorageType::HDD).kilograms(), 4)});
  std::printf("%s\n", units.str("Per-unit embodied carbon (ACT-style model)").c_str());

  std::printf("Paper claim check: GPUs have the largest class share in Juwels Booster -> %s\n",
              embodied_breakdown(model, juwels_booster()).gpu >
                      embodied_breakdown(model, juwels_booster()).cpu
                  ? "CONFIRMED"
                  : "NOT REPRODUCED");
  return 0;
}
