// EXP-SWEEP — sweep-engine fan-out scaling and determinism.
//
// Not a paper experiment: like EXP-PERF this bench tracks the engine. The
// paper's fleet-scale comparisons (sections 3.1-3.4) need hundreds of
// simulations per claim; this bench runs one such grid — regions ×
// intensity kinds × policies × seed replicas, 256 cases at full scale —
// through core::SweepEngine on pools of 1, 2 and 8 threads, and asserts
// the three digests are bit-identical (the engine's determinism
// contract). Throughput per thread count measures fan-out scaling; on
// hosts without spare cores the pool's serial fallback engages instead
// and is reported as such, not scored as a regression. A traced run
// asserts the digest is unchanged with the event tracer enabled and
// reports the span-derived phase breakdown ("tracing" block in the JSON).
// A final interrupted-and-resumed run (write-ahead journal, aborted after
// four blocks, resumed) asserts the crash-safety contract: the resumed
// digest must match the clean run bit for bit ("resume" block).
//
// With --worker-bin the bench additionally gates the DISTRIBUTED digest
// contract: it runs the given greenhpc CLI's `sweep` command on a small
// grid with 0, 1, 2 and 4 worker processes and requires all four digests
// to be bit-identical ("distributed" block in the JSON; a mismatch fails
// the bench). A follow-on obs-shipping gate reruns the 2-worker grid with
// the observability plane fully on (stat/trace shipping + fleet trace
// merge) and fully off (--no-obs-ship): both digests must match the
// reference bit for bit — the hard proof that shipped telemetry never
// feeds the fold — and the shipping wall overhead is reported ("shipping"
// block; warned above 5%, digest mismatch fails). Without the flag the
// gates report themselves skipped.
//
// Usage: bench_sweep [--smoke] [--out FILE] [--threads N] [--worker-bin PATH]
//   --smoke           small grid (CI smoke: seconds, not minutes)
//   --out FILE        write the JSON report there (default BENCH_SWEEP.json)
//   --threads N       add N to the measured thread counts (default 1, 2, 8)
//   --worker-bin PATH greenhpc CLI binary for the distributed digest gate

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "carbon/forecast.hpp"
#include "carbon/trace_cache.hpp"
#include "core/sweep.hpp"
#include "core/sweep_journal.hpp"
#include "hpcsim/workload.hpp"
#include "obs/trace.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace greenhpc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The measured grid. Full scale: 4 regions x 2 kinds x 4 policies x
/// 8 replicas = 256 cases; smoke: 2 x 1 x 2 x 2 = 8 cases. Workload is
/// deliberately small — the bench measures fan-out, not the hot loop.
core::SweepGrid make_grid(bool smoke) {
  core::SweepGrid grid;
  grid.base = bench::reference_scenario();
  grid.base.cluster.nodes = 32;
  grid.base.cluster.tick = minutes(4.0);
  grid.base.workload.job_count = smoke ? 24 : 48;
  grid.base.workload.span = days(1.0);
  grid.base.workload.max_job_nodes = 16;
  grid.base.trace_span = days(3.0);
  grid.base.trace_step = minutes(30.0);

  grid.regions = smoke ? std::vector<carbon::Region>{carbon::Region::Germany,
                                                     carbon::Region::France}
                       : std::vector<carbon::Region>{
                             carbon::Region::Germany, carbon::Region::France,
                             carbon::Region::Poland, carbon::Region::Norway};
  grid.intensity_kinds =
      smoke ? std::vector<carbon::IntensityKind>{carbon::IntensityKind::Average}
            : std::vector<carbon::IntensityKind>{carbon::IntensityKind::Average,
                                                 carbon::IntensityKind::Marginal};
  grid.seed_replicas = smoke ? 2 : 8;

  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  grid.policies.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  if (!smoke) {
    grid.policies.push_back({"easy+mold", [] {
                               return std::make_unique<sched::EasyBackfillScheduler>(true);
                             }});
    grid.policies.push_back({"carbon-easy", [] {
                               sched::CarbonAwareEasyScheduler::Config c;
                               c.max_hold = hours(24.0);
                               return std::make_unique<sched::CarbonAwareEasyScheduler>(
                                   c, std::make_shared<carbon::PersistenceForecaster>());
                             }});
  }
  return grid;
}

struct SweepSample {
  std::size_t threads = 0;  ///< pool worker count (team = threads + caller)
  double wall_s = 0.0;
  std::uint64_t digest = 0;
  bool serial_fallback = false;
};

/// One CLI run of the distributed digest gate.
struct DistributedSample {
  int workers = 0;
  std::uint64_t digest = 0;
  bool ok = false;  ///< CLI exited 0 and printed a digest line
};

/// Run `cli sweep --workers N` on a small fixed grid and scrape the
/// `digest: <hex16>` line from its stdout (stderr passes through to the
/// operator). ok=false when the CLI fails or prints no digest.
DistributedSample run_distributed(const std::string& cli, int workers,
                                  const std::string& extra_flags = "",
                                  int replicas = 2) {
  DistributedSample s;
  s.workers = workers;
  const std::string cmd =
      cli +
      " sweep --quiet --regions DE,FR --kinds average --nodes 64 --jobs 60"
      " --days 2 --replicas " + std::to_string(replicas) +
      " --sched easy,carbon-easy --block 4 --workers " +
      std::to_string(workers) + extra_flags;
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return s;
  char line[512];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    unsigned long long d = 0;
    if (std::sscanf(line, "digest: %16llx", &d) == 1) {
      s.digest = d;
      s.ok = true;
    }
  }
  const int rc = ::pclose(pipe);
  if (rc != 0) s.ok = false;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_SWEEP.json";
  std::string worker_bin;
  std::vector<std::size_t> thread_counts = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--worker-bin") == 0 && i + 1 < argc) {
      worker_bin = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long t = std::atol(argv[++i]);
      if (t < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        return 2;
      }
      thread_counts.push_back(static_cast<std::size_t>(t));
    } else {
      std::fprintf(stderr,
                   "usage: bench_sweep [--smoke] [--out FILE] [--threads N] "
                   "[--worker-bin PATH]\n");
      return 2;
    }
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  const core::SweepGrid grid = make_grid(smoke);
  const std::size_t n_cases = grid.case_count();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  // Warm the shared-asset caches once so every thread count measures pure
  // simulation fan-out on identical (pointer-identical) inputs.
  {
    core::SweepEngine::Options opts;
    util::ThreadPool warm_pool(1);
    opts.pool = &warm_pool;
    (void)core::SweepEngine(std::move(opts)).run(grid);
  }
  const auto& tc = carbon::TraceCache::global();
  const auto& wc = hpcsim::WorkloadCache::global();

  std::vector<SweepSample> samples;
  for (const std::size_t threads : thread_counts) {
    util::ThreadPool pool(threads);
    core::SweepEngine::Options opts;
    opts.pool = &pool;
    const core::SweepEngine engine(std::move(opts));
    const auto t0 = Clock::now();
    const core::SweepResult result = engine.run(grid);
    SweepSample s;
    s.threads = threads;
    s.wall_s = seconds_since(t0);
    s.digest = result.digest;
    // Mirrors parallel_for_chunked's crossover test: a single-worker pool
    // dispatches nothing and runs the plain serial loop.
    s.serial_fallback = pool.size() <= 1;
    samples.push_back(s);
  }

  const double serial_s = samples.front().wall_s;  // thread_counts starts at 1
  bool identical = true;
  for (const SweepSample& s : samples) identical &= s.digest == samples.front().digest;

  util::Table table({"threads", "wall[s]", "cases/s", "speedup", "efficiency", "mode"});
  for (const SweepSample& s : samples) {
    const double speedup = serial_s / s.wall_s;
    table.add_row({std::to_string(s.threads), util::Table::fmt(s.wall_s, 3),
                   util::Table::fmt(n_cases / s.wall_s, 1), util::Table::fmt(speedup, 2),
                   util::Table::fmt(speedup / static_cast<double>(s.threads), 2),
                   s.serial_fallback ? "serial-fallback" : "parallel"});
  }
  std::printf("%s\n", table
                          .str("EXP-SWEEP: " + std::to_string(n_cases) +
                               "-case sweep scaling (hardware_concurrency=" +
                               std::to_string(hw) + ")")
                          .c_str());
  std::printf("digests %s across thread counts; shared assets: %zu traces "
              "(%zu hits), %zu workloads (%zu hits)\n\n",
              identical ? "bit-identical" : "DIVERGED", tc.size(), tc.hits(),
              wc.size(), wc.hits());

  // Scaling verdict. With spare cores (hw >= 4 and a >= 4-thread pool) the
  // largest in-budget pool must reach 0.7x/thread; otherwise the host
  // cannot express parallel speedup and the serial fallback (or a
  // saturated 1-2 core run) is the expected, reported outcome.
  bool scaling_ok = true;
  std::string scaling_note = "no >=4-thread pool fits this host (hw=" +
                             std::to_string(hw) + "); serial fallback governs";
  for (const SweepSample& s : samples) {
    if (s.threads < 4 || s.threads > hw) continue;
    const double eff = serial_s / s.wall_s / static_cast<double>(s.threads);
    scaling_ok = eff >= 0.7;
    scaling_note = "T=" + std::to_string(s.threads) +
                   " efficiency " + util::Table::fmt(eff, 2);
  }
  std::printf("scaling: %s (%s)\n", scaling_ok ? "ok" : "BELOW 0.7x/T",
              scaling_note.c_str());

  // --- traced run: digest identity with instrumentation live ---
  // Acceptance check for the observability layer: the tracer is purely
  // observational, so running the same grid with tracing enabled must
  // reproduce the untraced digest bit for bit.
  obs::Tracer::set_buffer_capacity(std::size_t{1} << 19);
  obs::Tracer::reset();
  obs::Tracer::set_enabled(true);
  double traced_s = 0.0;
  std::uint64_t traced_digest = 0;
  {
    util::ThreadPool pool(2);
    core::SweepEngine::Options opts;
    opts.pool = &pool;
    const auto t0 = Clock::now();
    const core::SweepResult traced = core::SweepEngine(std::move(opts)).run(grid);
    traced_s = seconds_since(t0);
    traced_digest = traced.digest;
  }  // pool joins here: every worker ring is quiescent before the drain
  obs::Tracer::set_enabled(false);
  const std::vector<obs::SpanStat> phases = obs::Tracer::aggregate_spans();
  const bool traced_identical = traced_digest == samples.front().digest;
  std::printf("traced run (2-thread pool): %.3f s, digest %s the untraced run, "
              "%zu span kinds\n",
              traced_s, traced_identical ? "matches" : "DIVERGED from",
              phases.size());
  obs::Tracer::reset();

  // --- interrupted + resumed run: the crash-safety acceptance check ---
  // Journal the grid, abort the run mid-way (a progress callback that
  // throws stands in for SIGKILL: the journal is fsynced before progress
  // fires, so the durable state is identical), resume from the journal and
  // require the digest to match the uninterrupted runs bit for bit.
  std::uint64_t resumed_digest = 0;
  std::size_t replayed = 0;
  {
    const std::string dir = out_path + ".journal.d";
    const std::size_t block = std::max<std::size_t>(1, n_cases / 8);
    struct Abort {};
    {
      core::SweepJournal journal = core::SweepJournal::create(
          dir, grid.config_digest(), n_cases, block);
      util::ThreadPool pool(2);
      core::SweepEngine::Options opts;
      opts.pool = &pool;
      opts.journal = &journal;
      std::size_t blocks_done = 0;
      opts.progress = [&blocks_done](std::size_t, std::size_t) {
        if (++blocks_done == 4) throw Abort{};
      };
      try {
        (void)core::SweepEngine(std::move(opts)).run(grid);
      } catch (const Abort&) {
      }
    }
    core::SweepJournal journal =
        core::SweepJournal::resume(dir, grid.config_digest(), n_cases);
    util::ThreadPool pool(2);
    core::SweepEngine::Options opts;
    opts.pool = &pool;
    opts.journal = &journal;
    const core::SweepResult resumed = core::SweepEngine(std::move(opts)).run(grid);
    resumed_digest = resumed.digest;
    replayed = resumed.replayed_cases;
    std::remove(journal.path().c_str());
    std::remove(dir.c_str());
  }
  const bool resume_identical = resumed_digest == samples.front().digest;
  std::printf("interrupted + resumed run: %zu cases replayed from the journal, "
              "digest %s the clean run\n",
              replayed, resume_identical ? "matches" : "DIVERGED from");

  // --- distributed digest gate: CLI sweep with 0/1/2/4 worker processes ---
  // The coordinator contract: sharding blocks across worker PROCESSES must
  // reproduce the in-process digest bit for bit for any worker count.
  std::vector<DistributedSample> dist;
  bool dist_identical = true;
  if (!worker_bin.empty()) {
    for (const int w : {0, 1, 2, 4}) {
      const DistributedSample s = run_distributed(worker_bin, w);
      if (!s.ok) {
        std::fprintf(stderr, "distributed gate: `%s sweep --workers %d` failed\n",
                     worker_bin.c_str(), w);
        dist_identical = false;
      }
      dist.push_back(s);
    }
    for (const DistributedSample& s : dist) {
      dist_identical &= s.ok && s.digest == dist.front().digest;
    }
    std::printf("distributed gate (0/1/2/4 workers): digests %s\n",
                dist_identical ? "bit-identical" : "DIVERGED");
  } else {
    std::printf("distributed gate: skipped (pass --worker-bin PATH to run it)\n");
  }

  // --- obs shipping gate: telemetry must be digest-neutral and cheap ---
  // The 2-worker CLI grid again, once with the observability plane fully
  // on (stat shipping + fleet trace merge, which also turns on per-block
  // trace shipping in every worker) and once with --no-obs-ship. Both
  // digests must match each other bit for bit — the hard check that
  // shipped telemetry never reaches the fold path — and, on the smoke
  // grid, the distributed reference too. The wall overhead of shipping
  // is min-of-2 measured and reported; above 5% it is warned, not
  // failed (CI walls are noisy; the digest is the gate). The full bench
  // scales the grid up (30 replicas) so the constant worker-spawn cost
  // amortizes and the ratio reflects steady-state shipping cost.
  bool ship_ran = false;
  bool ship_identical = true;
  double ship_on_s = 0.0;
  double ship_off_s = 0.0;
  std::uint64_t ship_on_digest = 0;
  std::uint64_t ship_off_digest = 0;
  double ship_overhead = 0.0;
  if (!worker_bin.empty() && !dist.empty() && dist.front().ok) {
    ship_ran = true;
    const int ship_replicas = smoke ? 2 : 30;
    const std::string fleet_path = out_path + ".fleet.json";
    ship_on_s = ship_off_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      auto t0 = Clock::now();
      const DistributedSample on = run_distributed(
          worker_bin, 2, " --fleet-trace-out " + fleet_path, ship_replicas);
      ship_on_s = std::min(ship_on_s, seconds_since(t0));
      ship_on_digest = on.digest;
      ship_identical &= on.ok;
      t0 = Clock::now();
      const DistributedSample off =
          run_distributed(worker_bin, 2, " --no-obs-ship", ship_replicas);
      ship_off_s = std::min(ship_off_s, seconds_since(t0));
      ship_off_digest = off.digest;
      ship_identical &= off.ok && off.digest == on.digest;
      if (ship_replicas == 2) {
        ship_identical &= on.digest == dist.front().digest;
      }
    }
    std::remove(fleet_path.c_str());
    ship_overhead = ship_on_s / std::max(1e-9, ship_off_s) - 1.0;
    std::printf(
        "obs shipping gate (2 workers, %d replicas): digests %s; shipping "
        "on %.3f s vs off %.3f s (%+.1f%% overhead)\n",
        ship_replicas, ship_identical ? "bit-identical" : "DIVERGED",
        ship_on_s, ship_off_s, 100.0 * ship_overhead);
    if (ship_identical && ship_overhead > 0.05) {
      std::fprintf(stderr,
                   "WARN: obs shipping overhead %.1f%% exceeds the 5%% budget "
                   "(digest neutrality still holds)\n",
                   100.0 * ship_overhead);
    }
  } else {
    std::printf("obs shipping gate: skipped (needs --worker-bin)\n");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"smoke\": %s,\n  \"cases\": %zu,\n  \"cells\": %zu,\n",
               smoke ? "true" : "false", n_cases, grid.cell_count());
  std::fprintf(f, "  \"replicas\": %d,\n  \"hardware_concurrency\": %u,\n",
               grid.seed_replicas, hw);
  std::fprintf(f, "  \"digest\": \"%016llx\",\n  \"bit_identical\": %s,\n",
               static_cast<unsigned long long>(samples.front().digest),
               identical ? "true" : "false");
  std::fprintf(f, "  \"scaling_ok\": %s,\n  \"scaling_note\": \"%s\",\n",
               scaling_ok ? "true" : "false", scaling_note.c_str());
  std::fprintf(f, "  \"trace_cache\": {\"entries\": %zu, \"hits\": %zu},\n", tc.size(),
               tc.hits());
  std::fprintf(f, "  \"workload_cache\": {\"entries\": %zu, \"hits\": %zu},\n",
               wc.size(), wc.hits());
  std::fprintf(f,
               "  \"tracing\": {\"wall_s\": %.6f, \"digest\": \"%016llx\", "
               "\"digest_matches\": %s, \"phases\": [\n",
               traced_s, static_cast<unsigned long long>(traced_digest),
               traced_identical ? "true" : "false");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& p = phases[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"count\": %llu, \"total_ms\": %.3f}%s\n",
                 p.name.c_str(), static_cast<unsigned long long>(p.count), p.total_ms,
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"resume\": {\"replayed_cases\": %zu, \"digest\": \"%016llx\", "
               "\"digest_matches\": %s},\n",
               replayed, static_cast<unsigned long long>(resumed_digest),
               resume_identical ? "true" : "false");
  if (worker_bin.empty()) {
    std::fprintf(f, "  \"distributed\": {\"ran\": false},\n");
  } else {
    std::fprintf(f, "  \"distributed\": {\"ran\": true, \"bit_identical\": %s, "
                    "\"runs\": [\n",
                 dist_identical ? "true" : "false");
    for (std::size_t i = 0; i < dist.size(); ++i) {
      std::fprintf(f,
                   "    {\"workers\": %d, \"digest\": \"%016llx\", \"ok\": %s}%s\n",
                   dist[i].workers, static_cast<unsigned long long>(dist[i].digest),
                   dist[i].ok ? "true" : "false", i + 1 < dist.size() ? "," : "");
    }
    std::fprintf(f, "  ]},\n");
  }
  if (!ship_ran) {
    std::fprintf(f, "  \"shipping\": {\"ran\": false},\n");
  } else {
    std::fprintf(f,
                 "  \"shipping\": {\"ran\": true, \"bit_identical\": %s, "
                 "\"wall_on_s\": %.6f, \"wall_off_s\": %.6f, "
                 "\"overhead\": %.4f, \"digest_on\": \"%016llx\", "
                 "\"digest_off\": \"%016llx\"},\n",
                 ship_identical ? "true" : "false", ship_on_s, ship_off_s,
                 ship_overhead, static_cast<unsigned long long>(ship_on_digest),
                 static_cast<unsigned long long>(ship_off_digest));
  }
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SweepSample& s = samples[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"wall_s\": %.6f, \"cases_per_s\": %.1f, "
                 "\"speedup\": %.3f, \"serial_fallback\": %s}%s\n",
                 s.threads, s.wall_s, n_cases / s.wall_s, serial_s / s.wall_s,
                 s.serial_fallback ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: sweep digests diverged across thread counts\n");
    return 1;
  }
  if (!traced_identical) {
    std::fprintf(stderr,
                 "FAIL: enabling the tracer changed the sweep digest "
                 "(%016llx traced vs %016llx untraced) — instrumentation "
                 "must stay purely observational\n",
                 static_cast<unsigned long long>(traced_digest),
                 static_cast<unsigned long long>(samples.front().digest));
    return 1;
  }
  if (!resume_identical) {
    std::fprintf(stderr,
                 "FAIL: resuming an interrupted sweep from its journal changed "
                 "the digest (%016llx resumed vs %016llx clean)\n",
                 static_cast<unsigned long long>(resumed_digest),
                 static_cast<unsigned long long>(samples.front().digest));
    return 1;
  }
  if (!scaling_ok) {
    std::fprintf(stderr, "FAIL: sweep scaling below 0.7x per thread\n");
    return 1;
  }
  if (!dist_identical) {
    std::fprintf(stderr,
                 "FAIL: distributed sweep digests diverged across worker "
                 "process counts (0/1/2/4 workers must be bit-identical)\n");
    return 1;
  }
  if (!ship_identical) {
    std::fprintf(stderr,
                 "FAIL: observability shipping changed the sweep digest "
                 "(on %016llx / off %016llx vs reference %016llx) — shipped "
                 "telemetry must never reach the fold path\n",
                 static_cast<unsigned long long>(ship_on_digest),
                 static_cast<unsigned long long>(ship_off_digest),
                 static_cast<unsigned long long>(
                     dist.empty() ? 0 : dist.front().digest));
    return 1;
  }
  return 0;
}
