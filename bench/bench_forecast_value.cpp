// EXP-FORE — section 3.1: "carbon intensity prediction can support the
// job scheduler, in particular when the system is setup for long running
// jobs."
//
// Part 1 measures forecaster accuracy (MAPE at several horizons) on the
// reference grid trace; part 2 measures the *policy value* of each
// forecaster by plugging it into the carbon-aware scheduler and comparing
// job carbon against the carbon-blind EASY baseline.

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "carbon/forecast.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/easy_backfill.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  // Moderate load in a volatile wind-heavy grid: the regime where
  // forecast-driven shifting has slack to exploit (cf. bench_carbon_sched).
  auto cfg = reference_scenario();
  cfg.workload.job_count = 450;
  cfg.region = carbon::Region::UnitedKingdom;
  core::ScenarioRunner runner(cfg);
  const util::TimeSeries& trace = runner.trace();

  // Part 1: accuracy.
  std::vector<std::shared_ptr<const carbon::Forecaster>> forecasters = {
      std::make_shared<carbon::PersistenceForecaster>(),
      std::make_shared<carbon::MovingAverageForecaster>(hours(24.0)),
      std::make_shared<carbon::HarmonicForecaster>(days(3.0)),
      std::make_shared<carbon::EwmaForecaster>(hours(12.0)),
      std::make_shared<carbon::EnsembleForecaster>(
          std::vector<carbon::EnsembleForecaster::Member>{
              {std::make_shared<carbon::HarmonicForecaster>(days(3.0)), 2.0},
              {std::make_shared<carbon::EwmaForecaster>(hours(12.0)), 1.0}}),
      std::make_shared<carbon::OracleForecaster>(trace),
  };
  util::Table accuracy({"forecaster", "MAPE@1h [%]", "MAPE@6h [%]", "MAPE@12h [%]",
                        "MAPE@24h [%]"});
  // Forecaster x horizon MAPE grid in one parallel sweep (each evaluation
  // walks the whole trace); slots keep table order deterministic.
  const double horizons[4] = {1.0, 6.0, 12.0, 24.0};
  std::vector<std::array<double, 4>> mape(forecasters.size());
  util::parallel_for(forecasters.size() * 4, [&](std::size_t i) {
    mape[i / 4][i % 4] = carbon::evaluate_mape(*forecasters[i / 4], trace,
                                               days(4.0), hours(horizons[i % 4]));
  });
  for (std::size_t i = 0; i < forecasters.size(); ++i) {
    std::vector<std::string> row = {forecasters[i]->name()};
    for (double m : mape[i]) row.push_back(util::Table::fmt(100.0 * m, 2));
    accuracy.add_row(row);
  }
  std::printf("%s\n", accuracy.str("Forecaster accuracy on the reference grid trace").c_str());

  // Part 2: policy value — the carbon-blind baseline and one carbon-aware
  // run per forecaster, as a single parallel batch.
  std::vector<core::ScenarioRunner::PolicyCase> cases;
  cases.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  for (const auto& f : forecasters) {
    cases.push_back({"carbon-easy(" + f->name() + ")", [&runner, f] {
                       sched::CarbonAwareEasyScheduler::Config c;
                       c.max_hold = hours(24.0);
                       c.lookahead = hours(24.0);
                       return std::make_unique<sched::CarbonAwareEasyScheduler>(c, f);
                     }});
  }
  const std::vector<core::PolicyOutcome> outcomes = runner.run_all(cases);

  const auto& baseline = outcomes[0];
  Carbon baseline_carbon{};
  for (const auto& j : baseline.result.jobs) baseline_carbon += j.carbon;

  util::Table value({"forecaster", "job carbon [t]", "vs easy [%]", "mean wait [h]"});
  value.add_row({"(easy, no forecast)", util::Table::fmt(baseline_carbon.tonnes(), 2), "0.0",
                 util::Table::fmt(baseline.mean_wait_h, 2)});
  for (std::size_t i = 0; i < forecasters.size(); ++i) {
    const auto& outcome = outcomes[i + 1];
    Carbon job_carbon{};
    for (const auto& j : outcome.result.jobs) job_carbon += j.carbon;
    value.add_row({forecasters[i]->name(), util::Table::fmt(job_carbon.tonnes(), 2),
                   util::Table::fmt(100.0 * (job_carbon / baseline_carbon - 1.0), 1),
                   util::Table::fmt(outcome.mean_wait_h, 2)});
  }
  std::printf("%s\n", value.str("Policy value: job carbon under the carbon-aware "
                                "scheduler by forecaster").c_str());
  std::printf("Paper claim check: forecasting supports the scheduler (any real "
              "forecaster beats the carbon-blind baseline; the oracle bounds the "
              "achievable gain).\n");
  return 0;
}
