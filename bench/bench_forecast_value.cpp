// EXP-FORE — section 3.1: "carbon intensity prediction can support the
// job scheduler, in particular when the system is setup for long running
// jobs."
//
// Part 1 measures forecaster accuracy (MAPE at several horizons) on the
// reference grid trace; part 2 measures the *policy value* of each
// forecaster by plugging it into the carbon-aware scheduler and comparing
// job carbon against the carbon-blind EASY baseline.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "carbon/forecast.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/easy_backfill.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  // Moderate load in a volatile wind-heavy grid: the regime where
  // forecast-driven shifting has slack to exploit (cf. bench_carbon_sched).
  auto cfg = reference_scenario();
  cfg.workload.job_count = 450;
  cfg.region = carbon::Region::UnitedKingdom;
  core::ScenarioRunner runner(cfg);
  const util::TimeSeries& trace = runner.trace();

  // Part 1: accuracy.
  std::vector<std::shared_ptr<const carbon::Forecaster>> forecasters = {
      std::make_shared<carbon::PersistenceForecaster>(),
      std::make_shared<carbon::MovingAverageForecaster>(hours(24.0)),
      std::make_shared<carbon::HarmonicForecaster>(days(3.0)),
      std::make_shared<carbon::EwmaForecaster>(hours(12.0)),
      std::make_shared<carbon::EnsembleForecaster>(
          std::vector<carbon::EnsembleForecaster::Member>{
              {std::make_shared<carbon::HarmonicForecaster>(days(3.0)), 2.0},
              {std::make_shared<carbon::EwmaForecaster>(hours(12.0)), 1.0}}),
      std::make_shared<carbon::OracleForecaster>(trace),
  };
  util::Table accuracy({"forecaster", "MAPE@1h [%]", "MAPE@6h [%]", "MAPE@12h [%]",
                        "MAPE@24h [%]"});
  for (const auto& f : forecasters) {
    std::vector<std::string> row = {f->name()};
    for (double h : {1.0, 6.0, 12.0, 24.0}) {
      row.push_back(util::Table::fmt(
          100.0 * carbon::evaluate_mape(*f, trace, days(4.0), hours(h)), 2));
    }
    accuracy.add_row(row);
  }
  std::printf("%s\n", accuracy.str("Forecaster accuracy on the reference grid trace").c_str());

  // Part 2: policy value.
  const auto baseline =
      runner.run("easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); });
  Carbon baseline_carbon{};
  for (const auto& j : baseline.result.jobs) baseline_carbon += j.carbon;

  util::Table value({"forecaster", "job carbon [t]", "vs easy [%]", "mean wait [h]"});
  value.add_row({"(easy, no forecast)", util::Table::fmt(baseline_carbon.tonnes(), 2), "0.0",
                 util::Table::fmt(baseline.mean_wait_h, 2)});
  for (const auto& f : forecasters) {
    const auto outcome = runner.run("carbon-easy(" + f->name() + ")", [&] {
      sched::CarbonAwareEasyScheduler::Config c;
      c.max_hold = hours(24.0);
      c.lookahead = hours(24.0);
      return std::make_unique<sched::CarbonAwareEasyScheduler>(c, f);
    });
    Carbon job_carbon{};
    for (const auto& j : outcome.result.jobs) job_carbon += j.carbon;
    value.add_row({f->name(), util::Table::fmt(job_carbon.tonnes(), 2),
                   util::Table::fmt(100.0 * (job_carbon / baseline_carbon - 1.0), 1),
                   util::Table::fmt(outcome.mean_wait_h, 2)});
  }
  std::printf("%s\n", value.str("Policy value: job carbon under the carbon-aware "
                                "scheduler by forecaster").c_str());
  std::printf("Paper claim check: forecasting supports the scheduler (any real "
              "forecaster beats the carbon-blind baseline; the oracle bounds the "
              "achievable gain).\n");
  return 0;
}
