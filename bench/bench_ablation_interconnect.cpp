// ABL-NET — ablation on the paper's stated Fig. 1 omission: "Due to the
// lack of production carbon-emission reports, we omit the embodied carbon
// footprint contributions from high-performance networking interconnects."
//
// Using a parametric fat-tree fabric model (NICs + switches + cables),
// this bench quantifies how Fig. 1's totals and memory+storage shares
// move when the interconnect is included, across topology richness.

#include <cstdio>

#include "embodied/interconnect.hpp"
#include "embodied/systems.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::embodied;

  const ActModel model;
  util::Table table({"system", "Fig.1 total [t]", "fabric [t]", "fabric share [%]",
                     "mem+stor share, paper [%]", "mem+stor share, with fabric [%]"});
  for (const auto& sys : fig1_systems()) {
    const EmbodiedBreakdown b = embodied_breakdown(model, sys);
    const Carbon fabric = interconnect_embodied(hdr_infiniband(), sys.node_count);
    const Carbon with = b.total() + fabric;
    table.add_row({sys.name, util::Table::fmt(b.total().tonnes(), 1),
                   util::Table::fmt(fabric.tonnes(), 1),
                   util::Table::fmt(100.0 * (fabric / with), 1),
                   util::Table::fmt(100.0 * b.memory_storage_share(), 1),
                   util::Table::fmt(100.0 * ((b.dram + b.storage) / with), 1)});
  }
  std::printf("%s\n", table.str("Ablation: including the interconnect the paper omitted "
                                "(HDR-class fat-tree)").c_str());

  // Topology sensitivity for SuperMUC-NG.
  util::Table topo({"topology factor", "switches+cables+NICs [t]", "share of total [%]"});
  const auto sys = supermuc_ng();
  const Carbon base = embodied_breakdown(model, sys).total();
  for (double tf : {1.5, 2.0, 2.5, 3.0}) {
    InterconnectSpec spec = hdr_infiniband();
    spec.topology_factor = tf;
    const Carbon fabric = interconnect_embodied(spec, sys.node_count);
    topo.add_row({util::Table::fmt(tf, 1), util::Table::fmt(fabric.tonnes(), 1),
                  util::Table::fmt(100.0 * (fabric / (base + fabric)), 1)});
  }
  std::printf("%s\n", topo.str("SuperMUC-NG fabric embodied carbon vs topology richness").c_str());
  std::printf("Conclusion: the omitted fabric adds a mid-single-digit share — it does "
              "not overturn Fig. 1's component ordering, but a Carbon500-grade "
              "methodology should include it.\n");
  return 0;
}
