// EXP-C500 — the paper's proposed "Carbon500" list (section 2.2): "we
// should extend the existing supercomputing rankings to cover the carbon
// efficiency perspective (something like a Carbon500 list)."
//
// Systems are ranked by lifetime GFLOP per gram CO2e (embodied +
// operational at the site's grid intensity). The interesting result is
// how the ordering diverges from the pure-performance Top500 view and how
// strongly placement (Fig. 2's regional spread) moves a system.

#include <algorithm>
#include <cstdio>

#include "procure/carbon500.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::procure;

  const embodied::ActModel model;
  const auto ranked = rank(reference_list(model));

  // Top500-style ordering for contrast.
  auto by_rmax = ranked;
  std::sort(by_rmax.begin(), by_rmax.end(),
            [](const Carbon500Entry& a, const Carbon500Entry& b) {
              return a.rmax_pflops > b.rmax_pflops;
            });

  util::Table table({"#", "system", "region", "Rmax [PF]", "embodied [t]",
                     "operational (life) [t]", "GFLOP/gCO2e", "Top500-style rank"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::size_t perf_rank = 0;
    for (std::size_t j = 0; j < by_rmax.size(); ++j) {
      if (by_rmax[j].system == ranked[i].system) perf_rank = j + 1;
    }
    table.add_row({std::to_string(i + 1), ranked[i].system,
                   std::string(carbon::traits(ranked[i].region).code),
                   util::Table::fmt(ranked[i].rmax_pflops, 1),
                   util::Table::fmt(ranked[i].embodied.tonnes(), 0),
                   util::Table::fmt(ranked[i].lifetime_operational.tonnes(), 0),
                   util::Table::fmt(ranked[i].score_gflops_per_gram, 2),
                   std::to_string(perf_rank)});
  }
  std::printf("%s\n", table.str("Carbon500: lifetime carbon efficiency ranking").c_str());

  bool diverges = false;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].system != by_rmax[i].system) diverges = true;
  }
  std::printf("Ranking diverges from a pure-performance ordering -> %s\n",
              diverges ? "CONFIRMED" : "NOT REPRODUCED");

  // The paper's introduction anchors, carried by the inventories.
  std::printf("\nIntro anchors: Frontier modeled at %.0f MW continuous (paper: 20 MW); "
              "Aurora modeled at %.0f MW (paper: \"estimated to draw 60MW\").\n",
              embodied::frontier().avg_power.megawatts(),
              embodied::aurora_estimate().avg_power.megawatts());
  return 0;
}
