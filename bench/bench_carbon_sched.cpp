// EXP-SCHED — section 3.3 ("Carbon-aware Scheduling and Checkpointing"):
// "intelligent carbon-aware scheduling plugins ... can intelligently
// backfill submitted jobs with suitable execution times during green
// periods ... carbon-aware checkpoint and restore strategies ... can
// suspend the execution of the job during high carbon periods and resume
// execution when the intensity is low."
//
// Compares FCFS, EASY, carbon-aware EASY (persistence forecaster and
// oracle upper bound) and carbon-aware EASY + checkpointing on identical
// inputs.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "carbon/forecast.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/conservative.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  auto cfg = reference_scenario();
  cfg.workload.checkpointable_fraction = 0.6;
  // Temporal shifting is a slack-exploitation strategy: run the system at
  // moderate load, in a volatile wind-heavy grid where green windows are
  // deep (the setting the paper's Fig. 2 motivates).
  cfg.workload.job_count = 450;
  cfg.region = carbon::Region::UnitedKingdom;
  core::ScenarioRunner runner(cfg);

  const auto ca_config = [] {
    sched::CarbonAwareEasyScheduler::Config c;
    c.max_hold = hours(24.0);
    c.lookahead = hours(24.0);
    return c;
  };

  util::Table table = outcome_table();
  Carbon job_carbon[6] = {};
  // Independent policy runs on shared inputs: one parallel sweep, results
  // in declaration order.
  const std::vector<core::PolicyOutcome> outcomes = runner.run_all(
      {{"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }},
       {"conservative",
        [] { return std::make_unique<sched::ConservativeBackfillScheduler>(); }},
       {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }},
       {"carbon-easy(persist)",
        [&] {
          return std::make_unique<sched::CarbonAwareEasyScheduler>(
              ca_config(), std::make_shared<carbon::PersistenceForecaster>());
        }},
       {"carbon-easy(oracle)",
        [&] {
          return std::make_unique<sched::CarbonAwareEasyScheduler>(
              ca_config(), std::make_shared<carbon::OracleForecaster>(runner.trace()));
        }},
       {"carbon-easy+ckpt", [&] {
          return std::make_unique<sched::CheckpointDecorator>(
              sched::CheckpointDecorator::Config{},
              std::make_unique<sched::CarbonAwareEasyScheduler>(
                  ca_config(), std::make_shared<carbon::PersistenceForecaster>()));
        }}});
  for (int i = 0; i < 6; ++i) {
    add_outcome_row(table, outcomes[i]);
    for (const auto& j : outcomes[i].result.jobs) job_carbon[i] += j.carbon;
  }
  std::printf("%s\n", table.str("Section 3.3: scheduler comparison "
                                "(256 nodes, German grid, 1 week, 60% checkpointable)").c_str());

  util::Table jc({"scheduler", "job-attributed carbon [t]", "vs EASY [%]", "suspends"});
  const char* names[6] = {"fcfs", "conservative", "easy", "carbon-easy(persist)",
                          "carbon-easy(oracle)", "carbon-easy+ckpt"};
  for (int i = 0; i < 6; ++i) {
    int suspends = 0;
    for (const auto& j : outcomes[i].result.jobs) suspends += j.suspend_count;
    jc.add_row({names[i], util::Table::fmt(job_carbon[i].tonnes(), 2),
                util::Table::fmt(100.0 * (job_carbon[i] / job_carbon[2] - 1.0), 1),
                std::to_string(suspends)});
  }
  std::printf("%s\n", jc.str("Job-attributed carbon by scheduler").c_str());

  std::printf("Paper claim checks:\n");
  std::printf("  carbon-aware backfill emits less job carbon than EASY -> %s\n",
              job_carbon[3] < job_carbon[2] ? "CONFIRMED" : "NOT REPRODUCED");
  std::printf("  better forecasts help (oracle <= persistence) -> %s\n",
              job_carbon[4] <= job_carbon[3] * 1.01 ? "CONFIRMED" : "NOT REPRODUCED");
  std::printf("  checkpointing stacks further savings -> %s\n",
              job_carbon[5] <= job_carbon[3] ? "CONFIRMED" : "NOT REPRODUCED");
  return 0;
}
