// ABL-ALPHA — ablation on the power-performance elasticity assumption
// behind every section-3.1 result: speed = cap^alpha. Memory-bound jobs
// (low alpha) barely slow down under a cap, compute-bound ones (high
// alpha) pay nearly linearly. This bench sweeps the workload's alpha
// range under the CI-proportional budget and reports how the carbon
// savings and the throughput cost of power capping depend on it.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "powerstack/policies.hpp"
#include "sched/easy_backfill.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  const auto easy = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
  const auto dynamic_budget = [] {
    return std::make_unique<powerstack::IntensityProportionalPolicy>(
        powerstack::IntensityProportionalPolicy::Config{
            .ci_clean = 330.0, .ci_dirty = 600.0, .min_fraction = 0.55,
            .max_fraction = 1.0});
  };

  util::Table table({"alpha range", "carbon [t]", "vs uncapped [%]", "makespan [h]",
                     "mean wait [h]", "g/node-h"});
  struct Band {
    double lo, hi;
    const char* label;
  };
  const Band bands[] = {{0.10, 0.20, "0.10-0.20 (memory-bound)"},
                        {0.30, 0.55, "0.30-0.55 (mixed, default)"},
                        {0.70, 0.95, "0.70-0.95 (compute-bound)"}};
  for (const auto& band : bands) {
    auto cfg = reference_scenario();
    cfg.workload.alpha_min = band.lo;
    cfg.workload.alpha_max = band.hi;
    core::ScenarioRunner runner(cfg);
    const auto uncapped = runner.run("easy", easy);
    const auto capped = runner.run("easy", easy, dynamic_budget);
    table.add_row({band.label, util::Table::fmt(capped.total_carbon_t, 2),
                   util::Table::fmt(100.0 * (capped.total_carbon_t /
                                                 uncapped.total_carbon_t - 1.0), 1),
                   util::Table::fmt(capped.result.makespan.hours(), 1),
                   util::Table::fmt(capped.mean_wait_h, 2),
                   util::Table::fmt(capped.carbon_per_node_hour_g, 1)});
  }
  std::printf("%s\n", table.str("Ablation: value of dynamic power capping vs workload "
                                "power elasticity").c_str());
  std::printf("Reading: the lower the elasticity (memory-bound mixes), the cheaper "
              "carbon-aware capping is — capped nodes lose little speed while their "
              "draw falls linearly. Compute-bound mixes pay in makespan/wait.\n");
  return 0;
}
