// EXP-PERF — simulator hot-path throughput and sweep scaling.
//
// Not a paper experiment: this bench tracks the engine itself, so the
// operational experiments (which run hundreds of simulations per sweep)
// stay cheap enough to iterate on. Three workloads of increasing size are
// timed through the FCFS and EASY hot loops (ticks/s, jobs/s), and one
// policy sweep is run serially and through the thread pool to measure
// sweep scaling and to assert that parallel fan-out reproduces the serial
// results bit for bit. A final pass re-runs the reference hot loop with
// the event tracer enabled and reports the overhead ratio plus a
// span-derived phase breakdown ("tracing" block in the JSON).
//
// Usage: bench_perf [--smoke] [--json-out FILE] [--baseline FILE]
//                   [--before FILE]
//   --smoke      smallest scale only (CI perf gate)
//   --json-out FILE  write the JSON report there (default BENCH_PERF.json;
//                    --out is accepted as an alias)
//   --baseline   compare against a committed baseline JSON; exit nonzero
//                on a >2x ticks/s regression of the reference hot loop
//   --before     merge pre-optimization measurements (keys like
//                "small_fcfs_ticks_per_s", see bench/perf_seed_reference.json)
//                into the report as per-sample "speedup_vs_before" ratios
//
// The committed baseline lives at bench/perf_baseline.json; regenerate it
// with `bench_perf --smoke --out bench/perf_baseline.json` on an idle
// machine when the engine legitimately gets faster or slower.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "carbon/forecast.hpp"
#include "obs/trace.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/parallel.hpp"

namespace {

using namespace greenhpc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ScaleSpec {
  const char* name;
  int nodes;
  int jobs;
  double span_days;
};

constexpr ScaleSpec kScales[] = {
    {"small", 64, 220, 2.0},
    {"medium", 256, 900, 7.0},
    {"large", 512, 2200, 14.0},
    // Mostly-idle campaign: long gaps between arrivals, the shape the
    // idle fast-forward path is built for (capability systems between
    // campaigns, federated sites off the dispatch favorites list).
    {"sparse", 64, 48, 21.0},
};

struct HotLoopSample {
  std::string scale;
  std::string scheduler;
  std::size_t ticks = 0;
  std::size_t jobs = 0;
  double wall_s = 0.0;
  [[nodiscard]] double ticks_per_s() const { return ticks / wall_s; }
  [[nodiscard]] double jobs_per_s() const { return static_cast<double>(jobs) / wall_s; }
};

core::ScenarioConfig scale_config(const ScaleSpec& s) {
  auto cfg = bench::reference_scenario();
  cfg.cluster.nodes = s.nodes;
  cfg.workload.job_count = s.jobs;
  cfg.workload.span = days(s.span_days);
  cfg.workload.max_job_nodes = std::max(4, s.nodes / 2);
  cfg.trace_span = days(s.span_days + 5.0);
  return cfg;
}

// --- dense scale: completion-bound wave arrivals ---
// Many short jobs on a fine tick, submitted in hourly waves (arrival
// quantum) that mostly fit the machine at once: between waves the pending
// queue is empty, so every finish is a pure node release the policies
// attest over and the span kernel resolves in place. This is the regime
// the in-span completion path targets; it is timed with the path on and
// off (Config::span_completions) and the results must be bit-identical.

core::ScenarioConfig dense_config() {
  auto cfg = bench::reference_scenario();
  cfg.cluster.nodes = 512;
  cfg.cluster.tick = seconds(15.0);
  cfg.workload.job_count = 2000;
  cfg.workload.span = days(1.5);
  cfg.workload.arrival_quantum = minutes(60.0);
  cfg.workload.max_job_nodes = 1;
  cfg.workload.runtime_mean = minutes(300.0);
  cfg.workload.runtime_max = hours(12.0);
  cfg.trace_span = days(4.0);
  return cfg;
}

struct DenseSample {
  std::string scheduler;
  bool span_completions = true;
  std::size_t ticks = 0;
  double wall_s = 0.0;
  std::uint64_t digest = 0;
  [[nodiscard]] double ticks_per_s() const { return ticks / wall_s; }
};

/// FNV-1a over the headline totals and the per-job finish/energy series:
/// any divergence between the in-span and fenced engines shows up here.
std::uint64_t result_digest(const hpcsim::SimulationResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(r.total_carbon.grams());
  mix(r.total_energy.joules());
  mix(r.makespan.seconds());
  for (const auto& j : r.jobs) {
    mix(j.finish.seconds());
    mix(j.energy.joules());
  }
  return h;
}

DenseSample time_dense(const core::ScenarioRunner& runner, const char* sched_name,
                       bool span_completions) {
  hpcsim::Simulator::Config sim_cfg;
  sim_cfg.cluster = runner.config().cluster;
  sim_cfg.carbon_intensity = runner.trace();
  sim_cfg.span_completions = span_completions;
  DenseSample out;
  out.scheduler = sched_name;
  out.span_completions = span_completions;
  out.wall_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    hpcsim::Simulator sim(sim_cfg, runner.jobs());
    std::unique_ptr<hpcsim::SchedulingPolicy> sched;
    if (std::strcmp(sched_name, "fcfs") == 0) {
      sched = std::make_unique<sched::FcfsScheduler>();
    } else {
      sched = std::make_unique<sched::EasyBackfillScheduler>();
    }
    const auto t0 = Clock::now();
    const auto result = sim.run(*sched);
    const double wall = seconds_since(t0);
    out.ticks = result.system_power.size();
    if (wall < out.wall_s) out.wall_s = wall;
    out.digest = result_digest(result);
  }
  return out;
}

HotLoopSample time_hot_loop(const core::ScenarioRunner& runner, const ScaleSpec& s,
                            const char* sched_name) {
  hpcsim::Simulator::Config sim_cfg;
  sim_cfg.cluster = runner.config().cluster;
  sim_cfg.carbon_intensity = runner.trace();
  // Best of 5: each rep is an identical, independent run (fresh Simulator
  // and fresh policy on the same inputs), so the minimum is the least
  // noise-contaminated estimate of the true cost.
  HotLoopSample out;
  out.scale = s.name;
  out.scheduler = sched_name;
  out.jobs = runner.jobs().size();
  out.wall_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    hpcsim::Simulator sim(sim_cfg, runner.jobs());
    std::unique_ptr<hpcsim::SchedulingPolicy> sched;
    if (std::strcmp(sched_name, "fcfs") == 0) {
      sched = std::make_unique<sched::FcfsScheduler>();
    } else {
      sched = std::make_unique<sched::EasyBackfillScheduler>();
    }
    const auto t0 = Clock::now();
    const auto result = sim.run(*sched);
    const double wall = seconds_since(t0);
    out.ticks = result.system_power.size();
    out.wall_s = std::min(out.wall_s, wall);
  }
  return out;
}

/// FNV-1a over the bit patterns of the headline totals: enough to detect
/// any serial-vs-parallel divergence without hauling full results around.
std::uint64_t outcome_digest(const std::vector<core::PolicyOutcome>& outcomes) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const auto& o : outcomes) {
    mix(o.result.total_carbon.grams());
    mix(o.result.total_energy.joules());
    mix(o.result.makespan.seconds());
    mix(static_cast<double>(o.completed));
    for (const auto& j : o.result.jobs) {
      mix(j.finish.seconds());
      mix(j.energy.joules());
    }
  }
  return h;
}

std::vector<core::ScenarioRunner::PolicyCase> sweep_cases() {
  std::vector<core::ScenarioRunner::PolicyCase> cases;
  cases.push_back({"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  cases.push_back({"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  cases.push_back(
      {"easy+mold", [] { return std::make_unique<sched::EasyBackfillScheduler>(true); }});
  for (int k = 0; k < 3; ++k) {
    cases.push_back({"carbon-easy/" + std::to_string(k), [] {
                       sched::CarbonAwareEasyScheduler::Config c;
                       c.max_hold = hours(24.0);
                       return std::make_unique<sched::CarbonAwareEasyScheduler>(
                           c, std::make_shared<carbon::PersistenceForecaster>());
                     }});
  }
  return cases;
}

/// Fixed unit of work for the crossover probe: enough arithmetic
/// (~volatile-protected 20k fused ops) that a handful of units dominate
/// chunk-dispatch cost, small enough that the probe stays in microseconds.
double crossover_unit(std::size_t i) {
  volatile double x = 1.0 + static_cast<double>(i % 7);
  for (int k = 0; k < 20000; ++k) x = x * 1.0000001 + 1e-9;
  return x;
}

struct CrossoverReport {
  bool serial_fallback = false;  ///< pool cannot win; crossover undefined
  std::size_t crossover_n = 0;   ///< smallest n where parallel <= serial (0 = never)
  double unit_us = 0.0;          ///< measured cost of one work unit
};

/// Measure the serial/parallel crossover of the chunked fan-out: the
/// smallest iteration count n for which the pool path is no slower than
/// the plain loop (within 5% — below it, ThreadPool's serial fallback is
/// the right call; sweeps at or above it should fan out).
CrossoverReport measure_crossover() {
  CrossoverReport rep;
  auto& pool = util::ThreadPool::global();
  rep.serial_fallback = pool.size() <= 1;

  const auto tu = Clock::now();
  double sink = 0.0;
  for (std::size_t i = 0; i < 32; ++i) sink += crossover_unit(i);
  rep.unit_us = seconds_since(tu) / 32.0 * 1e6;
  (void)sink;
  if (rep.serial_fallback) return rep;  // parallel IS serial; nothing to probe

  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    double serial_best = 1e300;
    double parallel_best = 1e300;
    for (int rep_i = 0; rep_i < 3; ++rep_i) {
      double s = 0.0;
      auto t0 = Clock::now();
      for (std::size_t i = 0; i < n; ++i) s += crossover_unit(i);
      serial_best = std::min(serial_best, seconds_since(t0));
      t0 = Clock::now();
      std::vector<double> slots(n);
      pool.parallel_for_chunked(n, 1, [&](std::size_t i) { slots[i] = crossover_unit(i); });
      parallel_best = std::min(parallel_best, seconds_since(t0));
      (void)s;
    }
    if (parallel_best <= 1.05 * serial_best) {
      rep.crossover_n = n;
      break;
    }
  }
  return rep;
}

/// Minimal scanner for `"key": <number>` in the baseline JSON — the file
/// is our own flat output, not arbitrary JSON.
bool find_json_number(const std::string& text, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PERF.json";
  std::string baseline_path;
  std::string before_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if ((std::strcmp(argv[i], "--out") == 0 ||
                std::strcmp(argv[i], "--json-out") == 0) &&
               i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--before") == 0 && i + 1 < argc) {
      before_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_perf [--smoke] [--json-out FILE] "
                   "[--baseline FILE] [--before FILE]\n");
      return 2;
    }
  }

  std::string before_text;
  if (!before_path.empty()) {
    std::FILE* bf = std::fopen(before_path.c_str(), "r");
    if (bf == nullptr) {
      std::fprintf(stderr, "cannot read before-reference %s\n", before_path.c_str());
      return 2;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), bf)) > 0) before_text.append(buf, n);
    std::fclose(bf);
  }

  const std::size_t n_scales = smoke ? 1 : std::size(kScales);

  // --- hot-loop throughput ---
  util::Table tt({"scale", "nodes", "jobs", "scheduler", "ticks", "wall[ms]",
                  "ticks/s", "jobs/s", "vs before"});
  std::vector<HotLoopSample> samples;
  std::vector<double> speedups;  // 0 = no before number for this sample
  for (std::size_t i = 0; i < n_scales; ++i) {
    const ScaleSpec& s = kScales[i];
    core::ScenarioRunner runner(scale_config(s));
    for (const char* sched_name : {"fcfs", "easy"}) {
      const HotLoopSample sample = time_hot_loop(runner, s, sched_name);
      double before_tps = 0.0;
      if (!before_text.empty()) {
        find_json_number(before_text,
                         sample.scale + "_" + sample.scheduler + "_ticks_per_s",
                         &before_tps);
      }
      const double speedup = before_tps > 0.0 ? sample.ticks_per_s() / before_tps : 0.0;
      tt.add_row({sample.scale, std::to_string(s.nodes), std::to_string(s.jobs),
                  sample.scheduler, std::to_string(sample.ticks),
                  util::Table::fmt(1e3 * sample.wall_s, 1),
                  util::Table::fmt(sample.ticks_per_s(), 0),
                  util::Table::fmt(sample.jobs_per_s(), 0),
                  speedup > 0.0 ? util::Table::fmt(speedup, 2) + "x" : "-"});
      samples.push_back(sample);
      speedups.push_back(speedup);
    }
  }
  std::printf("%s\n", tt.str("Simulator hot-loop throughput").c_str());

  // --- dense scale: in-span completions vs PR 7 fencing ---
  const core::ScenarioConfig dense_cfg = dense_config();
  core::ScenarioRunner dense_runner(dense_cfg);
  util::Table dt({"scheduler", "completions", "ticks", "wall[ms]", "ticks/s",
                  "speedup"});
  std::vector<DenseSample> dense_samples;
  bool dense_identical = true;
  double dense_min_speedup = 1e300;
  for (const char* sched_name : {"fcfs", "easy"}) {
    const DenseSample fenced = time_dense(dense_runner, sched_name, false);
    const DenseSample inspan = time_dense(dense_runner, sched_name, true);
    dense_identical = dense_identical && fenced.digest == inspan.digest;
    const double speedup = fenced.wall_s / inspan.wall_s;
    dense_min_speedup = std::min(dense_min_speedup, speedup);
    dt.add_row({sched_name, "fenced", std::to_string(fenced.ticks),
                util::Table::fmt(1e3 * fenced.wall_s, 1),
                util::Table::fmt(fenced.ticks_per_s(), 0), "-"});
    dt.add_row({sched_name, "in-span", std::to_string(inspan.ticks),
                util::Table::fmt(1e3 * inspan.wall_s, 1),
                util::Table::fmt(inspan.ticks_per_s(), 0),
                util::Table::fmt(speedup, 2) + "x"});
    dense_samples.push_back(fenced);
    dense_samples.push_back(inspan);
  }
  std::printf("%s\n",
              dt.str("Dense scale (512 nodes, 2000 single-node jobs, 15 s tick, "
                     "hourly arrival waves)")
                  .c_str());
  std::printf("Dense results across engines: %s\n\n",
              dense_identical ? "bit-identical" : "DIVERGED");

  // --- serial vs parallel sweep ---
  auto sweep_cfg = scale_config(kScales[0]);
  sweep_cfg.workload.checkpointable_fraction = 0.5;
  core::ScenarioRunner sweep_runner(sweep_cfg);
  const auto cases = sweep_cases();

  // Best of 5, serial and parallel interleaved: at this scale the sweep is
  // milliseconds, so a single-shot (or phase-ordered) timing would gate on
  // allocator state and clock drift rather than on the fan-out path.
  std::vector<core::PolicyOutcome> serial;
  std::vector<core::PolicyOutcome> parallel;
  double serial_s = 1e300;
  double parallel_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto ts0 = Clock::now();
    std::vector<core::PolicyOutcome> s_out;
    s_out.reserve(cases.size());
    for (const auto& c : cases) s_out.push_back(sweep_runner.run(c.label, c.scheduler, c.power));
    serial_s = std::min(serial_s, seconds_since(ts0));
    serial = std::move(s_out);

    const auto tp0 = Clock::now();
    std::vector<core::PolicyOutcome> p_out = sweep_runner.run_all(cases);
    parallel_s = std::min(parallel_s, seconds_since(tp0));
    parallel = std::move(p_out);
  }

  const std::uint64_t serial_digest = outcome_digest(serial);
  const std::uint64_t parallel_digest = outcome_digest(parallel);
  const bool identical = serial_digest == parallel_digest;
  const std::size_t threads = util::ThreadPool::global().size();

  double before_sweep_s = 0.0;
  if (!before_text.empty()) {
    find_json_number(before_text, "sweep_serial_s", &before_sweep_s);
  }
  const CrossoverReport crossover = measure_crossover();
  std::printf("Sweep (%zu cases): serial %.3f s, parallel %.3f s on %zu threads "
              "(pool speedup %.2fx%s); results %s\n",
              cases.size(), serial_s, parallel_s, threads, serial_s / parallel_s,
              crossover.serial_fallback ? ", serial fallback engaged" : "",
              identical ? "bit-identical" : "DIVERGED");
  if (crossover.serial_fallback) {
    std::printf("Crossover: single-worker pool — chunked loops run the serial "
                "path (unit %.1f us)\n",
                crossover.unit_us);
  } else if (crossover.crossover_n > 0) {
    std::printf("Crossover: parallel fan-out breaks even at n=%zu units of "
                "%.1f us on %zu threads\n",
                crossover.crossover_n, crossover.unit_us, threads);
  } else {
    std::printf("Crossover: parallel never beat serial up to n=64 (unit %.1f us, "
                "%zu threads)\n",
                crossover.unit_us, threads);
  }
  if (before_sweep_s > 0.0) {
    std::printf("Sweep vs pre-optimization engine: %.3f s -> %.3f s serial "
                "(%.1fx)\n",
                before_sweep_s, serial_s, before_sweep_s / serial_s);
  }
  std::printf("\n");

  // --- tracing overhead probe ---
  // One more pass over the reference hot loop (small/fcfs) with the event
  // tracer switched on: overhead_x is the "instrumentation compiled in AND
  // enabled stays cheap" number for the report. Best of 3; the rings are
  // reset before each rep so the drained span table describes one run.
  const HotLoopSample& ref = samples[0];  // small/fcfs = the reference hot loop
  core::ScenarioRunner traced_runner(scale_config(kScales[0]));
  obs::Tracer::set_buffer_capacity(std::size_t{1} << 19);
  double traced_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    obs::Tracer::reset();
    obs::Tracer::set_enabled(true);
    hpcsim::Simulator::Config traced_cfg;
    traced_cfg.cluster = traced_runner.config().cluster;
    traced_cfg.carbon_intensity = traced_runner.trace();
    hpcsim::Simulator sim(traced_cfg, traced_runner.jobs());
    sched::FcfsScheduler fcfs;
    const auto t0 = Clock::now();
    (void)sim.run(fcfs);
    traced_s = std::min(traced_s, seconds_since(t0));
    obs::Tracer::set_enabled(false);
  }
  const std::vector<obs::SpanStat> phases = obs::Tracer::aggregate_spans();
  const std::uint64_t traced_dropped = obs::Tracer::dropped();
  const double overhead_x = ref.wall_s > 0.0 ? traced_s / ref.wall_s : 0.0;
  std::printf("Tracing overhead (small/fcfs): %.1f ms traced vs %.1f ms untraced "
              "(%.2fx), %zu span kinds, %llu dropped\n\n",
              1e3 * traced_s, 1e3 * ref.wall_s, overhead_x, phases.size(),
              static_cast<unsigned long long>(traced_dropped));
  obs::Tracer::reset();

  // --- JSON report ---
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"smoke\": %s,\n", threads,
               smoke ? "true" : "false");
  std::fprintf(f, "  \"reference_ticks_per_s\": %.1f,\n", ref.ticks_per_s());
  std::fprintf(f, "  \"hot_loop\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(f,
                 "    {\"scale\": \"%s\", \"scheduler\": \"%s\", \"ticks\": %zu, "
                 "\"jobs\": %zu, \"wall_s\": %.6f, \"ticks_per_s\": %.1f, "
                 "\"jobs_per_s\": %.1f",
                 s.scale.c_str(), s.scheduler.c_str(), s.ticks, s.jobs, s.wall_s,
                 s.ticks_per_s(), s.jobs_per_s());
    if (speedups[i] > 0.0) {
      std::fprintf(f, ", \"before_ticks_per_s\": %.1f, \"speedup_vs_before\": %.2f",
                   s.ticks_per_s() / speedups[i], speedups[i]);
    }
    std::fprintf(f, "}%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"dense\": {\"nodes\": %d, \"jobs\": %d, \"tick_s\": %.0f, "
               "\"bit_identical\": %s, \"min_speedup\": %.2f, \"samples\": [\n",
               dense_cfg.cluster.nodes, dense_cfg.workload.job_count,
               dense_cfg.cluster.tick.seconds(), dense_identical ? "true" : "false",
               dense_min_speedup);
  for (std::size_t i = 0; i < dense_samples.size(); ++i) {
    const auto& s = dense_samples[i];
    std::fprintf(f,
                 "    {\"scheduler\": \"%s\", \"span_completions\": %s, "
                 "\"ticks\": %zu, \"wall_s\": %.6f, \"ticks_per_s\": %.1f}%s\n",
                 s.scheduler.c_str(), s.span_completions ? "true" : "false",
                 s.ticks, s.wall_s, s.ticks_per_s(),
                 i + 1 < dense_samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f, "  \"dense_fcfs_ticks_per_s\": %.1f,\n",
               dense_samples[1].ticks_per_s());
  std::fprintf(f,
               "  \"sweep\": {\"cases\": %zu, \"serial_s\": %.6f, \"parallel_s\": "
               "%.6f, \"speedup\": %.3f, \"bit_identical\": %s, "
               "\"serial_fallback\": %s",
               cases.size(), serial_s, parallel_s, serial_s / parallel_s,
               identical ? "true" : "false",
               crossover.serial_fallback ? "true" : "false");
  if (before_sweep_s > 0.0) {
    std::fprintf(f, ", \"before_serial_s\": %.6f, \"speedup_vs_before\": %.2f",
                 before_sweep_s, before_sweep_s / serial_s);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"tracing\": {\"enabled_wall_s\": %.6f, \"disabled_wall_s\": %.6f, "
               "\"overhead_x\": %.3f, \"dropped\": %llu, \"phases\": [\n",
               traced_s, ref.wall_s, overhead_x,
               static_cast<unsigned long long>(traced_dropped));
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& p = phases[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"count\": %llu, \"total_ms\": %.3f}%s\n",
                 p.name.c_str(), static_cast<unsigned long long>(p.count), p.total_ms,
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"crossover\": {\"serial_fallback\": %s, \"crossover_n\": %zu, "
               "\"unit_us\": %.2f}\n}\n",
               crossover.serial_fallback ? "true" : "false", crossover.crossover_n,
               crossover.unit_us);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: parallel sweep diverged from serial results\n");
    return 1;
  }
  if (!dense_identical) {
    std::fprintf(stderr,
                 "FAIL: in-span completion engine diverged from the fenced "
                 "engine on the dense scale\n");
    return 1;
  }

  // --- baseline regression gate ---
  if (!baseline_path.empty()) {
    std::FILE* bf = std::fopen(baseline_path.c_str(), "r");
    if (bf == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), bf)) > 0) text.append(buf, n);
    std::fclose(bf);
    double base_tps = 0.0;
    if (!find_json_number(text, "reference_ticks_per_s", &base_tps) || base_tps <= 0.0) {
      std::fprintf(stderr, "baseline %s has no reference_ticks_per_s\n",
                   baseline_path.c_str());
      return 2;
    }
    const double measured = ref.ticks_per_s();
    std::printf("Baseline gate: measured %.0f ticks/s vs baseline %.0f (ratio %.2f)\n",
                measured, base_tps, measured / base_tps);
    if (measured < 0.5 * base_tps) {
      std::fprintf(stderr,
                   "FAIL: reference hot loop regressed >2x vs baseline "
                   "(%.0f < 0.5 * %.0f ticks/s)\n",
                   measured, base_tps);
      return 1;
    }
    // The pool path must never lose to the plain loop: either it wins, or
    // the serial fallback makes it the plain loop (speedup ~1.0). 0.9
    // rather than 1.0 absorbs timer noise on the few-second sweep.
    const double sweep_speedup = serial_s / parallel_s;
    std::printf("Baseline gate: sweep parallel/serial speedup %.2fx%s\n",
                sweep_speedup,
                crossover.serial_fallback ? " (serial fallback)" : "");
    if (sweep_speedup < 0.9) {
      std::fprintf(stderr,
                   "FAIL: parallel sweep slower than serial (%.2fx < 0.9x) — "
                   "fan-out overhead is not being amortized or the serial "
                   "fallback failed to engage\n",
                   sweep_speedup);
      return 1;
    }
    // Dense gate: the completion-bound scale must not regress >2x against
    // the committed baseline, and the in-span path must actually win over
    // the fenced engine (1.5x floor absorbs shared-runner noise; the
    // committed numbers show the real margin).
    double base_dense_tps = 0.0;
    if (find_json_number(text, "dense_fcfs_ticks_per_s", &base_dense_tps) &&
        base_dense_tps > 0.0) {
      const double dense_tps = dense_samples[1].ticks_per_s();
      std::printf(
          "Baseline gate: dense fcfs %.0f ticks/s vs baseline %.0f (ratio %.2f)\n",
          dense_tps, base_dense_tps, dense_tps / base_dense_tps);
      if (dense_tps < 0.5 * base_dense_tps) {
        std::fprintf(stderr,
                     "FAIL: dense hot loop regressed >2x vs baseline "
                     "(%.0f < 0.5 * %.0f ticks/s)\n",
                     dense_tps, base_dense_tps);
        return 1;
      }
    }
    std::printf("Baseline gate: dense in-span/fenced speedup %.2fx\n",
                dense_min_speedup);
    if (dense_min_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: in-span completion kernel no faster than the fenced "
                   "engine on the dense scale (%.2fx < 1.5x)\n",
                   dense_min_speedup);
      return 1;
    }
  }
  return 0;
}
