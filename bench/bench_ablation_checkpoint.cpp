// ABL-CKPT — ablation on the section-3.3 checkpointing proposal: the
// suspend/resume strategy pays a checkpoint overhead every cycle, so its
// value depends on how expensive checkpoints are relative to the carbon
// spread between dirty and green periods. This bench sweeps the
// checkpoint overhead and reports when "suspend during high carbon
// periods" stops paying off.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  util::Table table({"ckpt overhead [min]", "suspends", "job carbon [t]",
                     "vs no-ckpt [%]", "mean wait [h]"});

  // Baseline without checkpointing (overhead irrelevant).
  auto base_cfg = reference_scenario();
  base_cfg.workload.job_count = 450;
  base_cfg.region = carbon::Region::UnitedKingdom;
  base_cfg.workload.checkpointable_fraction = 0.8;
  core::ScenarioRunner runner(base_cfg);
  const auto baseline =
      runner.run("easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); });
  Carbon base_carbon{};
  for (const auto& j : baseline.result.jobs) base_carbon += j.carbon;

  for (double overhead_min : {1.0, 5.0, 15.0, 30.0, 60.0, 120.0}) {
    // Re-generate the workload with the chosen overhead: the generator
    // sets per-job overheads, so we override after generation via config.
    auto cfg = base_cfg;
    core::ScenarioRunner sweep_runner(cfg);
    // Patch job overheads through a modified job list: rebuild a runner is
    // enough since the overhead knob lives on each job spec.
    std::vector<hpcsim::JobSpec> jobs = sweep_runner.jobs();
    for (auto& j : jobs) j.checkpoint_overhead = minutes(overhead_min);
    hpcsim::Simulator::Config sim_cfg;
    sim_cfg.cluster = cfg.cluster;
    sim_cfg.carbon_intensity = sweep_runner.trace();
    hpcsim::Simulator sim(sim_cfg, jobs);
    sched::CheckpointDecorator sched(
        sched::CheckpointDecorator::Config{},
        std::make_unique<sched::EasyBackfillScheduler>());
    const auto result = sim.run(sched);
    Carbon carbon{};
    int suspends = 0;
    for (const auto& j : result.jobs) {
      carbon += j.carbon;
      suspends += j.suspend_count;
    }
    table.add_row({util::Table::fmt(overhead_min, 0), std::to_string(suspends),
                   util::Table::fmt(carbon.tonnes(), 3),
                   util::Table::fmt(100.0 * (carbon / base_carbon - 1.0), 2),
                   util::Table::fmt(result.mean_wait_hours(), 2)});
  }
  std::printf("%s\n", table.str("Ablation: carbon-aware checkpointing vs checkpoint "
                                "overhead (UK grid, 80% checkpointable)").c_str());
  std::printf("Reading: cheap checkpoints (I/O minutes) make dirty-period suspension "
              "profitable; beyond tens of minutes of lost work per cycle the redone "
              "work burns more carbon than the green shift saves.\n");
  return 0;
}
