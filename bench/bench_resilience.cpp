// EXP-RESILIENCE — fault injection and graceful degradation.
//
// Three sweeps:
//   A. node MTBF x checkpoint discipline: Young/Daly periodic
//      checkpointing must recover goodput that scratch restarts destroy
//      on unreliable hardware (and show its carbon cost: wasted vs
//      overhead emissions);
//   B. carbon-feed outage fraction: carbon-aware EASY must keep beating
//      FCFS on job carbon under a degraded feed by holding the last known
//      value and falling back to carbon-blind past its staleness horizon;
//   C. a site blackout in a DE/FR/PL federation: dispatch routes around
//      the dark site and jobs caught by it are recovered.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "telemetry/sensor_store.hpp"
#include "util/parallel.hpp"
#include "carbon/forecast.hpp"
#include "carbon/grid_model.hpp"
#include "core/federation.hpp"
#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "resilience/checkpoint_policy.hpp"
#include "resilience/degraded_feed.hpp"
#include "resilience/fault_model.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"

namespace {

using namespace greenhpc;

hpcsim::ClusterConfig bench_cluster(int nodes) {
  hpcsim::ClusterConfig c;
  c.nodes = nodes;
  c.node_tdp = watts(500.0);
  c.node_idle = watts(110.0);
  c.tick = minutes(2.0);
  return c;
}

std::vector<hpcsim::JobSpec> bench_jobs(double checkpointable_fraction,
                                        std::uint64_t seed,
                                        Duration runtime_mean = hours(2.0)) {
  hpcsim::WorkloadConfig wl;
  wl.job_count = 180;
  wl.span = days(3.0);
  wl.max_job_nodes = 16;
  wl.runtime_mean = runtime_mean;
  wl.runtime_max = hours(10.0);
  wl.node_power_mean = watts(420.0);
  wl.checkpointable_fraction = checkpointable_fraction;
  return hpcsim::WorkloadGenerator(wl, seed).generate();
}

}  // namespace

int main() {
  using namespace greenhpc;

  // ---------------------------------------------------------------- A
  // MTBF x checkpoint discipline on a 64-node cluster, all jobs
  // checkpointable, generous retry budget so goodput (not abandonment)
  // carries the comparison.
  const double mtbf_hours[4] = {0.0, 72.0, 24.0, 8.0};  // 0 = perfect
  util::Table ta({"node MTBF", "ckpt", "goodput[%]", "lost[node-h]",
                  "wasted[kg]", "ckpt-share[%]", "failed", "makespan[d]"});
  double goodput_no_ckpt_8h = 0.0;
  double goodput_yd_8h = 0.0;
  // The 4x2 grid runs as one parallel sweep over preallocated slots
  // (every point is an independent simulation); rows are emitted serially
  // afterwards in sweep order.
  std::vector<hpcsim::SimulationResult> a_results(8);
  util::parallel_for(8, [&](std::size_t i) {
    const double mtbf_h = mtbf_hours[i / 2];
    const bool with_ckpt = i % 2 == 1;
    hpcsim::Simulator::Config cfg;
    cfg.cluster = bench_cluster(64);
    cfg.carbon_intensity =
        carbon::GridModel(carbon::Region::Germany, 11)
            .generate(seconds(0.0), days(30.0), minutes(15.0));
    if (mtbf_h > 0.0) {
      resilience::FaultModelConfig fm;
      fm.nodes = 64;
      // Cover any plausible makespan: no clean tail that would let
      // scratch-restart jobs finish on perfect late-run hardware.
      fm.horizon = days(120.0);
      fm.node_mtbf = hours(mtbf_h);
      fm.mean_repair = hours(1.0);
      fm.seed = 2024;
      // Generous retry budget: the sweep compares goodput (work kept vs
      // work burnt), not abandonment rates.
      cfg.faults = resilience::FaultModel(fm).injection(/*max_retries=*/30,
                                                        minutes(5.0));
      cfg.faults.max_backoff = hours(2.0);
    }
    hpcsim::Simulator sim(cfg, bench_jobs(1.0, 7, hours(3.0)));

    sched::EasyBackfillScheduler easy;
    resilience::CheckpointPolicyConfig cp;
    cp.node_mtbf = hours(mtbf_h > 0.0 ? mtbf_h : 1e6);
    resilience::PeriodicCheckpointPolicy ydckpt(easy, cp);
    hpcsim::SchedulingPolicy& sched =
        with_ckpt ? static_cast<hpcsim::SchedulingPolicy&>(ydckpt)
                  : static_cast<hpcsim::SchedulingPolicy&>(easy);
    a_results[i] = sim.run(sched);
  });
  for (std::size_t i = 0; i < a_results.size(); ++i) {
    const double mtbf_h = mtbf_hours[i / 2];
    const bool with_ckpt = i % 2 == 1;
    const auto& r = a_results[i];
    const double goodput = 100.0 * r.goodput_fraction();
    if (mtbf_h == 8.0 && !with_ckpt) goodput_no_ckpt_8h = goodput;
    if (mtbf_h == 8.0 && with_ckpt) goodput_yd_8h = goodput;
    ta.add_row({mtbf_h > 0.0 ? util::Table::fmt(mtbf_h, 0) + " h" : "inf",
                with_ckpt ? "young-daly" : "none",
                util::Table::fmt(goodput, 1),
                util::Table::fmt(r.lost_node_hours(), 0),
                util::Table::fmt(r.wasted_carbon.kilograms(), 1),
                util::Table::fmt(100.0 * r.checkpoint_overhead_share(), 1),
                std::to_string(r.jobs_failed),
                util::Table::fmt(r.makespan.days(), 2)});
  }
  std::printf("%s\n",
              ta.str("A. Node MTBF x checkpointing (64 nodes, EASY, "
                     "100% checkpointable, 30 retries)").c_str());

  // ---------------------------------------------------------------- B
  // Carbon-feed outages: FCFS vs carbon-aware EASY (persistence
  // forecaster, 2 h staleness horizon) in the volatile UK grid.
  const auto uk_trace = carbon::GridModel(carbon::Region::UnitedKingdom, 3)
                            .generate(seconds(0.0), days(14.0), minutes(15.0));
  util::Table tb({"feed outage", "scheduler", "job carbon[t]", "wait[h]",
                  "max staleness[h]", "done"});
  double fcfs_carbon_025 = 0.0;
  double ca_carbon_025 = 0.0;
  const double outages[3] = {0.0, 0.25, 0.5};
  struct BPoint {
    hpcsim::SimulationResult result;
    double max_staleness_h = 0.0;
  };
  std::vector<BPoint> b_results(6);
  util::parallel_for(6, [&](std::size_t i) {
    const double outage = outages[i / 2];
    const bool carbon_aware = i % 2 == 1;
    resilience::DegradedFeedConfig fc;
    fc.outage_fraction = outage;
    fc.mean_outage = hours(3.0);
    fc.seed = 5;
    resilience::DegradedFeed feed(fc, days(14.0));

    hpcsim::Simulator::Config cfg;
    cfg.cluster = bench_cluster(64);
    cfg.carbon_intensity = uk_trace;
    if (outage > 0.0) cfg.feed = &feed;
    telemetry::SensorStore sensors;
    cfg.telemetry = &sensors;
    hpcsim::Simulator sim(cfg, bench_jobs(0.0, 13));

    std::unique_ptr<hpcsim::SchedulingPolicy> sched;
    if (carbon_aware) {
      sched::CarbonAwareEasyScheduler::Config cc;
      cc.max_hold = hours(24.0);
      cc.lookahead = hours(24.0);
      sched = std::make_unique<sched::CarbonAwareEasyScheduler>(
          cc, std::make_shared<carbon::PersistenceForecaster>());
    } else {
      sched = std::make_unique<sched::FcfsScheduler>();
    }
    b_results[i].result = sim.run(*sched);

    if (const auto* s = sensors.find("system.ci_staleness")) {
      for (const auto& sample : s->samples()) {
        b_results[i].max_staleness_h =
            std::max(b_results[i].max_staleness_h, sample.value / 3600.0);
      }
    }
  });
  for (std::size_t i = 0; i < b_results.size(); ++i) {
    const double outage = outages[i / 2];
    const bool carbon_aware = i % 2 == 1;
    const auto& r = b_results[i].result;
    Carbon job_carbon;
    for (const auto& j : r.jobs) job_carbon += j.carbon;
    if (outage == 0.25 && !carbon_aware) fcfs_carbon_025 = job_carbon.tonnes();
    if (outage == 0.25 && carbon_aware) ca_carbon_025 = job_carbon.tonnes();
    tb.add_row({util::Table::fmt(100.0 * outage, 0) + "%",
                carbon_aware ? "carbon-easy(persist)" : "fcfs",
                util::Table::fmt(job_carbon.tonnes(), 3),
                util::Table::fmt(r.mean_wait_hours(), 2),
                util::Table::fmt(b_results[i].max_staleness_h, 1),
                std::to_string(r.completed_jobs)});
  }
  std::printf("%s\n",
              tb.str("B. Carbon-feed outages (64 nodes, UK grid; hold then "
                     "carbon-blind past 2 h staleness)").c_str());

  // ---------------------------------------------------------------- C
  // Federation blackout: France (the greenest grid) goes dark for 12 h.
  core::Federation::Config fed_cfg;
  for (auto [name, region] :
       {std::pair{"garching", carbon::Region::Germany},
        std::pair{"lyon", carbon::Region::France},
        std::pair{"krakow", carbon::Region::Poland}}) {
    core::SiteSpec site;
    site.name = name;
    site.cluster = bench_cluster(64);
    site.region = region;
    fed_cfg.sites.push_back(site);
  }
  fed_cfg.trace_span = days(14.0);
  fed_cfg.seed = 17;
  core::Federation fed_healthy(fed_cfg);
  fed_cfg.outages.push_back({1, days(1.0), hours(12.0)});
  core::Federation fed_dark(fed_cfg);

  hpcsim::WorkloadConfig fwl;
  fwl.job_count = 300;
  fwl.span = days(3.0);
  fwl.max_job_nodes = 16;
  fwl.runtime_mean = hours(2.0);
  const auto fed_jobs = hpcsim::WorkloadGenerator(fwl, 29).generate();
  const auto easy_factory = [] {
    return std::make_unique<sched::EasyBackfillScheduler>();
  };

  util::Table tc({"federation", "done", "job carbon[t]", "to lyon",
                  "job kills", "lost[node-h]"});
  core::FederationResult fr_healthy =
      fed_healthy.run(fed_jobs, core::DispatchPolicy::GreenestNow, easy_factory);
  core::FederationResult fr_dark =
      fed_dark.run(fed_jobs, core::DispatchPolicy::GreenestNow, easy_factory);
  for (const auto* fr : {&fr_healthy, &fr_dark}) {
    tc.add_row({fr == &fr_healthy ? "healthy" : "lyon dark 12 h",
                std::to_string(fr->completed),
                util::Table::fmt(fr->job_carbon.tonnes(), 2),
                std::to_string(fr->jobs_per_site[1]),
                std::to_string(fr->job_failures),
                util::Table::fmt(fr->lost_node_hours, 0)});
  }
  std::printf("%s\n",
              tc.str("C. Site blackout (greenest-now dispatch, EASY per site)")
                  .c_str());

  std::printf("Resilience claim checks:\n");
  std::printf(
      "  Young/Daly recovers >= 2x goodput of no-checkpoint at 8 h MTBF -> %s "
      "(%.1f%% vs %.1f%%)\n",
      goodput_yd_8h >= 2.0 * goodput_no_ckpt_8h ? "CONFIRMED" : "NOT REPRODUCED",
      goodput_yd_8h, goodput_no_ckpt_8h);
  std::printf(
      "  carbon-easy beats FCFS on job carbon under 25%% feed outage -> %s "
      "(%.3f t vs %.3f t, %.1f%% less)\n",
      ca_carbon_025 < fcfs_carbon_025 ? "CONFIRMED" : "NOT REPRODUCED",
      ca_carbon_025, fcfs_carbon_025,
      100.0 * (1.0 - ca_carbon_025 / fcfs_carbon_025));
  std::printf(
      "  federation recovers every job through a 12 h greenest-site blackout "
      "-> %s (%d/%d)\n",
      fr_dark.completed == static_cast<int>(fed_jobs.size()) ? "CONFIRMED"
                                                             : "NOT REPRODUCED",
      fr_dark.completed, static_cast<int>(fed_jobs.size()));
  return 0;
}
