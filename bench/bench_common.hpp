#pragma once
// Shared scaffolding for the experiment benches: a reference operational
// scenario (cluster + region + workload) used by the section-3
// experiments so their numbers are comparable across benches.

#include <cstdio>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "util/table.hpp"

namespace greenhpc::bench {

/// The reference operational scenario: a 256-node tranche of a SuperMUC-NG
/// class machine in the German grid, one week of submissions plus drain.
inline core::ScenarioConfig reference_scenario(std::uint64_t seed = 2023) {
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 256;
  cfg.cluster.node_tdp = watts(500.0);
  cfg.cluster.node_idle = watts(110.0);
  cfg.cluster.tick = minutes(2.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(12.0);
  cfg.trace_step = minutes(15.0);
  cfg.workload.job_count = 900;
  cfg.workload.span = days(7.0);
  cfg.workload.max_job_nodes = 128;
  cfg.workload.runtime_mean = hours(3.0);
  cfg.workload.node_power_mean = watts(420.0);
  cfg.workload.node_power_limit = watts(500.0);
  cfg.seed = seed;
  return cfg;
}

/// Append one policy outcome to the standard comparison table.
inline void add_outcome_row(util::Table& table, const core::PolicyOutcome& o) {
  table.add_row({o.scheduler, o.power_policy, util::Table::fmt(o.total_carbon_t, 1),
                 util::Table::fmt(o.carbon_per_node_hour_g, 1),
                 util::Table::fmt(o.total_energy_mwh, 1),
                 util::Table::fmt(o.mean_wait_h, 2),
                 util::Table::fmt(o.mean_bounded_slowdown, 2),
                 util::Table::fmt(100.0 * o.utilization, 1),
                 util::Table::fmt(100.0 * o.green_energy_share, 1),
                 std::to_string(o.completed)});
}

/// The standard comparison-table header.
inline util::Table outcome_table() {
  return util::Table({"scheduler", "power-policy", "carbon[t]", "g/node-h", "MWh",
                      "wait[h]", "slowdown", "util[%]", "green[%]", "done"});
}

}  // namespace greenhpc::bench
