// CLAIM-REUSE — reproduces the paper's section 2.3 quantitative claims:
// "reusing hard disk drives leads to 275x more carbon emissions
// reductions than recycling", the reuse > recycle > landfill hierarchy,
// and "server lifetime extensions are more effective than component
// reuse since not all server components can be effectively reutilized".

#include <cstdio>

#include "embodied/systems.hpp"
#include "lifecycle/fleet.hpp"
#include "lifecycle/reuse.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::lifecycle;

  util::Table ratios({"component", "reusable [%]", "refurb cost [%]", "recycle credit [%]",
                      "reuse/recycle ratio"});
  for (const auto& m : {hdd_reuse_model(), dram_reuse_model(), ssd_reuse_model()}) {
    ratios.add_row({m.component, util::Table::fmt(100.0 * m.reusable_fraction, 1),
                    util::Table::fmt(100.0 * m.refurbishment_overhead, 1),
                    util::Table::fmt(100.0 * m.recycle_material_credit, 2),
                    util::Table::fmt(m.reuse_over_recycle(), 0)});
  }
  std::printf("%s\n", ratios.str("Reuse vs recycling carbon credits per component class").c_str());
  std::printf("Paper anchor: HDD reuse/recycle ratio measured %.0fx (paper: 275x)\n\n",
              hdd_reuse_model().reuse_over_recycle());

  // System-scale decommissioning: SuperMUC-NG's memory+storage pool.
  const embodied::ActModel model;
  const auto breakdown = embodied_breakdown(model, embodied::supermuc_ng());
  util::Table decom({"strategy", "avoided carbon [t]"});
  const auto storage_outcome = evaluate_decommission(breakdown.storage, hdd_reuse_model());
  const auto dram_outcome = evaluate_decommission(breakdown.dram, dram_reuse_model());
  decom.add_row({"reuse storage pool", util::Table::fmt(storage_outcome.reuse_savings.tonnes(), 1)});
  decom.add_row({"recycle storage pool", util::Table::fmt(storage_outcome.recycle_savings.tonnes(), 1)});
  decom.add_row({"reuse DRAM pool (CXL-style)", util::Table::fmt(dram_outcome.reuse_savings.tonnes(), 1)});
  decom.add_row({"recycle DRAM pool", util::Table::fmt(dram_outcome.recycle_savings.tonnes(), 1)});
  decom.add_row({"landfill", "0.0"});
  std::printf("%s\n", decom.str("Decommissioning SuperMUC-NG: avoided carbon by strategy").c_str());

  // Lifetime extension vs component reuse (the section's final claim):
  // extending defers the *whole* replacement system; reuse only recovers
  // the reusable component classes.
  ExtensionScenario ext;
  ext.replacement_embodied = breakdown.total();
  ext.replacement_lifetime_years = 6;
  ext.old_power = embodied::supermuc_ng().avg_power;
  ext.efficiency_gain = 0.35;
  ext.grid = grams_per_kwh(20.0);  // LRZ
  // Like-for-like comparison over the same 2-year deferral horizon:
  // extension defers the FULL replacement system's embodied carbon for two
  // years; reusing the memory+storage pool into the successor defers only
  // those components' embodied carbon for the same two years. This is
  // exactly the paper's argument — "not all server components can be
  // effectively reutilized".
  const double horizon_share = 2.0 / 6.0;
  const Carbon extension_savings = evaluate_extension(ext, 2).net_savings();
  const Carbon reuse_savings =
      (storage_outcome.reuse_savings + dram_outcome.reuse_savings) * horizon_share;
  const Carbon recycle_savings =
      (storage_outcome.recycle_savings + dram_outcome.recycle_savings) * horizon_share;
  util::Table final_table({"strategy (2-year deferral basis)", "carbon savings [t]"});
  final_table.add_row({"whole-system lifetime extension (at LRZ grid)",
                       util::Table::fmt(extension_savings.tonnes(), 1)});
  final_table.add_row({"memory+storage reuse into the successor",
                       util::Table::fmt(reuse_savings.tonnes(), 1)});
  final_table.add_row({"memory+storage recycling",
                       util::Table::fmt(recycle_savings.tonnes(), 1)});
  std::printf("%s\n", final_table.str("Section 2.3 hierarchy: extension vs reuse vs recycling").c_str());
  std::printf("Paper claim check: extension > reuse -> %s; reuse > recycling -> %s\n",
              extension_savings > reuse_savings ? "CONFIRMED" : "NOT REPRODUCED",
              reuse_savings > recycle_savings ? "CONFIRMED" : "NOT REPRODUCED");
  return 0;
}
