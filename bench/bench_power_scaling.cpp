// EXP-PWR — section 3.1 ("Carbon-aware Dynamic Power Budget Scaling"):
// "scaling up/down the total system power constraint in accordance with
// the carbon intensity changes is essential."
//
// Compares, on one week of identical jobs and one grid trace:
//   * an unconstrained system,
//   * a static power cap (the PowerStack status quo),
//   * the CI-proportional dynamic budget,
//   * the carbon-rate-capping budget,
// on carbon, delivered work, wait and budget violations.

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "powerstack/policies.hpp"
#include "sched/easy_backfill.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::bench;

  core::ScenarioRunner runner(reference_scenario());
  const auto easy = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
  const Power max_power = runner.config().cluster.max_power();

  util::Table table = outcome_table();
  const auto unconstrained = runner.run("easy", easy);
  add_outcome_row(table, unconstrained);

  const auto static_cap = runner.run("easy", easy, [&] {
    return std::make_unique<powerstack::StaticBudgetPolicy>(max_power * 0.8);
  });
  add_outcome_row(table, static_cap);

  const auto proportional = runner.run("easy", easy, [] {
    return std::make_unique<powerstack::IntensityProportionalPolicy>(
        powerstack::IntensityProportionalPolicy::Config{
            .ci_clean = 330.0, .ci_dirty = 600.0, .min_fraction = 0.6,
            .max_fraction = 1.0});
  });
  add_outcome_row(table, proportional);

  const auto rate_cap = runner.run("easy", easy, [&] {
    // Target the emission rate of running at ~80% power at the mean CI.
    const double mean_ci = runner.trace().summary().mean;
    return std::make_unique<powerstack::CarbonRateCapPolicy>(
        powerstack::CarbonRateCapPolicy::Config{
            .target_kg_per_hour = 0.8 * max_power.kilowatts() * mean_ci / 1000.0,
            .min_fraction = 0.55});
  });
  add_outcome_row(table, rate_cap);

  const auto ramped = runner.run("easy", easy, [&] {
    // CI-proportional budget behind a facility slew limit of 1% of max
    // power per minute (power-contract / cooling-plant constraint).
    return std::make_unique<powerstack::RampLimitedPolicy>(
        std::make_unique<powerstack::IntensityProportionalPolicy>(
            powerstack::IntensityProportionalPolicy::Config{
                .ci_clean = 330.0, .ci_dirty = 600.0, .min_fraction = 0.6,
                .max_fraction = 1.0}),
        max_power * (0.01 / 60.0));
  });
  add_outcome_row(table, ramped);

  std::printf("%s\n", table.str("Section 3.1: system power budget policies "
                                "(256-node cluster, German grid, 1 week)").c_str());
  std::printf("budget violations: unconstrained=%d static=%d ci-proportional=%d "
              "rate-cap=%d ramped=%d\n\n",
              unconstrained.result.budget_violations, static_cap.result.budget_violations,
              proportional.result.budget_violations, rate_cap.result.budget_violations,
              ramped.result.budget_violations);

  std::printf("Paper claim check: carbon-aware budget scaling cuts carbon per delivered "
              "node-hour vs the static cap -> %s (%.1f vs %.1f g/node-h)\n",
              proportional.carbon_per_node_hour_g < static_cap.carbon_per_node_hour_g
                  ? "CONFIRMED"
                  : "NOT REPRODUCED",
              proportional.carbon_per_node_hour_g, static_cap.carbon_per_node_hour_g);
  return 0;
}
