// CLAIM-RENEW — reproduces the paper's rule of thumb (section 2, citing
// Lyu et al. [39]): "for data centers operating with 70-75% renewable
// energy, the embodied carbon accounts for 50% of the total carbon
// emissions", plus the LRZ observation that at ~20 gCO2/kWh embodied
// carbon dominates an HPC system's lifetime footprint.

#include <cstdio>

#include "core/site_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::core;

  // Cloud-server sweep (the population the rule of thumb is about).
  const CloudServer server;
  RenewableMix mix;
  util::Table sweep({"renewable [%]", "effective CI [g/kWh]", "embodied share [%]"});
  for (int step = 0; step <= 20; ++step) {
    const double f = static_cast<double>(step) / 20.0;
    mix.renewable_fraction = f;
    sweep.add_row({util::Table::fmt(100.0 * f, 0),
                   util::Table::fmt(mix.effective().grams_per_kwh(), 1),
                   util::Table::fmt(100.0 * cloud_embodied_share(server, mix), 1)});
  }
  std::printf("%s\n",
              sweep.str("Embodied share of a cloud server's lifetime footprint vs renewable fraction").c_str());
  const double parity =
      renewable_fraction_for_parity(server, mix.renewable_ci, mix.residual_ci);
  std::printf("50%%-embodied parity at %.1f%% renewables "
              "(paper rule of thumb: 70-75%%)\n\n", 100.0 * parity);

  // HPC systems: embodied share by site grid intensity (the LRZ claim).
  const embodied::ActModel model;
  util::Table hpc({"system", "grid [g/kWh]", "embodied [t]", "operational (life) [t]",
                   "embodied share [%]"});
  struct Placement {
    embodied::SystemInventory sys;
    double grid;
    const char* label;
  };
  const Placement placements[] = {
      {embodied::supermuc_ng(), 20.0, "SuperMUC-NG @ LRZ hydro (20)"},
      {embodied::supermuc_ng(), 472.0, "SuperMUC-NG @ German mix"},
      {embodied::supermuc_ng(), 1025.0, "SuperMUC-NG @ coal"},
      {embodied::juwels_booster(), 472.0, "Juwels Booster @ German mix"},
      {embodied::hawk(), 472.0, "Hawk @ German mix"},
  };
  for (const auto& p : placements) {
    SiteModel site(model, p.sys, grams_per_kwh(p.grid));
    hpc.add_row({p.label, util::Table::fmt(p.grid, 0),
                 util::Table::fmt(site.embodied_total().tonnes(), 0),
                 util::Table::fmt(site.operational_lifetime().tonnes(), 0),
                 util::Table::fmt(100.0 * site.embodied_share(), 1)});
  }
  std::printf("%s\n", hpc.str("Embodied vs operational share by site (HPC systems)").c_str());
  SiteModel lrz(model, embodied::supermuc_ng(), grams_per_kwh(20.0));
  std::printf("Paper claim check: embodied dominates at LRZ (share > 50%%): measured %.1f%% -> %s\n",
              100.0 * lrz.embodied_share(),
              lrz.embodied_share() > 0.5 ? "CONFIRMED" : "NOT REPRODUCED");
  return 0;
}
