// TAB1 — reproduces the paper's Table 1 ("Recent modern HPC systems at
// LRZ") and derives the section-2.3 observations from it: refresh cycles
// of 4-6 years and the amortized embodied carbon each fleet generation
// carries, plus the lifetime-extension analysis.

#include <cstdio>

#include "embodied/systems.hpp"
#include "lifecycle/fleet.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::lifecycle;

  util::Table table({"HPC System", "Start of Operation", "Decommissioned", "service years"});
  for (const auto& sys : lrz_fleet()) {
    table.add_row({sys.name, std::to_string(sys.start_year),
                   sys.decommission_year ? std::to_string(*sys.decommission_year) : "-",
                   sys.decommission_year ? std::to_string(sys.service_years(2026))
                                         : std::to_string(sys.service_years(2026)) + " (ongoing)"});
  }
  std::printf("%s\n", table.str("Table 1: recent modern HPC systems at LRZ").c_str());
  double closed_years = 0.0;
  int closed = 0;
  for (const auto& sys : lrz_fleet()) {
    if (sys.decommission_year) {
      closed_years += sys.service_years(2026);
      ++closed;
    }
  }
  std::printf("Mean service lifetime of decommissioned systems: %.1f years "
              "(paper: \"hardware refresh cycles ... range between four and six "
              "years\"); mean interval between system starts: %.2f years\n\n",
              closed_years / closed, mean_refresh_interval_years(lrz_fleet()));

  // Amortized embodied carbon of a SuperMUC-NG-class generation.
  const embodied::ActModel model;
  const Carbon ng_embodied = embodied_breakdown(model, embodied::supermuc_ng()).total();
  util::Table amort({"lifetime [years]", "amortized embodied [t/year]"});
  for (int years : {4, 5, 6, 8, 10}) {
    amort.add_row({std::to_string(years),
                   util::Table::fmt(annual_embodied(ng_embodied, years).tonnes(), 1)});
  }
  std::printf("%s\n",
              amort.str("Embodied amortization, SuperMUC-NG class (total "
                        + util::Table::fmt(ng_embodied.tonnes(), 0) + " t)").c_str());

  // Lifetime extension vs replacement (section 2.3) across grid intensities.
  ExtensionScenario scenario;
  scenario.replacement_embodied = ng_embodied;
  scenario.replacement_lifetime_years = 6;
  scenario.old_power = embodied::supermuc_ng().avg_power;
  scenario.efficiency_gain = 0.35;
  util::Table ext({"grid [g/kWh]", "avoided embodied [t]", "extra operational [t]",
                   "net savings [t]", "verdict"});
  for (double g : {20.0, 50.0, 100.0, 200.0, 400.0, 1025.0}) {
    scenario.grid = grams_per_kwh(g);
    const ExtensionResult r = evaluate_extension(scenario, 2);
    ext.add_row({util::Table::fmt(g, 0), util::Table::fmt(r.avoided_embodied.tonnes(), 1),
                 util::Table::fmt(r.extra_operational.tonnes(), 1),
                 util::Table::fmt(r.net_savings().tonnes(), 1),
                 r.net_savings().grams() > 0.0 ? "extend" : "replace"});
  }
  std::printf("%s", ext.str("2-year lifetime extension vs on-schedule replacement").c_str());
  scenario.grid = grams_per_kwh(100.0);
  std::printf("\nBreak-even grid intensity for extension: %.1f g/kWh\n\n",
              extension_breakeven_intensity(scenario).grams_per_kwh());

  // Fleet-level amortized embodied carbon per calendar year: the Table 1
  // timeline turned into the site's embodied carbon budget line. Embodied
  // totals for older generations are scaled from the SuperMUC-NG model by
  // their relative machine size.
  std::vector<FleetSystem> fleet;
  const double scale[] = {0.8, 0.4, 1.0, 0.35, 1.6};
  const auto systems = lrz_fleet();
  for (std::size_t i = 0; i < systems.size(); ++i) {
    fleet.push_back({systems[i], ng_embodied * scale[i]});
  }
  util::Table timeline({"year", "fleet amortized embodied [t/year]"});
  const auto series = fleet_embodied_timeline(fleet, 2012, 2030);
  for (std::size_t i = 0; i < series.size(); ++i) {
    timeline.add_row({std::to_string(2012 + static_cast<int>(i)),
                      util::Table::fmt(series[i].tonnes(), 1)});
  }
  std::printf("%s", timeline.str("LRZ fleet: amortized embodied carbon by year").c_str());
  return 0;
}
