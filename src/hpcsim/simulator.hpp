#pragma once
// The cluster simulator.
//
// A fixed-tick engine (default 60 s): grid intensity, power budget and job
// allocations are piecewise constant per tick, which makes every energy and
// carbon integral exact. Within a tick the engine handles early completion
// analytically, so job finish times are continuous, not tick-quantized.
//
// Each tick:
//   1. jobs whose submit time has arrived join the pending queue;
//   2. the PowerBudgetPolicy sets the system power budget (section 3.1);
//   3. the SchedulingPolicy observes the system and starts / suspends /
//      resumes / reshapes jobs (sections 3.2, 3.3);
//   4. if the uncapped draw exceeds the budget, a uniform power cap is
//      applied to all busy nodes (hierarchical distribution below the
//      job level is powerstack's concern); job speed follows each job's
//      power-performance elasticity;
//   5. progress, energy and carbon are integrated.
//
// With fault injection configured (faults.hpp) the tick additionally
// repairs nodes whose downtime has elapsed, applies due failure events
// (killing the jobs on failed nodes and requeueing them with exponential
// backoff and a bounded retry budget), and releases requeued jobs whose
// backoff expired. With an IntensityFeed configured, policies observe
// the feed (last-known-value hold during dropouts, with an exposed
// staleness clock) while carbon accounting keeps using the ground truth.
//
// Hot-path engineering (see DESIGN.md, "Performance architecture"): job
// lookups resolve through a dense id->slot table instead of a hash map,
// the phase lists (pending/running/suspended/requeued) are maintained
// with position-bookkept ordered erases (O(1) find, order preserved so
// policies observe identical queues), the pow() speed factors are cached
// per job, intensity sampling uses a monotonic cursor, and wholly idle
// spans (no jobs anywhere, no arrivals or fault events due) are
// fast-forwarded through a tight per-tick loop that reproduces the full
// path bit-for-bit while skipping policy and bookkeeping calls.
//
// Zero-copy inputs (see DESIGN.md, "Sweep engine & shared-asset memory
// model"): the intensity trace and the job list are held as shared
// immutable assets (util::Shared), so a thousand-case sweep instantiates a
// thousand Simulators over ONE trace buffer and ONE job vector instead of
// copying both per case. Plain values still convert implicitly (wrapped
// once), so single-run callers are unaffected.

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hpcsim/cluster.hpp"
#include "hpcsim/faults.hpp"
#include "hpcsim/job.hpp"
#include "hpcsim/policy.hpp"
#include "hpcsim/result.hpp"
#include "hpcsim/sim_core.hpp"
#include "telemetry/sensor_store.hpp"
#include "util/rng.hpp"
#include "util/shared.hpp"
#include "util/time_series.hpp"

namespace greenhpc::hpcsim {

class Simulator final : public SimulationView {
 public:
  struct Config {
    ClusterConfig cluster;
    /// Grid carbon-intensity trace (g/kWh); sampled with clamping, so the
    /// simulation may outlast the trace. Shared immutable: assign a
    /// TimeSeries value (wrapped once) or an already-shared trace
    /// (zero-copy across concurrent Simulators).
    util::Shared<util::TimeSeries> carbon_intensity;
    /// Hard stop even if jobs remain (guards against livelocked policies).
    Duration max_time = days(90.0);
    /// Optional telemetry sink for system-level sensors
    /// ("system.power", "system.budget", "system.ci", "system.busy_nodes";
    /// with faults also "system.nodes_down", with a feed also
    /// "system.ci_observed" and "system.ci_staleness").
    telemetry::SensorStore* telemetry = nullptr;
    /// Node-failure injection; default = perfect hardware (strictly
    /// opt-in: an empty schedule reproduces the fault-free run exactly).
    FaultInjectionConfig faults;
    /// Observation channel for the carbon-intensity signal policies see;
    /// null = perfect feed (observed == true). Must outlive the run.
    IntensityFeed* feed = nullptr;
    /// Force the tick-exact reference path: disables the span batch
    /// kernel and the idle fast-forward, so every tick runs the full
    /// arrivals/faults/schedule/integrate sequence. The fast paths are
    /// bit-identical by construction; this knob exists so the
    /// equivalence property test (and debugging sessions) can prove it.
    bool reference_mode = false;
    /// Resolve completions and walltime kills inside the span batch
    /// kernel (the default): the event tick runs the exact integrate
    /// path in-kernel, and the span continues when the policy attests
    /// the release changes nothing (SchedulingPolicy::
    /// quiescent_over_release). false restores the previous fencing
    /// behaviour — every completion terminates the span and the per-tick
    /// path replays the event tick — which is what bench_perf's dense
    /// scale compares against. Both settings are bit-identical to the
    /// reference loop.
    bool span_completions = true;
  };

  /// The job list need not be sorted; it is indexed by JobId internally.
  /// Shared immutable: pass a vector value (wrapped once) or a shared job
  /// list (zero-copy — per-job state lives in slots referencing the
  /// shared specs, which must stay unchanged for the Simulator's life).
  Simulator(Config config, util::Shared<std::vector<JobSpec>> jobs);
  /// Convenience for plain (and braced) vector arguments.
  Simulator(Config config, std::vector<JobSpec> jobs)
      : Simulator(std::move(config),
                  util::Shared<std::vector<JobSpec>>(std::move(jobs))) {}

  /// Run to completion under the given policies. `power` may be null for
  /// an unconstrained system. May be called once per Simulator instance.
  SimulationResult run(SchedulingPolicy& sched, PowerBudgetPolicy* power = nullptr);

  // --- SimulationView ---
  [[nodiscard]] Duration now() const override { return now_; }
  [[nodiscard]] const ClusterConfig& cluster() const override { return cfg_.cluster; }
  [[nodiscard]] int free_nodes() const override { return free_nodes_; }
  [[nodiscard]] int nodes_down() const override { return nodes_down_; }
  [[nodiscard]] double carbon_intensity_now() const override { return ci_now_; }
  [[nodiscard]] Duration carbon_signal_staleness() const override {
    return staleness_;
  }
  [[nodiscard]] double carbon_intensity_at(Duration t) const override;
  [[nodiscard]] const std::vector<double>& intensity_history() const override {
    return ci_history_;
  }
  [[nodiscard]] const std::vector<JobId>& pending_jobs() const override {
    return pending_;
  }
  [[nodiscard]] const std::vector<JobId>& running_jobs() const override {
    return running_;
  }
  [[nodiscard]] const std::vector<JobId>& suspended_jobs() const override {
    return suspended_;
  }
  [[nodiscard]] const JobSpec& spec(JobId id) const override;
  [[nodiscard]] const JobRuntimeInfo& info(JobId id) const override;
  [[nodiscard]] const JobTable& job_table() const override { return table_; }
  [[nodiscard]] std::size_t slot_of(JobId id) const override {
    return slot_index(id);
  }
  [[nodiscard]] Duration estimated_remaining(JobId id) const override;
  [[nodiscard]] Power power_budget() const override { return budget_now_; }
  [[nodiscard]] Power full_draw() const override;
  bool start(JobId id, int nodes) override;
  bool suspend(JobId id) override;
  bool checkpoint(JobId id) override;
  bool resume(JobId id, int nodes) override;
  bool reshape(JobId id, int nodes) override;

 private:
  /// Which phase list currently holds a job (None = no list: not yet
  /// arrived, or Done).
  enum class Queue : std::uint8_t { None, Pending, Running, Suspended, Requeued };

  struct JobSlot {
    /// Static description, pointing into the shared job list (immutable,
    /// owned by jobs_ for the Simulator's lifetime).
    const JobSpec* spec = nullptr;
    /// Cold per-job state (phase, finish, counters, resilience marks).
    /// The hot fields SimCore owns (progress, allocation, wall clock,
    /// energy, carbon, start/checkpoint times) are mirrored into here on
    /// demand by info() — mutable so the const accessor can refresh them.
    mutable JobRuntimeInfo info;
    /// Phase-list membership (position-bookkept ordered erase).
    Queue queue = Queue::None;
    std::int32_t list_pos = -1;
  };

  /// O(1) id -> slot resolution through the dense table (ids are small
  /// ints in practice); falls back to the hash map for sparse id spaces.
  [[nodiscard]] std::size_t slot_index(JobId id) const {
    if (static_cast<std::size_t>(id) < dense_index_.size()) {
      const std::int32_t idx = dense_index_[static_cast<std::size_t>(id)];
      if (idx >= 0) return static_cast<std::size_t>(idx);
    }
    return slot_index_slow(id);
  }
  [[nodiscard]] std::size_t slot_index_slow(JobId id) const;
  [[nodiscard]] JobSlot& slot(JobId id) { return slots_[slot_index(id)]; }
  [[nodiscard]] const JobSlot& slot(JobId id) const { return slots_[slot_index(id)]; }

  /// Busy nodes of a running job (nodes that draw job power and produce
  /// progress): all allocated nodes for malleable jobs, nodes_used for
  /// rigid/moldable jobs with over-allocation.
  [[nodiscard]] int busy_nodes_of(std::size_t i) const;
  /// Speed multiplier from allocation size (power-law strong scaling).
  [[nodiscard]] double scale_speed(std::size_t i) const;
  /// Cached pow(cap, alpha); exact 1.0 for the uncapped case. (The cache
  /// columns are raw pointers into the arena, so const methods may
  /// refresh them — same contract as the former mutable members.)
  [[nodiscard]] double cap_speed(std::size_t i, double cap) const;
  /// Cached scale_speed keyed on the busy-node count.
  [[nodiscard]] double scale_factor(std::size_t i) const;
  [[nodiscard]] bool allocation_valid(const JobSpec& spec, int nodes) const;

  /// Append to / remove from a phase list, keeping each member slot's
  /// list_pos in sync. Erase is by known position (no scan) and shifts the
  /// tail, so the observable iteration order policies depend on is
  /// preserved exactly.
  void list_push(std::vector<JobId>& list, Queue kind, JobId id);
  void list_erase(std::vector<JobId>& list, JobId id);

  void integrate_tick();
  /// Process wholly idle ticks (no jobs anywhere) in a tight loop until
  /// the next arrival, fault event or max_time. Reproduces the normal
  /// tick bit-for-bit (energy/carbon accumulation order, series samples,
  /// history, telemetry) while skipping the policy and fault machinery
  /// that provably cannot act.
  void fast_forward_idle(Duration stop);
  /// Span batch kernel: integrate ticks in [now, span_end) in one flat
  /// loop over the running set, entered only when the scheduler took no
  /// action at the current discrete state (epoch check) and attests
  /// quiescence (SchedulingPolicy::quiescent_until), and no fault
  /// event, repair or requeue release falls before hard_end. The
  /// per-tick constants (cap, per-job draw/rate, totals) are hoisted
  /// once per sub-span; every accumulator receives the same additions in
  /// the same order as the per-tick path, so results are bit-identical.
  /// A tick a completion or walltime kill lands in is resolved inside
  /// the kernel (cfg_.span_completions): the scratch columns scatter
  /// back and the exact integrate_tick runs — analytic mid-tick finish,
  /// node release, record emission, order-preserving compaction — then
  /// the span continues iff the policy attests the release changed
  /// nothing (quiescent_over_release) under a re-asked horizon, and
  /// fences back to the per-tick path otherwise. hard_end caps every
  /// re-bound horizon (fault/repair/requeue/max_time events can never be
  /// crossed). Returns the number of ticks integrated (0 only when an
  /// event lands in the very first tick with span_completions off).
  std::size_t run_span(SchedulingPolicy& sched, Duration hard_end,
                       Duration span_end, bool ride_arrivals);
  /// Flush the span-local per-completion counter batches to the obs
  /// registry (one add(n) per span instead of one atomic add per
  /// completion; see DESIGN.md).
  void flush_job_counters();

  // --- fault machinery (all no-ops with an empty failure schedule) ---
  /// Return repaired nodes to service, apply due failure events, release
  /// requeued jobs whose backoff expired.
  void advance_faults();
  /// Take one node down; kills the job occupying it if it is busy.
  void fail_one_node();
  /// Kill a running job hit by a node failure: roll back to its last
  /// checkpoint (scratch for non-checkpointable jobs), account the waste,
  /// requeue with backoff or abandon past the retry budget.
  void fail_job(JobId id);
  /// Sample the intensity feed: updates ci_now_ (held) and staleness_.
  void observe_intensity();

  Config cfg_;
  /// Shared immutable job list the slots' spec pointers resolve into.
  util::Shared<std::vector<JobSpec>> jobs_;
  std::vector<JobSlot> slots_;
  /// Structure-of-arrays hot state (see sim_core.hpp) + the read-only
  /// view of it policies consume.
  SimCore core_;
  JobTable table_;
  std::unordered_map<JobId, std::size_t> index_;
  /// Dense id -> slot table (empty when the id space is too sparse).
  std::vector<std::int32_t> dense_index_;
  std::vector<std::size_t> arrival_order_;  ///< slot indices by submit time
  std::size_t next_arrival_ = 0;

  Duration now_{0.0};
  double ci_true_ = 0.0;  ///< ground truth (accounting)
  double ci_now_ = 0.0;   ///< observed, last-known-value held (policies)
  Duration staleness_;    ///< age of the observed value
  Duration last_fresh_;
  bool ever_fresh_ = false;
  Power budget_now_;
  double last_cap_ = 1.0;
  int free_nodes_ = 0;
  int nodes_down_ = 0;
  std::vector<JobId> pending_;
  std::vector<JobId> running_;
  /// Slot indices parallel to running_ (same order): the integrate and
  /// span kernels iterate this instead of re-resolving ids.
  std::vector<std::size_t> running_slots_;
  std::vector<JobId> suspended_;
  std::vector<JobId> requeued_;  ///< killed by failures, waiting out backoff
  std::vector<double> ci_history_;
  util::TimeSeries::Cursor ci_cursor_;  ///< monotonic ground-truth sampling
  std::size_t next_failure_ = 0;
  std::vector<Duration> repairs_;  ///< pending per-node repair completions
  util::Rng victim_rng_{0};

  /// Discrete-mutation epoch: bumped on every observable discrete change
  /// (phase-list membership, allocations, checkpoints, node up/down).
  /// The span kernel is gated on the epoch being unchanged since just
  /// before the last on_tick — i.e. the policy saw exactly this state
  /// and did nothing.
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_before_sched_ = ~std::uint64_t{0};

  /// Batched obs-counter deltas (per-completion events accumulate here
  /// and flush in one relaxed add per span / per tick). Never read by
  /// simulation logic — digest-neutral by construction.
  std::uint32_t pending_completions_ = 0;
  std::uint32_t pending_kills_ = 0;

  SimulationResult result_;
  bool ran_ = false;
};

}  // namespace greenhpc::hpcsim
