#pragma once
// Arena-allocated structure-of-arrays core of the simulator.
//
// All per-job state the tick hot path touches lives here as parallel
// arrays indexed by slot: the static columns flattened from JobSpec once
// at construction (so the integrate kernel never chases the shared spec
// pointers), the dynamic columns the engine integrates every tick, the
// pow() caches, and the span-kernel scratch columns. Everything is carved
// out of ONE allocation, grouped by element width so each column is
// naturally aligned and consecutive columns stay cache-adjacent.
//
// The columns hold exactly the same double values the former
// array-of-structs layout held (flattening JobSpec::effective_node_power
// etc. is value-preserving), so the layout change cannot move a single
// bit of any simulation result — the determinism contract the golden
// digest fixtures pin down.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hpcsim/job.hpp"

namespace greenhpc::hpcsim {

struct SimCore {
  // --- static columns (written once at construction) ---
  double* eff_power_w = nullptr;      ///< effective_node_power().watts()
  double* runtime_s = nullptr;
  double* walltime_s = nullptr;
  double* submit_s = nullptr;
  double* ckpt_overhead_s = nullptr;
  double* power_alpha = nullptr;
  double* scale_gamma = nullptr;
  std::int32_t* nodes_requested = nullptr;
  std::int32_t* nodes_used = nullptr;
  std::int32_t* min_nodes = nullptr;
  std::int32_t* max_nodes = nullptr;
  JobKind* kind = nullptr;
  std::uint8_t* checkpointable = nullptr;

  // --- dynamic columns (the integrate kernel's working set) ---
  double* progress = nullptr;
  double* wall_used_s = nullptr;
  double* energy_j = nullptr;
  double* carbon_g = nullptr;
  double* start_s = nullptr;
  double* last_checkpoint_s = nullptr;
  std::int32_t* alloc_nodes = nullptr;

  // --- pow() caches (cap_key == 1.0 / scale_key == -1 mean "unset";
  //     the defaults make the uncapped, natural-size case exact) ---
  double* cap_key = nullptr;
  double* cap_val = nullptr;
  double* scale_val = nullptr;
  std::int32_t* scale_key = nullptr;

  // --- span-kernel scratch: per-running-job constants and local
  //     accumulators, compacted to the running set (sp_slot maps a
  //     scratch row back to its slot) ---
  double* sp_ej = nullptr;    ///< energy per full tick (J)
  double* sp_dj = nullptr;    ///< sp_ej / 3.6e6 (carbon integrand)
  double* sp_rp = nullptr;    ///< progress per full tick
  double* sp_prog = nullptr;  ///< local progress accumulator
  double* sp_wall = nullptr;  ///< local wall-clock accumulator (s)
  double* sp_wl = nullptr;    ///< walltime limit (s)
  double* sp_en = nullptr;    ///< local energy accumulator (J)
  double* sp_cb = nullptr;    ///< local carbon accumulator (g)
  std::int32_t* sp_slot = nullptr;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Allocate every column for n slots out of one arena block and
  /// zero/default-initialize the dynamic columns and caches.
  void init(std::size_t n) {
    n_ = n;
    constexpr std::size_t kDoubleCols = 24;
    constexpr std::size_t kInt32Cols = 7;
    const std::size_t bytes = n * (kDoubleCols * sizeof(double) +
                                   kInt32Cols * sizeof(std::int32_t) +
                                   sizeof(JobKind) + sizeof(std::uint8_t));
    arena_.assign(bytes, std::byte{0});
    std::byte* p = arena_.data();
    const auto take_d = [&](double*& col) {
      col = reinterpret_cast<double*>(p);
      p += n * sizeof(double);
    };
    const auto take_i = [&](std::int32_t*& col) {
      col = reinterpret_cast<std::int32_t*>(p);
      p += n * sizeof(std::int32_t);
    };
    // Widest first so every column stays naturally aligned.
    take_d(eff_power_w);
    take_d(runtime_s);
    take_d(walltime_s);
    take_d(submit_s);
    take_d(ckpt_overhead_s);
    take_d(power_alpha);
    take_d(scale_gamma);
    take_d(progress);
    take_d(wall_used_s);
    take_d(energy_j);
    take_d(carbon_g);
    take_d(start_s);
    take_d(last_checkpoint_s);
    take_d(cap_key);
    take_d(cap_val);
    take_d(scale_val);
    take_d(sp_ej);
    take_d(sp_dj);
    take_d(sp_rp);
    take_d(sp_prog);
    take_d(sp_wall);
    take_d(sp_wl);
    take_d(sp_en);
    take_d(sp_cb);
    take_i(nodes_requested);
    take_i(nodes_used);
    take_i(min_nodes);
    take_i(max_nodes);
    take_i(alloc_nodes);
    take_i(scale_key);
    take_i(sp_slot);
    kind = reinterpret_cast<JobKind*>(p);
    p += n * sizeof(JobKind);
    checkpointable = reinterpret_cast<std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      cap_key[i] = 1.0;
      cap_val[i] = 1.0;
      scale_val[i] = 1.0;
      scale_key[i] = -1;
    }
  }

  /// Flatten one job's static description into row i.
  void fill_static(std::size_t i, const JobSpec& spec) {
    eff_power_w[i] = spec.effective_node_power().watts();
    runtime_s[i] = spec.runtime.seconds();
    walltime_s[i] = spec.walltime.seconds();
    submit_s[i] = spec.submit.seconds();
    ckpt_overhead_s[i] = spec.checkpoint_overhead.seconds();
    power_alpha[i] = spec.power_alpha;
    scale_gamma[i] = spec.scale_gamma;
    nodes_requested[i] = spec.nodes_requested;
    nodes_used[i] = spec.nodes_used;
    min_nodes[i] = spec.min_nodes;
    max_nodes[i] = spec.max_nodes;
    kind[i] = spec.kind;
    checkpointable[i] = spec.checkpointable ? 1 : 0;
  }

 private:
  std::vector<std::byte> arena_;
  std::size_t n_ = 0;
};

}  // namespace greenhpc::hpcsim
