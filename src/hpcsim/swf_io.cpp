#include "hpcsim/swf_io.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace greenhpc::hpcsim {

SwfImport load_swf(std::istream& in, const SwfDefaults& defaults) {
  GREENHPC_REQUIRE(defaults.node_power.watts() > 0.0, "default node power must be > 0");
  SwfImport result;
  std::string line;
  int next_id = 1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == ';') continue;
    std::istringstream row(line);
    // SWF: 18 numeric fields; missing trailing fields default to -1.
    std::array<double, 18> f;
    f.fill(-1.0);
    std::size_t count = 0;
    double v;
    while (count < f.size() && row >> v) f[count++] = v;
    if (count < 5) {
      ++result.skipped;
      continue;
    }
    const double submit_s = f[1];
    const double runtime_s = f[3];
    const double used_procs = f[4];
    const double req_procs = f[7];
    const double req_time_s = f[8];
    const int uid = f[11] >= 0 ? static_cast<int>(f[11]) : 0;
    const int gid = f[12] >= 0 ? static_cast<int>(f[12]) : 0;

    int nodes_req = req_procs > 0 ? static_cast<int>(req_procs)
                                  : static_cast<int>(used_procs);
    int nodes_used = used_procs > 0 ? static_cast<int>(used_procs) : nodes_req;
    if (runtime_s <= 0.0 || nodes_req <= 0 || nodes_used <= 0 || submit_s < 0.0) {
      ++result.skipped;
      continue;
    }
    if (defaults.max_nodes > 0) {
      nodes_req = std::min(nodes_req, defaults.max_nodes);
      nodes_used = std::min(nodes_used, defaults.max_nodes);
    }
    nodes_used = std::min(nodes_used, nodes_req);

    JobSpec j;
    j.id = next_id++;
    j.user = "user" + std::to_string(uid);
    j.project = "proj" + std::to_string(gid);
    j.submit = seconds(submit_s);
    j.kind = JobKind::Rigid;
    j.nodes_requested = nodes_req;
    j.nodes_used = nodes_used;
    j.min_nodes = nodes_req;
    j.max_nodes = nodes_req;
    j.runtime = seconds(runtime_s);
    j.walltime = req_time_s >= runtime_s ? seconds(req_time_s)
                                         : seconds(runtime_s * 1.5);
    j.node_power = defaults.node_power;
    j.power_alpha = defaults.power_alpha;
    j.scale_gamma = defaults.scale_gamma;
    j.validate();
    result.jobs.push_back(std::move(j));
  }
  std::stable_sort(result.jobs.begin(), result.jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.submit < b.submit; });
  return result;
}

void save_swf(const std::vector<JobSpec>& jobs, std::ostream& out) {
  out << "; SWF export from greenhpc (fields per the SWF v2.2 convention;\n"
      << ";  processors == nodes; unknown fields are -1)\n";
  int id = 1;
  for (const auto& j : jobs) {
    // job submit wait run used_procs avg_cpu used_mem req_procs req_time
    // req_mem status uid gid exec queue partition preceding think
    const int uid = std::atoi(j.user.c_str() + (j.user.rfind("user", 0) == 0 ? 4 : 0));
    const int gid =
        std::atoi(j.project.c_str() + (j.project.rfind("proj", 0) == 0 ? 4 : 0));
    out << id++ << ' ' << static_cast<long long>(j.submit.seconds()) << " -1 "
        << static_cast<long long>(j.runtime.seconds()) << ' ' << j.nodes_used
        << " -1 -1 " << j.nodes_requested << ' '
        << static_cast<long long>(j.walltime.seconds()) << " -1 1 " << uid << ' ' << gid
        << " -1 -1 -1 -1 -1\n";
  }
}

}  // namespace greenhpc::hpcsim
