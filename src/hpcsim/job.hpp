#pragma once
// Job model of the cluster simulator.
//
// The simulator supports the three job classes the paper's section 3.2
// distinguishes:
//   * rigid    — fixed node count, chosen at submit;
//   * moldable — node count chosen by the scheduler at start, fixed after;
//   * malleable — node count changeable at runtime within [min, max].
//
// Performance under a power cap follows the standard power-performance
// elasticity model: running the busy nodes at fraction c of full power
// (c in [min_cap, 1]) yields speed c^alpha, with alpha per job (compute-
// bound jobs are frequency-sensitive, memory-bound ones much less so).
// Scaling to n nodes relative to the job's natural size m yields speed
// (n/m)^gamma (power-law strong-scaling with per-job efficiency gamma).

#include <string>

#include "util/units.hpp"

namespace greenhpc::hpcsim {

using JobId = int;

/// Rigid / moldable / malleable (section 3.2).
enum class JobKind { Rigid, Moldable, Malleable };

/// Static description of one job as submitted.
struct JobSpec {
  JobId id = 0;
  std::string user;              ///< owning user (accounting, section 3.4)
  std::string project;           ///< charged project
  JobKind kind = JobKind::Rigid;
  Duration submit;               ///< submission time

  /// Nodes the user *requested* (held while running). May exceed
  /// nodes_used — the over-allocation the paper observed on SuperMUC-NG.
  int nodes_requested = 1;
  /// Nodes the job can actually exploit (its natural size).
  int nodes_used = 1;
  /// Allocation range honoured for malleable jobs ([min, max] on top of
  /// the natural size; both equal nodes_requested for rigid jobs).
  int min_nodes = 1;
  int max_nodes = 1;

  /// Runtime when executing on nodes_used nodes at full power.
  Duration runtime = hours(1.0);
  /// User-declared walltime limit (backfill reservation input; >= runtime).
  Duration walltime = hours(2.0);

  /// Power of one busy node while this job runs at full speed.
  Power node_power = watts(400.0);
  /// Power-performance elasticity: speed = cap_fraction^power_alpha.
  double power_alpha = 0.4;
  /// Strong-scaling exponent: speed = (n / nodes_used)^scale_gamma.
  double scale_gamma = 0.9;

  /// Whether the job can be checkpointed and suspended (section 3.3).
  bool checkpointable = false;
  /// Work lost + I/O cost charged on each suspend, expressed as extra
  /// runtime at the natural size.
  Duration checkpoint_overhead = minutes(10.0);

  /// Fraction of execution time the application spends in MPI waits.
  double mpi_wait_fraction = 0.0;
  /// Whether the job links a Countdown-class runtime library (section
  /// 3.4, Cesarini et al.): cores drop to low power during MPI waits at
  /// no performance cost, reducing the busy-node draw by
  /// kPowersaveEffectiveness * mpi_wait_fraction.
  bool powersave_runtime = false;

  /// Share of wait-time power the runtime library recovers.
  static constexpr double kPowersaveEffectiveness = 0.6;

  /// Effective busy-node draw at full speed, after the runtime library's
  /// wait-time power reduction.
  [[nodiscard]] Power effective_node_power() const {
    const double factor =
        powersave_runtime ? 1.0 - kPowersaveEffectiveness * mpi_wait_fraction : 1.0;
    return node_power * factor;
  }

  /// Validate internal consistency; throws InvalidArgument on violation.
  void validate() const;
};

/// Lifecycle phase of a job inside the simulator.
enum class JobPhase { Pending, Running, Suspended, Done };

/// Dynamic per-job state exposed to scheduling policies.
struct JobRuntimeInfo {
  JobPhase phase = JobPhase::Pending;
  double progress = 0.0;   ///< completed fraction of total work
  int alloc_nodes = 0;     ///< nodes currently held (0 unless Running)
  Duration start;          ///< first start time (valid once started)
  Duration finish;         ///< completion time (valid once Done)
  Duration wall_used;      ///< accumulated running wall time (walltime clock)
  bool killed = false;     ///< terminated by walltime enforcement
  int suspend_count = 0;   ///< checkpoint/suspend cycles so far
  Energy energy;           ///< energy consumed so far
  Carbon carbon;           ///< operational carbon attributed so far

  // --- resilience state (inert unless faults/checkpoints are used) ---
  /// Progress captured by the most recent checkpoint or suspend; a node
  /// failure rolls a checkpointable job back to this point (0 = scratch).
  double ckpt_progress = 0.0;
  /// Time of the last checkpoint (or start/resume, which reset the
  /// periodic-checkpoint clock).
  Duration last_checkpoint;
  int checkpoint_count = 0;  ///< in-place checkpoints written so far
  int failure_count = 0;     ///< node-failure kills suffered so far
  bool failed = false;       ///< abandoned after exhausting the retry budget
  /// Not dispatchable again before this time (post-failure backoff).
  Duration requeue_ready;
  /// Energy/carbon at the last checkpoint — the waste meter's zero point.
  Energy energy_mark;
  Carbon carbon_mark;
};

}  // namespace greenhpc::hpcsim
