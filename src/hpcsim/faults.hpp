#pragma once
// Fault-injection and degraded-feed contracts of the simulator.
//
// Real carbon-aware operation must survive hardware faults and grid-data
// outages (the deployability prerequisite behind sections 2.3 and 3.3):
// nodes fail — more often the older the fleet —, jobs on failed nodes
// lose work, and the carbon-intensity feed a scheduler trusts can go
// stale or silent. hpcsim only defines the contracts; the generators that
// produce failure schedules and outage windows live in the resilience/
// module, keeping the dependency graph acyclic (mirroring policy.hpp).
//
// Everything here is strictly opt-in: a default-constructed
// FaultInjectionConfig and a null IntensityFeed reproduce the perfect-
// hardware, always-fresh-feed behaviour bit for bit.

#include <cstdint>
#include <optional>
#include <vector>

#include "util/units.hpp"

namespace greenhpc::hpcsim {

/// One injected failure: `nodes` nodes go down at `time` and return to
/// service `repair` later. Jobs occupying failed nodes are killed and
/// requeued (see FaultInjectionConfig); down nodes draw no power and are
/// unavailable to the scheduler until repaired.
struct NodeFailureEvent {
  Duration time;
  int nodes = 1;
  Duration repair = hours(4.0);
};

/// Full fault-injection setup for one simulation. The event schedule is
/// pre-generated (resilience::FaultModel) so determinism is trivial: the
/// same schedule and victim seed always reproduce the same run.
struct FaultInjectionConfig {
  /// Failure events, ascending by time. Empty = perfect hardware.
  std::vector<NodeFailureEvent> events;
  /// A job killed more than `max_retries` times is abandoned (JobRecord
  /// marks it `failed`), bounding the work a pathological node can eat.
  int max_retries = 3;
  /// Requeue delay after the n-th failure: backoff_base * 2^(n-1),
  /// capped at max_backoff (capped exponential backoff — without the cap
  /// a generous retry budget stalls jobs for simulated years).
  Duration backoff_base = minutes(10.0);
  Duration max_backoff = hours(24.0);
  /// Seed of the victim-selection stream (which job sits on a failed
  /// node); independent of the schedule's seed.
  std::uint64_t victim_seed = 0x5eedf417u;

  [[nodiscard]] bool enabled() const { return !events.empty(); }
};

/// Observation channel between the ground-truth intensity trace and what
/// policies see. Each tick the simulator offers the true sample; the feed
/// returns it (possibly perturbed) or nullopt for a dropout, in which
/// case the simulator holds the last known value and grows the staleness
/// that SimulationView::carbon_signal_staleness() reports. Carbon
/// *accounting* always uses the ground truth — emissions happen on the
/// real grid whether or not the feed reports them.
class IntensityFeed {
 public:
  virtual ~IntensityFeed() = default;
  /// Observed sample at `now`, or nullopt while the feed is down.
  [[nodiscard]] virtual std::optional<double> observe(Duration now,
                                                      double true_value) = 0;
};

}  // namespace greenhpc::hpcsim
