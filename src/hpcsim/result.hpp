#pragma once
// Simulation outputs and the summary metrics the section-3 experiments
// report.

#include <string>
#include <vector>

#include "hpcsim/cluster.hpp"
#include "hpcsim/job.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::hpcsim {

/// Final record of one job after simulation.
struct JobRecord {
  JobSpec spec;
  bool completed = false;
  bool killed = false;  ///< terminated at its walltime limit
  Duration submit;
  Duration start;
  Duration finish;
  int suspend_count = 0;
  Energy energy;
  Carbon carbon;

  [[nodiscard]] Duration wait() const { return start - submit; }
  [[nodiscard]] Duration turnaround() const { return finish - submit; }
  /// Bounded slowdown with the customary 10-minute bound.
  [[nodiscard]] double bounded_slowdown() const;
};

/// Complete result of one simulation run.
struct SimulationResult {
  std::vector<JobRecord> jobs;
  util::TimeSeries system_power;     ///< total draw per tick (W)
  util::TimeSeries power_budget;     ///< budget in force per tick (W)
  util::TimeSeries carbon_intensity; ///< intensity per tick (g/kWh)
  util::TimeSeries busy_nodes;       ///< allocated nodes per tick

  Duration makespan;                 ///< last finish time
  Power idle_floor;                  ///< draw with every node idle (cluster constant)
  Energy total_energy;               ///< all nodes, incl. idle draw
  Carbon total_carbon;               ///< operational carbon of total_energy
  Energy idle_energy;                ///< idle-node share of total_energy
  Carbon idle_carbon;
  int completed_jobs = 0;
  /// Jobs terminated by walltime enforcement.
  int walltime_kills = 0;
  /// Ticks in which even the floor power cap could not satisfy the budget.
  int budget_violations = 0;

  /// Node-seconds allocated / (nodes * makespan).
  [[nodiscard]] double utilization(const ClusterConfig& cluster) const;
  /// Mean wait over completed jobs, hours.
  [[nodiscard]] double mean_wait_hours() const;
  /// Mean bounded slowdown over completed jobs.
  [[nodiscard]] double mean_bounded_slowdown() const;
  /// Completed work throughput: completed node-seconds per wall-clock hour.
  [[nodiscard]] double node_hours_completed() const;
  /// Carbon per unit of delivered work (g per completed node-hour).
  [[nodiscard]] double carbon_per_node_hour() const;
  /// Share of *job-attributable* energy (system draw above the all-idle
  /// floor) consumed while intensity was at or below the given threshold.
  /// Subtracting the idle floor keeps the metric sensitive to scheduling
  /// decisions even on lightly loaded systems.
  [[nodiscard]] double green_energy_share(double threshold_g_per_kwh) const;
};

}  // namespace greenhpc::hpcsim
