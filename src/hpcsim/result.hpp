#pragma once
// Simulation outputs and the summary metrics the section-3 experiments
// report.

#include <string>
#include <vector>

#include "hpcsim/cluster.hpp"
#include "hpcsim/job.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::hpcsim {

/// Final record of one job after simulation.
struct JobRecord {
  JobSpec spec;
  bool completed = false;
  bool killed = false;  ///< terminated at its walltime limit
  bool failed = false;  ///< abandoned after exhausting the failure-retry budget
  Duration submit;
  Duration start;
  Duration finish;
  int suspend_count = 0;
  int checkpoint_count = 0;  ///< in-place checkpoints written
  int failure_count = 0;     ///< node-failure kills suffered
  Energy energy;
  Carbon carbon;

  [[nodiscard]] Duration wait() const { return start - submit; }
  [[nodiscard]] Duration turnaround() const { return finish - submit; }
  /// Bounded slowdown with the customary 10-minute bound.
  [[nodiscard]] double bounded_slowdown() const;
};

/// Complete result of one simulation run.
struct SimulationResult {
  std::vector<JobRecord> jobs;
  util::TimeSeries system_power;     ///< total draw per tick (W)
  util::TimeSeries power_budget;     ///< budget in force per tick (W)
  util::TimeSeries carbon_intensity; ///< intensity per tick (g/kWh)
  util::TimeSeries busy_nodes;       ///< allocated nodes per tick

  Duration makespan;                 ///< last finish time
  Power idle_floor;                  ///< draw with every node idle (cluster constant)
  Energy total_energy;               ///< all nodes, incl. idle draw
  Carbon total_carbon;               ///< operational carbon of total_energy
  Energy idle_energy;                ///< idle-node share of total_energy
  Carbon idle_carbon;
  int completed_jobs = 0;
  /// Jobs terminated by walltime enforcement.
  int walltime_kills = 0;
  /// Ticks in which even the floor power cap could not satisfy the budget.
  int budget_violations = 0;

  // --- resilience metrics (all zero without fault injection) ---
  /// Individual node-down events applied.
  int node_failures = 0;
  /// Job kills caused by node failures (each may retry).
  int job_failures = 0;
  /// Jobs abandoned after exhausting their retry budget.
  int jobs_failed = 0;
  /// In-place checkpoints written across all jobs.
  int checkpoints_taken = 0;
  /// Natural-size node-seconds of progress destroyed by failures.
  double lost_node_seconds = 0.0;
  /// Natural-size node-seconds spent writing checkpoints (overhead).
  double checkpoint_node_seconds = 0.0;
  /// Energy consumed by work that a failure later destroyed.
  Energy wasted_energy;
  /// Carbon emitted for that destroyed work — emissions with nothing to
  /// show for them, the quantity checkpointing exists to bound.
  Carbon wasted_carbon;

  /// Node-seconds allocated / (nodes * makespan).
  [[nodiscard]] double utilization(const ClusterConfig& cluster) const;
  /// Mean wait over completed jobs, hours.
  [[nodiscard]] double mean_wait_hours() const;
  /// Mean bounded slowdown over completed jobs.
  [[nodiscard]] double mean_bounded_slowdown() const;
  /// Completed work throughput: completed node-seconds per wall-clock hour.
  [[nodiscard]] double node_hours_completed() const;
  /// Carbon per unit of delivered work (g per completed node-hour).
  [[nodiscard]] double carbon_per_node_hour() const;
  /// Share of *job-attributable* energy (system draw above the all-idle
  /// floor) consumed while intensity was at or below the given threshold.
  /// Subtracting the idle floor keeps the metric sensitive to scheduling
  /// decisions even on lightly loaded systems.
  [[nodiscard]] double green_energy_share(double threshold_g_per_kwh) const;
  /// Delivered node-seconds of the busy-node series (allocation time).
  [[nodiscard]] double busy_node_seconds() const;
  /// Goodput: node-seconds of *retained completed work* (nodes_used x
  /// runtime of completed jobs) over all busy node-seconds delivered.
  /// Failures and checkpoint overhead burn allocation without retained
  /// work, so this is the headline graceful-degradation metric.
  [[nodiscard]] double goodput_fraction() const;
  /// Share of delivered busy node-seconds spent writing checkpoints.
  [[nodiscard]] double checkpoint_overhead_share() const;
  /// Node-hours of progress destroyed by failures.
  [[nodiscard]] double lost_node_hours() const { return lost_node_seconds / 3600.0; }
};

}  // namespace greenhpc::hpcsim
