#include "hpcsim/result.hpp"

#include <algorithm>

#include "hpcsim/cluster.hpp"
#include "util/error.hpp"

namespace greenhpc::hpcsim {

double JobRecord::bounded_slowdown() const {
  constexpr double kBoundSeconds = 600.0;
  const double denom = std::max(spec.runtime.seconds(), kBoundSeconds);
  return std::max(1.0, turnaround().seconds() / denom);
}

double SimulationResult::utilization(const ClusterConfig& cluster) const {
  if (makespan.seconds() <= 0.0 || busy_nodes.empty()) return 0.0;
  const double node_seconds = busy_nodes.integrate(busy_nodes.start(), busy_nodes.end());
  return node_seconds / (static_cast<double>(cluster.nodes) * makespan.seconds());
}

double SimulationResult::mean_wait_hours() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (!j.completed) continue;
    total += j.wait().hours();
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

double SimulationResult::mean_bounded_slowdown() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (!j.completed) continue;
    total += j.bounded_slowdown();
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

double SimulationResult::node_hours_completed() const {
  double node_hours = 0.0;
  for (const auto& j : jobs) {
    if (!j.completed) continue;
    node_hours += static_cast<double>(j.spec.nodes_used) * j.spec.runtime.hours();
  }
  return node_hours;
}

double SimulationResult::carbon_per_node_hour() const {
  const double nh = node_hours_completed();
  return nh > 0.0 ? total_carbon.grams() / nh : 0.0;
}

double SimulationResult::busy_node_seconds() const {
  if (busy_nodes.empty()) return 0.0;
  return busy_nodes.integrate(busy_nodes.start(), busy_nodes.end());
}

double SimulationResult::goodput_fraction() const {
  const double delivered = busy_node_seconds();
  if (delivered <= 0.0) return 0.0;
  double retained = 0.0;
  for (const auto& j : jobs) {
    if (!j.completed) continue;
    retained += static_cast<double>(j.spec.nodes_used) * j.spec.runtime.seconds();
  }
  return std::min(1.0, retained / delivered);
}

double SimulationResult::checkpoint_overhead_share() const {
  const double delivered = busy_node_seconds();
  return delivered > 0.0 ? checkpoint_node_seconds / delivered : 0.0;
}

double SimulationResult::green_energy_share(double threshold_g_per_kwh) const {
  if (system_power.empty() || carbon_intensity.empty()) return 0.0;
  double green = 0.0;
  double total = 0.0;
  const std::size_t n = std::min(system_power.size(), carbon_intensity.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Per-tick mean draw above the idle floor; the constant step cancels.
    const double e = std::max(0.0, system_power.at(i) - idle_floor.watts());
    total += e;
    if (carbon_intensity.at(i) <= threshold_g_per_kwh) green += e;
  }
  return total > 0.0 ? green / total : 0.0;
}

}  // namespace greenhpc::hpcsim
