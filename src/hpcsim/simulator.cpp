#include "hpcsim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace greenhpc::hpcsim {

namespace {

// Scheduler-visible decision counters. Function-local statics keep the
// registry lookup off the hot path; all updates are relaxed atomics and
// never feed back into simulation state (determinism contract).
obs::Counter& sim_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

/// Dense-table bound: ids beyond this multiple of the job count (plus a
/// fixed floor) indicate a sparse id space where the table would waste
/// memory; such workloads fall back to the hash map.
constexpr std::size_t kDenseSlack = 4;
constexpr std::size_t kDenseFloor = 1024;
}  // namespace

Simulator::Simulator(Config config, util::Shared<std::vector<JobSpec>> jobs)
    : cfg_(std::move(config)),
      jobs_(std::move(jobs)),
      budget_now_(cfg_.cluster.max_power()),
      result_{.jobs = {},
              .system_power = util::TimeSeries(seconds(0.0), cfg_.cluster.tick),
              .power_budget = util::TimeSeries(seconds(0.0), cfg_.cluster.tick),
              .carbon_intensity = util::TimeSeries(seconds(0.0), cfg_.cluster.tick),
              .busy_nodes = util::TimeSeries(seconds(0.0), cfg_.cluster.tick),
              .makespan = seconds(0.0),
              .idle_floor = cfg_.cluster.idle_power(),
              .total_energy = {},
              .total_carbon = {},
              .idle_energy = {},
              .idle_carbon = {}} {
  cfg_.cluster.validate();
  GREENHPC_REQUIRE(cfg_.carbon_intensity && !cfg_.carbon_intensity->empty(),
                   "simulator requires a carbon-intensity trace");
  GREENHPC_REQUIRE(static_cast<bool>(jobs_), "simulator requires a job list");
  GREENHPC_REQUIRE(cfg_.faults.max_retries >= 0, "max_retries must be >= 0");
  GREENHPC_REQUIRE(cfg_.faults.backoff_base.seconds() >= 0.0,
                   "backoff base must be >= 0");
  GREENHPC_REQUIRE(cfg_.faults.max_backoff.seconds() > 0.0,
                   "max backoff must be > 0");
  for (const auto& e : cfg_.faults.events) {
    GREENHPC_REQUIRE(e.time.seconds() >= 0.0 && e.nodes >= 1 &&
                         e.repair.seconds() > 0.0,
                     "malformed node-failure event");
  }
  std::stable_sort(cfg_.faults.events.begin(), cfg_.faults.events.end(),
                   [](const NodeFailureEvent& a, const NodeFailureEvent& b) {
                     return a.time < b.time;
                   });
  victim_rng_ = util::Rng(cfg_.faults.victim_seed);
  free_nodes_ = cfg_.cluster.nodes;
  slots_.reserve(jobs_->size());
  JobId max_id = -1;
  bool dense_ok = true;
  for (const JobSpec& j : *jobs_) {
    j.validate();
    GREENHPC_REQUIRE(j.nodes_requested <= cfg_.cluster.nodes &&
                         j.max_nodes <= cfg_.cluster.nodes,
                     "job larger than the cluster");
    const auto idx = slots_.size();
    GREENHPC_REQUIRE(index_.emplace(j.id, idx).second, "duplicate job id");
    if (j.id < 0) dense_ok = false;
    max_id = std::max(max_id, j.id);
    slots_.push_back(JobSlot{.spec = &j, .info = {}});
  }
  if (dense_ok && !slots_.empty() &&
      static_cast<std::size_t>(max_id) <
          kDenseSlack * slots_.size() + kDenseFloor) {
    dense_index_.assign(static_cast<std::size_t>(max_id) + 1, -1);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      dense_index_[static_cast<std::size_t>(slots_[i].spec->id)] =
          static_cast<std::int32_t>(i);
    }
  }
  arrival_order_.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) arrival_order_[i] = i;
  std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (slots_[a].spec->submit != slots_[b].spec->submit) {
                       return slots_[a].spec->submit < slots_[b].spec->submit;
                     }
                     return slots_[a].spec->id < slots_[b].spec->id;
                   });

  // Flatten the static job description into the SoA core and expose the
  // columns through the policy-facing table view.
  const std::size_t n = slots_.size();
  core_.init(n);
  for (std::size_t i = 0; i < n; ++i) core_.fill_static(i, *slots_[i].spec);
  table_.eff_power_w = {core_.eff_power_w, n};
  table_.runtime_s = {core_.runtime_s, n};
  table_.walltime_s = {core_.walltime_s, n};
  table_.submit_s = {core_.submit_s, n};
  table_.ckpt_overhead_s = {core_.ckpt_overhead_s, n};
  table_.nodes_requested = {core_.nodes_requested, n};
  table_.nodes_used = {core_.nodes_used, n};
  table_.min_nodes = {core_.min_nodes, n};
  table_.max_nodes = {core_.max_nodes, n};
  table_.kind = {core_.kind, n};
  table_.checkpointable = {core_.checkpointable, n};
  table_.progress = {core_.progress, n};
  table_.wall_used_s = {core_.wall_used_s, n};
  table_.start_s = {core_.start_s, n};
  table_.last_checkpoint_s = {core_.last_checkpoint_s, n};
  table_.alloc_nodes = {core_.alloc_nodes, n};
}

std::size_t Simulator::slot_index_slow(JobId id) const {
  const auto it = index_.find(id);
  GREENHPC_REQUIRE(it != index_.end(), "unknown job id");
  return it->second;
}

void Simulator::list_push(std::vector<JobId>& list, Queue kind, JobId id) {
  const std::size_t idx = slot_index(id);
  JobSlot& s = slots_[idx];
  s.queue = kind;
  s.list_pos = static_cast<std::int32_t>(list.size());
  list.push_back(id);
  if (&list == &running_) running_slots_.push_back(idx);
  ++epoch_;
}

void Simulator::list_erase(std::vector<JobId>& list, JobId id) {
  JobSlot& s = slots_[slot_index(id)];
  const auto pos = static_cast<std::size_t>(s.list_pos);
  GREENHPC_REQUIRE(pos < list.size() && list[pos] == id,
                   "phase-list bookkeeping out of sync");
  list.erase(list.begin() + static_cast<std::ptrdiff_t>(pos));
  if (&list == &running_) {
    running_slots_.erase(running_slots_.begin() +
                         static_cast<std::ptrdiff_t>(pos));
  }
  for (std::size_t i = pos; i < list.size(); ++i) {
    slots_[slot_index(list[i])].list_pos = static_cast<std::int32_t>(i);
  }
  s.queue = Queue::None;
  s.list_pos = -1;
  ++epoch_;
}

int Simulator::busy_nodes_of(std::size_t i) const {
  const int alloc = core_.alloc_nodes[i];
  if (core_.kind[i] == JobKind::Malleable) return alloc;
  return std::min(alloc, static_cast<int>(core_.nodes_used[i]));
}

double Simulator::scale_speed(std::size_t i) const {
  const double busy = static_cast<double>(busy_nodes_of(i));
  const double natural = static_cast<double>(core_.nodes_used[i]);
  if (busy == natural) return 1.0;
  return std::pow(busy / natural, core_.scale_gamma[i]);
}

double Simulator::cap_speed(std::size_t i, double cap) const {
  if (cap == 1.0) return 1.0;  // pow(1, alpha) == 1 exactly
  if (cap != core_.cap_key[i]) {
    core_.cap_key[i] = cap;
    core_.cap_val[i] = std::pow(cap, core_.power_alpha[i]);
  }
  return core_.cap_val[i];
}

double Simulator::scale_factor(std::size_t i) const {
  const int busy = busy_nodes_of(i);
  if (busy == core_.nodes_used[i]) return 1.0;
  if (busy != core_.scale_key[i]) {
    core_.scale_key[i] = busy;
    core_.scale_val[i] = scale_speed(i);
  }
  return core_.scale_val[i];
}

double Simulator::carbon_intensity_at(Duration t) const {
  return cfg_.carbon_intensity->sample_at_clamped(t);
}

const JobSpec& Simulator::spec(JobId id) const { return *slot(id).spec; }

const JobRuntimeInfo& Simulator::info(JobId id) const {
  // The SoA core owns the hot fields; mirror them into the cold struct so
  // the legacy per-job accessor stays coherent for policies and tests.
  const std::size_t i = slot_index(id);
  JobRuntimeInfo& inf = slots_[i].info;
  inf.progress = core_.progress[i];
  inf.alloc_nodes = core_.alloc_nodes[i];
  inf.start = seconds(core_.start_s[i]);
  inf.wall_used = seconds(core_.wall_used_s[i]);
  inf.last_checkpoint = seconds(core_.last_checkpoint_s[i]);
  inf.energy = joules(core_.energy_j[i]);
  inf.carbon = grams_co2(core_.carbon_g[i]);
  return inf;
}

Duration Simulator::estimated_remaining(JobId id) const {
  const std::size_t i = slot_index(id);
  const JobSlot& s = slots_[i];
  const double remaining_fraction = std::max(0.0, 1.0 - core_.progress[i]);
  switch (s.info.phase) {
    case JobPhase::Pending:
      return s.spec->walltime;
    case JobPhase::Running: {
      const double speed = cap_speed(i, last_cap_) * scale_factor(i);
      return seconds(remaining_fraction * core_.runtime_s[i] / std::max(speed, 1e-9));
    }
    case JobPhase::Suspended:
      return seconds(remaining_fraction * core_.runtime_s[i]);
    case JobPhase::Done:
      return seconds(0.0);
  }
  return seconds(0.0);
}

Power Simulator::full_draw() const {
  double watts_total =
      cfg_.cluster.node_idle.watts() * static_cast<double>(free_nodes_);
  for (const std::size_t i : running_slots_) {
    const int busy = busy_nodes_of(i);
    const int extra = core_.alloc_nodes[i] - busy;
    watts_total += static_cast<double>(busy) * core_.eff_power_w[i] +
                   static_cast<double>(extra) * cfg_.cluster.node_idle.watts();
  }
  return watts(watts_total);
}

bool Simulator::allocation_valid(const JobSpec& job, int nodes) const {
  if (nodes < 1 || nodes > cfg_.cluster.nodes) return false;
  if (job.kind == JobKind::Rigid) return nodes == job.nodes_requested;
  return nodes >= job.min_nodes && nodes <= job.max_nodes;
}

bool Simulator::start(JobId id, int nodes) {
  const std::size_t i = slot_index(id);
  JobSlot& s = slots_[i];
  if (s.info.phase != JobPhase::Pending) return false;
  if (!allocation_valid(*s.spec, nodes)) return false;
  if (nodes > free_nodes_) return false;
  s.info.phase = JobPhase::Running;
  core_.alloc_nodes[i] = nodes;
  core_.start_s[i] = now_.seconds();
  core_.last_checkpoint_s[i] = now_.seconds();  // periodic-checkpoint clock
  free_nodes_ -= nodes;
  // A Pending job sits in the pending queue, or still in the requeue
  // buffer while its post-failure backoff runs (a policy starting it
  // early via a remembered id is legal).
  list_erase(s.queue == Queue::Requeued ? requeued_ : pending_, id);
  list_push(running_, Queue::Running, id);
  static obs::Counter& started = sim_counter("sim.jobs_started");
  started.add();
  return true;
}

bool Simulator::suspend(JobId id) {
  const std::size_t i = slot_index(id);
  JobSlot& s = slots_[i];
  if (s.info.phase != JobPhase::Running || !s.spec->checkpointable) return false;
  // Charge the checkpoint overhead as lost progress (bounded at zero).
  const double lost = core_.ckpt_overhead_s[i] / core_.runtime_s[i];
  core_.progress[i] = std::max(0.0, core_.progress[i] - lost);
  // A suspend writes a checkpoint: failures roll back here, not to scratch.
  s.info.ckpt_progress = core_.progress[i];
  s.info.energy_mark = joules(core_.energy_j[i]);
  s.info.carbon_mark = grams_co2(core_.carbon_g[i]);
  free_nodes_ += core_.alloc_nodes[i];
  core_.alloc_nodes[i] = 0;
  s.info.phase = JobPhase::Suspended;
  ++s.info.suspend_count;
  list_erase(running_, id);
  list_push(suspended_, Queue::Suspended, id);
  static obs::Counter& suspended = sim_counter("sim.jobs_suspended");
  suspended.add();
  return true;
}

bool Simulator::checkpoint(JobId id) {
  const std::size_t i = slot_index(id);
  JobSlot& s = slots_[i];
  if (s.info.phase != JobPhase::Running || !s.spec->checkpointable) return false;
  // The job keeps its nodes but spends checkpoint_overhead writing state
  // instead of progressing; charged as lost progress like suspend.
  const double lost = core_.ckpt_overhead_s[i] / core_.runtime_s[i];
  core_.progress[i] = std::max(0.0, core_.progress[i] - lost);
  s.info.ckpt_progress = core_.progress[i];
  core_.last_checkpoint_s[i] = now_.seconds();
  ++s.info.checkpoint_count;
  ++result_.checkpoints_taken;
  result_.checkpoint_node_seconds +=
      core_.ckpt_overhead_s[i] * static_cast<double>(core_.nodes_used[i]);
  s.info.energy_mark = joules(core_.energy_j[i]);
  s.info.carbon_mark = grams_co2(core_.carbon_g[i]);
  ++epoch_;
  static obs::Counter& checkpoints = sim_counter("sim.checkpoints");
  checkpoints.add();
  return true;
}

bool Simulator::resume(JobId id, int nodes) {
  const std::size_t i = slot_index(id);
  JobSlot& s = slots_[i];
  if (s.info.phase != JobPhase::Suspended) return false;
  if (!allocation_valid(*s.spec, nodes)) return false;
  if (nodes > free_nodes_) return false;
  s.info.phase = JobPhase::Running;
  core_.alloc_nodes[i] = nodes;
  core_.last_checkpoint_s[i] = now_.seconds();
  free_nodes_ -= nodes;
  list_erase(suspended_, id);
  list_push(running_, Queue::Running, id);
  static obs::Counter& resumed = sim_counter("sim.jobs_resumed");
  resumed.add();
  return true;
}

bool Simulator::reshape(JobId id, int nodes) {
  const std::size_t i = slot_index(id);
  JobSlot& s = slots_[i];
  if (s.info.phase != JobPhase::Running || s.spec->kind != JobKind::Malleable) return false;
  if (!allocation_valid(*s.spec, nodes)) return false;
  const int delta = nodes - core_.alloc_nodes[i];
  if (delta > free_nodes_) return false;
  free_nodes_ -= delta;
  core_.alloc_nodes[i] = nodes;
  ++epoch_;
  static obs::Counter& reshapes = sim_counter("sim.reshapes");
  reshapes.add();
  return true;
}

void Simulator::fail_job(JobId id) {
  const std::size_t i = slot_index(id);
  JobSlot& s = slots_[i];
  const double restored =
      s.spec->checkpointable ? std::min(s.info.ckpt_progress, core_.progress[i]) : 0.0;
  const double lost = std::max(0.0, core_.progress[i] - restored);
  result_.lost_node_seconds +=
      lost * core_.runtime_s[i] * static_cast<double>(core_.nodes_used[i]);
  // Everything burnt since the last checkpoint produced no retained work.
  result_.wasted_energy += joules(core_.energy_j[i]) - s.info.energy_mark;
  result_.wasted_carbon += grams_co2(core_.carbon_g[i]) - s.info.carbon_mark;
  s.info.energy_mark = joules(core_.energy_j[i]);
  s.info.carbon_mark = grams_co2(core_.carbon_g[i]);
  free_nodes_ += core_.alloc_nodes[i];
  core_.alloc_nodes[i] = 0;
  core_.progress[i] = restored;
  // Requeue resets the walltime clock to the restored execution point.
  core_.wall_used_s[i] = restored * core_.runtime_s[i];
  ++s.info.failure_count;
  ++result_.job_failures;
  static obs::Counter& failures = sim_counter("sim.job_failures");
  failures.add();
  list_erase(running_, id);
  if (s.info.failure_count > cfg_.faults.max_retries) {
    s.info.phase = JobPhase::Done;
    s.info.failed = true;
    s.info.finish = now_;
    ++result_.jobs_failed;
    result_.makespan = std::max(result_.makespan, s.info.finish);
    static obs::Counter& abandoned = sim_counter("sim.jobs_abandoned");
    abandoned.add();
    return;
  }
  s.info.phase = JobPhase::Pending;
  const double backoff = std::min(
      cfg_.faults.backoff_base.seconds() *
          std::pow(2.0, static_cast<double>(s.info.failure_count - 1)),
      cfg_.faults.max_backoff.seconds());
  s.info.requeue_ready = now_ + seconds(backoff);
  list_push(requeued_, Queue::Requeued, id);
  static obs::Counter& requeued = sim_counter("sim.jobs_requeued");
  requeued.add();
}

void Simulator::fail_one_node() {
  // The node pool is anonymous, so the victim is drawn from the seeded
  // stream: a uniformly chosen up-node is idle with probability
  // free/up, else it hits a running job in proportion to its allocation.
  const int up = cfg_.cluster.nodes - nodes_down_;
  const std::int64_t r = victim_rng_.uniform_int(0, up - 1);
  if (r < free_nodes_) {
    --free_nodes_;
    ++epoch_;
    return;
  }
  std::int64_t acc = free_nodes_;
  for (std::size_t j = 0; j < running_.size(); ++j) {
    acc += core_.alloc_nodes[running_slots_[j]];
    if (r < acc) {
      fail_job(running_[j]);  // releases the job's whole allocation...
      --free_nodes_;          // ...then the failed node itself goes down
      ++epoch_;
      return;
    }
  }
  // Every up-node is either free or allocated to a running job, so the
  // draw must have landed above; reaching here means the node accounting
  // (free_nodes_ + sum of allocations == up) is broken.
  GREENHPC_REQUIRE(false,
                   "fault victim draw landed on neither a free node nor a "
                   "running job: node bookkeeping violated");
}

void Simulator::advance_faults() {
  if (!cfg_.faults.enabled()) return;
  // 1. repairs whose downtime has elapsed
  std::size_t w = 0;
  for (std::size_t i = 0; i < repairs_.size(); ++i) {
    if (repairs_[i] <= now_) {
      --nodes_down_;
      ++free_nodes_;
      ++epoch_;
    } else {
      repairs_[w++] = repairs_[i];
    }
  }
  repairs_.resize(w);
  // 2. due failure events
  const auto& events = cfg_.faults.events;
  while (next_failure_ < events.size() && events[next_failure_].time <= now_) {
    const auto& e = events[next_failure_];
    for (int k = 0; k < e.nodes; ++k) {
      if (nodes_down_ >= cfg_.cluster.nodes) break;  // nothing left to kill
      fail_one_node();
      ++nodes_down_;
      repairs_.push_back(now_ + e.repair);
      ++result_.node_failures;
      static obs::Counter& node_failures = sim_counter("sim.node_failures");
      node_failures.add();
    }
    ++next_failure_;
  }
  // 3. requeued jobs whose backoff expired rejoin the pending queue
  //    (stable order: failure order is retry order)
  w = 0;
  for (std::size_t i = 0; i < requeued_.size(); ++i) {
    const JobId id = requeued_[i];
    JobSlot& s = slots_[slot_index(id)];
    if (s.info.requeue_ready <= now_) {
      list_push(pending_, Queue::Pending, id);
    } else {
      s.list_pos = static_cast<std::int32_t>(w);
      requeued_[w++] = id;
    }
  }
  requeued_.resize(w);
}

void Simulator::observe_intensity() {
  ci_true_ = cfg_.carbon_intensity->sample_at_clamped(now_, ci_cursor_);
  if (cfg_.feed == nullptr) {
    ci_now_ = ci_true_;
    staleness_ = seconds(0.0);
    return;
  }
  const auto obs = cfg_.feed->observe(now_, ci_true_);
  if (obs.has_value()) {
    ci_now_ = *obs;
    last_fresh_ = now_;
    ever_fresh_ = true;
  } else if (!ever_fresh_) {
    // Feed down from the very start: hold the t=0 ground truth as the
    // install-time reading; staleness then grows from simulation start.
    ci_now_ = cfg_.carbon_intensity->sample_at_clamped(seconds(0.0));
  }
  staleness_ = now_ - last_fresh_;
}

void Simulator::integrate_tick() {
  const double tick_s = cfg_.cluster.tick.seconds();
  const double idle_w = cfg_.cluster.node_idle.watts();

  // Uniform cap on the busy (job) share when over budget.
  double busy_full_w = 0.0;
  double baseline_w = idle_w * static_cast<double>(free_nodes_);
  const std::size_t nrun = running_slots_.size();
  for (std::size_t j = 0; j < nrun; ++j) {
    const std::size_t i = running_slots_[j];
    const int busy = busy_nodes_of(i);
    const int extra = core_.alloc_nodes[i] - busy;
    busy_full_w += static_cast<double>(busy) * core_.eff_power_w[i];
    baseline_w += static_cast<double>(extra) * idle_w;
  }
  double cap = 1.0;
  if (busy_full_w > 0.0 && baseline_w + busy_full_w > budget_now_.watts()) {
    cap = (budget_now_.watts() - baseline_w) / busy_full_w;
    if (cap < cfg_.cluster.min_cap_fraction) {
      cap = cfg_.cluster.min_cap_fraction;
      ++result_.budget_violations;
    }
    cap = std::min(cap, 1.0);
  } else if (busy_full_w == 0.0 && baseline_w > budget_now_.watts()) {
    ++result_.budget_violations;  // idle floor alone exceeds the budget
  }
  last_cap_ = cap;

  // Integrate each running job; handle mid-tick completion analytically.
  double tick_energy_j = 0.0;
  double busy_nodes_total = 0.0;
  bool any_finished = false;
  for (std::size_t j = 0; j < nrun; ++j) {
    const std::size_t i = running_slots_[j];
    JobSlot& s = slots_[i];
    const int busy = busy_nodes_of(i);
    const int extra = core_.alloc_nodes[i] - busy;
    const double speed = cap_speed(i, cap) * scale_factor(i);
    const double rate = speed / core_.runtime_s[i];  // progress per second
    const double draw_w = static_cast<double>(busy) * core_.eff_power_w[i] * cap +
                          static_cast<double>(extra) * idle_w;
    double dt = tick_s;
    if (rate > 0.0 && core_.progress[i] + rate * tick_s >= 1.0) {
      dt = (1.0 - core_.progress[i]) / rate;
      core_.progress[i] = 1.0;
      s.info.phase = JobPhase::Done;
      s.info.finish = now_ + seconds(dt);
      any_finished = true;
    } else {
      // Walltime enforcement: the clock only runs while the job executes.
      if (cfg_.cluster.enforce_walltime) {
        const double remaining_wall = core_.walltime_s[i] - core_.wall_used_s[i];
        if (remaining_wall <= tick_s) {
          dt = std::max(0.0, remaining_wall);
          s.info.phase = JobPhase::Done;
          s.info.killed = true;
          s.info.finish = now_ + seconds(dt);
          any_finished = true;
          ++result_.walltime_kills;
          ++pending_kills_;  // batched: flushed once per span / tick
        }
      }
      core_.progress[i] += rate * dt;
    }
    core_.wall_used_s[i] += dt;
    const double job_energy_j = draw_w * dt;
    core_.energy_j[i] += job_energy_j;
    core_.carbon_g[i] += job_energy_j / 3.6e6 * ci_true_;
    tick_energy_j += job_energy_j;
    busy_nodes_total += static_cast<double>(core_.alloc_nodes[i]) * (dt / tick_s);
  }
  if (any_finished) {
    // Single order-preserving compaction of the running list: completed
    // slots release their nodes; survivors keep their relative order (and
    // get their positions rewritten once), so policies observe the same
    // queue the per-id erase produced.
    ++epoch_;
    std::size_t w = 0;
    for (std::size_t r = 0; r < running_.size(); ++r) {
      const JobId id = running_[r];
      const std::size_t i = running_slots_[r];
      JobSlot& s = slots_[i];
      if (s.info.phase == JobPhase::Done) {
        free_nodes_ += core_.alloc_nodes[i];
        core_.alloc_nodes[i] = 0;
        s.queue = Queue::None;
        s.list_pos = -1;
        result_.makespan = std::max(result_.makespan, s.info.finish);
        if (!s.info.killed) {
          ++result_.completed_jobs;
          ++pending_completions_;  // batched: flushed once per span / tick
        }
      } else {
        s.list_pos = static_cast<std::int32_t>(w);
        running_[w] = id;
        running_slots_[w] = i;
        ++w;
      }
    }
    running_.resize(w);
    running_slots_.resize(w);
  }

  // Idle draw: nodes free for the whole tick plus freed fractions of
  // finishing jobs are approximated by end-of-tick free count.
  const double idle_energy_j = idle_w * static_cast<double>(free_nodes_) * tick_s;
  tick_energy_j += idle_energy_j;
  result_.idle_energy += joules(idle_energy_j);
  result_.idle_carbon += grams_co2(idle_energy_j / 3.6e6 * ci_true_);
  result_.total_energy += joules(tick_energy_j);
  result_.total_carbon += grams_co2(tick_energy_j / 3.6e6 * ci_true_);

  result_.system_power.push_back(tick_energy_j / tick_s);
  result_.power_budget.push_back(budget_now_.watts());
  // Accounting series records the ground truth; policies' observed/held
  // signal is exposed through intensity_history() and telemetry below.
  result_.carbon_intensity.push_back(ci_true_);
  result_.busy_nodes.push_back(busy_nodes_total);
  if (cfg_.telemetry != nullptr) {
    cfg_.telemetry->record("system.power", now_, tick_energy_j / tick_s);
    cfg_.telemetry->record("system.budget", now_, budget_now_.watts());
    cfg_.telemetry->record("system.ci", now_, ci_true_);
    cfg_.telemetry->record("system.busy_nodes", now_, busy_nodes_total);
    if (cfg_.faults.enabled()) {
      cfg_.telemetry->record("system.nodes_down", now_,
                             static_cast<double>(nodes_down_));
    }
    if (cfg_.feed != nullptr) {
      cfg_.telemetry->record("system.ci_observed", now_, ci_now_);
      cfg_.telemetry->record("system.ci_staleness", now_, staleness_.seconds());
    }
  }
}

void Simulator::fast_forward_idle(Duration stop) {
  GREENHPC_TRACE_SPAN("sim.fast_forward");
  static obs::Counter& ff_ticks = sim_counter("sim.fast_forward_ticks");
  // Preconditions (checked by the caller): no job in any phase list, no
  // pending repairs, no power policy. Until `stop` (next arrival, next
  // fault event, or max_time) every tick is a pure idle-floor tick, so
  // this loop replays exactly the arithmetic integrate_tick performs on
  // an empty system — same accumulation order, same per-tick series
  // samples, same history and telemetry — while skipping the scheduler
  // call (nothing to schedule), the arrival scan and the fault machinery.
  const Duration tick = cfg_.cluster.tick;
  const double tick_s = tick.seconds();
  const double idle_w = cfg_.cluster.node_idle.watts();
  const double budget_w = budget_now_.watts();
  const bool idle_over_budget = idle_w * static_cast<double>(free_nodes_) > budget_w;
  while (now_ < stop) {
    observe_intensity();
    if (idle_over_budget) ++result_.budget_violations;
    last_cap_ = 1.0;
    double tick_energy_j = 0.0;
    const double idle_energy_j = idle_w * static_cast<double>(free_nodes_) * tick_s;
    tick_energy_j += idle_energy_j;
    result_.idle_energy += joules(idle_energy_j);
    result_.idle_carbon += grams_co2(idle_energy_j / 3.6e6 * ci_true_);
    result_.total_energy += joules(tick_energy_j);
    result_.total_carbon += grams_co2(tick_energy_j / 3.6e6 * ci_true_);
    result_.system_power.push_back(tick_energy_j / tick_s);
    result_.power_budget.push_back(budget_w);
    result_.carbon_intensity.push_back(ci_true_);
    result_.busy_nodes.push_back(0.0);
    if (cfg_.telemetry != nullptr) {
      cfg_.telemetry->record("system.power", now_, tick_energy_j / tick_s);
      cfg_.telemetry->record("system.budget", now_, budget_w);
      cfg_.telemetry->record("system.ci", now_, ci_true_);
      cfg_.telemetry->record("system.busy_nodes", now_, 0.0);
      if (cfg_.faults.enabled()) {
        cfg_.telemetry->record("system.nodes_down", now_,
                               static_cast<double>(nodes_down_));
      }
      if (cfg_.feed != nullptr) {
        cfg_.telemetry->record("system.ci_observed", now_, ci_now_);
        cfg_.telemetry->record("system.ci_staleness", now_, staleness_.seconds());
      }
    }
    ci_history_.push_back(ci_now_);
    now_ += tick;
    ff_ticks.add();
  }
}

void Simulator::flush_job_counters() {
  if (pending_completions_ > 0) {
    static obs::Counter& completed = sim_counter("sim.jobs_completed");
    completed.add(pending_completions_);
    pending_completions_ = 0;
  }
  if (pending_kills_ > 0) {
    static obs::Counter& kills = sim_counter("sim.walltime_kills");
    kills.add(pending_kills_);
    pending_kills_ = 0;
  }
}

std::size_t Simulator::run_span(SchedulingPolicy& sched, Duration hard_end,
                                Duration span_end, bool ride_arrivals) {
  GREENHPC_TRACE_SPAN("sim.span");
  static obs::Counter& span_ticks = sim_counter("sim.span_ticks");
  static obs::Counter& spans_counter = sim_counter("sim.spans");
  static obs::Counter& span_event_ticks = sim_counter("sim.span_completion_ticks");
  const Duration tick = cfg_.cluster.tick;
  const double tick_s = tick.seconds();
  const double idle_w = cfg_.cluster.node_idle.watts();
  const bool enforce_wt = cfg_.cluster.enforce_walltime;
  const bool telemetry = cfg_.telemetry != nullptr;

  // With no feed the observed intensity IS the ground-truth trace, which
  // is piecewise-constant per trace segment — hoist the sample and reload
  // only at segment boundaries instead of per tick. seg_end starts at
  // now_ to force the first load; it persists across sub-spans (the
  // trace does not care about completions).
  const bool hoist_ci = cfg_.feed == nullptr;
  const util::TimeSeries& trace = *cfg_.carbon_intensity;
  Duration seg_end = now_;
  // Check-free chunks need a constant observed intensity and no per-tick
  // telemetry records (those carry the per-tick timestamp).
  const bool chunkable = hoist_ci && !telemetry;

  std::size_t n = 0;
  std::size_t event_ticks = 0;
  const double budget_w = budget_now_.watts();

  // Sub-span state: hoisted by the full pass below, or patched
  // incrementally after an in-span completion when the cap provably did
  // not move (see the incremental re-hoist at the bottom of the loop).
  std::size_t k = 0;
  double cap = 1.0;
  bool violation = false;
  double tick_energy_j = 0.0;
  double busy_nodes_total = 0.0;
  double idle_energy_j = 0.0;
  double idle_carbon_per_ci = 0.0;
  double total_carbon_per_ci = 0.0;
  double system_power_w = 0.0;
  bool full_hoist = true;
  bool cap_stable = false;

  // Sync the compacted survivors' integrator columns from the (always
  // authoritative) scratch accumulators. The in-span event path leaves
  // survivor columns mid-span stale, so every point where continuous
  // state may be read — span exit, horizon re-asks, a full re-gather —
  // scatters first. quiescent_over_release deliberately needs no sync:
  // its contract is discrete-state-only.
  const auto scatter = [this](std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      const auto i = static_cast<std::size_t>(core_.sp_slot[j]);
      core_.progress[i] = core_.sp_prog[j];
      core_.wall_used_s[i] = core_.sp_wall[j];
      core_.energy_j[i] = core_.sp_en[j];
      core_.carbon_g[i] = core_.sp_cb[j];
    }
  };

  // One iteration per sub-span: hoist constants for the current running
  // set, integrate flat ticks to the next finish, resolve the finish
  // in-kernel, re-attest, continue. The loop exits at the horizon / hard
  // bound, or at the first release the policy reacts to.
  for (;;) {
  if (full_hoist) {
  k = running_slots_.size();

  // Per-sub-span constants, computed with integrate_tick's exact
  // operations on the frozen discrete state. Same operands, same order:
  // the values integrate_tick would recompute tick after tick are
  // hoisted, not approximated.
  double busy_full_w = 0.0;
  double baseline_w = idle_w * static_cast<double>(free_nodes_);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = running_slots_[j];
    const int busy = busy_nodes_of(i);
    const int extra = core_.alloc_nodes[i] - busy;
    busy_full_w += static_cast<double>(busy) * core_.eff_power_w[i];
    baseline_w += static_cast<double>(extra) * idle_w;
  }
  cap = 1.0;
  violation = false;
  if (busy_full_w > 0.0 && baseline_w + busy_full_w > budget_now_.watts()) {
    cap = (budget_now_.watts() - baseline_w) / busy_full_w;
    if (cap < cfg_.cluster.min_cap_fraction) {
      cap = cfg_.cluster.min_cap_fraction;
      violation = true;
    }
    cap = std::min(cap, 1.0);
  } else if (busy_full_w == 0.0 && baseline_w > budget_now_.watts()) {
    violation = true;  // idle floor alone exceeds the budget
  }
  last_cap_ = cap;
  // A node release flips its draw between the job term and the idle
  // floor, moving total demand by at most idle_w per node — nodes *
  // idle_w across every possible compaction of this set. Slack beyond
  // that bound (plus a 1 W margin that dwarfs accumulated rounding)
  // proves the cap stays 1.0 and uncapped through any sequence of
  // in-span releases, so the per-event cap recompute can be skipped.
  cap_stable = cap == 1.0 && !violation &&
               budget_now_.watts() - (baseline_w + busy_full_w) >
                   static_cast<double>(cfg_.cluster.nodes) * idle_w + 1.0;

  // Gather the running set into the compacted scratch columns: per-tick
  // constants (energy, carbon integrand, progress step) plus local
  // accumulators that scatter back at sub-span exit. Accumulating
  // locally is bit-identical to accumulating in place — each accumulator
  // receives the same additions in the same order.
  tick_energy_j = 0.0;
  busy_nodes_total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t i = running_slots_[j];
    const int busy = busy_nodes_of(i);
    const int extra = core_.alloc_nodes[i] - busy;
    const double speed = cap_speed(i, cap) * scale_factor(i);
    const double rate = speed / core_.runtime_s[i];
    const double draw_w = static_cast<double>(busy) * core_.eff_power_w[i] * cap +
                          static_cast<double>(extra) * idle_w;
    const double job_energy_j = draw_w * tick_s;
    core_.sp_slot[j] = static_cast<std::int32_t>(i);
    core_.sp_ej[j] = job_energy_j;
    core_.sp_dj[j] = job_energy_j / 3.6e6;
    core_.sp_rp[j] = rate * tick_s;
    core_.sp_prog[j] = core_.progress[i];
    core_.sp_wall[j] = core_.wall_used_s[i];
    core_.sp_wl[j] = core_.walltime_s[i];
    core_.sp_en[j] = core_.energy_j[i];
    core_.sp_cb[j] = core_.carbon_g[i];
    tick_energy_j += job_energy_j;
    busy_nodes_total += static_cast<double>(core_.alloc_nodes[i]) * (tick_s / tick_s);
  }
  idle_energy_j = idle_w * static_cast<double>(free_nodes_) * tick_s;
  tick_energy_j += idle_energy_j;
  idle_carbon_per_ci = idle_energy_j / 3.6e6;
  total_carbon_per_ci = tick_energy_j / 3.6e6;
  system_power_w = tick_energy_j / tick_s;
  }
  full_hoist = true;

  bool event = false;
  while (now_ < span_end) {
    // Arrival-riding: the policy attested (quiescent_over_arrivals) that
    // back-of-queue arrivals cannot change its decisions mid-span, so the
    // engine performs the queue pushes itself at the exact arrival ticks
    // — the same top-of-tick position the per-tick loop uses, and
    // idempotent with its replay when the span exits on an event.
    if (ride_arrivals) {
      while (next_arrival_ < arrival_order_.size() &&
             slots_[arrival_order_[next_arrival_]].spec->submit <= now_) {
        list_push(pending_, Queue::Pending,
                  slots_[arrival_order_[next_arrival_]].spec->id);
        ++next_arrival_;
      }
    }
    // Exit checks run BEFORE this tick is observed or integrated: the
    // tick an event lands in leaves the flat loop and is resolved below
    // by the exact integrate path (analytic mid-tick completion,
    // walltime clamp, feed observation).
    event = false;
    for (std::size_t j = 0; j < k; ++j) {
      event |= core_.sp_rp[j] > 0.0 && core_.sp_prog[j] + core_.sp_rp[j] >= 1.0;
    }
    if (enforce_wt && !event) {
      for (std::size_t j = 0; j < k; ++j) {
        event |= core_.sp_wl[j] - core_.sp_wall[j] <= tick_s;
      }
    }
    if (event) break;
    if (hoist_ci) {
      if (now_ >= seg_end) {
        ci_true_ = trace.sample_at_clamped(now_, ci_cursor_);
        ci_now_ = ci_true_;
        staleness_ = seconds(0.0);
        if (now_ < trace.start()) {
          seg_end = trace.start() + trace.step();
        } else if (now_ < trace.end()) {
          seg_end = trace.start() +
                    seconds(static_cast<double>(trace.index_at(now_) + 1) *
                            trace.step().seconds());
        } else {
          seg_end = span_end;  // clamped past the end: constant forever
        }
      }
    } else {
      observe_intensity();
    }
    const double ci = ci_true_;

    if (chunkable) {
      // Check-free chunk: run t ticks with no per-tick exit, segment-
      // reload or arrival tests, for a t conservatively proven to
      // trigger none of them. The absolute margins (1e-9 progress,
      // 1e-3 s walltime, 1e-2 s clock) dwarf the worst-case rounding the
      // repeated additions can accumulate over 2^21 ticks (< 1e-5 in
      // these units), so every skipped test provably evaluates false;
      // every arithmetic operation performed is the same operation in
      // the same order as the per-tick loop, so the chunk is
      // bit-identical. Whatever the margins shave off is handled by the
      // per-tick iterations that follow.
      const double now_s = now_.seconds();
      double lim = 2097152.0;
      lim = std::min(lim, (span_end.seconds() - now_s - 1e-2) / tick_s);
      lim = std::min(lim, (seg_end.seconds() - now_s - 1e-2) / tick_s);
      if (ride_arrivals && next_arrival_ < arrival_order_.size()) {
        lim = std::min(
            lim,
            (slots_[arrival_order_[next_arrival_]].spec->submit.seconds() -
             now_s - 1e-2) /
                tick_s);
      }
      long t = lim > 0.0 ? static_cast<long>(lim) : 0;
      for (std::size_t j = 0; j < k && t > 0; ++j) {
        if (core_.sp_rp[j] > 0.0) {
          const double tp =
              (1.0 - 1e-9 - core_.sp_prog[j]) / core_.sp_rp[j] - 1.0;
          t = std::min(t, tp > 0.0 ? static_cast<long>(tp) : 0L);
        }
        if (enforce_wt) {
          const double tw =
              (core_.sp_wl[j] - core_.sp_wall[j] - tick_s - 1e-3) / tick_s -
              1.0;
          t = std::min(t, tw > 0.0 ? static_cast<long>(tw) : 0L);
        }
      }
      // Engage for any t >= 1: the limit computation is already paid by
      // this point, and a chunked tick is strictly cheaper than the
      // checked fall-through below (which would recompute the limit on
      // the very next tick).
      if (t >= 1) {
        for (long s = 0; s < t; ++s) {
          for (std::size_t j = 0; j < k; ++j) {
            core_.sp_prog[j] += core_.sp_rp[j];
            core_.sp_wall[j] += tick_s;
            core_.sp_en[j] += core_.sp_ej[j];
            core_.sp_cb[j] += core_.sp_dj[j] * ci;
          }
        }
        for (long s = 0; s < t; ++s) {
          result_.idle_energy += joules(idle_energy_j);
          result_.idle_carbon += grams_co2(idle_carbon_per_ci * ci);
          result_.total_energy += joules(tick_energy_j);
          result_.total_carbon += grams_co2(total_carbon_per_ci * ci);
          now_ += tick;
        }
        if (violation) result_.budget_violations += static_cast<int>(t);
        const auto m = static_cast<std::size_t>(t);
        result_.system_power.append_fill(m, system_power_w);
        result_.power_budget.append_fill(m, budget_w);
        result_.carbon_intensity.append_fill(m, ci);
        result_.busy_nodes.append_fill(m, busy_nodes_total);
        ci_history_.insert(ci_history_.end(), m, ci_now_);
        n += m;
        continue;
      }
    }

    for (std::size_t j = 0; j < k; ++j) {
      core_.sp_prog[j] += core_.sp_rp[j];
      core_.sp_wall[j] += tick_s;
      core_.sp_en[j] += core_.sp_ej[j];
      core_.sp_cb[j] += core_.sp_dj[j] * ci;
    }
    if (violation) ++result_.budget_violations;
    result_.idle_energy += joules(idle_energy_j);
    result_.idle_carbon += grams_co2(idle_carbon_per_ci * ci);
    result_.total_energy += joules(tick_energy_j);
    result_.total_carbon += grams_co2(total_carbon_per_ci * ci);
    result_.system_power.push_back(system_power_w);
    result_.power_budget.push_back(budget_w);
    result_.carbon_intensity.push_back(ci);
    result_.busy_nodes.push_back(busy_nodes_total);
    if (telemetry) {
      cfg_.telemetry->record("system.power", now_, system_power_w);
      cfg_.telemetry->record("system.budget", now_, budget_w);
      cfg_.telemetry->record("system.ci", now_, ci);
      cfg_.telemetry->record("system.busy_nodes", now_, busy_nodes_total);
      if (cfg_.faults.enabled()) {
        cfg_.telemetry->record("system.nodes_down", now_,
                               static_cast<double>(nodes_down_));
      }
      if (cfg_.feed != nullptr) {
        cfg_.telemetry->record("system.ci_observed", now_, ci_now_);
        cfg_.telemetry->record("system.ci_staleness", now_, staleness_.seconds());
      }
    }
    ci_history_.push_back(ci_now_);
    now_ += tick;
    ++n;
  }
  if (!event || !cfg_.span_completions) {
    // Span exit (horizon / bound reached, or fencing mode where the
    // per-tick path replays the event tick): scatter the local
    // accumulators back to the slot columns. The in-span event path
    // skips this — its fused pass below finalizes the leavers' columns
    // itself and keeps the survivors scratch-resident, so the
    // intermediate pre-tick sync would be dead stores.
    scatter(k);
    break;
  }

  // --- in-span event tick (analytic) -----------------------------------
  // The tick a completion or walltime kill lands in replays
  // integrate_tick's exact per-tick sequence — same expressions, same
  // operand order — fused with the order-preserving compaction of the
  // running lists AND of the scratch columns, so the kernel continues
  // without a full re-gather. The cap is the hoisted one: integrate_tick
  // would recompute it from the same frozen discrete state, hence
  // bit-identically. Arrivals due at this tick were already pushed above
  // when riding; when not riding, span_end is bounded by the next
  // arrival so none are due. Faults, repairs and requeue releases cannot
  // occur before hard_end, and the policy's quiescence attestation
  // covers this tick (< span_end <= horizon), so skipping on_tick is
  // exact. The per-job branches read scratch — authoritative since the
  // last gather. Leavers get their columns finalized here (their scratch
  // rows are recycled by the compaction); survivors advance in scratch
  // only and their columns catch up at the next scatter point.
  if (hoist_ci) {
    if (now_ >= seg_end) {
      // Segment boundary falls on the event tick: load the fresh sample
      // (same call the flat loop would make; seg_end stays put so the
      // next sub-span recomputes the segment bound).
      ci_true_ = trace.sample_at_clamped(now_, ci_cursor_);
      ci_now_ = ci_true_;
      staleness_ = seconds(0.0);
    }
  } else {
    observe_intensity();
  }
  // Next sub-span totals, accumulated over the survivors in compacted
  // order — the same additions in the same order the re-hoist's totals
  // rebuild would perform, so using them is bit-identical.
  double next_energy_j = 0.0;
  double next_busy_nodes = 0.0;
  {
  const double ci = ci_true_;
  double ev_energy_j = 0.0;
  double ev_busy_nodes = 0.0;
  bool any_finished = false;
  std::size_t w = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const auto i = static_cast<std::size_t>(core_.sp_slot[j]);
    JobSlot& s = slots_[i];
    bool done = false;
    if (core_.sp_rp[j] > 0.0 && core_.sp_prog[j] + core_.sp_rp[j] >= 1.0) {
      // Analytic mid-tick completion: dt, energy and carbon from the
      // recomputed rate and draw (same inputs and expressions as
      // integrate_tick's, so bit-identical values).
      const int busy = busy_nodes_of(i);
      const int extra = core_.alloc_nodes[i] - busy;
      const double speed = cap_speed(i, cap) * scale_factor(i);
      const double rate = speed / core_.runtime_s[i];
      const double draw_w = static_cast<double>(busy) * core_.eff_power_w[i] * cap +
                            static_cast<double>(extra) * idle_w;
      const double dt = (1.0 - core_.sp_prog[j]) / rate;
      core_.progress[i] = 1.0;
      s.info.phase = JobPhase::Done;
      s.info.finish = now_ + seconds(dt);
      core_.wall_used_s[i] = core_.sp_wall[j] + dt;
      const double job_energy_j = draw_w * dt;
      core_.energy_j[i] = core_.sp_en[j] + job_energy_j;
      core_.carbon_g[i] = core_.sp_cb[j] + job_energy_j / 3.6e6 * ci;
      ev_energy_j += job_energy_j;
      ev_busy_nodes += static_cast<double>(core_.alloc_nodes[i]) * (dt / tick_s);
      done = true;
    } else {
      bool killed = false;
      double dt = tick_s;
      if (enforce_wt) {
        const double remaining_wall = core_.sp_wl[j] - core_.sp_wall[j];
        if (remaining_wall <= tick_s) {
          dt = std::max(0.0, remaining_wall);
          killed = true;
        }
      }
      if (killed) {
        // Walltime clamp: the clock only runs while the job executes.
        const int busy = busy_nodes_of(i);
        const int extra = core_.alloc_nodes[i] - busy;
        const double speed = cap_speed(i, cap) * scale_factor(i);
        const double rate = speed / core_.runtime_s[i];
        const double draw_w = static_cast<double>(busy) * core_.eff_power_w[i] * cap +
                              static_cast<double>(extra) * idle_w;
        s.info.phase = JobPhase::Done;
        s.info.killed = true;
        s.info.finish = now_ + seconds(dt);
        ++result_.walltime_kills;
        ++pending_kills_;  // batched: flushed once per span / tick
        core_.progress[i] = core_.sp_prog[j] + rate * dt;
        core_.wall_used_s[i] = core_.sp_wall[j] + dt;
        const double job_energy_j = draw_w * dt;
        core_.energy_j[i] = core_.sp_en[j] + job_energy_j;
        core_.carbon_g[i] = core_.sp_cb[j] + job_energy_j / 3.6e6 * ci;
        ev_energy_j += job_energy_j;
        ev_busy_nodes += static_cast<double>(core_.alloc_nodes[i]) * (dt / tick_s);
        done = true;
      } else {
        // Survivor: the flat-tick update (bit-identical to the one
        // integrate_tick would recompute), kept scratch-resident — the
        // columns catch up at the next scatter point; compaction keeps
        // the relative order.
        const double prog = core_.sp_prog[j] + core_.sp_rp[j];
        const double wall = core_.sp_wall[j] + tick_s;
        const double en = core_.sp_en[j] + core_.sp_ej[j];
        const double cb = core_.sp_cb[j] + core_.sp_dj[j] * ci;
        const double bn = static_cast<double>(core_.alloc_nodes[i]) * (tick_s / tick_s);
        ev_energy_j += core_.sp_ej[j];
        ev_busy_nodes += bn;
        next_energy_j += core_.sp_ej[j];
        next_busy_nodes += bn;
        core_.sp_prog[w] = prog;
        core_.sp_wall[w] = wall;
        core_.sp_en[w] = en;
        core_.sp_cb[w] = cb;
        if (w != j) {
          core_.sp_slot[w] = core_.sp_slot[j];
          core_.sp_ej[w] = core_.sp_ej[j];
          core_.sp_dj[w] = core_.sp_dj[j];
          core_.sp_rp[w] = core_.sp_rp[j];
          core_.sp_wl[w] = core_.sp_wl[j];
          s.list_pos = static_cast<std::int32_t>(w);
          running_[w] = running_[j];
          running_slots_[w] = i;
        }
        ++w;
      }
    }
    if (done) {
      any_finished = true;
      free_nodes_ += core_.alloc_nodes[i];
      core_.alloc_nodes[i] = 0;
      s.queue = Queue::None;
      s.list_pos = -1;
      result_.makespan = std::max(result_.makespan, s.info.finish);
      if (!s.info.killed) {
        ++result_.completed_jobs;
        ++pending_completions_;  // batched: flushed once per span / tick
      }
    }
  }
  if (any_finished) ++epoch_;
  running_.resize(w);
  running_slots_.resize(w);
  k = w;

  // End-of-tick idle term uses the post-release free count, exactly as
  // integrate_tick does.
  const double ev_idle_j = idle_w * static_cast<double>(free_nodes_) * tick_s;
  ev_energy_j += ev_idle_j;
  result_.idle_energy += joules(ev_idle_j);
  result_.idle_carbon += grams_co2(ev_idle_j / 3.6e6 * ci);
  result_.total_energy += joules(ev_energy_j);
  result_.total_carbon += grams_co2(ev_energy_j / 3.6e6 * ci);
  if (violation) ++result_.budget_violations;
  result_.system_power.push_back(ev_energy_j / tick_s);
  result_.power_budget.push_back(budget_w);
  result_.carbon_intensity.push_back(ci);
  result_.busy_nodes.push_back(ev_busy_nodes);
  if (telemetry) {
    cfg_.telemetry->record("system.power", now_, ev_energy_j / tick_s);
    cfg_.telemetry->record("system.budget", now_, budget_w);
    cfg_.telemetry->record("system.ci", now_, ci);
    cfg_.telemetry->record("system.busy_nodes", now_, ev_busy_nodes);
    if (cfg_.faults.enabled()) {
      cfg_.telemetry->record("system.nodes_down", now_,
                             static_cast<double>(nodes_down_));
    }
    if (cfg_.feed != nullptr) {
      cfg_.telemetry->record("system.ci_observed", now_, ci_now_);
      cfg_.telemetry->record("system.ci_staleness", now_, staleness_.seconds());
    }
  }
  }
  ci_history_.push_back(ci_now_);
  now_ += tick;
  ++n;
  ++event_ticks;

  if (running_.empty() || now_ >= hard_end) {
    // Drained, or a fault/repair/requeue event is due.
    scatter(k);
    break;
  }
  // Release-reaction fencing: continue only if the policy attests that
  // on_tick at the post-release state would take no action for the rest
  // of the attested window. This is a discrete-state-only question by
  // contract, so the stale survivor columns are not an obstacle.
  if (!sched.quiescent_over_release(*this)) {
    scatter(k);
    break;
  }
  // Riding attested before the release can be invalidated by it — e.g.
  // EASY rides arrivals only with zero free nodes, and the release just
  // freed some. Re-confirm (a discrete-state-only question, same stale-
  // view terms as quiescent_over_release); when riding flips off,
  // re-bound the window by the next submission.
  if (ride_arrivals && !sched.quiescent_over_arrivals(*this)) {
    ride_arrivals = false;
    if (next_arrival_ < arrival_order_.size()) {
      span_end = std::min(span_end,
                          slots_[arrival_order_[next_arrival_]].spec->submit);
    }
  }
  if (now_ >= span_end) {
    // Original window exhausted at the event: sync the columns — the
    // horizon questions may read continuous state — and try to extend
    // the span under a freshly attested horizon (a completion often
    // EXTENDS it: e.g. EASY's earliest projected end moves later when
    // the finished job leaves the release schedule).
    scatter(k);
    const Duration horizon = sched.quiescent_until(*this);
    if (horizon <= now_) break;
    const bool all_arrived = next_arrival_ == arrival_order_.size();
    ride_arrivals = !all_arrived && sched.quiescent_over_arrivals(*this);
    span_end = std::min(horizon, hard_end);
    if (!all_arrived && !ride_arrivals) {
      span_end = std::min(span_end,
                          slots_[arrival_order_[next_arrival_]].spec->submit);
    }
    if (span_end <= now_) break;
  }

  // Incremental re-hoist: recompute the cap over the compacted running
  // set (same expressions as the full hoist). When it lands on exactly
  // the old cap — the common case without a power budget, where both
  // are 1.0 — every per-job scratch constant is provably unchanged
  // (same cap, same per-job state), so the whole-tick totals come
  // straight from the event pass's fused accumulators and the full
  // gather is skipped. A moved cap falls back to the full hoist at the
  // top of the loop. When the full hoist proved the cap stable across
  // releases (cap_stable), even the recompute is skipped.
  {
    double ncap = 1.0;
    bool nviol = false;
    if (!cap_stable) {
      double busy_full_w = 0.0;
      double baseline_w = idle_w * static_cast<double>(free_nodes_);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t i = running_slots_[j];
        const int busy = busy_nodes_of(i);
        const int extra = core_.alloc_nodes[i] - busy;
        busy_full_w += static_cast<double>(busy) * core_.eff_power_w[i];
        baseline_w += static_cast<double>(extra) * idle_w;
      }
      if (busy_full_w > 0.0 && baseline_w + busy_full_w > budget_now_.watts()) {
        ncap = (budget_now_.watts() - baseline_w) / busy_full_w;
        if (ncap < cfg_.cluster.min_cap_fraction) {
          ncap = cfg_.cluster.min_cap_fraction;
          nviol = true;
        }
        ncap = std::min(ncap, 1.0);
      } else if (busy_full_w == 0.0 && baseline_w > budget_now_.watts()) {
        nviol = true;
      }
    }
    if (ncap == cap) {
      last_cap_ = ncap;
      violation = nviol;
      tick_energy_j = next_energy_j;
      busy_nodes_total = next_busy_nodes;
      idle_energy_j = idle_w * static_cast<double>(free_nodes_) * tick_s;
      tick_energy_j += idle_energy_j;
      idle_carbon_per_ci = idle_energy_j / 3.6e6;
      total_carbon_per_ci = tick_energy_j / 3.6e6;
      system_power_w = tick_energy_j / tick_s;
      full_hoist = false;
    } else {
      // Cap moved: the loop re-runs the full hoist, whose gather reads
      // the columns — bring the survivors' columns up to date first
      // (idempotent if the window-extension path already did).
      scatter(k);
    }
  }
  }  // for (;;) — next sub-span continues over the compacted running set
  if (n > 0) {
    span_ticks.add(n);
    spans_counter.add();
  }
  if (event_ticks > 0) span_event_ticks.add(event_ticks);
  flush_job_counters();
  return n;
}

SimulationResult Simulator::run(SchedulingPolicy& sched, PowerBudgetPolicy* power) {
  GREENHPC_REQUIRE(!ran_, "Simulator::run may be called only once");
  ran_ = true;
  GREENHPC_TRACE_SPAN("sim.run");
  static obs::Counter& ticks_counter = sim_counter("sim.ticks");
  const Duration tick = cfg_.cluster.tick;
  const bool fast_paths = !cfg_.reference_mode;
  while (now_ < cfg_.max_time) {
    // 1. arrivals
    while (next_arrival_ < arrival_order_.size() &&
           slots_[arrival_order_[next_arrival_]].spec->submit <= now_) {
      list_push(pending_, Queue::Pending, slots_[arrival_order_[next_arrival_]].spec->id);
      ++next_arrival_;
    }
    if (cfg_.faults.enabled()) {
      GREENHPC_TRACE_SPAN("sim.faults");
      advance_faults();
    }
    const bool all_arrived = next_arrival_ == arrival_order_.size();
    if (all_arrived && pending_.empty() && running_.empty() && suspended_.empty() &&
        requeued_.empty()) {
      break;
    }

    if (fast_paths && power == nullptr) {
      // Idle fast-forward: with no job anywhere and nothing due before
      // the next arrival or failure event, ticks cannot differ from the
      // pure idle-floor tick; burn through them without the policy
      // machinery. (Gated on power == nullptr: a budget policy must keep
      // observing every tick, both for its own state and for the budget
      // series.)
      if (pending_.empty() && running_.empty() && suspended_.empty() &&
          requeued_.empty() && repairs_.empty() && !all_arrived) {
        Duration stop = std::min(cfg_.max_time,
                                 slots_[arrival_order_[next_arrival_]].spec->submit);
        if (next_failure_ < cfg_.faults.events.size()) {
          stop = std::min(stop, cfg_.faults.events[next_failure_].time);
        }
        if (now_ < stop) {
          budget_now_ = cfg_.cluster.max_power();
          fast_forward_idle(stop);
          continue;  // re-run arrivals/faults at the first non-idle tick
        }
      }
      // Span batch kernel: the scheduler saw exactly this discrete state
      // last tick and did nothing (epoch check), and attests it stays
      // quiescent up to a horizon. Integrate to the horizon or the next
      // discrete event in one flat kernel; completions and walltime
      // kills are resolved inside (with release-reaction fencing), while
      // fault events, repairs and requeue releases bound the span hard —
      // nothing the kernel does can create or move one of those.
      else if (epoch_ == epoch_before_sched_) {
        const Duration horizon = sched.quiescent_until(*this);
        if (horizon > now_) {
          // With a stronger attestation the span rides over arrivals:
          // they stop bounding span_end and the kernel pushes them onto
          // the pending queue at their exact ticks instead.
          const bool ride =
              !all_arrived && sched.quiescent_over_arrivals(*this);
          Duration hard_end = cfg_.max_time;
          if (next_failure_ < cfg_.faults.events.size()) {
            hard_end = std::min(hard_end, cfg_.faults.events[next_failure_].time);
          }
          for (const Duration r : repairs_) hard_end = std::min(hard_end, r);
          for (const JobId id : requeued_) {
            hard_end = std::min(hard_end, slots_[slot_index(id)].info.requeue_ready);
          }
          Duration span_end = std::min(horizon, hard_end);
          if (!all_arrived && !ride) {
            span_end = std::min(
                span_end, slots_[arrival_order_[next_arrival_]].spec->submit);
          }
          if (span_end > now_) {
            budget_now_ = cfg_.cluster.max_power();
            if (run_span(sched, hard_end, span_end, ride) > 0) continue;
            // 0 ticks: an event lands in the very first tick with
            // span_completions off — take the per-tick path below so it
            // is handled exactly.
          }
        }
      }
    }

    // 2. environment + budget (policies see the observed/held intensity)
    observe_intensity();
    budget_now_ = power != nullptr
                      ? power->system_budget(now_, ci_now_, cfg_.cluster)
                      : cfg_.cluster.max_power();

    // 3. scheduling decisions
    epoch_before_sched_ = epoch_;
    {
      GREENHPC_TRACE_SPAN("sim.schedule");
      sched.on_tick(*this);
    }

    // 4+5. power capping and integration
    {
      GREENHPC_TRACE_SPAN("sim.integrate");
      integrate_tick();
    }
    flush_job_counters();
    ci_history_.push_back(ci_now_);
    now_ += tick;
    ticks_counter.add();
  }

  result_.jobs.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const JobSlot& s = slots_[i];
    JobRecord rec;
    rec.spec = *s.spec;
    rec.completed = s.info.phase == JobPhase::Done && !s.info.killed && !s.info.failed;
    rec.killed = s.info.killed;
    rec.failed = s.info.failed;
    rec.submit = s.spec->submit;
    rec.start = seconds(core_.start_s[i]);
    rec.finish = s.info.finish;
    rec.suspend_count = s.info.suspend_count;
    rec.checkpoint_count = s.info.checkpoint_count;
    rec.failure_count = s.info.failure_count;
    rec.energy = joules(core_.energy_j[i]);
    rec.carbon = grams_co2(core_.carbon_g[i]);
    result_.jobs.push_back(std::move(rec));
  }
  return std::move(result_);
}

}  // namespace greenhpc::hpcsim
