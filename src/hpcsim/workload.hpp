#pragma once
// Synthetic workload generation.
//
// Substitution note (DESIGN.md): the paper's section 3.4 analyses user job
// data from SuperMUC-NG, which is not public. This generator produces a
// statistically similar mix — Weibull runtimes with a heavy tail,
// log-uniform node counts, diurnal submission pattern — and exposes the
// one behaviour the paper calls out explicitly as a knob: users
// requesting more nodes than their jobs can use (`over_allocation_mean`).

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hpcsim/job.hpp"
#include "util/rng.hpp"

namespace greenhpc::hpcsim {

struct WorkloadConfig {
  int job_count = 1000;
  /// Submissions are spread over this window.
  Duration span = days(7.0);
  /// Relative strength of the working-hours submission peak (0 = uniform).
  double diurnal_amplitude = 0.5;
  /// Non-zero quantizes submit times DOWN to multiples of this duration,
  /// turning the diurnal stream into synchronized arrival waves with long
  /// arrival-free gaps between them (the completion-bound regime the span
  /// kernel exploits). Zero leaves the continuous stream untouched — the
  /// RNG draw sequence is identical either way, so existing seeds and
  /// cached workloads are unaffected when the knob is off.
  Duration arrival_quantum = seconds(0.0);

  /// Per-job natural size is log-uniform in [1, max_job_nodes].
  int max_job_nodes = 128;
  /// Runtimes are Weibull(shape, scale) clamped to [min, max].
  double runtime_weibull_shape = 0.9;
  Duration runtime_mean = hours(3.0);
  Duration runtime_min = minutes(10.0);
  Duration runtime_max = hours(24.0);
  /// Users overestimate walltime by a lognormal factor >= 1.
  double walltime_factor_sigma = 0.5;

  /// Mean of the over-allocation multiplier (1 = users request exactly
  /// what they need; the paper's observation corresponds to > 1).
  double over_allocation_mean = 1.0;
  /// Fraction of jobs that are malleable (section 3.2).
  double malleable_fraction = 0.0;
  /// Fraction of jobs that are moldable: the scheduler picks the node
  /// count within [natural/2, natural*2] at start; fixed afterwards.
  double moldable_fraction = 0.0;
  /// Fraction of jobs that can checkpoint/suspend (section 3.3).
  double checkpointable_fraction = 0.0;

  /// Busy-node power draw: normal around the mean, clamped to
  /// [0.5 * mean, tdp_limit].
  Power node_power_mean = watts(400.0);
  Power node_power_sigma = watts(60.0);
  Power node_power_limit = watts(500.0);

  /// Per-job power elasticity alpha ~ U[alpha_min, alpha_max].
  double alpha_min = 0.30;
  double alpha_max = 0.55;
  /// Per-job scaling exponent gamma ~ U[gamma_min, gamma_max].
  double gamma_min = 0.75;
  double gamma_max = 0.98;

  /// Mean MPI-wait share of application time (per-job draw uniform in
  /// [0, 2*mean]).
  double mpi_wait_mean = 0.2;
  /// Fraction of jobs linking a Countdown-class power-saving runtime
  /// (section 3.4's user-side lever).
  double powersave_adoption = 0.0;

  /// Distinct submitting users (accounting experiments).
  int user_count = 32;

  /// Field-exact equality — the WorkloadCache key: equal (config, seed)
  /// pairs generate bit-identical job lists.
  [[nodiscard]] bool operator==(const WorkloadConfig&) const = default;
};

/// Deterministic workload generator: the same (config, seed) always yields
/// the same job list.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, std::uint64_t seed);

  /// Generate the job list (ids 1..job_count, ordered by submit time).
  [[nodiscard]] std::vector<JobSpec> generate();

 private:
  [[nodiscard]] Duration draw_submit_time();
  [[nodiscard]] Duration draw_runtime();

  WorkloadConfig cfg_;
  util::Rng rng_;
};

/// Memoized, thread-safe store of generated job lists — the workload-side
/// sibling of carbon::TraceCache. Sweep cases that differ only in policy
/// (or region, or cluster shape with the same workload bounds) share one
/// immutable job vector, which plugs straight into the zero-copy
/// Simulator. Keys are full (config, seed) pairs compared field-exact, so
/// a hit is guaranteed bit-identical to a fresh generate(); the entry list
/// is scanned linearly (sweeps use a handful of distinct workloads).
class WorkloadCache {
 public:
  /// The job list for (config, seed): generated on the first request,
  /// shared afterwards. Thread-safe; generation runs outside the lock
  /// (a raced duplicate loses, every caller gets the first insertion).
  [[nodiscard]] std::shared_ptr<const std::vector<JobSpec>> get(
      const WorkloadConfig& config, std::uint64_t seed);

  /// Number of distinct job lists currently held.
  [[nodiscard]] std::size_t size() const;
  /// Lookup counters since construction / the last clear().
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  /// Drop every cached list (outstanding shared pointers stay valid) and
  /// reset the counters.
  void clear();

  /// Process-wide cache shared by ScenarioRunner and the sweep engine.
  static WorkloadCache& global();

 private:
  struct Entry {
    WorkloadConfig config;
    std::uint64_t seed = 0;
    std::shared_ptr<const std::vector<JobSpec>> jobs;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace greenhpc::hpcsim
