#include "hpcsim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::hpcsim {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, std::uint64_t seed)
    : cfg_(config), rng_(seed ^ 0x776f726bull /* "work" */) {
  GREENHPC_REQUIRE(cfg_.job_count >= 1, "workload needs at least one job");
  GREENHPC_REQUIRE(cfg_.span.seconds() > 0.0, "workload span must be positive");
  GREENHPC_REQUIRE(cfg_.max_job_nodes >= 1, "max job nodes must be >= 1");
  GREENHPC_REQUIRE(cfg_.over_allocation_mean >= 1.0,
                   "over-allocation mean must be >= 1");
  GREENHPC_REQUIRE(cfg_.malleable_fraction >= 0.0 && cfg_.malleable_fraction <= 1.0,
                   "malleable fraction must be in [0,1]");
  GREENHPC_REQUIRE(cfg_.moldable_fraction >= 0.0 &&
                       cfg_.moldable_fraction + cfg_.malleable_fraction <= 1.0,
                   "moldable + malleable fractions must stay within [0,1]");
  GREENHPC_REQUIRE(cfg_.checkpointable_fraction >= 0.0 &&
                       cfg_.checkpointable_fraction <= 1.0,
                   "checkpointable fraction must be in [0,1]");
  GREENHPC_REQUIRE(cfg_.diurnal_amplitude >= 0.0 && cfg_.diurnal_amplitude < 1.0,
                   "diurnal amplitude must be in [0,1)");
  GREENHPC_REQUIRE(cfg_.arrival_quantum.seconds() >= 0.0,
                   "arrival quantum must be >= 0");
  GREENHPC_REQUIRE(cfg_.mpi_wait_mean >= 0.0 && cfg_.mpi_wait_mean <= 0.45,
                   "mpi wait mean must be in [0, 0.45]");
  GREENHPC_REQUIRE(cfg_.powersave_adoption >= 0.0 && cfg_.powersave_adoption <= 1.0,
                   "powersave adoption must be in [0,1]");
  GREENHPC_REQUIRE(cfg_.user_count >= 1, "user count must be >= 1");
}

Duration WorkloadGenerator::draw_submit_time() {
  // Rejection-sample against a diurnal submission intensity peaking at
  // 14:00 (users submit during working hours).
  for (;;) {
    const double t = rng_.uniform(0.0, cfg_.span.seconds());
    const double hour = std::fmod(t / 3600.0, 24.0);
    const double weight =
        1.0 + cfg_.diurnal_amplitude *
                  std::cos(2.0 * std::numbers::pi * (hour - 14.0) / 24.0);
    if (rng_.uniform() * (1.0 + cfg_.diurnal_amplitude) <= weight) {
      const double q = cfg_.arrival_quantum.seconds();
      if (q > 0.0) return seconds(std::floor(t / q) * q);
      return seconds(t);
    }
  }
}

Duration WorkloadGenerator::draw_runtime() {
  // Weibull scale from the requested mean: mean = scale * Gamma(1 + 1/k).
  const double k = cfg_.runtime_weibull_shape;
  const double scale = cfg_.runtime_mean.seconds() / std::tgamma(1.0 + 1.0 / k);
  const double r = rng_.weibull(k, scale);
  return seconds(std::clamp(r, cfg_.runtime_min.seconds(), cfg_.runtime_max.seconds()));
}

std::vector<JobSpec> WorkloadGenerator::generate() {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg_.job_count));
  for (int i = 0; i < cfg_.job_count; ++i) {
    JobSpec j;
    j.id = i + 1;
    j.user = "user" + std::to_string(rng_.uniform_int(0, cfg_.user_count - 1));
    j.project = "proj" + std::to_string(rng_.uniform_int(0, cfg_.user_count / 4));
    j.submit = draw_submit_time();

    j.nodes_used = static_cast<int>(
        std::lround(rng_.log_uniform(1.0, static_cast<double>(cfg_.max_job_nodes))));
    j.nodes_used = std::clamp(j.nodes_used, 1, cfg_.max_job_nodes);

    const bool malleable = rng_.bernoulli(cfg_.malleable_fraction);
    const bool moldable =
        !malleable && cfg_.moldable_fraction > 0.0 &&
        rng_.bernoulli(std::min(1.0, cfg_.moldable_fraction /
                                         std::max(1e-9, 1.0 - cfg_.malleable_fraction)));
    if (malleable) {
      j.kind = JobKind::Malleable;
      j.nodes_requested = j.nodes_used;
      j.min_nodes = std::max(1, j.nodes_used / 4);
      j.max_nodes = std::min(cfg_.max_job_nodes, j.nodes_used * 2);
    } else if (moldable) {
      j.kind = JobKind::Moldable;
      j.nodes_requested = j.nodes_used;
      j.min_nodes = std::max(1, j.nodes_used / 2);
      j.max_nodes = std::min(cfg_.max_job_nodes, j.nodes_used * 2);
    } else {
      j.kind = JobKind::Rigid;
      double factor = 1.0;
      if (cfg_.over_allocation_mean > 1.0) {
        factor = 1.0 + rng_.exponential(1.0 / (cfg_.over_allocation_mean - 1.0));
      }
      j.nodes_requested = std::min(
          cfg_.max_job_nodes,
          static_cast<int>(std::ceil(static_cast<double>(j.nodes_used) * factor)));
      j.nodes_requested = std::max(j.nodes_requested, j.nodes_used);
      j.min_nodes = j.nodes_requested;
      j.max_nodes = j.nodes_requested;
    }

    j.runtime = draw_runtime();
    const double wt_factor = std::max(1.0, rng_.lognormal(0.35, cfg_.walltime_factor_sigma));
    j.walltime = seconds(std::min(j.runtime.seconds() * wt_factor, 2.0 * 86400.0));
    if (j.walltime < j.runtime) j.walltime = j.runtime;

    const double draw = rng_.normal(cfg_.node_power_mean.watts(),
                                    cfg_.node_power_sigma.watts());
    j.node_power = watts(std::clamp(draw, 0.5 * cfg_.node_power_mean.watts(),
                                    cfg_.node_power_limit.watts()));

    j.power_alpha = rng_.uniform(cfg_.alpha_min, cfg_.alpha_max);
    j.scale_gamma = rng_.uniform(cfg_.gamma_min, cfg_.gamma_max);

    j.mpi_wait_fraction =
        std::clamp(rng_.uniform(0.0, 2.0 * cfg_.mpi_wait_mean), 0.0, 0.9);
    j.powersave_runtime = rng_.bernoulli(cfg_.powersave_adoption);

    j.checkpointable = rng_.bernoulli(cfg_.checkpointable_fraction);
    j.checkpoint_overhead =
        minutes(5.0 + 0.05 * static_cast<double>(j.nodes_used));

    j.validate();
    jobs.push_back(std::move(j));
  }
  std::stable_sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  });
  return jobs;
}

std::shared_ptr<const std::vector<JobSpec>> WorkloadCache::get(
    const WorkloadConfig& config, std::uint64_t seed) {
  {
    std::lock_guard lock(mutex_);
    for (const Entry& e : entries_) {
      if (e.seed == seed && e.config == config) {
        ++hits_;
        return e.jobs;
      }
    }
    ++misses_;
  }
  // Generate outside the lock; deterministic generation makes a raced
  // duplicate harmless — the first inserted entry wins.
  auto jobs = std::make_shared<const std::vector<JobSpec>>(
      WorkloadGenerator(config, seed).generate());
  std::lock_guard lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.seed == seed && e.config == config) return e.jobs;
  }
  entries_.push_back(Entry{config, seed, std::move(jobs)});
  return entries_.back().jobs;
}

std::size_t WorkloadCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t WorkloadCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::size_t WorkloadCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

void WorkloadCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

WorkloadCache& WorkloadCache::global() {
  static WorkloadCache cache;
  return cache;
}

}  // namespace greenhpc::hpcsim
