#pragma once
// Standard Workload Format (SWF) import/export.
//
// SWF is the format of the Parallel Workloads Archive and the de-facto
// interchange format for RJMS research traces. Importing SWF lets users
// run real production logs (ANL, KIT, CEA, ...) through the simulator in
// place of the synthetic generator; exporting makes generated workloads
// consumable by other schedulers/simulators.
//
// Mapping notes (SWF is processor-based; greenhpc is node-based):
//   * requested processors -> nodes_requested (allocation held),
//   * used processors      -> nodes_used (falls back to requested),
//   * requested time       -> walltime (falls back to 1.5x runtime),
//   * user id              -> "user<uid>", group id -> "proj<gid>".
// Jobs with unknown (-1) runtime or non-positive processors are skipped;
// the importer reports how many. Power/elasticity fields have no SWF
// equivalent and take the given defaults.

#include <iosfwd>
#include <vector>

#include "hpcsim/job.hpp"

namespace greenhpc::hpcsim {

/// Defaults applied to fields SWF does not carry.
struct SwfDefaults {
  Power node_power = watts(400.0);
  double power_alpha = 0.4;
  double scale_gamma = 0.9;
  /// Cap on nodes per job (oversized entries are clamped); 0 = no cap.
  int max_nodes = 0;
};

/// Result of an SWF import.
struct SwfImport {
  std::vector<JobSpec> jobs;
  int skipped = 0;  ///< malformed/unschedulable entries dropped
};

/// Parse an SWF stream (';' header/comment lines ignored).
[[nodiscard]] SwfImport load_swf(std::istream& in, const SwfDefaults& defaults = {});

/// Write jobs as SWF (with a header documenting the export).
void save_swf(const std::vector<JobSpec>& jobs, std::ostream& out);

}  // namespace greenhpc::hpcsim
