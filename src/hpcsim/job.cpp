#include "hpcsim/job.hpp"

#include "util/error.hpp"

namespace greenhpc::hpcsim {

void JobSpec::validate() const {
  GREENHPC_REQUIRE(nodes_used >= 1, "job must use at least one node");
  GREENHPC_REQUIRE(nodes_requested >= nodes_used,
                   "requested nodes must cover the nodes actually used");
  GREENHPC_REQUIRE(min_nodes >= 1 && min_nodes <= max_nodes,
                   "malleable range must satisfy 1 <= min <= max");
  if (kind == JobKind::Rigid) {
    GREENHPC_REQUIRE(min_nodes == nodes_requested && max_nodes == nodes_requested,
                     "rigid jobs must have min == max == requested");
  }
  GREENHPC_REQUIRE(runtime.seconds() > 0.0, "runtime must be positive");
  GREENHPC_REQUIRE(walltime >= runtime, "walltime limit must cover the runtime");
  GREENHPC_REQUIRE(node_power.watts() > 0.0, "node power must be positive");
  GREENHPC_REQUIRE(power_alpha >= 0.0 && power_alpha <= 1.0,
                   "power_alpha must be in [0,1]");
  GREENHPC_REQUIRE(scale_gamma > 0.0 && scale_gamma <= 1.0,
                   "scale_gamma must be in (0,1]");
  GREENHPC_REQUIRE(checkpoint_overhead.seconds() >= 0.0,
                   "checkpoint overhead must be >= 0");
  GREENHPC_REQUIRE(mpi_wait_fraction >= 0.0 && mpi_wait_fraction <= 0.9,
                   "mpi wait fraction must be in [0, 0.9]");
}

}  // namespace greenhpc::hpcsim
