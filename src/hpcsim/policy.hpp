#pragma once
// Policy interfaces of the simulator.
//
// The simulator is policy-free: every decision the paper's section 3
// discusses — which job starts when (3.3), how many nodes a malleable job
// holds (3.2), what the total system power budget is (3.1) — is delegated
// through these interfaces. Concrete policies live in the sched/ and
// powerstack/ modules; hpcsim only defines the contract, keeping the
// dependency graph acyclic.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "hpcsim/cluster.hpp"
#include "hpcsim/job.hpp"
#include "util/units.hpp"

namespace greenhpc::hpcsim {

/// Structure-of-arrays view over per-job state: parallel arrays indexed
/// by slot (resolve a JobId with SimulationView::slot_of). The engine
/// owns the storage (an arena-allocated SimCore); spans stay valid for
/// the life of the view, and the dynamic columns (progress, allocation,
/// wall clock) are updated in place each tick. Policies on the hot path
/// should read these flat columns instead of spec()/info(), which cost a
/// virtual call plus a pointer chase per job.
struct JobTable {
  // --- static columns (flattened from JobSpec at construction) ---
  std::span<const double> eff_power_w;     ///< effective busy-node draw (W)
  std::span<const double> runtime_s;       ///< natural-size full-power runtime
  std::span<const double> walltime_s;      ///< user walltime estimate
  std::span<const double> submit_s;        ///< submission time
  std::span<const double> ckpt_overhead_s; ///< checkpoint overhead
  std::span<const std::int32_t> nodes_requested;
  std::span<const std::int32_t> nodes_used;
  std::span<const std::int32_t> min_nodes;
  std::span<const std::int32_t> max_nodes;
  std::span<const JobKind> kind;
  std::span<const std::uint8_t> checkpointable;
  // --- dynamic columns (engine-maintained) ---
  std::span<const double> progress;          ///< completed work fraction
  std::span<const double> wall_used_s;       ///< accumulated running wall time
  std::span<const double> start_s;           ///< first start (0 until started)
  std::span<const double> last_checkpoint_s; ///< periodic-checkpoint clock
  std::span<const std::int32_t> alloc_nodes; ///< nodes currently held
};

/// Sentinel horizon for SchedulingPolicy::quiescent_until: quiescent
/// until the next discrete event, however far away.
[[nodiscard]] inline Duration quiescent_forever() {
  return seconds(std::numeric_limits<double>::infinity());
}

/// Read/act surface a scheduling policy sees each tick. Implemented by the
/// simulator; all mutating calls are validated and return false (rather
/// than throwing) when the requested transition is not currently legal, so
/// policies can probe optimistically.
class SimulationView {
 public:
  virtual ~SimulationView() = default;

  // --- observation ---
  [[nodiscard]] virtual Duration now() const = 0;
  [[nodiscard]] virtual const ClusterConfig& cluster() const = 0;
  /// Nodes not currently allocated to any job.
  [[nodiscard]] virtual int free_nodes() const = 0;
  /// Nodes currently down due to injected failures (0 without fault
  /// injection). free_nodes() never includes down nodes.
  [[nodiscard]] virtual int nodes_down() const { return 0; }
  /// Grid carbon intensity as *observed* through the (possibly degraded)
  /// feed (gCO2/kWh): the latest fresh sample, held at its last known
  /// value during feed dropouts. Never garbage — but check
  /// carbon_signal_staleness() before trusting it.
  [[nodiscard]] virtual double carbon_intensity_now() const = 0;
  /// Age of the observation carbon_intensity_now() returns: zero while
  /// the feed is healthy, growing through a dropout. Carbon-aware
  /// policies must fall back to carbon-blind behaviour once this exceeds
  /// their staleness horizon.
  [[nodiscard]] virtual Duration carbon_signal_staleness() const {
    return seconds(0.0);
  }
  /// Ground-truth intensity at time t (clamped to the trace range). Carbon-
  /// aware policies that should be forecast-driven must instead use a
  /// carbon::Forecaster over history(); this accessor exists for oracle
  /// upper-bound policies and for tests.
  [[nodiscard]] virtual double carbon_intensity_at(Duration t) const = 0;
  /// Observed intensity history up to (and excluding) the current tick,
  /// as (time, value) pairs at tick resolution — forecaster input.
  [[nodiscard]] virtual const std::vector<double>& intensity_history() const = 0;

  /// The job queues, by reference: no per-call copy on the tick hot path.
  /// The references stay valid for the life of the view, but any mutating
  /// call (start/suspend/resume/reshape, or the engine's own tick
  /// machinery) may reorder or reallocate the underlying storage — take a
  /// copy before iterating if the loop body mutates, e.g.
  /// `const std::vector<JobId> snapshot = view.pending_jobs();`.
  [[nodiscard]] virtual const std::vector<JobId>& pending_jobs() const = 0;
  [[nodiscard]] virtual const std::vector<JobId>& running_jobs() const = 0;
  [[nodiscard]] virtual const std::vector<JobId>& suspended_jobs() const = 0;
  [[nodiscard]] virtual const JobSpec& spec(JobId id) const = 0;
  [[nodiscard]] virtual const JobRuntimeInfo& info(JobId id) const = 0;
  /// Structure-of-arrays twin of spec()/info() (see JobTable above).
  [[nodiscard]] virtual const JobTable& job_table() const = 0;
  /// Slot index of a job in the JobTable columns.
  [[nodiscard]] virtual std::size_t slot_of(JobId id) const = 0;
  /// Remaining wall time of a running/suspended job at its current speed
  /// (walltime-based estimate for pending jobs).
  [[nodiscard]] virtual Duration estimated_remaining(JobId id) const = 0;

  /// System power budget currently in force.
  [[nodiscard]] virtual Power power_budget() const = 0;
  /// Draw if all currently running jobs ran uncapped (plus idle floor).
  [[nodiscard]] virtual Power full_draw() const = 0;

  // --- actions ---
  /// Start a pending job on `nodes` nodes. For rigid jobs `nodes` must
  /// equal nodes_requested; for moldable/malleable it must lie within
  /// [min_nodes, max_nodes]. Fails if insufficient free nodes.
  virtual bool start(JobId id, int nodes) = 0;
  /// Checkpoint and suspend a running, checkpointable job (frees nodes,
  /// charges the checkpoint overhead).
  virtual bool suspend(JobId id) = 0;
  /// Write an in-place checkpoint of a running, checkpointable job: the
  /// job keeps its nodes, pays the checkpoint overhead as lost progress,
  /// and a later node failure rolls it back here instead of to scratch.
  /// The lever behind Young/Daly periodic checkpointing
  /// (resilience::PeriodicCheckpointPolicy).
  virtual bool checkpoint(JobId) { return false; }
  /// Resume a suspended job on `nodes` nodes (>= min_nodes for malleable,
  /// previous allocation size rules otherwise).
  virtual bool resume(JobId id, int nodes) = 0;
  /// Change a running malleable job's allocation to `nodes` within its
  /// range. Shrinking frees nodes immediately; growing requires headroom.
  virtual bool reshape(JobId id, int nodes) = 0;
};

/// A scheduling policy: invoked once per tick after arrivals and the
/// power-budget update, free to start/suspend/resume/reshape jobs.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual void on_tick(SimulationView& view) = 0;
  /// Display name for experiment tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Quiescence attestation for the engine's span batch kernel (see
  /// DESIGN.md, "Performance architecture"). The engine calls this only
  /// after an on_tick that took no action, and only re-enters the
  /// per-tick path at the first discrete event (arrival, completion,
  /// walltime kill, fault, repair, requeue release) or at the returned
  /// horizon, whichever is earlier. A policy returning a horizon > now
  /// asserts: given the discrete state (queues, allocations, free/down
  /// nodes) stays exactly as observed and the power budget stays
  /// constant, repeating on_tick at any tick before the horizon would
  /// take no action — regardless of how the carbon signal moves. A
  /// policy whose decisions depend on the intensity signal or on wall
  /// time must bound the horizon accordingly. The default opts out
  /// (returns now), which always preserves tick-exact behaviour.
  [[nodiscard]] virtual Duration quiescent_until(const SimulationView& view) const {
    return view.now();
  }

  /// Stronger attestation consulted together with quiescent_until: when
  /// true, the no-action promise additionally survives new arrivals
  /// being appended to the back of the pending queue mid-span (the
  /// engine then performs the queue pushes itself at the exact arrival
  /// ticks and keeps integrating). Only sound when no appended job could
  /// be started or otherwise acted on before the next discrete event —
  /// e.g. FCFS behind a blocked head (strict order shields the tail), or
  /// any scheduler with zero free nodes. The engine re-asks this after
  /// every in-span release (which may invalidate it — freed nodes can
  /// make a future arrival startable); like quiescent_over_release, the
  /// re-ask may observe mid-span-stale continuous columns, so the answer
  /// must depend only on discrete state. The default (false) breaks the
  /// span at every arrival, which always preserves tick-exact behaviour.
  [[nodiscard]] virtual bool quiescent_over_arrivals(
      const SimulationView& view) const {
    (void)view;
    return false;
  }

  /// Release attestation for in-span completion handling. The engine
  /// resolves completions and walltime kills *inside* a span (the event
  /// tick runs the exact integrate path, including node release and
  /// record emission) and then asks this question with the view already
  /// reflecting the post-release state: running list compacted, freed
  /// nodes back in free_nodes(). Returning true asserts that on_tick at
  /// the post-release discrete state would take no action — no start,
  /// suspend, resume, reshape or checkpoint — at this tick AND at every
  /// remaining tick of the already-attested window, so the span may
  /// continue under its original horizon; only when that window is
  /// exhausted does the engine re-ask quiescent_until /
  /// quiescent_over_arrivals to extend it. Two contract consequences:
  /// (1) the answer must depend only on discrete state — queues,
  /// allocations, free/down nodes, static specs and event-updated fields
  /// like checkpoint marks — because the view's continuous integrator
  /// columns (progress, energy, carbon, walltime used) may be mid-span
  /// stale when this is asked; (2) the attestation logic must be
  /// time-independent over the window (a release only shrinks the
  /// running set, so horizons derived from per-job minima over it stay
  /// conservative). Returning false fences the span at the release; the
  /// per-tick path resumes at the next tick and the policy reacts there,
  /// exactly as the reference loop would. The default (false) always
  /// preserves tick-exact behaviour. Decorators must forward only when
  /// their own layer provably ignores node releases.
  [[nodiscard]] virtual bool quiescent_over_release(
      const SimulationView& view) const {
    (void)view;
    return false;
  }
};

/// A system power-budget policy (the PowerStack's top level, section 3.1):
/// maps the current time/intensity to the total power the site grants the
/// machine this tick.
class PowerBudgetPolicy {
 public:
  virtual ~PowerBudgetPolicy() = default;
  [[nodiscard]] virtual Power system_budget(Duration now, double carbon_intensity,
                                            const ClusterConfig& cluster) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace greenhpc::hpcsim
