#pragma once
// Cluster description for the simulator. Nodes are homogeneous — the
// operational experiments of sections 3.1-3.4 are about system software, not
// topology, so a flat node pool with a power envelope is the right level of
// abstraction (it matches how the PowerStack's system manager sees the
// machine).

#include "util/error.hpp"
#include "util/units.hpp"

namespace greenhpc::hpcsim {

struct ClusterConfig {
  int nodes = 1024;                 ///< homogeneous compute nodes
  Power node_tdp = watts(500.0);    ///< per-node maximum draw
  Power node_idle = watts(120.0);   ///< per-node idle draw
  /// Lowest per-node power-cap fraction hardware supports (RAPL-style
  /// caps cannot go arbitrarily low).
  double min_cap_fraction = 0.5;
  /// Simulation tick; conditions are piecewise constant per tick.
  Duration tick = minutes(1.0);
  /// When set, jobs are killed once their *running* wall time (suspended
  /// periods excluded, matching requeue semantics) reaches the declared
  /// walltime limit — production RJMS behaviour.
  bool enforce_walltime = false;

  /// Upper bound of the system's power draw (all nodes at TDP).
  [[nodiscard]] Power max_power() const {
    return node_tdp * static_cast<double>(nodes);
  }
  /// Draw with every node idle.
  [[nodiscard]] Power idle_power() const {
    return node_idle * static_cast<double>(nodes);
  }

  void validate() const {
    GREENHPC_REQUIRE(nodes >= 1, "cluster needs at least one node");
    GREENHPC_REQUIRE(node_tdp.watts() > 0.0, "node TDP must be positive");
    GREENHPC_REQUIRE(node_idle.watts() >= 0.0 && node_idle <= node_tdp,
                     "idle power must be in [0, TDP]");
    GREENHPC_REQUIRE(min_cap_fraction > 0.0 && min_cap_fraction <= 1.0,
                     "min cap fraction must be in (0,1]");
    GREENHPC_REQUIRE(tick.seconds() > 0.0, "tick must be positive");
  }
};

}  // namespace greenhpc::hpcsim
