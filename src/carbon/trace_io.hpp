#pragma once
// Carbon-intensity trace import/export.
//
// Sites that have access to a real grid-emissions feed (electricityMaps-
// style exports) can load measured traces instead of the synthetic
// generator; every policy and bench works unchanged on either source.
// Format: CSV with a `timestamp_s,intensity_g_per_kwh` pair per line
// (header optional, '#' comments ignored); timestamps must be equally
// spaced and ascending.

#include <iosfwd>

#include "util/time_series.hpp"

namespace greenhpc::carbon {

/// Parse a trace from CSV. Throws InvalidArgument on malformed rows,
/// unequal spacing or fewer than two samples.
[[nodiscard]] util::TimeSeries load_intensity_csv(std::istream& in);

/// Write a trace in the same CSV format (with header).
void save_intensity_csv(const util::TimeSeries& trace, std::ostream& out);

}  // namespace greenhpc::carbon
