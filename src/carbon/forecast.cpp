#include "carbon/forecast.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <sstream>

#include "util/error.hpp"

namespace greenhpc::carbon {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kDaySeconds = 86400.0;
}  // namespace

double PersistenceForecaster::forecast(const util::TimeSeries& history, Duration now,
                                       Duration horizon) const {
  GREENHPC_REQUIRE(horizon.seconds() >= 0.0, "forecast horizon must be >= 0");
  // Same time of day, one day earlier. If the target wraps past `now`
  // (horizon > 24h), step back whole days until we land in history.
  Duration target = now + horizon - days(1);
  while (target >= now) target -= days(1);
  return history.sample_at_clamped(target);
}

MovingAverageForecaster::MovingAverageForecaster(Duration window) : window_(window) {
  GREENHPC_REQUIRE(window.seconds() > 0.0, "moving-average window must be positive");
}

std::string MovingAverageForecaster::name() const {
  std::ostringstream os;
  os << "moving-average-" << window_.hours() << "h";
  return os.str();
}

double MovingAverageForecaster::forecast(const util::TimeSeries& history, Duration now,
                                         Duration horizon) const {
  GREENHPC_REQUIRE(horizon.seconds() >= 0.0, "forecast horizon must be >= 0");
  Duration from = now - window_;
  if (from < history.start()) from = history.start();
  Duration to = now;
  if (to > history.end()) to = history.end();
  GREENHPC_REQUIRE(from < to, "moving-average forecaster needs history before now");
  return history.mean_over(from, to);
}

HarmonicForecaster::HarmonicForecaster(Duration training_window) : window_(training_window) {
  GREENHPC_REQUIRE(training_window.seconds() >= 3600.0,
                   "harmonic forecaster needs at least 1h of training data");
}

double HarmonicForecaster::forecast(const util::TimeSeries& history, Duration now,
                                    Duration horizon) const {
  GREENHPC_REQUIRE(horizon.seconds() >= 0.0, "forecast horizon must be >= 0");
  Duration from = now - window_;
  if (from < history.start()) from = history.start();
  Duration to = now;
  if (to > history.end()) to = history.end();
  GREENHPC_REQUIRE(from < to, "harmonic forecaster needs history before now");

  // Basis: [1, cos w t, sin w t, cos 2w t, sin 2w t], w = 2*pi/day.
  // Solve the 5x5 normal equations by Gaussian elimination with partial
  // pivoting; the system is tiny and well-conditioned for >= 1 day of data.
  constexpr std::size_t kBasis = 5;
  std::array<std::array<double, kBasis + 1>, kBasis> normal{};
  const std::size_t first = history.index_at(from);
  const std::size_t last = history.index_at(to - seconds(history.step().seconds() / 2));
  for (std::size_t i = first; i <= last; ++i) {
    const double t = history.start().seconds() + history.step().seconds() * static_cast<double>(i);
    const double w = kTwoPi * t / kDaySeconds;
    const std::array<double, kBasis> phi = {1.0, std::cos(w), std::sin(w), std::cos(2 * w),
                                            std::sin(2 * w)};
    const double y = history.at(i);
    for (std::size_t r = 0; r < kBasis; ++r) {
      for (std::size_t c = 0; c < kBasis; ++c) normal[r][c] += phi[r] * phi[c];
      normal[r][kBasis] += phi[r] * y;
    }
  }
  // Gaussian elimination.
  for (std::size_t col = 0; col < kBasis; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < kBasis; ++r) {
      if (std::fabs(normal[r][col]) > std::fabs(normal[pivot][col])) pivot = r;
    }
    std::swap(normal[col], normal[pivot]);
    const double diag = normal[col][col];
    if (std::fabs(diag) < 1e-12) continue;  // degenerate basis (tiny window)
    for (std::size_t r = 0; r < kBasis; ++r) {
      if (r == col) continue;
      const double f = normal[r][col] / diag;
      for (std::size_t c = col; c <= kBasis; ++c) normal[r][c] -= f * normal[col][c];
    }
  }
  std::array<double, kBasis> coef{};
  for (std::size_t r = 0; r < kBasis; ++r) {
    coef[r] = std::fabs(normal[r][r]) < 1e-12 ? 0.0 : normal[r][kBasis] / normal[r][r];
  }
  auto fit_at = [&](double t_abs) {
    const double w = kTwoPi * t_abs / kDaySeconds;
    return coef[0] + coef[1] * std::cos(w) + coef[2] * std::sin(w) +
           coef[3] * std::cos(2 * w) + coef[4] * std::sin(2 * w);
  };
  const double prediction = fit_at((now + horizon).seconds());
  // Level anchoring: weather regimes (the OU component of real traces)
  // shift the level away from the windowed fit for days at a time. Blend
  // in the current residual with an exponential decay so short horizons
  // track the regime while long horizons fall back to the harmonic shape.
  const double last_observed =
      history.sample_at_clamped(to - seconds(history.step().seconds() / 2));
  const double residual = last_observed - fit_at(to.seconds());
  constexpr double kAnchorTauSeconds = 36.0 * 3600.0;
  return prediction + residual * std::exp(-horizon.seconds() / kAnchorTauSeconds);
}

EwmaForecaster::EwmaForecaster(Duration half_life) : half_life_(half_life) {
  GREENHPC_REQUIRE(half_life.seconds() > 0.0, "EWMA half-life must be positive");
}

std::string EwmaForecaster::name() const {
  std::ostringstream os;
  os << "ewma-" << half_life_.hours() << "h";
  return os.str();
}

double EwmaForecaster::forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const {
  GREENHPC_REQUIRE(horizon.seconds() >= 0.0, "forecast horizon must be >= 0");
  GREENHPC_REQUIRE(!history.empty() && history.start() < now,
                   "EWMA forecaster needs history before now");
  const double step = history.step().seconds();
  const double decay = std::exp2(-step / half_life_.seconds());
  // Walk backwards from the newest sample at or before `now`; stop once
  // additional samples carry negligible weight (5 half-lives).
  const std::size_t newest =
      history.index_at(std::min(now - seconds(step / 2),
                                history.end() - seconds(step / 2)));
  double weighted = 0.0;
  double weight_sum = 0.0;
  double w = 1.0;
  for (std::size_t back = 0; back <= newest; ++back) {
    weighted += w * history.at(newest - back);
    weight_sum += w;
    w *= decay;
    if (w < std::exp2(-5.0)) break;
  }
  return weighted / weight_sum;
}

EnsembleForecaster::EnsembleForecaster(std::vector<Member> members)
    : members_(std::move(members)) {
  GREENHPC_REQUIRE(!members_.empty(), "ensemble needs at least one member");
  for (const auto& m : members_) {
    GREENHPC_REQUIRE(m.forecaster != nullptr, "ensemble member must not be null");
    GREENHPC_REQUIRE(m.weight > 0.0, "ensemble weights must be positive");
    total_weight_ += m.weight;
  }
}

std::string EnsembleForecaster::name() const {
  std::string label = "ensemble(";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i) label += "+";
    label += members_[i].forecaster->name();
  }
  return label + ")";
}

double EnsembleForecaster::forecast(const util::TimeSeries& history, Duration now,
                                    Duration horizon) const {
  double total = 0.0;
  for (const auto& m : members_) {
    total += m.weight * m.forecaster->forecast(history, now, horizon);
  }
  return total / total_weight_;
}

OracleForecaster::OracleForecaster(util::TimeSeries truth) : truth_(std::move(truth)) {
  GREENHPC_REQUIRE(!truth_.empty(), "oracle requires a non-empty truth series");
}

double OracleForecaster::forecast(const util::TimeSeries& /*history*/, Duration now,
                                  Duration horizon) const {
  GREENHPC_REQUIRE(horizon.seconds() >= 0.0, "forecast horizon must be >= 0");
  return truth_.sample_at_clamped(now + horizon);
}

double evaluate_mape(const Forecaster& forecaster, const util::TimeSeries& truth,
                     Duration warmup, Duration horizon) {
  GREENHPC_REQUIRE(truth.start() + warmup < truth.end(), "warmup exceeds series");
  std::vector<double> actual, predicted;
  const Duration step = truth.step();
  for (Duration now = truth.start() + warmup; now + horizon < truth.end(); now += step) {
    const util::TimeSeries hist =
        truth.slice(0, truth.index_at(now - seconds(step.seconds() / 2)) + 1);
    predicted.push_back(forecaster.forecast(hist, now, horizon));
    actual.push_back(truth.sample_at(now + horizon));
  }
  return util::mape(actual, predicted);
}

}  // namespace greenhpc::carbon
