#pragma once
// Memoized, thread-safe store of generated carbon-intensity traces.
//
// Parameter sweeps compare many policies and cluster shapes over the SAME
// grid conditions: every case keyed by an identical
// (region, kind, seed, start, span, step) tuple needs bit-for-bit the same
// trace. Regenerating it per case is pure waste — GridModel runs an
// Ornstein-Uhlenbeck draw per sample — and copying it per Simulator is
// more waste. TraceCache generates each distinct trace once and hands out
// shared immutable pointers, which plug straight into the zero-copy
// Simulator::Config. Generation is deterministic, so the cache is
// transparent: a hit is pointer-identical AND value-identical to a fresh
// GridModel::generate with the same key.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "carbon/grid_model.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::carbon {

class TraceCache {
 public:
  /// Everything GridModel::generate depends on, as exact bit patterns
  /// (times in seconds); equal keys generate equal traces.
  struct Key {
    Region region = Region::Germany;
    IntensityKind kind = IntensityKind::Average;
    std::uint64_t seed = 0;
    double start_s = 0.0;
    double span_s = 0.0;
    double step_s = 0.0;

    [[nodiscard]] bool operator==(const Key&) const = default;
  };

  /// The trace for (region, kind, seed) over [start, start + span) at
  /// `step` resolution: generated on the first request, shared afterwards.
  /// Thread-safe; generation runs outside the lock, so concurrent misses
  /// on different keys proceed in parallel (a raced duplicate of the same
  /// key is discarded — the first insertion wins, and every caller gets
  /// that winner's pointer).
  [[nodiscard]] std::shared_ptr<const util::TimeSeries> get(
      Region region, IntensityKind kind, std::uint64_t seed, Duration start,
      Duration span, Duration step);

  /// Number of distinct traces currently held.
  [[nodiscard]] std::size_t size() const;
  /// Lookup counters since construction / the last clear().
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  /// Drop every cached trace (outstanding shared pointers stay valid) and
  /// reset the counters.
  void clear();

  /// Process-wide cache shared by ScenarioRunner and the sweep engine.
  static TraceCache& global();

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const util::TimeSeries>, KeyHash> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace greenhpc::carbon
