#pragma once
// Green-period detection (paper section 3.3): contiguous windows where the
// grid carbon intensity is significantly below the local average, which
// carbon-aware backfill and checkpoint policies target.

#include <vector>

#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::carbon {

/// A contiguous low-carbon window [start, end).
struct GreenWindow {
  Duration start;
  Duration end;
  double mean_intensity = 0.0;  ///< mean gCO2/kWh inside the window

  [[nodiscard]] Duration length() const { return end - start; }
};

/// The intensity value below which a sample counts as "green": the given
/// quantile (in [0,1]) of the series' samples.
[[nodiscard]] double green_threshold(const util::TimeSeries& intensity, double quantile);

/// All maximal green windows of the series under `threshold`, ignoring
/// windows shorter than `min_length`.
[[nodiscard]] std::vector<GreenWindow> find_green_windows(const util::TimeSeries& intensity,
                                                          double threshold,
                                                          Duration min_length = minutes(0));

/// Fraction of total series time that is green under `threshold`.
[[nodiscard]] double green_fraction(const util::TimeSeries& intensity, double threshold);

/// True if time t falls inside any of the given windows.
[[nodiscard]] bool in_green_window(const std::vector<GreenWindow>& windows, Duration t);

}  // namespace greenhpc::carbon
