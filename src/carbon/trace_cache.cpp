#include "carbon/trace_cache.hpp"

#include <bit>

namespace greenhpc::carbon {

namespace {
/// SplitMix64 finalizer as the per-field mixer (good avalanche, cheap).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::size_t TraceCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(k.region));
  h = mix64(h ^ static_cast<std::uint64_t>(k.kind));
  h = mix64(h ^ k.seed);
  h = mix64(h ^ std::bit_cast<std::uint64_t>(k.start_s));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(k.span_s));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(k.step_s));
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const util::TimeSeries> TraceCache::get(Region region,
                                                        IntensityKind kind,
                                                        std::uint64_t seed,
                                                        Duration start, Duration span,
                                                        Duration step) {
  const Key key{region, kind, seed, start.seconds(), span.seconds(), step.seconds()};
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Generate outside the lock: concurrent misses on distinct keys don't
  // serialize behind each other's OU draws. Deterministic generation makes
  // a raced duplicate harmless — try_emplace keeps the first insertion.
  auto trace = std::make_shared<const util::TimeSeries>(
      GridModel(region, seed).generate(start, span, step, kind));
  std::lock_guard lock(mutex_);
  return map_.try_emplace(key, std::move(trace)).first->second;
}

std::size_t TraceCache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

std::size_t TraceCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::size_t TraceCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

void TraceCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

TraceCache& TraceCache::global() {
  static TraceCache cache;
  return cache;
}

}  // namespace greenhpc::carbon
