#pragma once
// Stochastic grid carbon-intensity generator.
//
// Produces the per-region carbon-intensity traces that every operational
// experiment (Fig. 2, sections 3.1-3.4) consumes. Generation is fully
// deterministic for a given (region, seed) pair.

#include <cstdint>

#include "carbon/region.hpp"
#include "util/rng.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::carbon {

/// Kinds of intensity signal (see the "average vs marginal" distinction the
/// paper cites; marginal generation is usually fossil and hence dirtier).
enum class IntensityKind {
  Average,   ///< consumption-weighted average of the generation mix
  Marginal,  ///< intensity of the marginal (next-kW) generator
};

/// Generator of carbon-intensity time series for one region.
///
/// The process is the sum of a deterministic demand shape (diurnal cosine,
/// solar midday dip, weekend scaling) and an Ornstein-Uhlenbeck weather
/// term whose multi-day correlation produces realistic day-to-day regimes
/// (e.g. a windless cold week in Finland). See RegionTraits for the exact
/// formula. Marginal traces apply the region's marginal uplift to the
/// above-floor part of the signal.
class GridModel {
 public:
  /// Model for `region`, seeded deterministically; the same (region, seed)
  /// always generates the same trace.
  GridModel(Region region, std::uint64_t seed);
  /// Model with explicit traits (for tests and what-if grids).
  GridModel(RegionTraits custom_traits, std::uint64_t seed);

  /// Region parameters in use.
  [[nodiscard]] const RegionTraits& region_traits() const { return traits_; }

  /// Generate a trace starting at absolute time `start` (seconds since the
  /// simulation epoch; hour-of-day = (start/3600) mod 24, day 0 is a
  /// Sunday), covering `duration` at `step` resolution.
  [[nodiscard]] util::TimeSeries generate(Duration start, Duration duration, Duration step,
                                          IntensityKind kind = IntensityKind::Average);

  /// Instantaneous intensity value of the deterministic component only
  /// (no weather noise) — used by forecasters' oracle baselines and tests.
  [[nodiscard]] double deterministic_component(Duration t) const;

 private:
  RegionTraits traits_;
  util::Rng rng_;
};

/// A trace bundle: one series per region over a common window (the Fig. 2
/// setting). Regions appear in all_regions() order.
struct RegionalTraces {
  std::vector<Region> regions;
  std::vector<util::TimeSeries> series;
};

/// Generate hour-resolution traces for all regions over `duration`,
/// seeding each region's model from `seed` so the bundle is reproducible.
[[nodiscard]] RegionalTraces generate_european_traces(Duration start, Duration duration,
                                                      Duration step, std::uint64_t seed,
                                                      IntensityKind kind = IntensityKind::Marginal);

}  // namespace greenhpc::carbon
