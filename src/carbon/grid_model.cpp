#include "carbon/grid_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::carbon {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

[[nodiscard]] double hour_of_day(Duration t) {
  return std::fmod(t.seconds() / 3600.0, 24.0);
}

[[nodiscard]] bool is_weekend(Duration t) {
  // Day 0 of the simulation epoch is a Sunday.
  const auto day = static_cast<long long>(t.seconds() / 86400.0);
  const long long dow = ((day % 7) + 7) % 7;
  return dow == 0 || dow == 6;
}

/// Smooth midday bump in [0,1] peaking at 13:00, ~6 h wide — the window in
/// which solar output displaces fossil generation.
[[nodiscard]] double solar_bump(double hour) {
  const double x = (hour - 13.0) / 3.5;
  return std::exp(-x * x);
}
}  // namespace

GridModel::GridModel(Region region, std::uint64_t seed)
    : GridModel(traits(region), seed) {}

GridModel::GridModel(RegionTraits custom_traits, std::uint64_t seed)
    : traits_(custom_traits), rng_(seed ^ 0x67726964u /* "grid" */) {
  GREENHPC_REQUIRE(traits_.mean_gkwh > 0.0, "region mean intensity must be > 0");
  GREENHPC_REQUIRE(traits_.cap_gkwh > traits_.floor_gkwh, "region cap must exceed floor");
  GREENHPC_REQUIRE(traits_.ou_tau_hours > 0.0, "OU correlation time must be > 0");
}

double GridModel::deterministic_component(Duration t) const {
  const double h = hour_of_day(t);
  const double weekend = is_weekend(t) ? traits_.weekend_factor : 1.0;
  double v = traits_.mean_gkwh * weekend;
  v += traits_.diurnal_amplitude * std::cos(kTwoPi * (h - traits_.peak_hour) / 24.0);
  v -= traits_.solar_depth * solar_bump(h);
  return std::clamp(v, traits_.floor_gkwh, traits_.cap_gkwh);
}

util::TimeSeries GridModel::generate(Duration start, Duration duration, Duration step,
                                     IntensityKind kind) {
  GREENHPC_REQUIRE(duration.seconds() > 0.0, "trace duration must be positive");
  GREENHPC_REQUIRE(step.seconds() > 0.0, "trace step must be positive");
  const auto n = static_cast<std::size_t>(std::ceil(duration.seconds() / step.seconds()));
  util::TimeSeries out(start, step);

  // Exact OU discretization: x' = x*exp(-dt/tau) + sigma*sqrt(1-exp(-2dt/tau))*N(0,1).
  const double tau = traits_.ou_tau_hours * 3600.0;
  const double dt = step.seconds();
  const double decay = std::exp(-dt / tau);
  const double diffusion = traits_.ou_sigma * std::sqrt(1.0 - decay * decay);
  // Start the weather process in its stationary distribution.
  double ou = rng_.normal(0.0, traits_.ou_sigma);

  for (std::size_t i = 0; i < n; ++i) {
    const Duration t = start + step * static_cast<double>(i);
    double v = deterministic_component(t) + ou;
    v = std::clamp(v, traits_.floor_gkwh, traits_.cap_gkwh);
    if (kind == IntensityKind::Marginal) {
      // Marginal generation is fossil whenever demand sits above the
      // low-carbon floor, so the above-floor share is uplifted.
      v = traits_.floor_gkwh + (v - traits_.floor_gkwh) * traits_.marginal_uplift;
      v = std::min(v, traits_.cap_gkwh * traits_.marginal_uplift);
    }
    out.push_back(v);
    ou = ou * decay + diffusion * rng_.normal();
  }
  return out;
}

RegionalTraces generate_european_traces(Duration start, Duration duration, Duration step,
                                        std::uint64_t seed, IntensityKind kind) {
  RegionalTraces bundle;
  for (Region r : all_regions()) {
    bundle.regions.push_back(r);
    // Mix the region index into the seed so regions are independent but the
    // bundle as a whole is reproducible from one seed.
    std::uint64_t mix = seed + 0x9e3779b97f4a7c15ull * (bundle.regions.size() + 1);
    GridModel model(r, util::splitmix64(mix));
    bundle.series.push_back(model.generate(start, duration, step, kind));
  }
  return bundle;
}

}  // namespace greenhpc::carbon
