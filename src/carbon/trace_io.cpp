#include "carbon/trace_io.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace greenhpc::carbon {

util::TimeSeries load_intensity_csv(std::istream& in) {
  std::vector<double> times;
  std::vector<double> values;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream row(line);
    std::string t_str, v_str;
    if (!std::getline(row, t_str, ',') || !std::getline(row, v_str)) {
      throw InvalidArgument("trace csv: malformed row at line " +
                            std::to_string(lineno));
    }
    char* end = nullptr;
    const double t = std::strtod(t_str.c_str(), &end);
    if (end == t_str.c_str()) {
      // Allow one header row.
      if (times.empty() && values.empty()) continue;
      throw InvalidArgument("trace csv: non-numeric timestamp at line " +
                            std::to_string(lineno));
    }
    const double v = std::strtod(v_str.c_str(), &end);
    GREENHPC_REQUIRE(end != v_str.c_str(),
                     "trace csv: non-numeric intensity at line " + std::to_string(lineno));
    GREENHPC_REQUIRE(std::isfinite(t), "trace csv: non-finite timestamp at line " +
                                           std::to_string(lineno));
    GREENHPC_REQUIRE(std::isfinite(v), "trace csv: non-finite intensity at line " +
                                           std::to_string(lineno));
    GREENHPC_REQUIRE(v >= 0.0, "trace csv: negative intensity at line " +
                                   std::to_string(lineno));
    times.push_back(t);
    values.push_back(v);
  }
  GREENHPC_REQUIRE(values.size() >= 2, "trace csv: need at least two samples");
  const double step = times[1] - times[0];
  GREENHPC_REQUIRE(step > 0.0, "trace csv: timestamps must ascend");
  for (std::size_t i = 2; i < times.size(); ++i) {
    GREENHPC_REQUIRE(std::fabs((times[i] - times[i - 1]) - step) < 1e-6 * step + 1e-9,
                     "trace csv: unequal sample spacing at line " + std::to_string(i + 1));
  }
  return util::TimeSeries(seconds(times[0]), seconds(step), std::move(values));
}

void save_intensity_csv(const util::TimeSeries& trace, std::ostream& out) {
  out << "timestamp_s,intensity_g_per_kwh\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double t = trace.start().seconds() + trace.step().seconds() * i;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g,%.6g\n", t, trace.at(i));
    out << buf;
  }
}

}  // namespace greenhpc::carbon
