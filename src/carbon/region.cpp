#include "carbon/region.hpp"

#include "util/error.hpp"

namespace greenhpc::carbon {

namespace {
// Calibration anchors (January 2023):
//  * Finland mean / France mean ~ 2.1 (paper, Fig. 2 discussion)
//  * Finland daily-mean sigma  ~ 47.21 gCO2/kWh (paper)
//  * Ordering: NO < SE < FR < FI < ES < UK < IT < NL < DE < PL.
// Absolute levels for the other regions follow published Jan-2023 monthly
// averages to within the generator's stochastic spread.
constexpr RegionTraits kTraits[] = {
    // name,            code, mean,  amp, peak, solar, wknd, ou_s, tau_h, floor,  cap, marg
    {"France", "FR", 85.0, 14.0, 19.0, 6.0, 0.90, 18.0, 30.0, 30.0, 380.0, 1.45},
    {"Finland", "FI", 178.0, 24.0, 18.0, 2.0, 0.88, 48.0, 42.0, 60.0, 620.0, 1.28},
    {"Sweden", "SE", 46.0, 8.0, 18.0, 1.5, 0.92, 10.0, 36.0, 15.0, 240.0, 1.50},
    {"Norway", "NO", 29.0, 4.0, 18.0, 0.5, 0.95, 5.0, 48.0, 12.0, 150.0, 1.55},
    {"Germany", "DE", 472.0, 60.0, 18.5, 38.0, 0.85, 85.0, 36.0, 140.0, 900.0, 1.30},
    {"Poland", "PL", 708.0, 45.0, 18.5, 14.0, 0.90, 60.0, 30.0, 420.0, 1025.0, 1.12},
    {"Netherlands", "NL", 438.0, 52.0, 18.0, 30.0, 0.87, 55.0, 28.0, 170.0, 820.0, 1.25},
    {"Italy", "IT", 392.0, 48.0, 19.5, 34.0, 0.86, 48.0, 26.0, 160.0, 760.0, 1.28},
    {"Spain", "ES", 218.0, 36.0, 20.0, 42.0, 0.88, 55.0, 30.0, 60.0, 560.0, 1.35},
    {"United Kingdom", "UK", 268.0, 44.0, 18.0, 16.0, 0.87, 68.0, 32.0, 80.0, 640.0, 1.30},
};

[[nodiscard]] constexpr std::size_t index_of(Region r) {
  switch (r) {
    case Region::France: return 0;
    case Region::Finland: return 1;
    case Region::Sweden: return 2;
    case Region::Norway: return 3;
    case Region::Germany: return 4;
    case Region::Poland: return 5;
    case Region::Netherlands: return 6;
    case Region::Italy: return 7;
    case Region::Spain: return 8;
    case Region::UnitedKingdom: return 9;
  }
  return 0;
}
}  // namespace

const RegionTraits& traits(Region r) { return kTraits[index_of(r)]; }

std::string_view name(Region r) { return traits(r).name; }

}  // namespace greenhpc::carbon
