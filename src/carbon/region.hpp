#pragma once
// European grid regions and their carbon-intensity generator parameters.
//
// Substitution note (see DESIGN.md): the paper's Fig. 2 uses a commercial
// grid-emissions data feed for January 2023 which we cannot access offline.
// These presets parameterize a stochastic generator whose output is
// calibrated to the paper's two quantitative anchors — Finland averaging
// ~2.1x France's intensity, with a daily standard deviation of ~47 gCO2/kWh
// in Finland — and to the publicly known ordering of European grids in that
// month (hydro/nuclear Nordics + France low; coal-heavy Poland highest).

#include <array>
#include <string_view>

namespace greenhpc::carbon {

/// Geographic regions used throughout the experiments.
enum class Region {
  France,
  Finland,
  Sweden,
  Norway,
  Germany,
  Poland,
  Netherlands,
  Italy,
  Spain,
  UnitedKingdom,
};

/// All regions, in Fig. 2 display order.
[[nodiscard]] constexpr std::array<Region, 10> all_regions() {
  return {Region::Norway,  Region::Sweden,      Region::France, Region::Finland,
          Region::Spain,   Region::UnitedKingdom, Region::Italy, Region::Netherlands,
          Region::Germany, Region::Poland};
}

/// Generator parameters for a region's carbon-intensity process. The
/// process is
///
///   ci(t) = clamp( mean * weekend(t)
///                  + diurnal_amplitude * cos(2*pi*(h - peak_hour)/24)
///                  - solar_depth * midday_bump(h)
///                  + OU(t),  floor, cap )
///
/// where OU is an Ornstein-Uhlenbeck weather process with stationary
/// standard deviation ou_sigma and correlation time ou_tau_hours. The
/// multi-day OU correlation is what produces realistic day-to-day variance
/// (wind/weather regimes), distinct from the deterministic diurnal shape.
struct RegionTraits {
  std::string_view name;         ///< human-readable region name
  std::string_view code;         ///< two-letter display code
  double mean_gkwh;              ///< long-run average intensity, gCO2/kWh
  double diurnal_amplitude;      ///< amplitude of the daily demand cycle
  double peak_hour;              ///< local hour of peak intensity
  double solar_depth;            ///< midday dip from solar displacing fossil
  double weekend_factor;         ///< multiplier on the mean during weekends
  double ou_sigma;               ///< stationary sigma of the weather process
  double ou_tau_hours;           ///< weather-process correlation time
  double floor_gkwh;             ///< physical floor (always-on low-carbon mix)
  double cap_gkwh;               ///< cap (all-fossil marginal mix)
  double marginal_uplift;        ///< marginal-vs-average intensity multiplier
};

/// Parameter preset for a region (see the table in region.cpp).
[[nodiscard]] const RegionTraits& traits(Region r);

/// Region display name ("France", ...).
[[nodiscard]] std::string_view name(Region r);

}  // namespace greenhpc::carbon
