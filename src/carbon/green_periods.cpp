#include "carbon/green_periods.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::carbon {

double green_threshold(const util::TimeSeries& intensity, double quantile) {
  GREENHPC_REQUIRE(!intensity.empty(), "green_threshold on empty series");
  return util::percentile(intensity.values(), quantile);
}

std::vector<GreenWindow> find_green_windows(const util::TimeSeries& intensity,
                                            double threshold, Duration min_length) {
  std::vector<GreenWindow> windows;
  const Duration step = intensity.step();
  bool open = false;
  GreenWindow current{};
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    const Duration t = intensity.start() + step * static_cast<double>(i);
    const bool green = intensity.at(i) <= threshold;
    if (green && !open) {
      open = true;
      current.start = t;
      sum = 0.0;
      count = 0;
    }
    if (green) {
      sum += intensity.at(i);
      ++count;
    }
    if (!green && open) {
      open = false;
      current.end = t;
      current.mean_intensity = sum / static_cast<double>(count);
      if (current.length() >= min_length) windows.push_back(current);
    }
  }
  if (open) {
    current.end = intensity.end();
    current.mean_intensity = sum / static_cast<double>(count);
    if (current.length() >= min_length) windows.push_back(current);
  }
  return windows;
}

double green_fraction(const util::TimeSeries& intensity, double threshold) {
  GREENHPC_REQUIRE(!intensity.empty(), "green_fraction on empty series");
  std::size_t green = 0;
  for (double v : intensity.values()) {
    if (v <= threshold) ++green;
  }
  return static_cast<double>(green) / static_cast<double>(intensity.size());
}

bool in_green_window(const std::vector<GreenWindow>& windows, Duration t) {
  for (const auto& w : windows) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

}  // namespace greenhpc::carbon
