#pragma once
// Carbon-intensity forecasting (paper section 3.1: "carbon intensity
// prediction can support the job scheduler").
//
// All forecasters share one interface: given the observed history up to
// `now`, predict the intensity at `now + horizon`. Carbon-aware policies
// consume forecasts only through this interface, so the bench can swap a
// perfect oracle for a realistic forecaster and measure the value of
// forecast accuracy (EXP-FORE).

#include <memory>
#include <string>
#include <vector>

#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::carbon {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Predicted intensity (gCO2/kWh) at absolute time now + horizon, given
  /// `history` — a series whose valid range must include [_, now).
  /// horizon >= 0.
  [[nodiscard]] virtual double forecast(const util::TimeSeries& history, Duration now,
                                        Duration horizon) const = 0;

  /// Display name for experiment tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Same-time-yesterday persistence: the standard day-ahead baseline for
/// strongly diurnal signals.
class PersistenceForecaster final : public Forecaster {
 public:
  [[nodiscard]] double forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const override;
  [[nodiscard]] std::string name() const override { return "persistence-24h"; }
};

/// Trailing moving average over the given window (horizon-independent;
/// captures the level but no diurnal structure).
class MovingAverageForecaster final : public Forecaster {
 public:
  explicit MovingAverageForecaster(Duration window);
  [[nodiscard]] double forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Duration window_;
};

/// Least-squares fit of mean + first two daily harmonics over a trailing
/// training window, evaluated at the forecast time. Captures both level
/// and diurnal shape; robust to the OU weather noise.
class HarmonicForecaster final : public Forecaster {
 public:
  /// `training_window` of history used for the fit (>= 1 day recommended).
  explicit HarmonicForecaster(Duration training_window);
  [[nodiscard]] double forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const override;
  [[nodiscard]] std::string name() const override { return "harmonic-ls"; }

 private:
  Duration window_;
};

/// Exponentially weighted moving average of the history: like the moving
/// average but with recency weighting, so it tracks weather-regime shifts
/// faster at equal effective window length. Horizon-independent.
class EwmaForecaster final : public Forecaster {
 public:
  /// Weight halves every `half_life` of history age.
  explicit EwmaForecaster(Duration half_life);
  [[nodiscard]] double forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Duration half_life_;
};

/// Weighted combination of member forecasters. The classic cheap
/// ensemble: averaging a level tracker (EWMA) with a shape tracker
/// (persistence or harmonic) is robust across regimes.
class EnsembleForecaster final : public Forecaster {
 public:
  struct Member {
    std::shared_ptr<const Forecaster> forecaster;
    double weight = 1.0;
  };
  /// Members must be non-null with positive total weight.
  explicit EnsembleForecaster(std::vector<Member> members);
  [[nodiscard]] double forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::vector<Member> members_;
  double total_weight_ = 0.0;
};

/// Perfect-knowledge oracle over a ground-truth series; upper-bounds the
/// value any forecaster can deliver to a policy.
class OracleForecaster final : public Forecaster {
 public:
  /// Keeps a copy of the ground truth so the oracle stays valid independent
  /// of the caller's trace lifetime.
  explicit OracleForecaster(util::TimeSeries truth);
  [[nodiscard]] double forecast(const util::TimeSeries& history, Duration now,
                                Duration horizon) const override;
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  util::TimeSeries truth_;
};

/// Evaluate forecaster accuracy: mean absolute percentage error over all
/// (now, horizon) pairs with `now` stepping through the evaluation span
/// and a fixed `horizon`. The first `warmup` of the series is history-only.
[[nodiscard]] double evaluate_mape(const Forecaster& forecaster, const util::TimeSeries& truth,
                                   Duration warmup, Duration horizon);

}  // namespace greenhpc::carbon
