#pragma once
// System lifetime modeling (paper section 2.3 and Table 1).
//
// Covers: the LRZ fleet timeline of Table 1, linear embodied-carbon
// amortization over a system's service life, and the lifetime-extension
// analysis ("server lifetime extensions are more effective than component
// reuse").

#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace greenhpc::lifecycle {

/// One row of the paper's Table 1.
struct SystemLifetime {
  std::string name;
  int start_year = 0;
  std::optional<int> decommission_year;  ///< nullopt = still in operation

  /// Service years to date (open-ended systems measured against
  /// `reference_year`). Systems not yet started return 0.
  [[nodiscard]] int service_years(int reference_year) const;
};

/// Table 1 verbatim: recent modern HPC systems at LRZ.
[[nodiscard]] std::vector<SystemLifetime> lrz_fleet();

/// Mean hardware refresh interval between consecutive system starts in a
/// fleet timeline (the "four and six years" rule the paper states).
[[nodiscard]] double mean_refresh_interval_years(const std::vector<SystemLifetime>& fleet);

/// Linear amortization: embodied carbon attributed per year of service.
[[nodiscard]] Carbon annual_embodied(Carbon total_embodied, int lifetime_years);

/// One fleet system with its embodied total, for timeline accounting.
struct FleetSystem {
  SystemLifetime lifetime;
  Carbon embodied;
};

/// Amortized fleet embodied carbon attributable to calendar year `year`:
/// the sum over systems in service that year of embodied / service-life
/// (open-ended systems amortize over `assumed_open_lifetime_years`).
[[nodiscard]] Carbon fleet_embodied_in_year(const std::vector<FleetSystem>& fleet, int year,
                                            int assumed_open_lifetime_years = 6);

/// Year-by-year amortized embodied series over [first_year, last_year].
[[nodiscard]] std::vector<Carbon> fleet_embodied_timeline(
    const std::vector<FleetSystem>& fleet, int first_year, int last_year,
    int assumed_open_lifetime_years = 6);

/// Lifetime-extension analysis (section 2.3): keep the old system for
/// `extension_years` beyond its planned life instead of moving that work
/// onto a fresh replacement immediately.
struct ExtensionScenario {
  Carbon replacement_embodied;     ///< embodied carbon of the successor
  int replacement_lifetime_years = 6;
  Power old_power;                 ///< draw of the old system
  /// The successor delivers the same work at (1 - efficiency_gain) of the
  /// old system's power (generational energy-efficiency improvement).
  double efficiency_gain = 0.35;
  CarbonIntensity grid;            ///< operating-grid intensity
};

struct ExtensionResult {
  Carbon avoided_embodied;   ///< replacement embodied deferred (amortized share)
  Carbon extra_operational;  ///< penalty of running the less efficient system
  /// Net carbon saved by extending (positive = extension wins).
  [[nodiscard]] Carbon net_savings() const { return avoided_embodied - extra_operational; }
};

/// Evaluate an extension of `extension_years`.
[[nodiscard]] ExtensionResult evaluate_extension(const ExtensionScenario& scenario,
                                                 int extension_years);

/// Grid intensity above which extending by `extension_years` stops paying
/// off (the extra operational carbon of the old system outweighs the
/// deferred embodied carbon). Solves the breakeven of
/// evaluate_extension(...) analytically.
[[nodiscard]] CarbonIntensity extension_breakeven_intensity(
    const ExtensionScenario& scenario);

}  // namespace greenhpc::lifecycle
