#include "lifecycle/reuse.hpp"

#include "util/error.hpp"

namespace greenhpc::lifecycle {

Carbon ReuseRecycleModel::reuse_credit(Carbon unit_embodied) const {
  return unit_embodied * (reusable_fraction - refurbishment_overhead);
}

Carbon ReuseRecycleModel::recycle_credit(Carbon unit_embodied) const {
  return unit_embodied * recycle_material_credit;
}

double ReuseRecycleModel::reuse_over_recycle() const {
  GREENHPC_REQUIRE(recycle_material_credit > 0.0,
                   "recycle credit must be positive for the ratio");
  return (reusable_fraction - refurbishment_overhead) / recycle_material_credit;
}

ReuseRecycleModel hdd_reuse_model() {
  ReuseRecycleModel m;
  m.component = "HDD";
  m.reusable_fraction = 0.95;
  m.refurbishment_overhead = 0.015;
  // Calibrated so reuse/recycle = (0.95 - 0.015) / credit = 275 (Lyu et al.).
  m.recycle_material_credit = 0.0034;
  return m;
}

ReuseRecycleModel dram_reuse_model() {
  ReuseRecycleModel m;
  m.component = "DRAM";
  m.reusable_fraction = 0.90;       // DDR4 modules re-deployed via CXL pooling
  m.refurbishment_overhead = 0.05;  // re-qualification/binning
  m.recycle_material_credit = 0.01; // gold/copper recovery
  return m;
}

ReuseRecycleModel ssd_reuse_model() {
  ReuseRecycleModel m;
  m.component = "SSD";
  m.reusable_fraction = 0.60;       // flash wear limits redeployment
  m.refurbishment_overhead = 0.04;
  m.recycle_material_credit = 0.008;
  return m;
}

DecommissionOutcome evaluate_decommission(Carbon component_pool_embodied,
                                          const ReuseRecycleModel& model) {
  GREENHPC_REQUIRE(component_pool_embodied.grams() >= 0.0,
                   "embodied pool must be >= 0");
  DecommissionOutcome o;
  o.reuse_savings = model.reuse_credit(component_pool_embodied);
  o.recycle_savings = model.recycle_credit(component_pool_embodied);
  o.landfill_savings = Carbon{};
  return o;
}

}  // namespace greenhpc::lifecycle
