#include "lifecycle/fleet.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::lifecycle {

int SystemLifetime::service_years(int reference_year) const {
  const int end = decommission_year.value_or(reference_year);
  return std::max(0, end - start_year);
}

std::vector<SystemLifetime> lrz_fleet() {
  // Paper, Table 1: "Recent modern HPC systems at LRZ".
  return {
      {"SuperMUC", 2012, 2018},
      {"SuperMUC Phase 2", 2015, 2019},
      {"SuperMUC-NG", 2019, 2024},
      {"SuperMUC-NG Phase 2", 2023, std::nullopt},
      {"ExaMUC", 2025, std::nullopt},
  };
}

double mean_refresh_interval_years(const std::vector<SystemLifetime>& fleet) {
  GREENHPC_REQUIRE(fleet.size() >= 2, "refresh interval needs at least two systems");
  std::vector<int> starts;
  starts.reserve(fleet.size());
  for (const auto& s : fleet) starts.push_back(s.start_year);
  std::sort(starts.begin(), starts.end());
  double total = 0.0;
  for (std::size_t i = 1; i < starts.size(); ++i) total += starts[i] - starts[i - 1];
  return total / static_cast<double>(starts.size() - 1);
}

Carbon annual_embodied(Carbon total_embodied, int lifetime_years) {
  GREENHPC_REQUIRE(lifetime_years >= 1, "lifetime must be at least one year");
  return total_embodied / static_cast<double>(lifetime_years);
}

Carbon fleet_embodied_in_year(const std::vector<FleetSystem>& fleet, int year,
                              int assumed_open_lifetime_years) {
  GREENHPC_REQUIRE(assumed_open_lifetime_years >= 1,
                   "assumed open lifetime must be >= 1");
  Carbon total{};
  for (const auto& sys : fleet) {
    const int start = sys.lifetime.start_year;
    const int end = sys.lifetime.decommission_year.value_or(
        start + assumed_open_lifetime_years);
    if (year < start || year >= end) continue;
    total += annual_embodied(sys.embodied, std::max(1, end - start));
  }
  return total;
}

std::vector<Carbon> fleet_embodied_timeline(const std::vector<FleetSystem>& fleet,
                                            int first_year, int last_year,
                                            int assumed_open_lifetime_years) {
  GREENHPC_REQUIRE(first_year <= last_year, "year range inverted");
  std::vector<Carbon> series;
  series.reserve(static_cast<std::size_t>(last_year - first_year + 1));
  for (int y = first_year; y <= last_year; ++y) {
    series.push_back(fleet_embodied_in_year(fleet, y, assumed_open_lifetime_years));
  }
  return series;
}

ExtensionResult evaluate_extension(const ExtensionScenario& scenario, int extension_years) {
  GREENHPC_REQUIRE(extension_years >= 0, "extension must be >= 0 years");
  GREENHPC_REQUIRE(scenario.replacement_lifetime_years >= 1,
                   "replacement lifetime must be >= 1");
  GREENHPC_REQUIRE(scenario.efficiency_gain >= 0.0 && scenario.efficiency_gain < 1.0,
                   "efficiency gain must be in [0,1)");
  ExtensionResult r;
  // Deferring the replacement by k years avoids k years' worth of its
  // amortized embodied carbon.
  r.avoided_embodied =
      annual_embodied(scenario.replacement_embodied, scenario.replacement_lifetime_years) *
      static_cast<double>(extension_years);
  // The old system draws efficiency_gain more power for the same work.
  const Power extra = scenario.old_power * scenario.efficiency_gain;
  r.extra_operational = (extra * days(365.0 * extension_years)) * scenario.grid;
  return r;
}

CarbonIntensity extension_breakeven_intensity(const ExtensionScenario& scenario) {
  GREENHPC_REQUIRE(scenario.efficiency_gain > 0.0,
                   "breakeven undefined without an efficiency gain");
  GREENHPC_REQUIRE(scenario.old_power.watts() > 0.0, "old system power must be positive");
  // avoided = annual_embodied * k ; extra = P * gain * k * 8760h * ci.
  const double annual_g =
      annual_embodied(scenario.replacement_embodied, scenario.replacement_lifetime_years)
          .grams();
  const double extra_kwh_per_year =
      scenario.old_power.kilowatts() * scenario.efficiency_gain * 8760.0;
  return grams_per_kwh(annual_g / extra_kwh_per_year);
}

}  // namespace greenhpc::lifecycle
