#pragma once
// Component reuse vs recycling (paper section 2.3): "recycling yields
// relatively limited returns for reducing carbon emissions, while
// component reuse is significantly more effective ... reusing hard disk
// drives leads to 275x more carbon emissions reductions than recycling."
//
// Model structure (following Lyu et al., HotCarbon'23): reusing a
// component avoids manufacturing a new one (minus a refurbishment/
// re-qualification overhead); recycling only displaces the raw-material
// extraction share of a new component's embodied carbon, because the
// energy-intensive fabrication steps must still be performed.

#include <string>

#include "embodied/act_model.hpp"
#include "util/units.hpp"

namespace greenhpc::lifecycle {

struct ReuseRecycleModel {
  std::string component;
  /// Fraction of decommissioned units healthy enough to redeploy.
  double reusable_fraction = 0.95;
  /// Carbon cost of refurbishment/re-qualification, as a fraction of a new
  /// unit's embodied carbon.
  double refurbishment_overhead = 0.02;
  /// Share of a new unit's embodied carbon displaced by recycled material
  /// (raw-material extraction credit only — fabrication is unaffected).
  double recycle_material_credit = 0.0034;

  /// Carbon avoided by reusing one unit with the given embodied carbon.
  [[nodiscard]] Carbon reuse_credit(Carbon unit_embodied) const;
  /// Carbon avoided by recycling one unit.
  [[nodiscard]] Carbon recycle_credit(Carbon unit_embodied) const;
  /// Reduction ratio reuse : recycle (the paper's 275x for HDDs).
  [[nodiscard]] double reuse_over_recycle() const;
};

/// HDD parameters calibrated to Lyu et al.'s published 275x ratio: drives
/// redeploy almost freely, while recycling recovers only the rare-earth/
/// aluminium extraction share.
[[nodiscard]] ReuseRecycleModel hdd_reuse_model();
/// DRAM (the DDR4-in-DDR5-servers reuse the paper cites via Pond/CXL):
/// higher requalification cost, better material credit than HDD.
[[nodiscard]] ReuseRecycleModel dram_reuse_model();
/// SSD: wear limits the reusable fraction.
[[nodiscard]] ReuseRecycleModel ssd_reuse_model();

/// Fleet-level decommissioning analysis: carbon avoided by reusing /
/// recycling the memory+storage share of a decommissioned system.
struct DecommissionOutcome {
  Carbon reuse_savings;
  Carbon recycle_savings;
  Carbon landfill_savings;  ///< always zero; baseline for the table
};
[[nodiscard]] DecommissionOutcome evaluate_decommission(Carbon component_pool_embodied,
                                                        const ReuseRecycleModel& model);

}  // namespace greenhpc::lifecycle
