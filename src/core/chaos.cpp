#include "core/chaos.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "core/sweep_coordinator.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace greenhpc::core {

namespace {

using util::FaultAction;
using util::FaultSpec;

/// Remove the journal files a previous schedule (or a previous harness
/// invocation reusing the workdir) left in `dir`, so a resume inside
/// THIS schedule can never union stale shards from another grid run.
/// Only sweep artifacts are touched; unknown files are left alone.
void scrub_journal_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;  // not created yet: nothing to scrub
  std::vector<std::string> doomed;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const bool shard = name.rfind("shard-", 0) == 0 &&
                       name.size() > 8 &&
                       name.compare(name.size() - 8, 8, ".journal") == 0;
    if (shard || name == "sweep.journal") doomed.push_back(name);
  }
  ::closedir(d);
  for (const std::string& name : doomed) ::unlink((dir + "/" + name).c_str());
}

/// Sorted flat ids of a result's quarantined cases — the comparable half
/// of the terminal report (error text is path-dependent, flat ids are
/// not).
std::vector<std::size_t> failed_flats(const SweepResult& r) {
  std::vector<std::size_t> out;
  out.reserve(r.failed_cases.size());
  for (const SweepFailedCase& f : r.failed_cases) out.push_back(f.flat);
  std::sort(out.begin(), out.end());
  return out;
}

std::string flats_to_string(const std::vector<std::size_t>& v) {
  std::string s = "{";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(v[i]);
  }
  return s + "}";
}

/// Arm/disarm bracket: the injector is process-global state, so every
/// exit path out of the harness must leave it disarmed or a later sweep
/// in the same process would inherit chaos specs.
struct DisarmGuard {
  ~DisarmGuard() { util::FaultInjector::global().disarm(); }
};

}  // namespace

const std::vector<std::string>& chaos_site_catalogue() {
  static const std::vector<std::string> kSites = {
      "worker.start",   "worker.heartbeat", "worker.block",
      "worker.report",  "journal.append",   "case.poison",
      "coord.fold",
  };
  return kSites;
}

ChaosSchedule ChaosSchedule::derive(std::uint64_t chaos_seed, int schedule,
                                    const std::vector<std::string>& sites,
                                    int workers, std::size_t n_cases,
                                    std::size_t n_blocks,
                                    std::uint64_t wedge_stall_ms) {
  GREENHPC_REQUIRE(workers >= 1, "chaos schedule needs at least one worker");
  GREENHPC_REQUIRE(n_cases >= 1 && n_blocks >= 1,
                   "chaos schedule needs a non-empty grid");
  ChaosSchedule p;
  p.chaos_seed = chaos_seed;
  p.schedule = schedule;
  p.worker_faults.resize(static_cast<std::size_t>(workers));

  // One splitmix64 stream per (seed, schedule); every decision below is
  // a fresh draw in a FIXED order, so the plan is a pure function of the
  // derive() arguments.
  std::uint64_t st =
      chaos_seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(schedule + 1);
  auto draw = [&st] { return util::splitmix64(st); };
  auto enabled = [&sites](const char* site) {
    return sites.empty() ||
           std::find(sites.begin(), sites.end(), site) != sites.end();
  };

  // Plan-level faults first: the poison case (one per schedule, shared by
  // every process so worker and in-process behaviour agree on WHICH case
  // is bad) and the mid-fold coordinator death.
  if (enabled("case.poison") && draw() % 100 < 25) {
    p.has_poison = true;
    p.poison_flat = draw() % n_cases;
  }
  if (enabled("coord.fold") && draw() % 100 < 20) {
    p.has_restart = true;
    p.coordinator_faults.push_back(
        {"coord.fold", draw() % n_blocks, 1, FaultAction::Fail, 0});
  }

  for (int w = 0; w < workers; ++w) {
    std::vector<FaultSpec>& specs = p.worker_faults[static_cast<std::size_t>(w)];
    if (enabled("worker.start") && draw() % 100 < 30) {
      const std::uint64_t d = draw();
      if (d % 4 == 0) {
        specs.push_back({"worker.start", 0, 1, FaultAction::Kill, 0});
      } else {
        specs.push_back({"worker.start", 0, 1, FaultAction::Delay, 20 + d % 180});
      }
    }
    if (enabled("worker.heartbeat") && draw() % 100 < 30) {
      const std::uint64_t d = draw();
      if (d % 3 == 0) {
        specs.push_back(
            {"worker.heartbeat", d % 4, 2, FaultAction::Delay, 20 + d % 130});
      } else {
        // Long drops (up to 12 beats) can cross the miss limit and get
        // the worker declared dead while perfectly healthy — the fabric
        // must survive false positives too.
        specs.push_back(
            {"worker.heartbeat", d % 4, 1 + d % 12, FaultAction::Drop, 0});
      }
    }
    if (enabled("worker.block") && draw() % 100 < 40) {
      const std::uint64_t d = draw();
      if (d % 100 < 15) {
        // The wedge: heartbeats keep flowing while the block sits on a
        // stall longer than the progress deadline — only the
        // progress-timeout eviction trap ends this one.
        specs.push_back(
            {"worker.block", d % 3, 1, FaultAction::Stall, wedge_stall_ms});
      } else if (d % 2 == 0) {
        specs.push_back({"worker.block", d % 3, 1, FaultAction::Kill, 0});
      } else {
        specs.push_back(
            {"worker.block", d % 3, 1, FaultAction::Stall, 50 + d % 250});
      }
    }
    if (enabled("worker.report") && draw() % 100 < 25) {
      const std::uint64_t d = draw();
      switch (d % 3) {
        case 0:
          specs.push_back(
              {"worker.report", d % 3, 1, FaultAction::Truncate, 1 + d % 8});
          break;
        case 1:
          specs.push_back(
              {"worker.report", d % 3, 1, FaultAction::BitFlip, d % 4096});
          break;
        default:
          specs.push_back(
              {"worker.report", d % 3, 1, FaultAction::ShortWrite, 5 + d % 40});
          break;
      }
    }
    if (enabled("journal.append") && draw() % 100 < 25) {
      const std::uint64_t d = draw();
      if (d % 2 == 0) {
        specs.push_back({"journal.append", d % 3, 1, FaultAction::Fail, 0});
      } else {
        specs.push_back(
            {"journal.append", d % 3, 1, FaultAction::ShortWrite, 3 + d % 30});
      }
    }
  }

  if (p.has_poison) {
    // The SAME spec everywhere: workers run lethal (the case kills its
    // process), the coordinator does not (match degrades to a thrown,
    // quarantinable failure in the in-process path).
    const FaultSpec poison{"case.poison", p.poison_flat, 1, FaultAction::Kill, 0};
    for (std::vector<FaultSpec>& specs : p.worker_faults) specs.push_back(poison);
    p.coordinator_faults.push_back(poison);
  }
  return p;
}

std::vector<FaultSpec> ChaosSchedule::worker_specs(int slot,
                                                   int incarnation) const {
  if (incarnation > 0) {
    // Respawns are healthy except for the poison: the poisoned case must
    // keep killing whoever runs it, everything else must not be able to
    // drain the respawn budget forever.
    std::vector<FaultSpec> specs;
    if (has_poison) {
      specs.push_back({"case.poison", poison_flat, 1, FaultAction::Kill, 0});
    }
    return specs;
  }
  const auto i = static_cast<std::size_t>(slot);
  return i < worker_faults.size() ? worker_faults[i] : std::vector<FaultSpec>{};
}

std::vector<FaultSpec> ChaosSchedule::resume_coordinator_faults() const {
  std::vector<FaultSpec> specs;
  for (const FaultSpec& s : coordinator_faults) {
    if (s.site != "coord.fold") specs.push_back(s);
  }
  return specs;
}

std::string ChaosSchedule::describe() const {
  std::ostringstream os;
  os << "schedule " << schedule << " seed " << chaos_seed;
  if (has_poison) os << " poison=" << poison_flat;
  if (has_restart) os << " restart";
  for (std::size_t w = 0; w < worker_faults.size(); ++w) {
    if (worker_faults[w].empty()) continue;
    os << " w" << w << ":[";
    for (std::size_t i = 0; i < worker_faults[w].size(); ++i) {
      if (i != 0) os << " ";
      const FaultSpec& s = worker_faults[w][i];
      os << s.site << "@" << s.at << "x" << s.count << ":"
         << util::FaultInjector::action_name(s.action);
    }
    os << "]";
  }
  return os.str();
}

ChaosReport run_chaos(const ChaosOptions& opts) {
  GREENHPC_REQUIRE(opts.grid != nullptr, "chaos needs a grid");
  GREENHPC_REQUIRE(opts.schedules >= 1, "chaos needs at least one schedule");
  GREENHPC_REQUIRE(opts.workers >= 1, "chaos needs at least one worker");
  GREENHPC_REQUIRE(!opts.worker_argv.empty(), "chaos needs a worker argv");
  GREENHPC_REQUIRE(!opts.workdir.empty(), "chaos needs a workdir");
  GREENHPC_REQUIRE(opts.block >= 1, "chaos block must be >= 1");
  for (const std::string& site : opts.sites) {
    const auto& cat = chaos_site_catalogue();
    GREENHPC_REQUIRE(std::find(cat.begin(), cat.end(), site) != cat.end(),
                     "unknown chaos site: " + site);
  }

  util::FaultInjector& inj = util::FaultInjector::global();
  DisarmGuard disarm_guard;
  obs::Registry& reg = obs::Registry::global();
  util::MonotoneClock clock;
  const double t_start = clock.now_s();
  obs::FlightRecorder events(
      std::max<std::size_t>(256, static_cast<std::size_t>(opts.schedules) * 4));

  const std::size_t n_cases = opts.grid->case_count();
  const std::size_t n_blocks = (n_cases + opts.block - 1) / opts.block;

  ChaosReport report;
  report.chaos_seed = opts.chaos_seed;

  // Clean reference: the digest every fault-only (non-poison) schedule
  // must reproduce bit for bit. In-process, injector disarmed.
  inj.disarm();
  SweepEngine::Options ceng;
  ceng.block = opts.block;
  const SweepResult clean = SweepEngine(ceng).run(*opts.grid);
  GREENHPC_REQUIRE(clean.failed_cases.empty(),
                   "chaos baseline grid must run clean (a grid that "
                   "quarantines cases on its own cannot anchor the digest "
                   "comparison)");
  report.clean_digest = clean.digest;
  events.record(clock.now_s() - t_start, "baseline",
                "digest=" + std::to_string(clean.digest) +
                    " cases=" + std::to_string(clean.cases));

  // Poisoned references, computed on demand and cached by flat id: the
  // expected terminal report when case `flat` deterministically dies.
  // case_retries=0 — attempts don't move the digest and the reference
  // should not burn retry backoff.
  std::map<std::size_t, SweepResult> poison_ref;
  auto poisoned_reference = [&](std::size_t flat) -> const SweepResult& {
    auto it = poison_ref.find(flat);
    if (it != poison_ref.end()) return it->second;
    inj.arm({{"case.poison", flat, 1, FaultAction::Kill, 0}});
    SweepEngine::Options peng;
    peng.block = opts.block;
    peng.case_retries = 0;
    SweepResult r = SweepEngine(peng).run(*opts.grid);
    inj.disarm();
    GREENHPC_REQUIRE(r.failed_cases.size() == 1 && r.failed_cases[0].flat == flat,
                     "poisoned reference run did not quarantine exactly the "
                     "poisoned case");
    return poison_ref.emplace(flat, std::move(r)).first->second;
  };

  // Execute one schedule to its terminal report: arm, run, and on an
  // injected coordinator death restart with resume=true re-armed WITHOUT
  // the fold fault. Never throws for schedule-level failures.
  auto run_schedule = [&](const ChaosSchedule& plan,
                          const std::string& jdir) -> ChaosScheduleOutcome {
    ChaosScheduleOutcome out;
    out.schedule = plan.schedule;
    out.has_poison = plan.has_poison;
    out.poison_flat = plan.poison_flat;

    scrub_journal_dir(jdir);

    SweepCoordinator::Options c;
    c.workers = opts.workers;
    c.worker_argv = opts.worker_argv;
    c.journal_dir = jdir;
    c.block = opts.block;
    c.heartbeat_interval_s = opts.heartbeat_interval_s;
    c.heartbeat_timeout_s = opts.heartbeat_timeout_s;
    c.heartbeat_miss_limit = opts.heartbeat_miss_limit;
    c.hello_timeout_s = opts.hello_timeout_s;
    c.lease_timeout_s = opts.lease_timeout_s;
    c.progress_timeout_s = opts.progress_timeout_s;
    c.lease_backoff_base_s = opts.lease_backoff_base_s;
    c.lease_backoff_cap_s = opts.lease_backoff_cap_s;
    c.lease_suspect_after = opts.lease_suspect_after;
    c.probe_case_deaths = opts.probe_case_deaths;
    c.max_respawns = opts.max_respawns;
    c.worker_extra_args = [&plan](int slot, int incarnation) {
      std::vector<std::string> extra;
      const std::vector<FaultSpec> specs = plan.worker_specs(slot, incarnation);
      if (!specs.empty()) {
        extra.push_back("--chaos-spec");
        extra.push_back(util::FaultInjector::encode(specs));
      }
      return extra;
    };

    const double t0 = clock.now_s();
    SweepResult result;
    SweepCoordinator::Stats stats;
    bool completed = false;
    for (int attempt = 0; attempt < 4; ++attempt) {
      inj.arm(attempt == 0 ? plan.coordinator_faults
                           : plan.resume_coordinator_faults());
      try {
        SweepCoordinator coord(c);
        result = coord.run(*opts.grid);
        stats = coord.stats();
        completed = true;
        break;
      } catch (const util::InjectedFailure&) {
        // The injected coordinator death. Worker children were reaped by
        // the unwind; shard journals survive on disk. Restart resuming
        // from them, with the fold fault removed.
        out.restarted = true;
        c.resume = true;
      }
    }
    inj.disarm();
    out.elapsed_s = clock.now_s() - t0;
    if (!completed) {
      out.note = "coordinator restart loop did not converge in 4 attempts";
      return out;
    }

    out.digest = result.digest;
    out.cases = result.cases;
    out.failed_flats = failed_flats(result);
    out.worker_deaths = stats.worker_deaths;
    out.workers_respawned = stats.workers_respawned;
    out.workers_evicted_wedged = stats.workers_evicted_wedged;
    out.suspect_blocks = stats.suspect_blocks;
    out.probes_launched = stats.probes_launched;
    out.probe_quarantined_cases = stats.probe_quarantined_cases;
    out.journal_degraded = stats.journal_degraded;
    out.journal_truncations = stats.journal_truncations;

    const SweepResult& expect =
        plan.has_poison ? poisoned_reference(plan.poison_flat) : clean;
    const std::vector<std::size_t> expect_flats = failed_flats(expect);
    if (out.cases != n_cases) {
      out.note = "terminal report covers " + std::to_string(out.cases) +
                 " cases, grid has " + std::to_string(n_cases);
    } else if (out.digest != expect.digest) {
      out.note = "digest " + std::to_string(out.digest) + " != expected " +
                 std::to_string(expect.digest) +
                 (plan.has_poison ? " (poisoned reference)" : " (clean run)");
    } else if (out.failed_flats != expect_flats) {
      out.note = "quarantined cases " + flats_to_string(out.failed_flats) +
                 " != expected " + flats_to_string(expect_flats);
    } else if (out.elapsed_s > opts.schedule_deadline_s) {
      out.note = "schedule took " + std::to_string(out.elapsed_s) +
                 "s, deadline " + std::to_string(opts.schedule_deadline_s) + "s";
    } else {
      out.pass = true;
    }
    return out;
  };

  auto record_outcome = [&](const ChaosScheduleOutcome& out, const char* kind) {
    std::ostringstream d;
    d << "s=" << out.schedule << " pass=" << (out.pass ? 1 : 0)
      << " digest=" << out.digest << " failed=" << flats_to_string(out.failed_flats)
      << " poison=" << (out.has_poison ? static_cast<long long>(out.poison_flat) : -1)
      << " restarted=" << (out.restarted ? 1 : 0)
      << " deaths=" << out.worker_deaths << " respawned=" << out.workers_respawned
      << " wedged=" << out.workers_evicted_wedged
      << " probes=" << out.probes_launched
      << " elapsed_s=" << out.elapsed_s;
    if (!out.note.empty()) d << " note=" << out.note;
    events.record(clock.now_s() - t_start, kind, d.str());
  };

  static obs::Counter& schedules_run = reg.counter("chaos.schedules_run");
  static obs::Counter& schedules_failed = reg.counter("chaos.schedules_failed");

  for (int s = 0; s < opts.schedules; ++s) {
    const ChaosSchedule plan = ChaosSchedule::derive(
        opts.chaos_seed, s, opts.sites, opts.workers, n_cases, n_blocks,
        opts.wedge_stall_ms);
    const std::string jdir = opts.workdir + "/sched-" + std::to_string(s);
    ChaosScheduleOutcome out;
    try {
      out = run_schedule(plan, jdir);
    } catch (const std::exception& e) {
      // A coordinator crash that is NOT the injected restart is exactly
      // what the harness exists to catch: a containment failure.
      out.schedule = s;
      out.has_poison = plan.has_poison;
      out.poison_flat = plan.poison_flat;
      out.note = std::string("coordinator threw: ") + e.what();
      inj.disarm();
    }
    schedules_run.add();
    if (!out.pass) {
      schedules_failed.add();
      ++report.failures;
      std::fprintf(stderr, "greenhpc chaos: FAIL %s\n  %s\n",
                   plan.describe().c_str(), out.note.c_str());
    }
    if (plan.has_poison) ++report.poison_schedules;
    if (out.restarted) ++report.restart_schedules;
    record_outcome(out, out.pass ? "schedule" : "schedule_fail");
    if (opts.on_schedule) opts.on_schedule(out);
    report.schedules.push_back(std::move(out));
  }

  // Determinism pass: re-run one schedule end to end; the terminal
  // report must reproduce exactly (digest, quarantine set, case count).
  const int r = static_cast<int>(opts.chaos_seed % static_cast<std::uint64_t>(
                                     opts.schedules));
  report.determinism_schedule = r;
  const ChaosSchedule replan = ChaosSchedule::derive(
      opts.chaos_seed, r, opts.sites, opts.workers, n_cases, n_blocks,
      opts.wedge_stall_ms);
  ChaosScheduleOutcome rerun;
  try {
    rerun = run_schedule(replan, opts.workdir + "/sched-" + std::to_string(r));
  } catch (const std::exception& e) {
    rerun.note = std::string("determinism rerun threw: ") + e.what();
    inj.disarm();
  }
  const ChaosScheduleOutcome& first = report.schedules[static_cast<std::size_t>(r)];
  report.determinism_pass = rerun.pass == first.pass &&
                            rerun.digest == first.digest &&
                            rerun.cases == first.cases &&
                            rerun.failed_flats == first.failed_flats;
  record_outcome(rerun, report.determinism_pass ? "determinism" : "determinism_fail");
  if (!report.determinism_pass) {
    std::fprintf(stderr,
                 "greenhpc chaos: determinism FAIL on schedule %d (digest "
                 "%llu vs %llu)\n",
                 r, static_cast<unsigned long long>(rerun.digest),
                 static_cast<unsigned long long>(first.digest));
  }

  report.pass = report.failures == 0 && report.determinism_pass;

  // Chaos event lane artifact: one JSONL verdict per schedule, same
  // shape the flight-recorder postmortems use, committed atomically so a
  // crashed harness never leaves a torn artifact for CI to upload.
  try {
    const std::string path = opts.workdir + "/chaos-events.jsonl";
    util::atomic_write_file(
        path, [&events](std::ostream& os) { events.write_jsonl(os); });
    report.events_path = path;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "greenhpc chaos: could not write event artifact: %s\n",
                 e.what());
  }
  return report;
}

}  // namespace greenhpc::core
