#include "core/federation.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace greenhpc::core {

const char* dispatch_name(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::RoundRobin: return "round-robin";
    case DispatchPolicy::LeastLoaded: return "least-loaded";
    case DispatchPolicy::GreenestNow: return "greenest-now";
    case DispatchPolicy::GreenestForecast: return "greenest-forecast";
  }
  return "?";
}

Federation::Federation(Config config) : cfg_(std::move(config)) {
  GREENHPC_REQUIRE(!cfg_.sites.empty(), "federation needs at least one site");
  traces_.reserve(cfg_.sites.size());
  for (std::size_t i = 0; i < cfg_.sites.size(); ++i) {
    cfg_.sites[i].cluster.validate();
    carbon::GridModel model(cfg_.sites[i].region,
                            cfg_.seed + 0x5eed * (i + 1));
    traces_.push_back(model.generate(seconds(0.0), cfg_.trace_span, cfg_.trace_step,
                                     cfg_.intensity_kind));
  }
}

std::vector<std::size_t> Federation::dispatch(const std::vector<hpcsim::JobSpec>& jobs,
                                              DispatchPolicy policy) const {
  const std::size_t n_sites = cfg_.sites.size();
  std::vector<std::size_t> assignment(jobs.size());
  // Committed work per site, in node-seconds, as the dispatcher's load
  // estimate (it cannot see the future schedule, only what it has sent).
  std::vector<double> committed(n_sites, 0.0);
  std::size_t rr_cursor = 0;

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    const int needs = std::max(job.nodes_requested, job.max_nodes);
    // Candidate sites that can physically host the job.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (cfg_.sites[s].cluster.nodes >= needs) candidates.push_back(s);
    }
    GREENHPC_REQUIRE(!candidates.empty(), "job larger than every site in the federation");

    std::size_t chosen = candidates[0];
    switch (policy) {
      case DispatchPolicy::RoundRobin: {
        chosen = candidates[rr_cursor++ % candidates.size()];
        break;
      }
      case DispatchPolicy::LeastLoaded: {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t s : candidates) {
          const double load = committed[s] / cfg_.sites[s].cluster.nodes;
          if (load < best) {
            best = load;
            chosen = s;
          }
        }
        break;
      }
      case DispatchPolicy::GreenestNow:
      case DispatchPolicy::GreenestForecast: {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t s : candidates) {
          double ci;
          if (policy == DispatchPolicy::GreenestNow) {
            ci = traces_[s].sample_at_clamped(job.submit);
          } else {
            // Mean intensity over the job's expected execution window,
            // starting after the site's estimated backlog drains.
            const double backlog_s =
                committed[s] / cfg_.sites[s].cluster.nodes;
            const Duration start = job.submit + seconds(backlog_s);
            Duration end = start + job.runtime;
            if (end > traces_[s].end()) end = traces_[s].end();
            ci = start < end ? traces_[s].mean_over(
                                   std::max(start, traces_[s].start()), end)
                             : traces_[s].sample_at_clamped(start);
          }
          // Load penalty keeps the greedy dispatcher from drowning the
          // cleanest site: effective cost grows with the backlog already
          // committed there (in units of hours of full-machine work).
          const double backlog_h = committed[s] /
                                   (cfg_.sites[s].cluster.nodes * 3600.0);
          const double score = ci * (1.0 + 0.15 * backlog_h);
          if (score < best) {
            best = score;
            chosen = s;
          }
        }
        break;
      }
    }
    assignment[j] = chosen;
    committed[chosen] += static_cast<double>(job.nodes_used) * job.runtime.seconds();
  }
  return assignment;
}

FederationResult Federation::run(const std::vector<hpcsim::JobSpec>& jobs,
                                 DispatchPolicy policy,
                                 const SchedulerFactory& sched) const {
  GREENHPC_REQUIRE(static_cast<bool>(sched), "scheduler factory required");
  const auto assignment = dispatch(jobs, policy);
  const std::size_t n_sites = cfg_.sites.size();

  std::vector<std::vector<hpcsim::JobSpec>> per_site(n_sites);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    per_site[assignment[j]].push_back(jobs[j]);
  }

  FederationResult out;
  out.site_names.reserve(n_sites);
  out.jobs_per_site.resize(n_sites, 0);
  double wait_sum = 0.0;
  int wait_count = 0;
  for (std::size_t s = 0; s < n_sites; ++s) {
    out.site_names.push_back(cfg_.sites[s].name);
    out.jobs_per_site[s] = static_cast<int>(per_site[s].size());
    if (per_site[s].empty()) {
      out.site_results.emplace_back();
      continue;
    }
    hpcsim::Simulator::Config sim_cfg;
    sim_cfg.cluster = cfg_.sites[s].cluster;
    sim_cfg.carbon_intensity = traces_[s];
    hpcsim::Simulator sim(sim_cfg, per_site[s]);
    auto scheduler = sched();
    out.site_results.push_back(sim.run(*scheduler));

    const auto& r = out.site_results.back();
    out.total_carbon += r.total_carbon;
    out.total_energy += r.total_energy;
    out.completed += r.completed_jobs;
    for (const auto& rec : r.jobs) {
      out.job_carbon += rec.carbon;
      if (rec.completed) {
        wait_sum += rec.wait().hours();
        ++wait_count;
      }
    }
  }
  out.mean_wait_hours = wait_count ? wait_sum / wait_count : 0.0;
  return out;
}

}  // namespace greenhpc::core
