#include "core/federation.hpp"

#include <algorithm>
#include <limits>

#include "carbon/trace_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace greenhpc::core {

const char* dispatch_name(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::RoundRobin: return "round-robin";
    case DispatchPolicy::LeastLoaded: return "least-loaded";
    case DispatchPolicy::GreenestNow: return "greenest-now";
    case DispatchPolicy::GreenestForecast: return "greenest-forecast";
  }
  return "?";
}

Federation::Federation(Config config) : cfg_(std::move(config)) {
  GREENHPC_REQUIRE(!cfg_.sites.empty(), "federation needs at least one site");
  GREENHPC_REQUIRE(cfg_.feed_degradation.empty() ||
                       cfg_.feed_degradation.size() == cfg_.sites.size(),
                   "feed_degradation must be empty or one entry per site");
  GREENHPC_REQUIRE(cfg_.outage_max_retries >= 0, "outage retry budget must be >= 0");
  for (const auto& o : cfg_.outages) {
    GREENHPC_REQUIRE(o.site < cfg_.sites.size() && o.start.seconds() >= 0.0 &&
                         o.duration.seconds() > 0.0,
                     "malformed site outage");
  }
  traces_.reserve(cfg_.sites.size());
  feeds_.resize(cfg_.sites.size());
  for (std::size_t i = 0; i < cfg_.sites.size(); ++i) {
    cfg_.sites[i].cluster.validate();
    traces_.push_back(carbon::TraceCache::global().get(
        cfg_.sites[i].region, cfg_.intensity_kind, cfg_.seed + 0x5eed * (i + 1),
        seconds(0.0), cfg_.trace_span, cfg_.trace_step));
    if (!cfg_.feed_degradation.empty() &&
        cfg_.feed_degradation[i].outage_fraction > 0.0) {
      feeds_[i] = std::make_unique<resilience::DegradedFeed>(cfg_.feed_degradation[i],
                                                             cfg_.trace_span);
    }
  }
}

bool Federation::site_down_at(std::size_t site, Duration t) const {
  for (const auto& o : cfg_.outages) {
    if (o.site == site && o.start <= t && t < o.start + o.duration) return true;
  }
  return false;
}

bool Federation::feed_fresh_at(std::size_t site, Duration t) const {
  return feeds_[site] == nullptr || !feeds_[site]->down_at(t);
}

std::vector<std::size_t> Federation::dispatch(const std::vector<hpcsim::JobSpec>& jobs,
                                              DispatchPolicy policy) const {
  GREENHPC_TRACE_SPAN("federation.dispatch");
  static obs::Counter& dispatched =
      obs::Registry::global().counter("federation.jobs_dispatched");
  const std::size_t n_sites = cfg_.sites.size();
  std::vector<std::size_t> assignment(jobs.size());
  // Committed work per site, in node-seconds, as the dispatcher's load
  // estimate (it cannot see the future schedule, only what it has sent).
  std::vector<double> committed(n_sites, 0.0);
  std::size_t rr_cursor = 0;

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    const int needs = std::max(job.nodes_requested, job.max_nodes);
    // Candidate sites that can physically host the job.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (cfg_.sites[s].cluster.nodes >= needs) candidates.push_back(s);
    }
    GREENHPC_REQUIRE(!candidates.empty(), "job larger than every site in the federation");

    // Blackout avoidance: do not dispatch into a site that is down at
    // submit time — unless every candidate is down, in which case the job
    // must queue somewhere and waits out the blackout there.
    {
      std::vector<std::size_t> up;
      for (std::size_t s : candidates) {
        if (!site_down_at(s, job.submit)) up.push_back(s);
      }
      if (!up.empty()) candidates = std::move(up);
    }

    std::size_t chosen = candidates[0];
    switch (policy) {
      case DispatchPolicy::RoundRobin: {
        chosen = candidates[rr_cursor++ % candidates.size()];
        break;
      }
      case DispatchPolicy::LeastLoaded: {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t s : candidates) {
          const double load = committed[s] / cfg_.sites[s].cluster.nodes;
          if (load < best) {
            best = load;
            chosen = s;
          }
        }
        break;
      }
      case DispatchPolicy::GreenestNow:
      case DispatchPolicy::GreenestForecast: {
        // Degraded-feed fallback ladder: pick the greenest among sites
        // whose feed is fresh at submit; if every candidate's feed is
        // dark, intensity comparison is meaningless — degrade to
        // least-loaded rather than chase stale numbers.
        std::vector<std::size_t> fresh;
        for (std::size_t s : candidates) {
          if (feed_fresh_at(s, job.submit)) fresh.push_back(s);
        }
        if (fresh.empty()) {
          double best = std::numeric_limits<double>::infinity();
          for (std::size_t s : candidates) {
            const double load = committed[s] / cfg_.sites[s].cluster.nodes;
            if (load < best) {
              best = load;
              chosen = s;
            }
          }
          break;
        }
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t s : fresh) {
          double ci;
          if (policy == DispatchPolicy::GreenestNow) {
            ci = traces_[s]->sample_at_clamped(job.submit);
          } else {
            // Mean intensity over the job's expected execution window,
            // starting after the site's estimated backlog drains.
            const double backlog_s =
                committed[s] / cfg_.sites[s].cluster.nodes;
            const Duration start = job.submit + seconds(backlog_s);
            Duration end = start + job.runtime;
            if (end > traces_[s]->end()) end = traces_[s]->end();
            ci = start < end ? traces_[s]->mean_over(
                                   std::max(start, traces_[s]->start()), end)
                             : traces_[s]->sample_at_clamped(start);
          }
          // Load penalty keeps the greedy dispatcher from drowning the
          // cleanest site: effective cost grows with the backlog already
          // committed there (in units of hours of full-machine work).
          const double backlog_h = committed[s] /
                                   (cfg_.sites[s].cluster.nodes * 3600.0);
          const double score = ci * (1.0 + 0.15 * backlog_h);
          if (score < best) {
            best = score;
            chosen = s;
          }
        }
        break;
      }
    }
    assignment[j] = chosen;
    committed[chosen] += static_cast<double>(job.nodes_used) * job.runtime.seconds();
    dispatched.add();
    // Per-job assignment record for trace timelines; the value carries
    // the chosen site index.
    GREENHPC_TRACE_INSTANT("federation.assign", static_cast<double>(chosen));
  }
  return assignment;
}

FederationResult Federation::run(const std::vector<hpcsim::JobSpec>& jobs,
                                 DispatchPolicy policy,
                                 const SchedulerFactory& sched) const {
  GREENHPC_REQUIRE(static_cast<bool>(sched), "scheduler factory required");
  GREENHPC_TRACE_SPAN("federation.run");
  const auto assignment = dispatch(jobs, policy);
  const std::size_t n_sites = cfg_.sites.size();

  std::vector<std::vector<hpcsim::JobSpec>> per_site(n_sites);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    per_site[assignment[j]].push_back(jobs[j]);
  }

  FederationResult out;
  out.site_names.reserve(n_sites);
  out.jobs_per_site.resize(n_sites, 0);
  for (std::size_t s = 0; s < n_sites; ++s) {
    out.site_names.push_back(cfg_.sites[s].name);
    out.jobs_per_site[s] = static_cast<int>(per_site[s].size());
  }

  // Site simulations are independent (own cluster, trace, feed and job
  // subset): fan them out over the global pool into preallocated slots,
  // then aggregate serially in site order so the totals accumulate in the
  // same order — and to the same bits — as the serial loop did.
  out.site_results.resize(n_sites);
  util::parallel_for_chunked(n_sites, 1, [&](std::size_t s) {
    if (per_site[s].empty()) return;  // slot keeps its default-constructed result
    GREENHPC_TRACE_SPAN("federation.site");
    hpcsim::Simulator::Config sim_cfg;
    sim_cfg.cluster = cfg_.sites[s].cluster;
    sim_cfg.carbon_intensity = traces_[s];
    sim_cfg.feed = feeds_[s].get();
    // A site blackout is a whole-cluster failure event: every node goes
    // down at once and repairs when the window ends. Jobs caught by it
    // are killed and requeue locally with the outage retry budget.
    for (const auto& o : cfg_.outages) {
      if (o.site != s) continue;
      sim_cfg.faults.events.push_back({o.start, cfg_.sites[s].cluster.nodes, o.duration});
    }
    if (!sim_cfg.faults.events.empty()) {
      sim_cfg.faults.max_retries = cfg_.outage_max_retries;
      sim_cfg.faults.backoff_base = cfg_.outage_backoff;
    }
    hpcsim::Simulator sim(sim_cfg, per_site[s]);
    auto scheduler = sched();
    out.site_results[s] = sim.run(*scheduler);
  });

  double wait_sum = 0.0;
  int wait_count = 0;
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (per_site[s].empty()) continue;
    const auto& r = out.site_results[s];
    out.total_carbon += r.total_carbon;
    out.total_energy += r.total_energy;
    out.completed += r.completed_jobs;
    out.node_failures += r.node_failures;
    out.job_failures += r.job_failures;
    out.jobs_failed += r.jobs_failed;
    out.lost_node_hours += r.lost_node_hours();
    out.wasted_carbon += r.wasted_carbon;
    for (const auto& rec : r.jobs) {
      out.job_carbon += rec.carbon;
      if (rec.completed) {
        wait_sum += rec.wait().hours();
        ++wait_count;
      }
    }
  }
  out.mean_wait_hours = wait_count ? wait_sum / wait_count : 0.0;
  return out;
}

}  // namespace greenhpc::core
