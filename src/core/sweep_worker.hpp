#pragma once
// Fault-tolerant distributed sweep: the worker side.
//
// A SweepWorker is one leased-block executor: it handshakes over its
// stdin/stdout pipes (`hello` carries its independently-derived config
// digest, so a mislaunched worker is rejected at connect), heartbeats
// from a side thread while simulating, and for each `assign` simulates
// the block with the SAME SweepCaseRunner the in-process engine uses,
// journals the completed record into its own shard file, and only then
// reports it — journal-before-report is what lets the coordinator treat
// a worker death after journaling as recoverable evidence rather than
// lost work. EOF on stdin (coordinator died) or a `shutdown` verb ends
// the worker cleanly; it owns no state anyone needs to clean up.
//
// Observability shipping: unless disabled, the worker batches its
// process-local obs::Registry snapshot onto `stat` lines (one right
// after hello — the coordinator's clock anchor — then one per heartbeat
// and one per completed block) and, when `ship_trace` is on, its
// cat=="fleet" trace events onto `trace` lines after each block. Both
// ride the same LineWriter as heartbeats and block records, so shipped
// telemetry can never interleave bytes into the result stream, and the
// fold path ignores the new verbs entirely — shipping is digest-neutral
// by construction (bench_sweep hard-checks it).

#include <string>

#include "core/sweep.hpp"
#include "util/parallel.hpp"

namespace greenhpc::core {

class SweepWorker {
 public:
  struct Options {
    int in_fd = 0;   ///< assignment stream (coordinator -> worker)
    int out_fd = 1;  ///< report stream (worker -> coordinator)
    /// Heartbeat cadence; the coordinator's timeout should be a small
    /// multiple of this.
    double heartbeat_interval_s = 0.5;
    /// Shard journal file (`dir/shard-g<gen>-<tag>.journal`); empty =
    /// no journaling (results live only in the report stream).
    std::string shard_path;
    /// Cases per block; must match the coordinator's grid view.
    std::size_t block = 256;
    SweepCaseRunner::Options case_opts;
    /// Pool for intra-block parallelism; null = the process-global pool.
    util::ThreadPool* pool = nullptr;
    /// Ship obs::Registry snapshots on `stat` lines (anchor after hello,
    /// then per heartbeat and per block). Off only for overhead
    /// measurement — the lines are digest-neutral either way.
    bool ship_stats = true;
    /// Ship cat=="fleet" trace events on `trace` lines per block. The
    /// events are recorded directly (not via the process-global Tracer,
    /// which would also enable the costly per-tick simulator spans).
    /// The coordinator requests it (via the `--ship-trace` worker flag)
    /// when a fleet trace artifact was asked for.
    bool ship_trace = false;
  };

  explicit SweepWorker(Options opts);

  /// Serve assignments until shutdown/EOF. An assignment is a whole
  /// aligned block or a single-case probe (the coordinator's poison
  /// containment); probe results are reported but never shard-journaled.
  /// Returns the process exit code: 0 clean (shutdown, stdin EOF, or
  /// coordinator gone mid-write), 2 on a protocol violation from the
  /// coordinator, 3 on a grid the runner rejects. Exceptions inside a
  /// CASE never surface here — the runner quarantines them into the
  /// block record.
  [[nodiscard]] int run(const SweepGrid& grid);

 private:
  Options opts_;
};

}  // namespace greenhpc::core
