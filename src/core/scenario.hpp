#pragma once
// Scenario runner: the shared harness behind the operational experiments
// (sections 3.1-3.4) and the examples. One scenario fixes a cluster, a
// grid region/trace and a workload; policies are then compared on
// identical inputs.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "carbon/grid_model.hpp"
#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"

namespace greenhpc::core {

struct ScenarioConfig {
  hpcsim::ClusterConfig cluster;
  carbon::Region region = carbon::Region::Germany;
  carbon::IntensityKind intensity_kind = carbon::IntensityKind::Average;
  /// Trace length; should exceed the workload span by the expected drain.
  Duration trace_span = days(10.0);
  Duration trace_step = minutes(15.0);
  hpcsim::WorkloadConfig workload;
  std::uint64_t seed = 42;
};

/// Factory signatures: each run gets fresh policy instances.
using SchedulerFactory = std::function<std::unique_ptr<hpcsim::SchedulingPolicy>()>;
using PowerPolicyFactory = std::function<std::unique_ptr<hpcsim::PowerBudgetPolicy>()>;

/// One policy combination's outcome with the derived comparison metrics.
struct PolicyOutcome {
  std::string scheduler;
  std::string power_policy;
  hpcsim::SimulationResult result;

  // Derived (filled by the runner):
  double total_carbon_t = 0.0;
  double total_energy_mwh = 0.0;
  double carbon_per_node_hour_g = 0.0;
  double mean_wait_h = 0.0;
  double mean_bounded_slowdown = 0.0;
  double utilization = 0.0;
  double green_energy_share = 0.0;
  int completed = 0;
};

class ScenarioRunner {
 public:
  /// Resolves the scenario's assets through the process-wide caches
  /// (carbon::TraceCache / hpcsim::WorkloadCache): runners for the same
  /// (region, kind, seed, span, step) and (workload, seed) share one
  /// immutable trace and one immutable job list — construction after the
  /// first is cache hits plus the green-threshold percentile.
  explicit ScenarioRunner(ScenarioConfig config);

  /// The shared intensity trace of this scenario.
  [[nodiscard]] const util::TimeSeries& trace() const { return *trace_; }
  /// The shared job list of this scenario.
  [[nodiscard]] const std::vector<hpcsim::JobSpec>& jobs() const { return *jobs_; }
  /// Shared handles to the scenario assets — pass these into
  /// Simulator::Config / Simulator for zero-copy runs.
  [[nodiscard]] const std::shared_ptr<const util::TimeSeries>& trace_ptr() const {
    return trace_;
  }
  [[nodiscard]] const std::shared_ptr<const std::vector<hpcsim::JobSpec>>& jobs_ptr()
      const {
    return jobs_;
  }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  /// Green threshold (40th percentile of the trace, matching the default
  /// carbon-aware scheduler gate) used for the green-energy-share metric.
  [[nodiscard]] double green_threshold() const { return green_threshold_; }

  /// Run one policy combination on the shared inputs.
  [[nodiscard]] PolicyOutcome run(const std::string& label, const SchedulerFactory& sched,
                                  const PowerPolicyFactory& power = nullptr) const;

  /// One labelled policy combination for a batch run.
  struct PolicyCase {
    std::string label;
    SchedulerFactory scheduler;
    PowerPolicyFactory power = nullptr;
  };

  /// Run every case on the shared inputs, fanned out over the global
  /// thread pool. Each case is fully independent (fresh policy instances
  /// and its own Simulator over the shared trace/jobs) and writes into a
  /// preallocated slot, so the returned vector matches a serial
  /// case-by-case run bit for bit regardless of thread count. Factories
  /// are invoked concurrently and must be safe to call from any thread.
  [[nodiscard]] std::vector<PolicyOutcome> run_all(
      const std::vector<PolicyCase>& cases) const;

 private:
  ScenarioConfig cfg_;
  std::shared_ptr<const util::TimeSeries> trace_;
  std::shared_ptr<const std::vector<hpcsim::JobSpec>> jobs_;
  double green_threshold_ = 0.0;
};

}  // namespace greenhpc::core
