#pragma once
// Multi-site federation: spatial carbon shifting.
//
// Fig. 2's message is that *where* work runs matters as much as when
// (France vs Poland differ ~8x). This module complements the temporal
// shifting of section 3.3 with the spatial lever: a dispatcher assigns
// each job at submit time to one of several sites (each with its own
// grid region and cluster), and per-site simulations then run under a
// common scheduling policy. Dispatch policies range from carbon-blind
// (round-robin, least-loaded) to carbon-aware (greenest-now,
// greenest-over-the-job's-expected-window).

#include <memory>
#include <string>
#include <vector>

#include "carbon/grid_model.hpp"
#include "core/scenario.hpp"
#include "hpcsim/simulator.hpp"
#include "resilience/degraded_feed.hpp"

namespace greenhpc::core {

/// One member site of the federation.
struct SiteSpec {
  std::string name;
  hpcsim::ClusterConfig cluster;
  carbon::Region region = carbon::Region::Germany;
};

/// Job-to-site dispatch disciplines.
enum class DispatchPolicy {
  RoundRobin,        ///< carbon-blind spread
  LeastLoaded,       ///< balance committed node-hours per node
  GreenestNow,       ///< cheapest intensity at submit, load-penalized
  GreenestForecast,  ///< cheapest mean intensity over the job's window
};

[[nodiscard]] const char* dispatch_name(DispatchPolicy p);

/// A site blackout: the whole site is offline for [start, start+duration).
/// Jobs running there are killed (and requeue locally once the site is
/// back); jobs submitted during the window are dispatched elsewhere.
struct SiteOutage {
  std::size_t site = 0;
  Duration start;
  Duration duration;
};

/// Federation-wide outcome.
struct FederationResult {
  std::vector<std::string> site_names;
  std::vector<hpcsim::SimulationResult> site_results;
  std::vector<int> jobs_per_site;

  Carbon total_carbon;
  Energy total_energy;
  int completed = 0;
  double mean_wait_hours = 0.0;
  /// Carbon attributed to jobs only (excl. idle floors), for policy
  /// comparisons.
  Carbon job_carbon;

  // --- resilience aggregates (zero without outages) ---
  int node_failures = 0;
  int job_failures = 0;
  int jobs_failed = 0;
  double lost_node_hours = 0.0;
  Carbon wasted_carbon;
};

class Federation {
 public:
  struct Config {
    std::vector<SiteSpec> sites;
    Duration trace_span = days(10.0);
    Duration trace_step = minutes(15.0);
    carbon::IntensityKind intensity_kind = carbon::IntensityKind::Average;
    std::uint64_t seed = 1;
    /// Site blackout windows (site indices into `sites`).
    std::vector<SiteOutage> outages;
    /// Per-site carbon-feed degradation, index-aligned with `sites`.
    /// Empty = every feed perfect. Sites with outage_fraction 0 keep a
    /// perfect feed.
    std::vector<resilience::DegradedFeedConfig> feed_degradation;
    /// Retry budget for jobs killed by a site blackout.
    int outage_max_retries = 8;
    Duration outage_backoff = minutes(15.0);
  };

  /// Site traces resolve through carbon::TraceCache, so federations over
  /// the same (region, seed, span, step) share them across instances.
  explicit Federation(Config config);

  /// Per-site intensity traces (index-aligned with config().sites),
  /// shared immutable — pass straight into Simulator::Config.
  [[nodiscard]] const std::vector<std::shared_ptr<const util::TimeSeries>>& traces()
      const {
    return traces_;
  }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Assign each job to a site under the given policy. Returns the site
  /// index per job (aligned with `jobs`). Jobs larger than a site's
  /// cluster are only assigned to sites that fit them.
  [[nodiscard]] std::vector<std::size_t> dispatch(
      const std::vector<hpcsim::JobSpec>& jobs, DispatchPolicy policy) const;

  /// Dispatch and simulate: each site runs the jobs assigned to it under
  /// a scheduler from `sched`.
  [[nodiscard]] FederationResult run(const std::vector<hpcsim::JobSpec>& jobs,
                                     DispatchPolicy policy,
                                     const SchedulerFactory& sched) const;

  /// Whether the site is blacked out at time t.
  [[nodiscard]] bool site_down_at(std::size_t site, Duration t) const;
  /// Whether the site's carbon feed delivers a fresh value at time t.
  [[nodiscard]] bool feed_fresh_at(std::size_t site, Duration t) const;

 private:
  Config cfg_;
  std::vector<std::shared_ptr<const util::TimeSeries>> traces_;
  /// Per-site degraded feeds; null entries = perfect feed.
  std::vector<std::unique_ptr<resilience::DegradedFeed>> feeds_;
};

}  // namespace greenhpc::core
