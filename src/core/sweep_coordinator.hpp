#pragma once
// Fault-tolerant distributed sweep: the coordinator side.
//
// SweepCoordinator shards a sweep's blocks across N worker PROCESSES
// (fork/exec of the CLI's hidden `sweep-worker` command, local pipe
// transport) and folds their digest-verified block records into one
// SweepResult. The process boundary is the fault model: a worker that
// crashes, hangs, is OOM-killed or `kill -9`ed is detected (EOF on its
// pipe, missed heartbeats, or an expired lease), its in-flight block is
// returned to the pool under capped exponential backoff, and the sweep
// continues. If EVERY worker dies the coordinator degrades to running
// the remaining blocks in-process — a distributed sweep can end slower,
// never wrong and never empty-handed.
//
// Digest identity is the core invariant: the fold consumes blocks in
// flat case order (BlockLedger releases them contiguously), each block's
// record carries its block-local FNV digest verified on receipt, and
// simulation itself is the same SweepCaseRunner the in-process engine
// uses. The result digest is therefore bit-identical to a single-process
// run for ANY worker count and ANY failure/kill schedule — enforced by
// tests, a bench gate and the CI distributed-sweep job.
//
// Recovery composes with the journal layer: workers journal completed
// blocks into per-worker shard files (see SweepJournal shard mode), and
// a RESTARTED coordinator seeds its ledger from the union of surviving
// shards, so even coordinator death loses at most in-flight blocks.
//
// Observability plane: workers ship registry snapshots (`stat`) and
// cat=="fleet" trace batches (`trace`) over the same sealed pipe; the
// coordinator aligns each worker's clock at its first obs line, folds
// the payloads into per-worker rollups (cases/s, retries, quarantines,
// heartbeat RTT histograms) and — when `fleet_trace_path` is set — a
// single merged Chrome trace with one process lane per worker plus its
// own control-plane lane. A per-worker flight recorder keeps the last
// few hundred protocol/ledger events; it is dumped as a postmortem
// JSONL artifact into `postmortem_dir` when the worker dies, when it
// ships a malformed obs line, and (for the coordinator's own recorder)
// when a restarted coordinator reseeds from shards. None of it touches
// the fold path, so every digest stays bit-identical with shipping on.

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "util/parallel.hpp"

namespace greenhpc::core {

/// The coordinator's assignment state machine, one entry per block:
///
///   Pending --lease()--> Leased --deliver()--> Ready --next_to_fold()--> Folded
///      ^                    |
///      +---orphan_worker()--+   (backoff: base * 2^orphanings, capped)
///
/// Pure bookkeeping over synthetic double-seconds timestamps — no I/O,
/// no real clock — so every failure schedule is unit-testable without
/// sleeping. deliver() accepts records from ANY source (worker message,
/// shard replay, in-process fallback) and deduplicates at-least-once
/// delivery into exactly-once folding, keyed by block start + digest.
///
/// POISON CONTAINMENT: a block whose workers keep dying would otherwise
/// be reassigned forever (capped backoff, unbounded attempts) and — once
/// it has killed the whole fleet — crash into the in-process fallback
/// too. With `suspect_after` set, a block orphaned that many times is
/// declared SUSPECT and is no longer handed out whole: lease() bisects
/// it into single-case PROBE leases (one in flight per suspect block).
/// A probe that completes pins its case's outcome; a probe whose worker
/// dies accuses exactly one case, and at `probe_case_deaths` accusations
/// the case is quarantined (an ok=false outcome that folds into
/// SweepResult::failed_cases, never into the digest). When every case of
/// a suspect block is pinned, the ledger synthesizes the block record
/// and folding proceeds exactly as if a worker had delivered it — the
/// fleet stays alive and the sweep terminates with the poison named.
class BlockLedger {
 public:
  struct Options {
    /// Reassignment backoff for a block orphaned k times: base * 2^k,
    /// capped. Spaces out retries of a block that keeps killing its
    /// workers instead of hot-looping the fleet into it.
    double backoff_base_s = 0.25;
    double backoff_cap_s = 5.0;
    /// Orphanings of the SAME block before it is declared suspect and
    /// further leases become single-case probes. 0 = containment off
    /// (a block is retried whole forever — the pre-containment
    /// semantics).
    int suspect_after = 0;
    /// Probe-worker deaths on the SAME case before it is quarantined.
    int probe_case_deaths = 2;
  };

  BlockLedger(std::size_t cases, std::size_t block, Options opts);
  BlockLedger(std::size_t cases, std::size_t block);

  /// One granted assignment: a whole block, or a single-case probe of a
  /// suspect block (`count == 1`, `start` an arbitrary flat case id).
  struct Lease {
    std::size_t start = 0;
    std::size_t count = 0;
    bool probe = false;
  };

  /// Lease the lowest pending block whose backoff has elapsed to
  /// `worker` (a single-case probe when that block is suspect); false
  /// when none is leasable right now.
  bool lease(int worker, double now_s, Lease& out);

  /// Return every block leased to `worker` to Pending with backoff
  /// (the worker died or hung). A probe lease accuses its single case
  /// (see class comment). Returns how many leases were orphaned.
  std::size_t orphan_worker(int worker, double now_s);

  enum class Deliver { Accepted, Duplicate };

  /// Accept a completed block record. Validates alignment, size and the
  /// block-local digest re-fold (InvalidArgument on a structurally wrong
  /// record — the transport checksum already passed, so this is a logic
  /// bug or forged input, not line noise). A record for an
  /// already-delivered block is a Duplicate when the digests agree and
  /// an InvalidArgument when they differ: duplicate delivery is normal
  /// under at-least-once semantics, disagreement is nondeterminism.
  /// A single-case record is a PROBE result and is only accepted for a
  /// suspect block; it pins that case and, once every case of the block
  /// is pinned, promotes the synthesized block to Ready.
  Deliver deliver(const SweepBlock& rec);

  /// Pop the next block in FLAT CASE ORDER if it is Ready — the gate
  /// that makes out-of-order completion fold deterministically. False
  /// while the next-to-fold block is still outstanding.
  bool next_to_fold(SweepBlock& out);

  [[nodiscard]] bool all_folded() const { return folded_blocks_ == states_.size(); }
  /// Blocks currently assignable or in backoff.
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::size_t leased() const { return leased_; }
  [[nodiscard]] std::size_t duplicates() const { return duplicates_; }
  /// Earliest instant a pending block's backoff elapses (for the event
  /// loop's poll timeout); +infinity when nothing is waiting on time.
  [[nodiscard]] double next_ready_s() const;
  [[nodiscard]] std::size_t block() const { return block_; }
  [[nodiscard]] std::size_t cases() const { return cases_; }
  // Poison-containment accounting.
  [[nodiscard]] std::size_t suspects() const { return suspect_blocks_; }
  [[nodiscard]] std::size_t probes_launched() const { return probes_launched_; }
  [[nodiscard]] std::size_t probe_quarantined() const {
    return probe_quarantined_;
  }

 private:
  enum class State { Pending, Leased, Ready, Folded };
  static constexpr std::size_t kNoProbe = static_cast<std::size_t>(-1);
  struct Entry {
    State state = State::Pending;
    int worker = -1;
    int orphanings = 0;
    double ready_at_s = 0.0;    ///< backoff gate while Pending
    std::uint64_t digest = 0;   ///< block-local digest once Ready/Folded
    SweepBlock record;          ///< payload once Ready (cleared on fold)
    // Suspect-block probe state (poison containment).
    bool suspect = false;
    std::size_t probe_active = kNoProbe;      ///< in-block offset in flight
    std::vector<SweepCaseOutcome> probe_out;  ///< pinned outcomes
    std::vector<std::uint8_t> probe_done;     ///< 1 = outcome pinned
    std::vector<int> probe_deaths;            ///< accusations per case
  };

  [[nodiscard]] std::size_t size_of(std::size_t index) const;
  /// Promote a fully-probed suspect block to Ready (synthesized record).
  void finalize_if_probed(std::size_t index);

  std::size_t cases_ = 0;
  std::size_t block_ = 0;
  Options opts_;
  std::vector<Entry> states_;
  std::size_t next_fold_ = 0;      ///< index of the next block to fold
  std::size_t folded_blocks_ = 0;
  std::size_t pending_ = 0;
  std::size_t leased_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t suspect_blocks_ = 0;
  std::size_t probes_launched_ = 0;
  std::size_t probe_quarantined_ = 0;
};

class SweepCoordinator {
 public:
  struct Options {
    /// Worker processes to spawn. 0 = run everything in-process (the
    /// degradation path, directly; useful for tests and as the CLI's
    /// implicit default).
    int workers = 0;
    /// Exec argv of ONE worker (path + `sweep-worker` + grid flags); the
    /// coordinator appends per-worker `--shard-path`/`--block` flags.
    /// Required when workers > 0.
    std::vector<std::string> worker_argv;
    /// Run directory for shard journals; empty = no journaling (a worker
    /// death then re-simulates its unreported blocks).
    std::string journal_dir;
    /// Seed the ledger from existing shard journals under journal_dir
    /// before spawning anyone (coordinator restart).
    bool resume = false;
    /// Cases per block (ignored on resume when shards recorded one).
    std::size_t block = 256;

    // Liveness knobs (wall-clock seconds).
    double heartbeat_interval_s = 0.5;   ///< expected worker cadence
    double heartbeat_timeout_s = 2.0;    ///< silence counted as one miss
    int heartbeat_miss_limit = 3;        ///< misses before declared dead
    double hello_timeout_s = 10.0;       ///< spawn -> hello deadline
    /// A leased block must complete within this long (hung-worker trap;
    /// scale to the slowest expected block).
    double lease_timeout_s = 300.0;
    /// Wedged-worker trap, DISTINCT from the heartbeat deadline: a
    /// worker that heartbeats on time but makes no block progress for
    /// this long is evicted (flight-recorded, counted in
    /// `workers_evicted_wedged`). Heartbeats prove the process is alive;
    /// this proves it is working. 0 = disabled.
    double progress_timeout_s = 0.0;

    /// Reassignment backoff (see BlockLedger::Options).
    double lease_backoff_base_s = 0.25;
    double lease_backoff_cap_s = 5.0;
    /// Poison containment (see BlockLedger::Options): orphanings before
    /// a block is probed case-by-case, and probe deaths before the
    /// accused case is quarantined.
    int lease_suspect_after = 3;
    int probe_case_deaths = 2;

    /// Fleet survival budget: dead worker slots are respawned (fresh
    /// incarnation, own shard file) until this many respawns have been
    /// spent. 0 = a dead worker stays dead (pre-chaos behaviour).
    int max_respawns = 0;
    /// Extra argv appended when (re)spawning worker `slot` at
    /// `incarnation` (0 = first spawn). The chaos harness uses this to
    /// arm injector specs per worker — respawned incarnations get a
    /// healthy schedule so a kill-loop cannot exhaust the budget.
    std::function<std::vector<std::string>(int slot, int incarnation)>
        worker_extra_args;

    SweepCaseRunner::Options case_opts;
    /// Progress callback, (cases folded, cases total) — same contract as
    /// SweepEngine::Options::progress (runs on the calling thread).
    std::function<void(std::size_t, std::size_t)> progress;
    /// Pool for the in-process path; null = the process-global pool.
    util::ThreadPool* pool = nullptr;

    // Observability plane.
    /// Merged fleet Chrome trace artifact (one lane per worker + the
    /// coordinator's control plane); empty = off. Setting it makes the
    /// coordinator pass `--ship-trace` to every worker.
    std::string fleet_trace_path;
    /// Directory for postmortem JSONL flight-recorder dumps; empty = off.
    std::string postmortem_dir;
    /// Workers ship registry snapshots on `stat` lines (default on; off
    /// only to measure shipping overhead — digests never depend on it).
    bool ship_stats = true;
    /// Flight recorder ring capacity (events kept per worker).
    std::size_t flight_recorder_events = 256;
  };

  /// Post-run accounting, surfaced into the run report and tests.
  struct WorkerInfo {
    long pid = -1;
    std::size_t blocks = 0;            ///< blocks delivered
    std::size_t heartbeat_misses = 0;
    bool died = false;                 ///< exited/was killed before shutdown
    bool ready = false;                ///< hello accepted (live status line)
    bool busy = false;                 ///< currently holds a lease
    // Fleet rollup (from shipped `stat` snapshots and receipt timing).
    double cases_per_s = 0.0;          ///< worker's own sweep.cases_per_s
    std::uint64_t case_retries = 0;    ///< worker's sweep.case_retries
    std::uint64_t cases_quarantined = 0;
    std::size_t stat_batches = 0;
    std::size_t trace_batches = 0;
    std::size_t trace_events = 0;
    double rtt_p50_s = 0.0;  ///< stat-line round-trip percentiles
    double rtt_p99_s = 0.0;
    std::string postmortem_path;  ///< last flight-recorder dump, "" = none
  };
  struct Stats {
    std::vector<WorkerInfo> workers;
    std::size_t blocks_reassigned = 0;
    std::size_t worker_deaths = 0;
    std::size_t heartbeat_misses = 0;
    std::size_t duplicate_block_records = 0;
    std::size_t replayed_blocks = 0;   ///< seeded from shard journals
    bool degraded_in_process = false;  ///< fallback path ran
    int shard_generation = 0;          ///< generation of this run's shards
    // Containment accounting.
    std::size_t workers_respawned = 0;
    std::size_t workers_evicted_wedged = 0;  ///< heartbeating, no progress
    std::size_t suspect_blocks = 0;          ///< blocks probed case-by-case
    std::size_t probes_launched = 0;
    std::size_t probe_quarantined_cases = 0;
    std::size_t journal_truncations = 0;  ///< shard suffixes dropped on resume
    bool journal_degraded = false;  ///< shard journaling lost to an I/O fault
    // Observability plane.
    std::size_t obs_lines_rejected = 0;  ///< defective stat/trace lines
    std::size_t stat_batches = 0;
    std::size_t trace_batches = 0;
    std::size_t trace_events = 0;
    double rtt_p50_s = 0.0;  ///< fleet-wide heartbeat/stat RTT
    double rtt_p99_s = 0.0;
    /// Block-simulation seconds percentiles, merged across every
    /// worker's shipped sweep.block_seconds histogram (0 when nothing
    /// shipped — e.g. --no-obs-ship).
    double block_seconds_p50_s = 0.0;
    double block_seconds_p99_s = 0.0;
    double max_lease_age_s = 0.0;  ///< oldest in-flight lease observed
    std::size_t postmortems_written = 0;
    std::string fleet_trace_path;  ///< written artifact, "" = none
  };

  explicit SweepCoordinator(Options opts);

  /// Run the sweep to completion (workers + fallback). Throws
  /// InvalidArgument on a bad grid, a config-skewed worker hello, or
  /// shards that disagree; worker DEATH is never an exception.
  [[nodiscard]] SweepResult run(const SweepGrid& grid);

  /// Accounting of the last run().
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Options opts_;
  Stats stats_;
};

}  // namespace greenhpc::core
