#pragma once
// Shared line codec for sweep persistence and transport.
//
// The sweep journal (crash-safe WAL) and the coordinator/worker pipe
// protocol speak the SAME line format for block records: ASCII tokens
// sealed with an FNV-1a trailer (` | <fnv16>`), metric doubles as exact
// 64-bit hex patterns, error text hex-encoded into one token. Sharing
// the codec is a correctness argument, not just deduplication — a block
// that round-trips the wire and a block that round-trips the journal are
// byte-identical, so "worker sent it" and "worker journaled it" can
// never disagree about the payload.
//
// Everything here is internal plumbing (namespace core::wire); public
// entry points live on SweepJournal and in sweep_protocol.hpp.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "obs/run_report.hpp"  // obs::fnv1a

namespace greenhpc::core::wire {

inline std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

inline bool parse_hex64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 16);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

inline bool parse_size(const std::string& tok, std::size_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

inline std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Error texts travel hex-encoded so they stay one whitespace-free token
/// regardless of content; "-" encodes the empty string.
inline std::string encode_text(const std::string& s) {
  if (s.empty()) return "-";
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out += digits[c >> 4];
    out += digits[c & 0xf];
  }
  return out;
}

inline bool decode_text(const std::string& tok, std::string& out) {
  out.clear();
  if (tok == "-") return true;
  if (tok.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < tok.size(); i += 2) {
    const int hi = nibble(tok[i]);
    const int lo = nibble(tok[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>((hi << 4) | lo);
  }
  return true;
}

/// Append the ` | <fnv16>` trailer that lets the receiver reject torn
/// and bit-flipped lines. No trailing newline — the journal appends '\n'
/// itself; the pipe transport's LineWriter frames lines on its own.
inline std::string seal(const std::string& content) {
  return content + " | " + hex64(obs::fnv1a(content));
}

/// Split a sealed line into content and checksum; false on a malformed
/// or checksum-failing line.
inline bool unseal(const std::string& line, std::string& content) {
  const std::size_t sep = line.rfind(" | ");
  if (sep == std::string::npos) return false;
  content = line.substr(0, sep);
  std::uint64_t sum = 0;
  if (!parse_hex64(line.substr(sep + 3), sum)) return false;
  return sum == obs::fnv1a(content);
}

inline std::vector<std::string> tokens_of(const std::string& content) {
  std::vector<std::string> toks;
  std::istringstream ss(content);
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

/// Serialize a block record to a sealed line (no newline):
///   block <start> <count> <digest16> [c <m1>..<m7> | f <attempts> <hexmsg>]...
inline std::string serialize_block(const SweepBlock& rec) {
  std::string content = "block " + std::to_string(rec.start) + ' ' +
                        std::to_string(rec.cases.size()) + ' ' +
                        hex64(rec.digest_after);
  for (const SweepCaseOutcome& e : rec.cases) {
    if (e.ok) {
      const double fields[] = {e.metrics.total_carbon_t,
                               e.metrics.total_energy_mwh,
                               e.metrics.mean_wait_h,
                               e.metrics.mean_bounded_slowdown,
                               e.metrics.utilization,
                               e.metrics.green_energy_share,
                               e.metrics.completed};
      content += " c";
      for (const double v : fields) content += ' ' + hex64(double_bits(v));
    } else {
      content += " f " + std::to_string(e.attempts) + ' ' + encode_text(e.error);
    }
  }
  return seal(content);
}

/// Parse the CONTENT of a block line (already unsealed); false on any
/// structural problem.
inline bool parse_block(const std::string& content, SweepBlock& rec) {
  const std::vector<std::string> toks = tokens_of(content);
  if (toks.size() < 4 || toks[0] != "block") return false;
  std::size_t count = 0;
  if (!parse_size(toks[1], rec.start) || !parse_size(toks[2], count) ||
      !parse_hex64(toks[3], rec.digest_after)) {
    return false;
  }
  rec.cases.clear();
  std::size_t i = 4;
  while (i < toks.size()) {
    SweepCaseOutcome entry;
    if (toks[i] == "c") {
      if (i + 7 >= toks.size()) return false;
      double* fields[] = {&entry.metrics.total_carbon_t,
                          &entry.metrics.total_energy_mwh,
                          &entry.metrics.mean_wait_h,
                          &entry.metrics.mean_bounded_slowdown,
                          &entry.metrics.utilization,
                          &entry.metrics.green_energy_share,
                          &entry.metrics.completed};
      for (std::size_t k = 0; k < 7; ++k) {
        std::uint64_t bits = 0;
        if (!parse_hex64(toks[i + 1 + k], bits)) return false;
        *fields[k] = bits_double(bits);
      }
      entry.ok = true;
      i += 8;
    } else if (toks[i] == "f") {
      if (i + 2 >= toks.size()) return false;
      std::size_t attempts = 0;
      if (!parse_size(toks[i + 1], attempts)) return false;
      entry.attempts = static_cast<int>(attempts);
      if (!decode_text(toks[i + 2], entry.error)) return false;
      entry.ok = false;
      i += 3;
    } else {
      return false;
    }
    rec.cases.push_back(std::move(entry));
  }
  return rec.cases.size() == count;
}

}  // namespace greenhpc::core::wire
