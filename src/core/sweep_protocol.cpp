#include "core/sweep_protocol.hpp"

#include "core/sweep_wire.hpp"

namespace greenhpc::core {

std::string encode_hello(long pid, std::uint64_t config_digest,
                         std::size_t cases, std::size_t block_size) {
  return wire::seal("hello " + std::to_string(pid) + ' ' +
                    wire::hex64(config_digest) + ' ' + std::to_string(cases) +
                    ' ' + std::to_string(block_size));
}

std::string encode_heartbeat(long pid) {
  return wire::seal("hb " + std::to_string(pid));
}

std::string encode_assign(std::size_t start, std::size_t count) {
  return wire::seal("assign " + std::to_string(start) + ' ' +
                    std::to_string(count));
}

std::string encode_shutdown() { return wire::seal("shutdown"); }

std::string encode_block(const SweepBlock& block) {
  return wire::serialize_block(block);
}

namespace {

// Defensive parse caps: the seal already rejects line noise, so anything
// hitting these is a logic bug or forged input — but an attempted
// multi-gigabyte allocation must not be how we find out.
constexpr std::size_t kMaxObsEntries = 65536;  ///< per stat/trace section
constexpr std::size_t kMaxHistBounds = 512;

}  // namespace

std::string encode_stat(long pid, std::uint64_t now_ns,
                        const obs::StatSnapshot& snap) {
  std::string content = "stat " + std::to_string(pid) + ' ' +
                        wire::hex64(now_ns);
  content += " c " + std::to_string(snap.counters.size());
  for (const auto& [name, v] : snap.counters) {
    content += ' ' + wire::encode_text(name) + ' ' + wire::hex64(v);
  }
  content += " g " + std::to_string(snap.gauges.size());
  for (const auto& [name, v] : snap.gauges) {
    content += ' ' + wire::encode_text(name) + ' ' +
               wire::hex64(wire::double_bits(v));
  }
  content += " h " + std::to_string(snap.histograms.size());
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    content += ' ' + wire::encode_text(h.name) + ' ' +
               wire::hex64(wire::double_bits(h.sum)) + ' ' +
               std::to_string(h.bounds.size());
    for (const double b : h.bounds) {
      content += ' ' + wire::hex64(wire::double_bits(b));
    }
    for (const std::uint64_t c : h.counts) content += ' ' + std::to_string(c);
  }
  return wire::seal(content);
}

std::string encode_trace(long pid, std::uint64_t now_ns, std::uint64_t dropped,
                         const std::vector<obs::RemoteTraceEvent>& events) {
  std::string content = "trace " + std::to_string(pid) + ' ' +
                        wire::hex64(now_ns) + ' ' + std::to_string(dropped) +
                        ' ' + std::to_string(events.size());
  for (const obs::RemoteTraceEvent& e : events) {
    content += ' ' + wire::encode_text(e.name) + ' ' +
               wire::encode_text(e.cat) + ' ' + std::to_string(e.tid) + ' ';
    content += e.phase;
    content += ' ' + wire::hex64(e.ts_ns) + ' ' + wire::hex64(e.dur_ns) + ' ' +
               wire::hex64(wire::double_bits(e.value));
  }
  return wire::seal(content);
}

namespace {

/// Parse the token run of a stat line after the verb; false on any
/// structural defect (the caller downgrades to ObsRejected, not
/// Malformed).
bool parse_stat_tokens(const std::vector<std::string>& toks, Message& msg) {
  std::size_t i = 1;
  std::size_t pid = 0;
  if (toks.size() < 3 || !wire::parse_size(toks[i], pid) ||
      !wire::parse_hex64(toks[i + 1], msg.remote_now_ns)) {
    return false;
  }
  msg.pid = static_cast<long>(pid);
  i += 2;

  const auto section_count = [&](const char* tag, std::size_t& n) -> bool {
    if (i + 1 >= toks.size() || toks[i] != tag ||
        !wire::parse_size(toks[i + 1], n) || n > kMaxObsEntries) {
      return false;
    }
    i += 2;
    return true;
  };

  std::size_t nc = 0;
  if (!section_count("c", nc)) return false;
  msg.stats.counters.reserve(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    std::string name;
    std::uint64_t v = 0;
    if (i + 1 >= toks.size() || !wire::decode_text(toks[i], name) ||
        !wire::parse_hex64(toks[i + 1], v)) {
      return false;
    }
    msg.stats.counters.emplace_back(std::move(name), v);
    i += 2;
  }

  std::size_t ng = 0;
  if (!section_count("g", ng)) return false;
  msg.stats.gauges.reserve(ng);
  for (std::size_t k = 0; k < ng; ++k) {
    std::string name;
    std::uint64_t bits = 0;
    if (i + 1 >= toks.size() || !wire::decode_text(toks[i], name) ||
        !wire::parse_hex64(toks[i + 1], bits)) {
      return false;
    }
    msg.stats.gauges.emplace_back(std::move(name), wire::bits_double(bits));
    i += 2;
  }

  std::size_t nh = 0;
  if (!section_count("h", nh)) return false;
  msg.stats.histograms.reserve(nh);
  for (std::size_t k = 0; k < nh; ++k) {
    obs::HistogramSnapshot h;
    std::uint64_t sum_bits = 0;
    std::size_t nb = 0;
    if (i + 2 >= toks.size() || !wire::decode_text(toks[i], h.name) ||
        !wire::parse_hex64(toks[i + 1], sum_bits) ||
        !wire::parse_size(toks[i + 2], nb) || nb > kMaxHistBounds) {
      return false;
    }
    h.sum = wire::bits_double(sum_bits);
    i += 3;
    if (i + nb + (nb + 1) > toks.size()) return false;
    h.bounds.reserve(nb);
    for (std::size_t b = 0; b < nb; ++b) {
      std::uint64_t bits = 0;
      if (!wire::parse_hex64(toks[i + b], bits)) return false;
      h.bounds.push_back(wire::bits_double(bits));
    }
    i += nb;
    h.counts.reserve(nb + 1);
    for (std::size_t b = 0; b < nb + 1; ++b) {
      std::size_t c = 0;
      if (!wire::parse_size(toks[i + b], c)) return false;
      h.counts.push_back(c);
    }
    i += nb + 1;
    msg.stats.histograms.push_back(std::move(h));
  }
  return i == toks.size();
}

/// Same for a trace line after the verb.
bool parse_trace_tokens(const std::vector<std::string>& toks, Message& msg) {
  std::size_t i = 1;
  std::size_t pid = 0;
  std::size_t dropped = 0;
  std::size_t n = 0;
  if (toks.size() < 5 || !wire::parse_size(toks[i], pid) ||
      !wire::parse_hex64(toks[i + 1], msg.remote_now_ns) ||
      !wire::parse_size(toks[i + 2], dropped) ||
      !wire::parse_size(toks[i + 3], n) || n > kMaxObsEntries) {
    return false;
  }
  msg.pid = static_cast<long>(pid);
  msg.trace_dropped = dropped;
  i += 4;
  if (i + n * 7 != toks.size()) return false;
  msg.trace_events.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    obs::RemoteTraceEvent e;
    std::size_t tid = 0;
    std::uint64_t value_bits = 0;
    if (!wire::decode_text(toks[i], e.name) ||
        !wire::decode_text(toks[i + 1], e.cat) ||
        !wire::parse_size(toks[i + 2], tid) || tid > kMaxObsEntries ||
        toks[i + 3].size() != 1 ||
        (toks[i + 3][0] != 'X' && toks[i + 3][0] != 'i' &&
         toks[i + 3][0] != 'C') ||
        !wire::parse_hex64(toks[i + 4], e.ts_ns) ||
        !wire::parse_hex64(toks[i + 5], e.dur_ns) ||
        !wire::parse_hex64(toks[i + 6], value_bits)) {
      return false;
    }
    e.tid = static_cast<int>(tid);
    e.phase = toks[i + 3][0];
    e.value = wire::bits_double(value_bits);
    i += 7;
    msg.trace_events.push_back(std::move(e));
  }
  return true;
}

}  // namespace

Message parse_message(const std::string& line) {
  Message msg;  // Malformed until proven otherwise
  // Classify observability-plane lines by their raw verb prefix BEFORE
  // the seal check: a truncated or bit-flipped stat/trace line must
  // still be ObsRejected (dropped, counted), never Malformed (fatal).
  const bool obs_shaped =
      line.rfind("stat ", 0) == 0 || line.rfind("trace ", 0) == 0;
  if (obs_shaped) msg.kind = MsgKind::ObsRejected;
  std::string content;
  if (!wire::unseal(line, content)) return msg;
  const std::vector<std::string> toks = wire::tokens_of(content);
  if (toks.empty()) return msg;

  if (toks[0] == "hello") {
    std::size_t pid = 0;
    if (toks.size() != 5 || !wire::parse_size(toks[1], pid) ||
        !wire::parse_hex64(toks[2], msg.config_digest) ||
        !wire::parse_size(toks[3], msg.cases) ||
        !wire::parse_size(toks[4], msg.block_size) || msg.block_size == 0) {
      return msg;
    }
    msg.pid = static_cast<long>(pid);
    msg.kind = MsgKind::Hello;
    return msg;
  }
  if (toks[0] == "hb") {
    std::size_t pid = 0;
    if (toks.size() != 2 || !wire::parse_size(toks[1], pid)) return msg;
    msg.pid = static_cast<long>(pid);
    msg.kind = MsgKind::Heartbeat;
    return msg;
  }
  if (toks[0] == "assign") {
    if (toks.size() != 3 || !wire::parse_size(toks[1], msg.start) ||
        !wire::parse_size(toks[2], msg.count) || msg.count == 0) {
      return msg;
    }
    msg.kind = MsgKind::Assign;
    return msg;
  }
  if (toks[0] == "shutdown") {
    if (toks.size() != 1) return msg;
    msg.kind = MsgKind::Shutdown;
    return msg;
  }
  if (toks[0] == "block") {
    if (!wire::parse_block(content, msg.block)) return msg;
    msg.kind = MsgKind::Block;
    return msg;
  }
  if (toks[0] == "stat") {
    if (!parse_stat_tokens(toks, msg)) {
      msg = Message{};
      msg.kind = MsgKind::ObsRejected;
      return msg;
    }
    msg.kind = MsgKind::Stat;
    return msg;
  }
  if (toks[0] == "trace") {
    if (!parse_trace_tokens(toks, msg)) {
      msg = Message{};
      msg.kind = MsgKind::ObsRejected;
      return msg;
    }
    msg.kind = MsgKind::Trace;
    return msg;
  }
  return msg;
}

}  // namespace greenhpc::core
