#include "core/sweep_protocol.hpp"

#include "core/sweep_wire.hpp"

namespace greenhpc::core {

std::string encode_hello(long pid, std::uint64_t config_digest,
                         std::size_t cases, std::size_t block_size) {
  return wire::seal("hello " + std::to_string(pid) + ' ' +
                    wire::hex64(config_digest) + ' ' + std::to_string(cases) +
                    ' ' + std::to_string(block_size));
}

std::string encode_heartbeat(long pid) {
  return wire::seal("hb " + std::to_string(pid));
}

std::string encode_assign(std::size_t start, std::size_t count) {
  return wire::seal("assign " + std::to_string(start) + ' ' +
                    std::to_string(count));
}

std::string encode_shutdown() { return wire::seal("shutdown"); }

std::string encode_block(const SweepBlock& block) {
  return wire::serialize_block(block);
}

Message parse_message(const std::string& line) {
  Message msg;  // Malformed until proven otherwise
  std::string content;
  if (!wire::unseal(line, content)) return msg;
  const std::vector<std::string> toks = wire::tokens_of(content);
  if (toks.empty()) return msg;

  if (toks[0] == "hello") {
    std::size_t pid = 0;
    if (toks.size() != 5 || !wire::parse_size(toks[1], pid) ||
        !wire::parse_hex64(toks[2], msg.config_digest) ||
        !wire::parse_size(toks[3], msg.cases) ||
        !wire::parse_size(toks[4], msg.block_size) || msg.block_size == 0) {
      return msg;
    }
    msg.pid = static_cast<long>(pid);
    msg.kind = MsgKind::Hello;
    return msg;
  }
  if (toks[0] == "hb") {
    std::size_t pid = 0;
    if (toks.size() != 2 || !wire::parse_size(toks[1], pid)) return msg;
    msg.pid = static_cast<long>(pid);
    msg.kind = MsgKind::Heartbeat;
    return msg;
  }
  if (toks[0] == "assign") {
    if (toks.size() != 3 || !wire::parse_size(toks[1], msg.start) ||
        !wire::parse_size(toks[2], msg.count) || msg.count == 0) {
      return msg;
    }
    msg.kind = MsgKind::Assign;
    return msg;
  }
  if (toks[0] == "shutdown") {
    if (toks.size() != 1) return msg;
    msg.kind = MsgKind::Shutdown;
    return msg;
  }
  if (toks[0] == "block") {
    if (!wire::parse_block(content, msg.block)) return msg;
    msg.kind = MsgKind::Block;
    return msg;
  }
  return msg;
}

}  // namespace greenhpc::core
