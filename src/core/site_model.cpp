#include "core/site_model.hpp"

#include <algorithm>

#include "embodied/metrics.hpp"
#include "util/error.hpp"

namespace greenhpc::core {

CarbonIntensity RenewableMix::effective() const {
  GREENHPC_REQUIRE(renewable_fraction >= 0.0 && renewable_fraction <= 1.0,
                   "renewable fraction must be in [0,1]");
  return grams_per_kwh(renewable_fraction * renewable_ci.grams_per_kwh() +
                       (1.0 - renewable_fraction) * residual_ci.grams_per_kwh());
}

SiteModel::SiteModel(const embodied::ActModel& model, embodied::SystemInventory inventory,
                     CarbonIntensity grid)
    : inventory_(std::move(inventory)), grid_(grid) {
  GREENHPC_REQUIRE(grid.grams_per_kwh() >= 0.0, "grid intensity must be >= 0");
  embodied_ = embodied_breakdown(model, inventory_).total();
}

Carbon SiteModel::operational_lifetime() const {
  const Duration life = days(365.0 * inventory_.lifetime_years);
  return embodied::operational_carbon(inventory_.avg_power, life, grid_);
}

double SiteModel::embodied_share() const {
  const Carbon total = embodied_ + operational_lifetime();
  return total.grams() > 0.0 ? embodied_ / total : 0.0;
}

double SiteModel::tonnes_per_pflop_year() const {
  GREENHPC_REQUIRE(inventory_.peak_pflops > 0.0, "system needs a performance figure");
  const double pflop_years =
      inventory_.peak_pflops * static_cast<double>(inventory_.lifetime_years);
  return (embodied_ + operational_lifetime()).tonnes() / pflop_years;
}

double cloud_embodied_share(const CloudServer& server, const RenewableMix& mix) {
  const Duration life = days(365.0 * server.lifetime_years);
  const Power wall_power = server.it_power * server.pue;
  const Carbon operational =
      embodied::operational_carbon(wall_power, life, mix.effective());
  const Carbon total = server.embodied + operational;
  return total.grams() > 0.0 ? server.embodied / total : 0.0;
}

double renewable_fraction_for_parity(const CloudServer& server,
                                     CarbonIntensity renewable_ci,
                                     CarbonIntensity residual_ci) {
  GREENHPC_REQUIRE(residual_ci > renewable_ci, "residual grid must be dirtier");
  // embodied == operational  <=>  ci_eff == embodied / energy.
  const Duration life = days(365.0 * server.lifetime_years);
  const double kwh = (server.it_power * server.pue * life).kilowatt_hours();
  const double ci_parity = server.embodied.grams() / kwh;
  const double f = (residual_ci.grams_per_kwh() - ci_parity) /
                   (residual_ci.grams_per_kwh() - renewable_ci.grams_per_kwh());
  return std::clamp(f, 0.0, 1.0);
}

}  // namespace greenhpc::core
