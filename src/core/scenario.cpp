#include "core/scenario.hpp"

#include "carbon/green_periods.hpp"
#include "carbon/trace_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace greenhpc::core {

ScenarioRunner::ScenarioRunner(ScenarioConfig config)
    : cfg_(std::move(config)),
      trace_(carbon::TraceCache::global().get(cfg_.region, cfg_.intensity_kind,
                                              cfg_.seed, seconds(0.0), cfg_.trace_span,
                                              cfg_.trace_step)),
      jobs_(hpcsim::WorkloadCache::global().get(cfg_.workload, cfg_.seed)) {
  GREENHPC_REQUIRE(cfg_.trace_span >= cfg_.workload.span,
                   "trace must cover the workload span");
  // 0.40 matches the carbon-aware scheduler's default green gate, so the
  // green-energy-share metric and the policies classify ticks identically.
  green_threshold_ = carbon::green_threshold(*trace_, 0.40);
}

PolicyOutcome ScenarioRunner::run(const std::string& label, const SchedulerFactory& sched,
                                  const PowerPolicyFactory& power) const {
  GREENHPC_REQUIRE(static_cast<bool>(sched), "scheduler factory required");
  GREENHPC_TRACE_SPAN("scenario.case");
  static obs::Counter& cases = obs::Registry::global().counter("scenario.cases");
  cases.add();
  auto scheduler = sched();
  std::unique_ptr<hpcsim::PowerBudgetPolicy> power_policy;
  if (power) power_policy = power();

  hpcsim::Simulator::Config sim_cfg;
  sim_cfg.cluster = cfg_.cluster;
  sim_cfg.carbon_intensity = trace_;  // shared, zero-copy
  hpcsim::Simulator sim(sim_cfg, jobs_);

  PolicyOutcome out;
  out.scheduler = label.empty() ? scheduler->name() : label;
  out.power_policy = power_policy ? power_policy->name() : "unconstrained";
  out.result = sim.run(*scheduler, power_policy.get());

  out.total_carbon_t = out.result.total_carbon.tonnes();
  out.total_energy_mwh = out.result.total_energy.megawatt_hours();
  out.carbon_per_node_hour_g = out.result.carbon_per_node_hour();
  out.mean_wait_h = out.result.mean_wait_hours();
  out.mean_bounded_slowdown = out.result.mean_bounded_slowdown();
  out.utilization = out.result.utilization(cfg_.cluster);
  out.green_energy_share = out.result.green_energy_share(green_threshold_);
  out.completed = out.result.completed_jobs;
  return out;
}

std::vector<PolicyOutcome> ScenarioRunner::run_all(
    const std::vector<PolicyCase>& cases) const {
  std::vector<PolicyOutcome> outcomes(cases.size());
  // Grain 1: each case is a whole simulation, orders of magnitude heavier
  // than a chunk dispatch. The chunked path's serial fallback keeps small
  // sweeps on single-worker pools at exactly serial cost.
  util::parallel_for_chunked(cases.size(), 1, [&](std::size_t i) {
    outcomes[i] = run(cases[i].label, cases[i].scheduler, cases[i].power);
  });
  return outcomes;
}

}  // namespace greenhpc::core
