#pragma once
// Coordinator/worker pipe protocol for distributed sweeps.
//
// One line per message, every line sealed with the same FNV trailer as
// the journal (` | <fnv16>`), so a byte mangled in transit is a parse
// failure, never a silently wrong assignment or result. The vocabulary
// is deliberately tiny — four control messages plus the journal's block
// record line reused verbatim as the result message:
//
//   worker -> coordinator:  hello <pid> <config16> <cases> <block>
//   worker -> coordinator:  hb <pid>
//   worker -> coordinator:  block <start> <count> <digest16> ...   (journal line)
//   worker -> coordinator:  stat <pid> <now16> ...    (registry snapshot)
//   worker -> coordinator:  trace <pid> <now16> ...   (trace event batch)
//   coordinator -> worker:  assign <start> <count>
//   coordinator -> worker:  shutdown
//
// `hello` doubles as the handshake AND the configuration cross-check:
// the worker derives (config digest, case count, block size) from its
// own command line, and the coordinator refuses a worker whose view of
// the grid differs — a version-skewed or mislaunched worker must fail
// loudly at connect, not contribute silently wrong blocks. `block`
// carries the BLOCK-LOCAL digest (fold from kSweepDigestBasis), since a
// worker cannot know its block's global fold position.
//
// `stat` and `trace` are the observability plane (sealed like every
// other line, digest-neutral by construction: the fold path never reads
// them). Both lead with the sender's pid and its monotone clock reading
// `now16` (obs::Tracer::now_ns as 16-hex), which is what lets the
// coordinator align per-worker clocks and measure shipping RTT. `stat`
// carries a full obs::StatSnapshot (counters/gauges/histograms, names
// hex-encoded into single tokens, doubles as exact bit patterns);
// `trace` carries the remote ring-drop count plus a batch of events.
//
// Malformed input never throws: a line that does not parse becomes
// MsgKind::Malformed and the receiver's policy decides (the coordinator
// treats a malformed worker line as worker death; the worker exits).
// The one carve-out is the observability plane: a line that LOOKS like
// a stat/trace line (verb prefix) but fails the seal or the grammar is
// MsgKind::ObsRejected — telemetry must never be able to kill the
// worker that ships it, so the coordinator drops and counts these
// (`sweep.obs_lines_rejected`) instead of declaring death.

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "obs/fleet.hpp"
#include "obs/metrics.hpp"

namespace greenhpc::core {

enum class MsgKind {
  Hello,
  Heartbeat,
  Assign,
  Shutdown,
  Block,
  Stat,
  Trace,
  ObsRejected,  ///< defective stat/trace line: drop and count, never fatal
  Malformed
};

/// A parsed protocol message; only the fields of its kind are valid.
struct Message {
  MsgKind kind = MsgKind::Malformed;
  // Hello / Heartbeat / Stat / Trace
  long pid = 0;
  std::uint64_t config_digest = 0;  ///< Hello
  std::size_t cases = 0;            ///< Hello
  std::size_t block_size = 0;       ///< Hello
  // Assign
  std::size_t start = 0;
  std::size_t count = 0;
  // Block
  SweepBlock block;
  // Stat / Trace: the sender's obs::Tracer::now_ns at send time.
  std::uint64_t remote_now_ns = 0;
  obs::StatSnapshot stats;                         ///< Stat
  std::uint64_t trace_dropped = 0;                 ///< Trace
  std::vector<obs::RemoteTraceEvent> trace_events; ///< Trace
};

[[nodiscard]] std::string encode_hello(long pid, std::uint64_t config_digest,
                                       std::size_t cases, std::size_t block_size);
[[nodiscard]] std::string encode_heartbeat(long pid);
[[nodiscard]] std::string encode_assign(std::size_t start, std::size_t count);
[[nodiscard]] std::string encode_shutdown();
/// A block result message IS the journal's sealed block line.
[[nodiscard]] std::string encode_block(const SweepBlock& block);
/// Registry snapshot batch (metric names hex-encoded, values as bits).
[[nodiscard]] std::string encode_stat(long pid, std::uint64_t now_ns,
                                      const obs::StatSnapshot& snap);
/// Trace event batch plus the sender's ring-drop count.
[[nodiscard]] std::string encode_trace(
    long pid, std::uint64_t now_ns, std::uint64_t dropped,
    const std::vector<obs::RemoteTraceEvent>& events);

/// Parse one sealed line into a Message; any defect (bad checksum, bad
/// token, wrong arity) yields MsgKind::Malformed — except lines whose
/// verb prefix claims the observability plane ("stat "/"trace "), whose
/// defects yield MsgKind::ObsRejected instead (see header comment).
[[nodiscard]] Message parse_message(const std::string& line);

}  // namespace greenhpc::core
