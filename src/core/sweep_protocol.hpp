#pragma once
// Coordinator/worker pipe protocol for distributed sweeps.
//
// One line per message, every line sealed with the same FNV trailer as
// the journal (` | <fnv16>`), so a byte mangled in transit is a parse
// failure, never a silently wrong assignment or result. The vocabulary
// is deliberately tiny — four control messages plus the journal's block
// record line reused verbatim as the result message:
//
//   worker -> coordinator:  hello <pid> <config16> <cases> <block>
//   worker -> coordinator:  hb <pid>
//   worker -> coordinator:  block <start> <count> <digest16> ...   (journal line)
//   coordinator -> worker:  assign <start> <count>
//   coordinator -> worker:  shutdown
//
// `hello` doubles as the handshake AND the configuration cross-check:
// the worker derives (config digest, case count, block size) from its
// own command line, and the coordinator refuses a worker whose view of
// the grid differs — a version-skewed or mislaunched worker must fail
// loudly at connect, not contribute silently wrong blocks. `block`
// carries the BLOCK-LOCAL digest (fold from kSweepDigestBasis), since a
// worker cannot know its block's global fold position.
//
// Malformed input never throws: a line that does not parse becomes
// MsgKind::Malformed and the receiver's policy decides (the coordinator
// treats a malformed worker line as worker death; the worker exits).

#include <cstdint>
#include <string>

#include "core/sweep.hpp"

namespace greenhpc::core {

enum class MsgKind { Hello, Heartbeat, Assign, Shutdown, Block, Malformed };

/// A parsed protocol message; only the fields of its kind are valid.
struct Message {
  MsgKind kind = MsgKind::Malformed;
  // Hello / Heartbeat
  long pid = 0;
  std::uint64_t config_digest = 0;  ///< Hello
  std::size_t cases = 0;            ///< Hello
  std::size_t block_size = 0;       ///< Hello
  // Assign
  std::size_t start = 0;
  std::size_t count = 0;
  // Block
  SweepBlock block;
};

[[nodiscard]] std::string encode_hello(long pid, std::uint64_t config_digest,
                                       std::size_t cases, std::size_t block_size);
[[nodiscard]] std::string encode_heartbeat(long pid);
[[nodiscard]] std::string encode_assign(std::size_t start, std::size_t count);
[[nodiscard]] std::string encode_shutdown();
/// A block result message IS the journal's sealed block line.
[[nodiscard]] std::string encode_block(const SweepBlock& block);

/// Parse one sealed line into a Message; any defect (bad checksum, bad
/// token, wrong arity) yields MsgKind::Malformed.
[[nodiscard]] Message parse_message(const std::string& line);

}  // namespace greenhpc::core
