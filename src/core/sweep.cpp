#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/sweep_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"  // obs::fnv1a
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"
#include "util/rng.hpp"

namespace greenhpc::core {

namespace {

/// Append a double's exact bit pattern to a config-digest buffer.
void digest_field(std::string& buf, double v) {
  char tmp[24];
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  std::snprintf(tmp, sizeof(tmp), "%016llx;", static_cast<unsigned long long>(bits));
  buf += tmp;
}

void digest_field(std::string& buf, long long v) {
  buf += std::to_string(v);
  buf += ';';
}

std::vector<carbon::Region> resolve_regions(const SweepGrid& grid) {
  return grid.regions.empty() ? std::vector<carbon::Region>{grid.base.region}
                              : grid.regions;
}
std::vector<carbon::IntensityKind> resolve_kinds(const SweepGrid& grid) {
  return grid.intensity_kinds.empty()
             ? std::vector<carbon::IntensityKind>{grid.base.intensity_kind}
             : grid.intensity_kinds;
}
std::vector<int> resolve_nodes(const SweepGrid& grid) {
  return grid.cluster_nodes.empty() ? std::vector<int>{grid.base.cluster.nodes}
                                    : grid.cluster_nodes;
}
std::vector<int> resolve_jobs(const SweepGrid& grid) {
  return grid.job_counts.empty() ? std::vector<int>{grid.base.workload.job_count}
                                 : grid.job_counts;
}

}  // namespace

void sweep_digest_metrics(std::uint64_t& h, const SweepCaseMetrics& m) {
  const double fields[] = {m.total_carbon_t,  m.total_energy_mwh, m.mean_wait_h,
                           m.mean_bounded_slowdown, m.utilization, m.green_energy_share,
                           m.completed};
  for (const double v : fields) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
}

std::uint64_t sweep_block_digest(const SweepBlock& block) {
  std::uint64_t h = kSweepDigestBasis;
  for (const SweepCaseOutcome& e : block.cases) {
    if (e.ok) sweep_digest_metrics(h, e.metrics);
  }
  return h;
}

std::size_t SweepGrid::case_count() const {
  return cell_count() * static_cast<std::size_t>(std::max(1, seed_replicas));
}

std::size_t SweepGrid::cell_count() const {
  return resolve_regions(*this).size() * resolve_kinds(*this).size() *
         resolve_nodes(*this).size() * resolve_jobs(*this).size() * policies.size();
}

std::uint64_t SweepGrid::config_digest() const {
  // Serialize everything that shapes the expanded cases — resolved axes
  // (so "empty axis" and "axis = {base value}" hash alike), policy
  // labels, replicas, and every base field the simulation reads — then
  // FNV the buffer. Doubles go in as exact bit patterns: two grids hash
  // equal iff they expand to the same simulations.
  std::string buf = "sweep-grid-v1;";
  for (const carbon::Region r : resolve_regions(*this)) {
    digest_field(buf, static_cast<long long>(r));
  }
  buf += '|';
  for (const carbon::IntensityKind k : resolve_kinds(*this)) {
    digest_field(buf, static_cast<long long>(k));
  }
  buf += '|';
  for (const int n : resolve_nodes(*this)) digest_field(buf, static_cast<long long>(n));
  buf += '|';
  for (const int n : resolve_jobs(*this)) digest_field(buf, static_cast<long long>(n));
  buf += '|';
  digest_field(buf, static_cast<long long>(seed_replicas));
  for (const SweepPolicy& p : policies) {
    buf += p.label;
    buf += ';';
  }
  buf += '|';
  digest_field(buf, static_cast<long long>(base.seed));
  digest_field(buf, static_cast<long long>(base.region));
  digest_field(buf, static_cast<long long>(base.intensity_kind));
  digest_field(buf, base.trace_span.seconds());
  digest_field(buf, base.trace_step.seconds());
  const hpcsim::ClusterConfig& c = base.cluster;
  digest_field(buf, static_cast<long long>(c.nodes));
  digest_field(buf, c.node_tdp.watts());
  digest_field(buf, c.node_idle.watts());
  digest_field(buf, c.min_cap_fraction);
  digest_field(buf, c.tick.seconds());
  digest_field(buf, static_cast<long long>(c.enforce_walltime));
  const hpcsim::WorkloadConfig& w = base.workload;
  digest_field(buf, static_cast<long long>(w.job_count));
  digest_field(buf, w.span.seconds());
  digest_field(buf, w.diurnal_amplitude);
  digest_field(buf, static_cast<long long>(w.max_job_nodes));
  digest_field(buf, w.runtime_weibull_shape);
  digest_field(buf, w.runtime_mean.seconds());
  digest_field(buf, w.runtime_min.seconds());
  digest_field(buf, w.runtime_max.seconds());
  digest_field(buf, w.walltime_factor_sigma);
  digest_field(buf, w.over_allocation_mean);
  digest_field(buf, w.malleable_fraction);
  digest_field(buf, w.moldable_fraction);
  digest_field(buf, w.checkpointable_fraction);
  digest_field(buf, w.node_power_mean.watts());
  digest_field(buf, w.node_power_sigma.watts());
  digest_field(buf, w.node_power_limit.watts());
  digest_field(buf, w.alpha_min);
  digest_field(buf, w.alpha_max);
  digest_field(buf, w.gamma_min);
  digest_field(buf, w.gamma_max);
  digest_field(buf, w.mpi_wait_mean);
  digest_field(buf, w.powersave_adoption);
  digest_field(buf, static_cast<long long>(w.user_count));
  return obs::fnv1a(buf);
}

double SweepCellStats::ci95(const util::RunningStats& s) {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.sample_stddev() / std::sqrt(static_cast<double>(s.count()));
}

// ---------------------------------------------------------------------------
// SweepCaseRunner

struct SweepCaseRunner::Coords {
  std::size_t region_idx, kind_idx, nodes_idx, jobs_idx, policy_idx;
  int replica;
};

SweepCaseRunner::SweepCaseRunner(const SweepGrid& grid)
    : SweepCaseRunner(grid, Options()) {}

SweepCaseRunner::SweepCaseRunner(const SweepGrid& grid, Options opts)
    : grid_(&grid), opts_(opts) {
  GREENHPC_REQUIRE(!grid.policies.empty(), "sweep grid needs at least one policy");
  GREENHPC_REQUIRE(grid.seed_replicas >= 1, "seed_replicas must be >= 1");
  for (const auto& p : grid.policies) {
    GREENHPC_REQUIRE(static_cast<bool>(p.scheduler),
                     "sweep policy needs a scheduler factory");
  }
  regions_ = resolve_regions(grid);
  kinds_ = resolve_kinds(grid);
  nodes_ = resolve_nodes(grid);
  jobs_ = resolve_jobs(grid);
  replicas_ = static_cast<std::size_t>(grid.seed_replicas);
  n_cells_ = regions_.size() * kinds_.size() * nodes_.size() * jobs_.size() *
             grid.policies.size();
  n_cases_ = n_cells_ * replicas_;
}

SweepCaseRunner::Coords SweepCaseRunner::decode(std::size_t flat) const {
  // Replica is the innermost index, so cases of one cell are consecutive;
  // then policy, jobs, nodes, kind, region outward.
  Coords c;
  c.replica = static_cast<int>(flat % replicas_);
  std::size_t rest = flat / replicas_;
  c.policy_idx = rest % grid_->policies.size();
  rest /= grid_->policies.size();
  c.jobs_idx = rest % jobs_.size();
  rest /= jobs_.size();
  c.nodes_idx = rest % nodes_.size();
  rest /= nodes_.size();
  c.kind_idx = rest % kinds_.size();
  rest /= kinds_.size();
  c.region_idx = rest;
  return c;
}

std::string SweepCaseRunner::describe(std::size_t flat) const {
  const Coords c = decode(flat);
  return "region=" + std::string(carbon::traits(regions_[c.region_idx]).code) +
         " kind=" +
         (kinds_[c.kind_idx] == carbon::IntensityKind::Average ? "avg" : "marg") +
         " nodes=" + std::to_string(nodes_[c.nodes_idx]) +
         " jobs=" + std::to_string(jobs_[c.jobs_idx]) +
         " policy=" + grid_->policies[c.policy_idx].label +
         " replica=" + std::to_string(c.replica);
}

void SweepCaseRunner::init_result(SweepResult& result) const {
  result.cases = n_cases_;
  result.replicas = static_cast<int>(replicas_);
  result.digest = kSweepDigestBasis;
  result.cells.clear();
  result.cells.reserve(n_cells_);
  for (const carbon::Region region : regions_) {
    for (const carbon::IntensityKind kind : kinds_) {
      for (const int nodes : nodes_) {
        for (const int jobs : jobs_) {
          for (const auto& policy : grid_->policies) {
            SweepCellStats cell;
            cell.region = region;
            cell.kind = kind;
            cell.nodes = nodes;
            cell.jobs = jobs;
            cell.policy = policy.label;
            result.cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
}

void SweepCaseRunner::fold(SweepResult& result, std::size_t flat,
                           const SweepCaseOutcome& e) const {
  if (!e.ok) {
    result.failed_cases.push_back(
        SweepFailedCase{flat, describe(flat), e.error, e.attempts});
    return;
  }
  const SweepCaseMetrics& m = e.metrics;
  SweepCellStats& cell = result.cells[flat / replicas_];
  cell.carbon_t.add(m.total_carbon_t);
  cell.energy_mwh.add(m.total_energy_mwh);
  cell.wait_h.add(m.mean_wait_h);
  cell.slowdown.add(m.mean_bounded_slowdown);
  cell.utilization.add(m.utilization);
  cell.green_share.add(m.green_energy_share);
  cell.completed.add(m.completed);
  sweep_digest_metrics(result.digest, m);
}

SweepCaseOutcome SweepCaseRunner::run_case(std::size_t flat) const {
  static obs::Counter& retries_counter =
      obs::Registry::global().counter("sweep.case_retries");
  static obs::Counter& quarantined_counter =
      obs::Registry::global().counter("sweep.cases_quarantined");

  const auto simulate = [&] {
    // Chaos hook: a poisoned flat case. In a worker process (lethal) a
    // Kill action crashes the worker exactly where a real poison case
    // would — mid-simulation, before any journaling. In the coordinator
    // (never lethal) the same spec degrades to a thrown failure, which
    // the retry/quarantine loop below contains: chaos must not be able
    // to crash the in-process degradation path.
    util::FaultHit poison;
    if (util::FaultInjector::global().match_value("case.poison", flat, poison)) {
      if (poison.action == util::FaultAction::Kill &&
          util::FaultInjector::global().lethal()) {
        std::_Exit(137);
      }
      throw util::InjectedFailure("injected poison case " +
                                  std::to_string(flat));
    }
    const Coords c = decode(flat);
    ScenarioConfig cfg = grid_->base;
    cfg.region = regions_[c.region_idx];
    cfg.intensity_kind = kinds_[c.kind_idx];
    cfg.cluster.nodes = nodes_[c.nodes_idx];
    cfg.workload.job_count = jobs_[c.jobs_idx];
    // Jobs must fit the swept cluster; clamping (rather than scaling)
    // keeps the workload key shared across node counts above the bound.
    cfg.workload.max_job_nodes =
        std::min(cfg.workload.max_job_nodes, cfg.cluster.nodes);
    cfg.seed = SweepEngine::replica_seed(grid_->base.seed, c.replica);

    // Construction resolves through the shared-asset caches: the trace
    // and job list are generated once per distinct key and shared.
    const ScenarioRunner runner(cfg);
    const auto& policy = grid_->policies[c.policy_idx];
    const PolicyOutcome out = runner.run(policy.label, policy.scheduler, policy.power);

    SweepCaseMetrics m;
    m.total_carbon_t = out.total_carbon_t;
    m.total_energy_mwh = out.total_energy_mwh;
    m.mean_wait_h = out.mean_wait_h;
    m.mean_bounded_slowdown = out.mean_bounded_slowdown;
    m.utilization = out.utilization;
    m.green_energy_share = out.green_energy_share;
    m.completed = static_cast<double>(out.completed);
    return m;
  };

  // Failure isolation: one case = one simulation attempt + a capped
  // exponential backoff retry budget (the same backoff shape as the
  // resilience layer's job requeue). A case that exhausts the budget is
  // quarantined, not fatal.
  SweepCaseOutcome entry;
  for (int attempt = 0;; ++attempt) {
    entry.attempts = attempt + 1;
    try {
      entry.metrics = simulate();
      entry.ok = true;
      return entry;
    } catch (const std::exception& e) {
      entry.error = e.what();
    } catch (...) {
      entry.error = "unknown exception";
    }
    if (attempt >= opts_.case_retries) {
      entry.ok = false;
      quarantined_counter.add();
      return entry;
    }
    retries_counter.add();
    const double backoff_s =
        std::min(opts_.retry_backoff_cap_s,
                 opts_.retry_backoff_base_s * static_cast<double>(1ull << attempt));
    if (backoff_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    }
  }
}

// ---------------------------------------------------------------------------
// SweepEngine

SweepEngine::SweepEngine() : SweepEngine(Options()) {}

SweepEngine::SweepEngine(Options opts) : opts_(std::move(opts)) {
  if (opts_.block == 0) opts_.block = 256;
}

std::uint64_t SweepEngine::replica_seed(std::uint64_t base, int replica) {
  std::uint64_t state = base;
  std::uint64_t out = 0;
  for (int r = 0; r <= replica; ++r) out = util::splitmix64(state);
  return out;
}

SweepResult SweepEngine::run(const SweepGrid& grid) const {
  SweepCaseRunner::Options case_opts;
  case_opts.case_retries = opts_.case_retries;
  case_opts.retry_backoff_base_s = opts_.retry_backoff_base_s;
  case_opts.retry_backoff_cap_s = opts_.retry_backoff_cap_s;
  const SweepCaseRunner runner(grid, case_opts);
  const std::size_t n_cases = runner.case_count();

  SweepResult result;
  runner.init_result(result);

  // Journal binding: the journal must have been opened against exactly
  // this grid, and its recorded block size wins so block boundaries line
  // up with the journaled records.
  SweepJournal* journal = opts_.journal;
  std::size_t block_size = opts_.block;
  if (journal != nullptr) {
    GREENHPC_REQUIRE(journal->config_digest() == grid.config_digest(),
                     "journal was written for a different sweep grid");
    GREENHPC_REQUIRE(journal->cases() == n_cases,
                     "journal case count does not match this grid");
    block_size = journal->block();
    result.journal_truncations = journal->truncations();
  }

  util::ThreadPool& pool = opts_.pool != nullptr ? *opts_.pool : util::ThreadPool::global();
  // Engine-side observability: per-block phase timing feeds the metrics
  // registry and (when enabled) the tracer. None of it touches simulation
  // state, so the fold order and digest stay bit-identical with tracing
  // on or off.
  GREENHPC_TRACE_SPAN("sweep.run");
  static obs::Counter& cases_counter = obs::Registry::global().counter("sweep.cases");
  static obs::Gauge& cases_per_s = obs::Registry::global().gauge("sweep.cases_per_s");
  static obs::Gauge& simulate_s = obs::Registry::global().gauge("sweep.simulate_s");
  static obs::Gauge& fold_s = obs::Registry::global().gauge("sweep.fold_s");
  static obs::Histogram& block_seconds = obs::Registry::global().histogram(
      "sweep.block_seconds", {1e-3, 1e-2, 0.1, 1.0, 10.0});

  // Resume: re-fold the blocks the journal proves complete instead of
  // re-simulating them. Each record's stored digest must match the
  // running digest after its fold — a mismatch means the journal does
  // not belong to this grid (or survived corruption the line checksums
  // cannot see), and silently folding it would fabricate results.
  std::size_t start_case = 0;
  if (journal != nullptr) {
    GREENHPC_TRACE_SPAN("sweep.replay");
    for (const SweepJournal::BlockRecord& rec : journal->completed()) {
      for (std::size_t i = 0; i < rec.cases.size(); ++i) {
        runner.fold(result, rec.start + i, rec.cases[i]);
      }
      GREENHPC_REQUIRE(result.digest == rec.digest_after,
                       "journal replay digest mismatch — the journal does not "
                       "re-fold to its recorded digest for this grid");
      result.replayed_cases += rec.cases.size();
      if (opts_.progress) {
        opts_.progress(rec.start + rec.cases.size(), n_cases);
      }
    }
    start_case = journal->resume_point();
  }

  std::vector<SweepCaseOutcome> scratch(
      std::min(block_size, n_cases - std::min(n_cases, start_case)));
  const auto run_start = std::chrono::steady_clock::now();
  for (std::size_t block_start = start_case; block_start < n_cases;
       block_start += block_size) {
    const std::size_t block_n = std::min(block_size, n_cases - block_start);
    const auto block_begin = std::chrono::steady_clock::now();
    {
      // Parallel fill into flat-indexed scratch slots (grain 1: one case
      // is a whole simulation)...
      GREENHPC_TRACE_SPAN("sweep.block.simulate");
      pool.parallel_for_chunked(block_n, 1, [&](std::size_t i) {
        scratch[i] = runner.run_case(block_start + i);
      });
    }
    const auto fold_begin = std::chrono::steady_clock::now();
    {
      // ...then a serial fold in case order: Welford accumulation and the
      // digest see every case in the same sequence for any thread count.
      GREENHPC_TRACE_SPAN("sweep.block.fold");
      for (std::size_t i = 0; i < block_n; ++i) {
        runner.fold(result, block_start + i, scratch[i]);
      }
    }
    if (journal != nullptr) {
      // WAL commit point: the record (metrics + quarantines + running
      // digest) is fsynced before the block is reported done, so a crash
      // after this line loses nothing and a crash before it loses only
      // this block.
      GREENHPC_TRACE_SPAN("sweep.block.journal");
      SweepJournal::BlockRecord rec;
      rec.start = block_start;
      rec.cases.assign(scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(block_n));
      rec.digest_after = result.digest;
      try {
        journal->append(rec);
      } catch (const JournalIoError& e) {
        // Containment: the journal is crash INSURANCE, not a correctness
        // dependency. Losing the disk mid-sweep must not abort hours of
        // simulation — degrade to journal-less, loudly, and keep going
        // (a later crash simply restarts from the journal's valid prefix).
        static obs::Counter& degraded =
            obs::Registry::global().counter("sweep.journal_io_degraded");
        degraded.add();
        std::fprintf(stderr,
                     "greenhpc: sweep journal degraded to journal-less "
                     "operation: %s\n",
                     e.what());
        journal = nullptr;
      }
    }
    const auto block_end = std::chrono::steady_clock::now();
    const std::chrono::duration<double> sim_d = fold_begin - block_begin;
    const std::chrono::duration<double> fold_d = block_end - fold_begin;
    const std::chrono::duration<double> elapsed = block_end - run_start;
    cases_counter.add(block_n);
    simulate_s.add(sim_d.count());
    fold_s.add(fold_d.count());
    block_seconds.record(sim_d.count() + fold_d.count());
    if (elapsed.count() > 0.0) {
      cases_per_s.set(static_cast<double>(block_start + block_n - start_case) /
                      elapsed.count());
    }
    if (opts_.progress) opts_.progress(block_start + block_n, n_cases);
  }
  return result;
}

}  // namespace greenhpc::core
