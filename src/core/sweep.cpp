#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace greenhpc::core {

namespace {

/// Resolved grid axes: every empty axis replaced by its base value.
struct Axes {
  std::vector<carbon::Region> regions;
  std::vector<carbon::IntensityKind> kinds;
  std::vector<int> nodes;
  std::vector<int> jobs;
};

Axes resolve_axes(const SweepGrid& grid) {
  Axes a;
  a.regions = grid.regions.empty() ? std::vector<carbon::Region>{grid.base.region}
                                   : grid.regions;
  a.kinds = grid.intensity_kinds.empty()
                ? std::vector<carbon::IntensityKind>{grid.base.intensity_kind}
                : grid.intensity_kinds;
  a.nodes = grid.cluster_nodes.empty() ? std::vector<int>{grid.base.cluster.nodes}
                                       : grid.cluster_nodes;
  a.jobs = grid.job_counts.empty() ? std::vector<int>{grid.base.workload.job_count}
                                   : grid.job_counts;
  return a;
}

std::size_t axes_cells(const Axes& a, std::size_t policies) {
  return a.regions.size() * a.kinds.size() * a.nodes.size() * a.jobs.size() * policies;
}

/// FNV-1a over the bit patterns of one case's metrics.
void digest_metrics(std::uint64_t& h, const SweepCaseMetrics& m) {
  const double fields[] = {m.total_carbon_t,  m.total_energy_mwh, m.mean_wait_h,
                           m.mean_bounded_slowdown, m.utilization, m.green_energy_share,
                           m.completed};
  for (const double v : fields) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
}

}  // namespace

std::size_t SweepGrid::case_count() const {
  return cell_count() * static_cast<std::size_t>(std::max(1, seed_replicas));
}

std::size_t SweepGrid::cell_count() const {
  const Axes a = resolve_axes(*this);
  return axes_cells(a, policies.size());
}

double SweepCellStats::ci95(const util::RunningStats& s) {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.sample_stddev() / std::sqrt(static_cast<double>(s.count()));
}

SweepEngine::SweepEngine() : SweepEngine(Options()) {}

SweepEngine::SweepEngine(Options opts) : opts_(std::move(opts)) {
  if (opts_.block == 0) opts_.block = 256;
}

std::uint64_t SweepEngine::replica_seed(std::uint64_t base, int replica) {
  std::uint64_t state = base;
  std::uint64_t out = 0;
  for (int r = 0; r <= replica; ++r) out = util::splitmix64(state);
  return out;
}

SweepResult SweepEngine::run(const SweepGrid& grid) const {
  GREENHPC_REQUIRE(!grid.policies.empty(), "sweep grid needs at least one policy");
  GREENHPC_REQUIRE(grid.seed_replicas >= 1, "seed_replicas must be >= 1");
  for (const auto& p : grid.policies) {
    GREENHPC_REQUIRE(static_cast<bool>(p.scheduler),
                     "sweep policy needs a scheduler factory");
  }

  const Axes axes = resolve_axes(grid);
  const std::size_t replicas = static_cast<std::size_t>(grid.seed_replicas);
  const std::size_t n_cells = axes_cells(axes, grid.policies.size());
  const std::size_t n_cases = n_cells * replicas;

  SweepResult result;
  result.cases = n_cases;
  result.replicas = grid.seed_replicas;
  result.digest = 1469598103934665603ull;  // FNV-1a offset basis

  // Cell table in cell-major order; replicas fold into it per block.
  result.cells.reserve(n_cells);
  for (const carbon::Region region : axes.regions) {
    for (const carbon::IntensityKind kind : axes.kinds) {
      for (const int nodes : axes.nodes) {
        for (const int jobs : axes.jobs) {
          for (const auto& policy : grid.policies) {
            SweepCellStats cell;
            cell.region = region;
            cell.kind = kind;
            cell.nodes = nodes;
            cell.jobs = jobs;
            cell.policy = policy.label;
            result.cells.push_back(std::move(cell));
          }
        }
      }
    }
  }

  // Decode flat case id -> (cell, replica); replica is the innermost
  // index, so cases of one cell are consecutive.
  const auto simulate_case = [&](std::size_t flat) {
    const std::size_t cell_idx = flat / replicas;
    const int replica = static_cast<int>(flat % replicas);
    std::size_t rest = cell_idx;
    const std::size_t policy_idx = rest % grid.policies.size();
    rest /= grid.policies.size();
    const std::size_t jobs_idx = rest % axes.jobs.size();
    rest /= axes.jobs.size();
    const std::size_t nodes_idx = rest % axes.nodes.size();
    rest /= axes.nodes.size();
    const std::size_t kind_idx = rest % axes.kinds.size();
    rest /= axes.kinds.size();
    const std::size_t region_idx = rest;

    ScenarioConfig cfg = grid.base;
    cfg.region = axes.regions[region_idx];
    cfg.intensity_kind = axes.kinds[kind_idx];
    cfg.cluster.nodes = axes.nodes[nodes_idx];
    cfg.workload.job_count = axes.jobs[jobs_idx];
    // Jobs must fit the swept cluster; clamping (rather than scaling)
    // keeps the workload key shared across node counts above the bound.
    cfg.workload.max_job_nodes =
        std::min(cfg.workload.max_job_nodes, cfg.cluster.nodes);
    cfg.seed = replica_seed(grid.base.seed, replica);

    // Construction resolves through the shared-asset caches: the trace
    // and job list are generated once per distinct key and shared.
    const ScenarioRunner runner(cfg);
    const auto& policy = grid.policies[policy_idx];
    const PolicyOutcome out = runner.run(policy.label, policy.scheduler, policy.power);

    SweepCaseMetrics m;
    m.total_carbon_t = out.total_carbon_t;
    m.total_energy_mwh = out.total_energy_mwh;
    m.mean_wait_h = out.mean_wait_h;
    m.mean_bounded_slowdown = out.mean_bounded_slowdown;
    m.utilization = out.utilization;
    m.green_energy_share = out.green_energy_share;
    m.completed = static_cast<double>(out.completed);
    return m;
  };

  util::ThreadPool& pool = opts_.pool != nullptr ? *opts_.pool : util::ThreadPool::global();
  std::vector<SweepCaseMetrics> scratch(std::min(opts_.block, n_cases));
  // Engine-side observability: per-block phase timing feeds the metrics
  // registry and (when enabled) the tracer. None of it touches simulation
  // state, so the fold order and digest stay bit-identical with tracing
  // on or off.
  GREENHPC_TRACE_SPAN("sweep.run");
  static obs::Counter& cases_counter = obs::Registry::global().counter("sweep.cases");
  static obs::Gauge& cases_per_s = obs::Registry::global().gauge("sweep.cases_per_s");
  static obs::Gauge& simulate_s = obs::Registry::global().gauge("sweep.simulate_s");
  static obs::Gauge& fold_s = obs::Registry::global().gauge("sweep.fold_s");
  static obs::Histogram& block_seconds = obs::Registry::global().histogram(
      "sweep.block_seconds", {1e-3, 1e-2, 0.1, 1.0, 10.0});
  const auto run_start = std::chrono::steady_clock::now();
  for (std::size_t block_start = 0; block_start < n_cases; block_start += opts_.block) {
    const std::size_t block_n = std::min(opts_.block, n_cases - block_start);
    const auto block_begin = std::chrono::steady_clock::now();
    {
      // Parallel fill into flat-indexed scratch slots (grain 1: one case
      // is a whole simulation)...
      GREENHPC_TRACE_SPAN("sweep.block.simulate");
      pool.parallel_for_chunked(block_n, 1, [&](std::size_t i) {
        scratch[i] = simulate_case(block_start + i);
      });
    }
    const auto fold_begin = std::chrono::steady_clock::now();
    {
      // ...then a serial fold in case order: Welford accumulation and the
      // digest see every case in the same sequence for any thread count.
      GREENHPC_TRACE_SPAN("sweep.block.fold");
      for (std::size_t i = 0; i < block_n; ++i) {
        const std::size_t flat = block_start + i;
        const SweepCaseMetrics& m = scratch[i];
        SweepCellStats& cell = result.cells[flat / replicas];
        cell.carbon_t.add(m.total_carbon_t);
        cell.energy_mwh.add(m.total_energy_mwh);
        cell.wait_h.add(m.mean_wait_h);
        cell.slowdown.add(m.mean_bounded_slowdown);
        cell.utilization.add(m.utilization);
        cell.green_share.add(m.green_energy_share);
        cell.completed.add(m.completed);
        digest_metrics(result.digest, m);
      }
    }
    const auto block_end = std::chrono::steady_clock::now();
    const std::chrono::duration<double> sim_d = fold_begin - block_begin;
    const std::chrono::duration<double> fold_d = block_end - fold_begin;
    const std::chrono::duration<double> elapsed = block_end - run_start;
    cases_counter.add(block_n);
    simulate_s.add(sim_d.count());
    fold_s.add(fold_d.count());
    block_seconds.record(sim_d.count() + fold_d.count());
    if (elapsed.count() > 0.0) {
      cases_per_s.set(static_cast<double>(block_start + block_n) / elapsed.count());
    }
    if (opts_.progress) opts_.progress(block_start + block_n, n_cases);
  }
  return result;
}

}  // namespace greenhpc::core
