#pragma once
// Sweep engine: scalable cartesian design-space exploration.
//
// The paper's operational claims (sections 3.1-3.4) are fleet-scale
// statements — a policy is only "better" if it wins across regions, seeds
// and cluster shapes, the way the Top500-scale carbon studies sweep their
// estimates. SweepEngine turns that into one call: a cartesian grid of
// scenario axes × policies × seed replicas is expanded into cases, fanned
// out over the thread pool in fixed-size blocks, and streamed through
// Welford mean/stddev/CI aggregation per grid cell, so memory stays
// bounded by the block size and the cell table — never by the case count.
//
// Determinism contract: per-case seeds are splitmix64-derived from the
// base seed (replica r gets the r-th draw of the stream, independent of
// every grid axis), cases write scratch slots indexed by flat case id, and
// blocks are folded serially in case order. The aggregate table — and the
// FNV-1a digest over every case's metrics — is therefore bit-identical
// for ANY thread count, including the serial fallback. Shared scenario
// assets (carbon::TraceCache, hpcsim::WorkloadCache) make the fan-out
// cheap: cases differing only in policy (or in axes a trace/workload does
// not depend on) reuse one immutable trace and one immutable job list.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace greenhpc::core {

class SweepJournal;

/// FNV-1a offset basis: the seed of every running sweep digest — the
/// engine's global digest, a shard journal's per-block digests, and the
/// worker protocol's block records all start here so their folds are
/// interchangeable.
inline constexpr std::uint64_t kSweepDigestBasis = 1469598103934665603ull;

/// One labelled policy combination under comparison.
struct SweepPolicy {
  std::string label;
  SchedulerFactory scheduler;
  PowerPolicyFactory power = nullptr;
};

/// Cartesian parameter grid. Empty axis vectors mean "the base value
/// only"; the case count is the product of the resolved axis lengths,
/// × policies × seed_replicas.
struct SweepGrid {
  /// Defaults for every field a sweep axis does not override.
  ScenarioConfig base;

  std::vector<carbon::Region> regions;                ///< empty = {base.region}
  std::vector<carbon::IntensityKind> intensity_kinds; ///< empty = {base.intensity_kind}
  std::vector<int> cluster_nodes;                     ///< empty = {base.cluster.nodes}
  std::vector<int> job_counts;                        ///< empty = {base.workload.job_count}
  /// Independent seed replicas per cell (>= 1); replica r simulates with
  /// seed splitmix64^r(base.seed), aggregated into the cell statistics.
  int seed_replicas = 1;
  /// Policies under comparison (>= 1 required).
  std::vector<SweepPolicy> policies;

  /// Total simulations the grid expands to.
  [[nodiscard]] std::size_t case_count() const;
  /// Grid cells (= case_count() / seed_replicas).
  [[nodiscard]] std::size_t cell_count() const;
  /// FNV-1a digest over everything that shapes the expanded cases:
  /// resolved axes, policy labels, replica count and the base scenario.
  /// A journal is bound to this digest, so resuming against a different
  /// grid is rejected instead of silently folding foreign metrics.
  [[nodiscard]] std::uint64_t config_digest() const;
};

/// Headline metrics of one simulated case — the Welford inputs and the
/// digest payload.
struct SweepCaseMetrics {
  double total_carbon_t = 0.0;
  double total_energy_mwh = 0.0;
  double mean_wait_h = 0.0;
  double mean_bounded_slowdown = 0.0;
  double utilization = 0.0;
  double green_energy_share = 0.0;
  double completed = 0.0;
};

/// Aggregate over the seed replicas of one grid cell.
struct SweepCellStats {
  // Cell coordinates (resolved axis values).
  carbon::Region region = carbon::Region::Germany;
  carbon::IntensityKind kind = carbon::IntensityKind::Average;
  int nodes = 0;
  int jobs = 0;
  std::string policy;

  // Welford accumulators, one observation per replica.
  util::RunningStats carbon_t;
  util::RunningStats energy_mwh;
  util::RunningStats wait_h;
  util::RunningStats slowdown;
  util::RunningStats utilization;
  util::RunningStats green_share;
  util::RunningStats completed;

  /// Normal-approximation 95% confidence half-width of a metric's mean
  /// (0 with fewer than two replicas).
  [[nodiscard]] static double ci95(const util::RunningStats& s);
};

/// A case that exhausted its retry budget and was quarantined instead of
/// killing the sweep (failure isolation: one pathological point in the
/// grid must not abort the other thousands of cases).
struct SweepFailedCase {
  std::size_t flat = 0;     ///< flat case id
  std::string where;        ///< resolved coordinates, e.g. "region=DE ... replica=2"
  std::string error;        ///< text of the last exception
  int attempts = 0;         ///< simulation attempts consumed (1 + retries)
};

/// One case's outcome in transportable form: the exact metric bit
/// patterns of a success, or the quarantine record of a failure. This is
/// the unit the journal persists, the wire protocol ships, and the fold
/// consumes — simulated, replayed and remotely-computed cases are
/// indistinguishable past this point, which is what makes resume and
/// distribution bit-identical by construction.
struct SweepCaseOutcome {
  bool ok = true;
  SweepCaseMetrics metrics;  ///< valid when ok
  int attempts = 1;
  std::string error;         ///< exception text when !ok
};

/// One completed block of consecutive flat cases. `cases[i]` is flat case
/// `start + i`. `digest_after` is context-dependent: the engine's chained
/// journal stores the running sweep digest after folding the block; shard
/// journals and the worker protocol store the BLOCK-LOCAL digest (fold of
/// just these cases from kSweepDigestBasis), because a worker cannot know
/// the global fold position of its block.
struct SweepBlock {
  std::size_t start = 0;
  std::vector<SweepCaseOutcome> cases;
  std::uint64_t digest_after = 0;
};

/// Fold one case's metric bit patterns into a running FNV-1a digest.
void sweep_digest_metrics(std::uint64_t& h, const SweepCaseMetrics& m);

/// Block-local digest of a block record: every ok case folded in order
/// starting from kSweepDigestBasis (quarantined cases contribute nothing,
/// mirroring the global digest's contract).
[[nodiscard]] std::uint64_t sweep_block_digest(const SweepBlock& block);

struct SweepResult {
  /// Cell-major order: regions × kinds × nodes × jobs × policies.
  std::vector<SweepCellStats> cells;
  std::size_t cases = 0;
  int replicas = 1;
  /// FNV-1a over every case's metric bit patterns in flat case order —
  /// equal digests mean bit-identical sweeps (any thread count).
  /// Quarantined cases contribute nothing to the digest or the cell
  /// statistics (their cells simply hold fewer observations), so the
  /// digest is deterministic whether or not a case deterministically
  /// fails.
  std::uint64_t digest = 0;
  /// Cases quarantined after exhausting their retry budget, flat order.
  std::vector<SweepFailedCase> failed_cases;
  /// Cases folded from a journal instead of simulated (resume).
  std::size_t replayed_cases = 0;
  /// Torn/corrupt journal suffixes dropped while resuming THIS run
  /// (per-run, unlike the process-cumulative obs counter — two sweeps in
  /// one process never bleed truncation counts into each other's report).
  std::uint64_t journal_truncations = 0;
};

/// The shared execution substrate of every sweep runner — the in-process
/// SweepEngine, a SweepWorker process, and the SweepCoordinator's
/// in-process degradation path all drive the SAME case pipeline through
/// this class: flat case id -> resolved scenario -> simulation with
/// retry/quarantine -> SweepCaseOutcome, plus the serial fold of outcomes
/// into a SweepResult. One implementation is the digest-identity
/// argument: there is no second code path that could diverge.
class SweepCaseRunner {
 public:
  struct Options {
    /// Failure isolation: extra attempts before a throwing case is
    /// quarantined (capped exponential backoff between attempts).
    int case_retries = 2;
    double retry_backoff_base_s = 0.01;
    double retry_backoff_cap_s = 1.0;
  };

  /// Resolves the grid's axes. Throws InvalidArgument on an empty policy
  /// list, a null scheduler factory, or a non-positive replica count.
  /// `grid` must outlive the runner (held by reference).
  SweepCaseRunner(const SweepGrid& grid, Options opts);
  explicit SweepCaseRunner(const SweepGrid& grid);

  [[nodiscard]] std::size_t case_count() const { return n_cases_; }
  [[nodiscard]] std::size_t cell_count() const { return n_cells_; }
  [[nodiscard]] int replicas() const { return static_cast<int>(replicas_); }

  /// Simulate one flat case with the retry/quarantine policy. Never
  /// throws on case failure — a case that exhausts its budget returns
  /// ok == false. Thread-safe: cases are independent.
  [[nodiscard]] SweepCaseOutcome run_case(std::size_t flat) const;

  /// Resolved coordinates of a flat case, for quarantine reports.
  [[nodiscard]] std::string describe(std::size_t flat) const;

  /// Size result's cell table (cell-major coordinates) and case counts.
  void init_result(SweepResult& result) const;

  /// Fold one outcome into result: Welford cells + digest for a success,
  /// the failed_cases list for a quarantine. MUST be called in flat case
  /// order — the digest is order-defined.
  void fold(SweepResult& result, std::size_t flat, const SweepCaseOutcome& e) const;

 private:
  struct Coords;
  [[nodiscard]] Coords decode(std::size_t flat) const;

  const SweepGrid* grid_;
  Options opts_;
  std::vector<carbon::Region> regions_;
  std::vector<carbon::IntensityKind> kinds_;
  std::vector<int> nodes_;
  std::vector<int> jobs_;
  std::size_t replicas_ = 1;
  std::size_t n_cells_ = 0;
  std::size_t n_cases_ = 0;
};

class SweepEngine {
 public:
  struct Options {
    /// Pool to fan out over; null = the process-global pool.
    util::ThreadPool* pool = nullptr;
    /// Cases simulated per streaming block (bounds scratch memory; the
    /// serial fold runs after each block).
    std::size_t block = 256;
    /// Optional progress callback, invoked with (cases done, cases total)
    /// after each block. Serialization contract: the callback always runs
    /// on the thread that called run(), between blocks, never while the
    /// pool is executing the block — so it needs no internal locking.
    /// Asserted by SweepTest.ProgressCallbackIsSerializedUnderThreadPool.
    std::function<void(std::size_t, std::size_t)> progress;
    /// Optional write-ahead journal (crash-safe sweeps). When set, run()
    /// first folds the blocks the journal proves complete (bit-identical
    /// replay of their recorded metrics, digest-verified), then simulates
    /// the remainder, appending one fsynced record per finished block.
    /// The journal's recorded block size overrides `block` so boundaries
    /// line up with the journaled records. The journal must have been
    /// opened against this grid's config_digest()/case_count(); a digest
    /// that does not re-fold throws InvalidArgument.
    SweepJournal* journal = nullptr;
    /// Failure isolation: a throwing case is retried up to this many
    /// extra attempts (capped exponential backoff between attempts, the
    /// same shape as the resilience layer's job requeue backoff), then
    /// quarantined into SweepResult::failed_cases instead of aborting
    /// the sweep. Counted by obs `sweep.case_retries` /
    /// `sweep.cases_quarantined`.
    int case_retries = 2;
    /// Backoff before retry k (0-based): base * 2^k, capped. Wall-clock
    /// seconds — these are harness retries, not simulated time.
    double retry_backoff_base_s = 0.01;
    double retry_backoff_cap_s = 1.0;
  };

  SweepEngine();
  explicit SweepEngine(Options opts);

  /// Expand and simulate the grid. Throws InvalidArgument on an empty
  /// policy list or non-positive replica count.
  [[nodiscard]] SweepResult run(const SweepGrid& grid) const;

  /// Seed of replica r: the r-th draw of the splitmix64 stream seeded
  /// with `base` (replica 0 = first draw, so even it decorrelates from
  /// neighbouring base seeds).
  [[nodiscard]] static std::uint64_t replica_seed(std::uint64_t base, int replica);

 private:
  Options opts_;
};

}  // namespace greenhpc::core
