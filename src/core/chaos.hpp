#pragma once
// Deterministic chaos harness for the distributed sweep fabric.
//
// A ChaosSchedule is a pre-computed fault plan: every decision (which
// workers get killed, which heartbeats are dropped, which journal append
// tears, whether a case is poisoned, whether the coordinator restarts
// mid-fold) is drawn from a splitmix64 stream keyed by (chaos seed,
// schedule index) — no wall clock, no entropy at run time — so a failing
// schedule replays EXACTLY with the same seed. run_chaos() executes N
// such schedules against a real coordinator + worker-process fleet and
// hard-fails unless every terminal state is either bit-identical to the
// clean-run digest or an explicitly reported quarantine:
//
//   - no poison in the plan  -> digest == clean digest, failed_cases empty
//   - poisoned case f        -> digest == the in-process reference digest
//                               with f quarantined, failed_cases == {f}
//
// and every schedule terminates within its deadline (no hang, no
// coordinator crash). Timing-dependent counters (worker deaths, misses,
// respawns) are deliberately NOT part of the verdict: the fabric's
// contract is the terminal REPORT, not the path taken to it. The same
// rule applies to quarantine error text — a case quarantined by probe
// containment (worker deaths) and one quarantined by the in-process
// retry budget read differently, but digest + failed flat ids agree.
//
// A final determinism pass re-runs one schedule and requires the
// identical terminal report, closing the loop on the headline claim:
// same chaos seed, same outcome, every time.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "util/fault_injector.hpp"

namespace greenhpc::core {

/// Every site the schedule generator knows how to arm. `--sites` subsets
/// this list; an unknown site name is rejected by run_chaos.
[[nodiscard]] const std::vector<std::string>& chaos_site_catalogue();

/// One derived fault plan. Pure data: deriving is side-effect free and
/// deterministic in (chaos_seed, schedule, sites, workers, n_cases,
/// n_blocks, wedge_stall_ms).
struct ChaosSchedule {
  std::uint64_t chaos_seed = 0;
  int schedule = 0;
  bool has_poison = false;
  std::size_t poison_flat = 0;  ///< valid when has_poison
  bool has_restart = false;     ///< a coord.fold fault is armed

  /// Faults armed in worker slot w's FIRST incarnation (argv-encoded by
  /// the coordinator's worker_extra_args hook). Includes the poison spec
  /// when has_poison.
  std::vector<std::vector<util::FaultSpec>> worker_faults;
  /// Faults armed in the coordinator process itself: the poison spec
  /// (so the in-process degradation path quarantines instead of folding
  /// a poisoned metric) and, when has_restart, one coord.fold failure.
  std::vector<util::FaultSpec> coordinator_faults;

  static ChaosSchedule derive(std::uint64_t chaos_seed, int schedule,
                              const std::vector<std::string>& sites,
                              int workers, std::size_t n_cases,
                              std::size_t n_blocks,
                              std::uint64_t wedge_stall_ms);

  /// Specs for worker `slot` at `incarnation`. Incarnation 0 gets the
  /// full plan; respawned incarnations get ONLY the poison spec — a
  /// respawn must be healthy or a kill-loop would drain the respawn
  /// budget without ever making progress.
  [[nodiscard]] std::vector<util::FaultSpec> worker_specs(
      int slot, int incarnation) const;
  /// coordinator_faults minus coord.fold: the restarted coordinator must
  /// not be re-killed at the same fold or the restart loop never ends.
  [[nodiscard]] std::vector<util::FaultSpec> resume_coordinator_faults() const;
  /// Short human summary ("poison=7 restart fold@2 w0:[...] ...").
  [[nodiscard]] std::string describe() const;
};

/// Terminal verdict of one executed schedule.
struct ChaosScheduleOutcome {
  int schedule = 0;
  bool pass = false;
  std::string note;  ///< failure explanation; empty on pass
  bool has_poison = false;
  std::size_t poison_flat = 0;
  bool restarted = false;  ///< a coordinator restart was exercised
  std::uint64_t digest = 0;
  std::size_t cases = 0;
  std::vector<std::size_t> failed_flats;  ///< sorted quarantined flat ids
  double elapsed_s = 0.0;
  // Containment accounting copied from the coordinator's stats.
  std::size_t worker_deaths = 0;
  std::size_t workers_respawned = 0;
  std::size_t workers_evicted_wedged = 0;
  std::size_t suspect_blocks = 0;
  std::size_t probes_launched = 0;
  std::size_t probe_quarantined_cases = 0;
  bool journal_degraded = false;
  std::uint64_t journal_truncations = 0;
};

struct ChaosReport {
  bool pass = false;
  std::uint64_t chaos_seed = 0;
  std::uint64_t clean_digest = 0;
  int failures = 0;
  int poison_schedules = 0;
  int restart_schedules = 0;
  std::vector<ChaosScheduleOutcome> schedules;
  /// Determinism pass: one schedule re-run end to end, terminal report
  /// compared field by field.
  int determinism_schedule = -1;
  bool determinism_pass = false;
  /// Chaos event lane artifact (JSONL, one event per schedule verdict),
  /// written under workdir. Empty if the write failed.
  std::string events_path;
};

struct ChaosOptions {
  /// Grid under chaos (must outlive the call). Keep it SMALL — every
  /// schedule runs it to completion at least once.
  const SweepGrid* grid = nullptr;
  /// Base worker argv (self exe + "sweep-worker" + grid flags), exactly
  /// as SweepCoordinator::Options::worker_argv expects it.
  std::vector<std::string> worker_argv;
  /// Scratch directory: per-schedule shard journals and the chaos event
  /// artifact live here. Scrubbed per schedule, never globally deleted.
  std::string workdir;

  std::uint64_t chaos_seed = 1;
  int schedules = 10;
  int workers = 3;
  /// Site subset to arm; empty = the full catalogue.
  std::vector<std::string> sites;

  std::size_t block = 2;
  /// A schedule exceeding this wall-clock budget fails (hang trap).
  double schedule_deadline_s = 120.0;
  /// Stall length for the wedged-worker fault; must comfortably exceed
  /// progress_timeout_s so the eviction trap, not the stall, ends it.
  std::uint64_t wedge_stall_ms = 4000;

  // Coordinator liveness tuning, aggressive defaults sized for a
  // micro-grid (milliseconds-long blocks).
  double heartbeat_interval_s = 0.05;
  double heartbeat_timeout_s = 0.25;
  int heartbeat_miss_limit = 2;
  double hello_timeout_s = 10.0;
  double lease_timeout_s = 10.0;
  double progress_timeout_s = 3.0;
  double lease_backoff_base_s = 0.05;
  double lease_backoff_cap_s = 0.5;
  int lease_suspect_after = 3;
  int probe_case_deaths = 3;
  int max_respawns = 16;

  /// Invoked after each schedule's verdict (progress reporting).
  std::function<void(const ChaosScheduleOutcome&)> on_schedule;
};

/// Run the harness. Throws InvalidArgument on bad options (null grid,
/// unknown site, empty worker argv); schedule failures are reported in
/// the ChaosReport, never thrown. Arms and disarms the process-global
/// FaultInjector; the injector is disarmed on every exit path.
[[nodiscard]] ChaosReport run_chaos(const ChaosOptions& opts);

}  // namespace greenhpc::core
