#pragma once
// Sweep journal: a write-ahead log that makes sweeps crash-restartable.
//
// A fleet-scale sweep is hours of simulation; a SIGKILL (preempted CI
// runner, OOM-killer, operator ctrl-C) must not throw that work away.
// The journal records, under a run directory, the grid's configuration
// digest plus one record per COMPLETED block: the case range, every
// case's metric bit patterns (or its quarantine record), and the running
// FNV digest after folding the block. Each record is flushed and fsynced
// before the engine reports the block done, so the journal is always a
// prefix of the truth — a crash loses at most the in-flight block.
//
// On resume, SweepEngine re-folds the recorded metrics instead of
// re-simulating (cheap: microseconds per block) and continues from the
// first unrecorded case. Because metrics are stored as exact 64-bit
// patterns and blocks fold in the same serial order, a resumed sweep's
// aggregates and digest are bit-identical to an uninterrupted run —
// the resume contract asserted by tests and the CI kill-and-resume job.
//
// File format (`sweep.journal` inside the run directory), line-oriented
// ASCII; every line ends in ` | <fnv16>`, the FNV-1a of the line content
// before the separator:
//
//   greenhpc-sweep-journal v1 <config16> <cases> <block> | <fnv16>
//   block <start> <count> <digest16> c <m1>..<m7> ... f <attempts> <hexmsg> | <fnv16>
//
// Per-case entries appear in flat-case order: `c` + seven hex-encoded
// doubles for a success, `f` + attempt count + hex-encoded error text
// for a quarantined case. Hardening: a torn or bit-flipped line fails
// its checksum (or breaks the block chain) and drops that line AND
// everything after it — the engine re-runs from the last valid block.
// A corrupt header, a version/config/shape mismatch, or a digest that
// does not re-fold throws greenhpc::InvalidArgument with a clear message.

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace greenhpc::core {

class SweepJournal {
 public:
  /// One case's journaled outcome: metrics when it simulated, the
  /// quarantine record when it exhausted its retry budget.
  struct CaseEntry {
    bool ok = true;
    SweepCaseMetrics metrics;  ///< valid when ok
    int attempts = 1;
    std::string error;         ///< exception text when !ok
  };

  /// One completed block: `cases[i]` is flat case `start + i`, and
  /// `digest_after` is the running sweep digest after folding the block.
  struct BlockRecord {
    std::size_t start = 0;
    std::vector<CaseEntry> cases;
    std::uint64_t digest_after = 0;
  };

  SweepJournal(SweepJournal&&) = default;
  SweepJournal& operator=(SweepJournal&&) = default;

  /// Start a fresh journal under `dir` (created if missing): truncates
  /// any previous journal and writes the fsynced header binding the
  /// journal to (config digest, case count, block size).
  [[nodiscard]] static SweepJournal create(const std::string& dir,
                                           std::uint64_t config_digest,
                                           std::size_t cases, std::size_t block);

  /// Reopen an existing journal for resume. Validates the header against
  /// the grid (InvalidArgument on version/config/case-count mismatch),
  /// loads the longest valid prefix of block records (a torn or corrupt
  /// line drops itself and everything after it), truncates the file to
  /// that prefix, and reopens for append.
  [[nodiscard]] static SweepJournal resume(const std::string& dir,
                                           std::uint64_t config_digest,
                                           std::size_t cases);

  /// Blocks proven complete by the journal, chained from case 0 in order.
  [[nodiscard]] const std::vector<BlockRecord>& completed() const {
    return completed_;
  }
  /// First case not covered by a completed block.
  [[nodiscard]] std::size_t resume_point() const;
  /// Block size recorded in the header; a resumed engine adopts it so
  /// block boundaries line up with the journaled records.
  [[nodiscard]] std::size_t block() const { return block_; }
  [[nodiscard]] std::size_t cases() const { return cases_; }
  [[nodiscard]] std::uint64_t config_digest() const { return config_digest_; }
  /// The journal file this instance appends to.
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Append one completed block: serialize, write, flush, fsync. The
  /// record is durable when this returns. Blocks must be appended in
  /// case order (start == resume_point()); anything else is a LogicError.
  void append(const BlockRecord& record);

  /// Journal file name inside a run directory.
  static constexpr const char* kFileName = "sweep.journal";

 private:
  SweepJournal() = default;

  std::string path_;
  std::uint64_t config_digest_ = 0;
  std::size_t cases_ = 0;
  std::size_t block_ = 0;
  std::vector<BlockRecord> completed_;
};

}  // namespace greenhpc::core
