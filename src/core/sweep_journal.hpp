#pragma once
// Sweep journal: a write-ahead log that makes sweeps crash-restartable.
//
// A fleet-scale sweep is hours of simulation; a SIGKILL (preempted CI
// runner, OOM-killer, operator ctrl-C) must not throw that work away.
// The journal records, under a run directory, the grid's configuration
// digest plus one record per COMPLETED block: the case range, every
// case's metric bit patterns (or its quarantine record), and the running
// FNV digest after folding the block. Each record is flushed and fsynced
// before the engine reports the block done, so the journal is always a
// prefix of the truth — a crash loses at most the in-flight block.
//
// On resume, SweepEngine re-folds the recorded metrics instead of
// re-simulating (cheap: microseconds per block) and continues from the
// first unrecorded case. Because metrics are stored as exact 64-bit
// patterns and blocks fold in the same serial order, a resumed sweep's
// aggregates and digest are bit-identical to an uninterrupted run —
// the resume contract asserted by tests and the CI kill-and-resume job.
//
// File format (`sweep.journal` inside the run directory), line-oriented
// ASCII; every line ends in ` | <fnv16>`, the FNV-1a of the line content
// before the separator:
//
//   greenhpc-sweep-journal v1 <config16> <cases> <block> | <fnv16>
//   block <start> <count> <digest16> c <m1>..<m7> ... f <attempts> <hexmsg> | <fnv16>
//
// Per-case entries appear in flat-case order: `c` + seven hex-encoded
// doubles for a success, `f` + attempt count + hex-encoded error text
// for a quarantined case. Hardening: a torn or bit-flipped line fails
// its checksum (or breaks the block chain) and drops that line AND
// everything after it — the engine re-runs from the last valid block.
// Dropping a suffix is reported: one stderr line naming the file, the
// first dropped line and the bytes discarded, plus the
// `sweep.journal_truncations` counter. A corrupt header, a
// version/config/shape mismatch, or a digest that does not re-fold
// throws greenhpc::InvalidArgument with a clear message.
//
// SHARD MODE (distributed sweeps): each SweepWorker journals the blocks
// it completed into its own `shard-g<gen>-<tag>.journal` (version token
// `v1-shard`). Shard records may arrive in ANY block order (the
// coordinator leases blocks out of sequence after failures), must be
// block-aligned, and store the BLOCK-LOCAL digest (fold of just that
// block's cases from kSweepDigestBasis) because a worker cannot know its
// block's global fold position. A restarted coordinator resumes from the
// UNION of all shard files under the run directory via load_shards();
// the generation number in the file name is bumped per coordinator run
// so a restart never clobbers the shards that survived the crash.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace greenhpc::core {

/// A journal I/O failure (ENOSPC, EIO, a vanished directory) at append
/// time. Distinct from InvalidArgument/LogicError because the CORRECT
/// response differs: a sweep must not abort mid-run because its crash
/// insurance broke — callers catch this, count a warning, drop to
/// journal-less operation and keep simulating. Configuration errors
/// (wrong grid, misaligned block) stay InvalidArgument/LogicError and
/// still abort.
class JournalIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SweepJournal {
 public:
  /// Journal records are plain sweep blocks; the aliases keep the
  /// journal's historical vocabulary compiling.
  using CaseEntry = SweepCaseOutcome;
  using BlockRecord = SweepBlock;

  SweepJournal(SweepJournal&&) = default;
  SweepJournal& operator=(SweepJournal&&) = default;

  /// Start a fresh journal under `dir` (created if missing): truncates
  /// any previous journal and writes the fsynced header binding the
  /// journal to (config digest, case count, block size).
  [[nodiscard]] static SweepJournal create(const std::string& dir,
                                           std::uint64_t config_digest,
                                           std::size_t cases, std::size_t block);

  /// Reopen an existing journal for resume. Validates the header against
  /// the grid (InvalidArgument on version/config/case-count mismatch),
  /// loads the longest valid prefix of block records (a torn or corrupt
  /// line drops itself and everything after it, logged + counted),
  /// truncates the file to that prefix, and reopens for append.
  [[nodiscard]] static SweepJournal resume(const std::string& dir,
                                           std::uint64_t config_digest,
                                           std::size_t cases);

  /// Whether any journal file (chained or shard) exists under `dir` —
  /// the CLI's resume-or-start probe.
  [[nodiscard]] static bool exists(const std::string& dir);

  // --- shard mode (distributed sweeps) ----------------------------------

  /// Start a fresh shard journal `dir/file_name` (dir created if
  /// missing). Shard records may be appended in any block order; each
  /// must be block-aligned and carry its block-local digest.
  [[nodiscard]] static SweepJournal create_shard(const std::string& dir,
                                                const std::string& file_name,
                                                std::uint64_t config_digest,
                                                std::size_t cases,
                                                std::size_t block);

  /// Canonical shard file name: `shard-g<gen>-<tag>.journal`.
  [[nodiscard]] static std::string shard_file_name(int gen, const std::string& tag);

  /// The union of every `shard-*.journal` under `dir`.
  struct ShardLoad {
    /// Distinct completed blocks, sorted by start (block-local digests
    /// verified by re-fold).
    std::vector<BlockRecord> blocks;
    std::size_t files = 0;             ///< shard files scanned
    std::size_t duplicate_blocks = 0;  ///< identical records dropped
    int max_gen = -1;                  ///< highest generation seen (-1: none)
    std::size_t block = 0;             ///< block size recorded by the shards
    std::size_t truncations = 0;       ///< files whose corrupt suffix was dropped
  };

  /// Scan `dir` for shard journals and merge their valid records.
  /// Per-file valid-prefix recovery: a torn/corrupt line drops the rest
  /// of THAT file only (logged + counted). The same block reported by
  /// two shards (at-least-once delivery) deduplicates by start; a start
  /// collision with DIFFERENT digests throws InvalidArgument — that is
  /// not duplicate delivery, it is nondeterminism or corruption, and
  /// folding either copy could fabricate results. Headers must agree
  /// with the grid and with each other. An empty/missing dir is a valid
  /// empty load.
  [[nodiscard]] static ShardLoad load_shards(const std::string& dir,
                                             std::uint64_t config_digest,
                                             std::size_t cases);

  /// Serialize one block record to its sealed journal/wire line (no
  /// trailing newline). The pipe protocol ships exactly these bytes.
  [[nodiscard]] static std::string serialize_block_line(const BlockRecord& rec);
  /// Parse a sealed block line; false on a torn/corrupt/malformed line.
  [[nodiscard]] static bool parse_block_line(const std::string& line,
                                             BlockRecord& rec);

  // ----------------------------------------------------------------------

  /// Blocks proven complete by the journal. Chained mode: contiguous
  /// from case 0, in order. Shard mode: the order they were appended.
  [[nodiscard]] const std::vector<BlockRecord>& completed() const {
    return completed_;
  }
  /// First case not covered by a completed block (chained mode).
  [[nodiscard]] std::size_t resume_point() const;
  /// Block size recorded in the header; a resumed engine adopts it so
  /// block boundaries line up with the journaled records.
  [[nodiscard]] std::size_t block() const { return block_; }
  [[nodiscard]] std::size_t cases() const { return cases_; }
  [[nodiscard]] std::uint64_t config_digest() const { return config_digest_; }
  /// The journal file this instance appends to.
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Whether this journal was opened in shard mode.
  [[nodiscard]] bool is_shard() const { return shard_; }
  /// Truncation events THIS instance performed (resume() dropping a
  /// torn/corrupt suffix). Per-run by construction — two sweeps in one
  /// process each report only their own journal's truncations.
  [[nodiscard]] std::uint64_t truncations() const { return truncations_; }

  /// Append one completed block: serialize, write, flush, fsync. The
  /// record is durable when this returns. Chained mode: blocks must
  /// arrive in case order (start == resume_point()). Shard mode: any
  /// order, but the record must be block-aligned with the right size and
  /// its digest must re-fold (LogicError otherwise — the caller built a
  /// broken record). Throws JournalIoError if the write or fsync fails;
  /// the record is NOT recorded as completed in that case (the file may
  /// hold a torn line, which resume() will drop).
  void append(const BlockRecord& record);

  /// Journal file name inside a run directory (chained mode).
  static constexpr const char* kFileName = "sweep.journal";

 private:
  SweepJournal() = default;

  std::string path_;
  std::uint64_t config_digest_ = 0;
  std::size_t cases_ = 0;
  std::size_t block_ = 0;
  bool shard_ = false;
  std::uint64_t truncations_ = 0;
  std::vector<BlockRecord> completed_;
};

}  // namespace greenhpc::core
