#include "core/sweep_worker.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "core/sweep_journal.hpp"
#include "core/sweep_protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"
#include "util/subprocess.hpp"

namespace greenhpc::core {

namespace {

/// Injected sleep, milliseconds (Stall/Delay actions).
void chaos_sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Injected process death. 137 = the 128+SIGKILL convention, so chaos
/// kills look exactly like the OOM-killer to the coordinator.
[[noreturn]] void chaos_kill() { std::_Exit(137); }

/// Split `dir/file` for SweepJournal::create_shard.
void split_path(const std::string& path, std::string& dir, std::string& file) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) {
    dir = ".";
    file = path;
  } else {
    dir = path.substr(0, slash);
    file = path.substr(slash + 1);
  }
}

}  // namespace

SweepWorker::SweepWorker(Options opts) : opts_(std::move(opts)) {
  if (opts_.block == 0) opts_.block = 256;
}

int SweepWorker::run(const SweepGrid& grid) {
  util::FaultInjector& chaos = util::FaultInjector::global();
  {
    // Chaos hook: slow-start (Delay) or death before the hello (Kill) —
    // the coordinator's hello-deadline detector owns this window.
    util::FaultHit hit;
    if (chaos.consult("worker.start", hit)) {
      if (hit.action == util::FaultAction::Kill && chaos.lethal()) {
        chaos_kill();
      }
      if (hit.action == util::FaultAction::Delay ||
          hit.action == util::FaultAction::Stall) {
        chaos_sleep_ms(hit.param);
      }
    }
  }
  std::unique_ptr<SweepCaseRunner> runner;
  try {
    runner = std::make_unique<SweepCaseRunner>(grid, opts_.case_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "greenhpc: sweep worker rejects grid: %s\n", e.what());
    return 3;
  }
  const std::size_t n_cases = runner->case_count();
  const std::uint64_t config = grid.config_digest();
  util::ThreadPool& pool =
      opts_.pool != nullptr ? *opts_.pool : util::ThreadPool::global();

  std::unique_ptr<SweepJournal> shard;
  if (!opts_.shard_path.empty()) {
    std::string dir, file;
    split_path(opts_.shard_path, dir, file);
    try {
      shard = std::make_unique<SweepJournal>(
          SweepJournal::create_shard(dir, file, config, n_cases, opts_.block));
    } catch (const JournalIoError& e) {
      // A worker without crash insurance is still a working worker: the
      // coordinator re-leases anything this worker dies holding.
      obs::Registry::global().counter("sweep.journal_io_degraded").add();
      std::fprintf(stderr,
                   "greenhpc: worker shard journal degraded to journal-less "
                   "operation: %s\n",
                   e.what());
    }
  }

  util::LineWriter out(opts_.out_fd);
  util::LineChannel in(opts_.in_fd);  // blocking fd: fill() waits for data
  const long pid = static_cast<long>(::getpid());

  // Observability shipping (digest-neutral: the coordinator's fold path
  // never reads stat/trace lines). Fleet spans are recorded directly
  // into a small main-thread buffer rather than through the global
  // Tracer: enabling the tracer would also switch on every per-tick
  // simulator span, whose recording cost is exactly the shipping
  // overhead the bench_sweep gate budgets at 5%. Three events per block
  // need no ring.
  const bool ship_obs = opts_.ship_stats || opts_.ship_trace;
  static obs::Gauge& rate_gauge =
      obs::Registry::global().gauge("sweep.cases_per_s");
  static obs::Histogram& block_hist = obs::Registry::global().histogram(
      "sweep.block_seconds", {1e-3, 1e-2, 0.1, 1.0, 10.0});
  const auto ship_stat = [&] {
    (void)out.write_line(encode_stat(pid, obs::Tracer::now_ns(),
                                     obs::Registry::global().snapshot()));
  };
  // Pending cat=="fleet" events; MAIN THREAD ONLY, between blocks (the
  // heartbeat thread never records).
  std::vector<obs::RemoteTraceEvent> fleet_events;
  const auto fleet_instant = [&](const char* name, double value) {
    if (!opts_.ship_trace) return;
    obs::RemoteTraceEvent e;
    e.name = name;
    e.cat = "fleet";
    e.phase = 'i';
    e.ts_ns = obs::Tracer::now_ns();
    e.value = value;
    fleet_events.push_back(std::move(e));
  };
  const auto fleet_span = [&](const char* name, std::uint64_t begin_ns) {
    if (!opts_.ship_trace) return;
    obs::RemoteTraceEvent e;
    e.name = name;
    e.cat = "fleet";
    e.phase = 'X';
    e.ts_ns = begin_ns;
    const std::uint64_t now_ns = obs::Tracer::now_ns();
    e.dur_ns = now_ns > begin_ns ? now_ns - begin_ns : 0;
    fleet_events.push_back(std::move(e));
  };
  const auto ship_trace_batch = [&] {
    if (!opts_.ship_trace) return;
    (void)out.write_line(
        encode_trace(pid, obs::Tracer::now_ns(), 0, fleet_events));
    fleet_events.clear();
  };

  if (!out.write_line(encode_hello(pid, config, n_cases, opts_.block))) {
    return 0;  // coordinator already gone; nothing to serve
  }
  // The anchor line: the coordinator pairs this line's clock reading
  // with its own receipt time to fix this worker's lane offset in the
  // merged fleet trace, so it must ship before any span does.
  if (ship_obs) ship_stat();

  // Heartbeat side thread: liveness must keep flowing WHILE a block
  // simulates, or a long block is indistinguishable from a hang. The
  // LineWriter mutex keeps heartbeat lines and block lines from
  // interleaving bytes.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mu);
    for (;;) {
      hb_cv.wait_for(lock,
                     std::chrono::duration<double>(opts_.heartbeat_interval_s));
      if (hb_stop) return;
      {
        // Chaos hook: drop or delay this beat. Consulted per beat, so a
        // Drop spec with count=N silences exactly N consecutive beats —
        // enough to drive the coordinator through miss counting without
        // (or into) the death verdict, depending on N.
        util::FaultHit hit;
        if (chaos.consult("worker.heartbeat", hit)) {
          if (hit.action == util::FaultAction::Drop) continue;
          if (hit.action == util::FaultAction::Delay) chaos_sleep_ms(hit.param);
        }
      }
      if (!out.write_line(encode_heartbeat(pid))) return;  // peer gone
      // Piggyback a registry snapshot on the heartbeat cadence: the
      // coordinator turns the line's clock reading into an RTT sample
      // and its payload into the per-worker rollup. Registry::snapshot
      // is safe concurrent with the simulating pool threads.
      if (opts_.ship_stats) ship_stat();
    }
  });
  const auto stop_heartbeat = [&] {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  util::MonotoneClock clock;
  const double t0_s = clock.now_s();
  std::size_t done_cases = 0;

  std::string line;
  int rc = 0;
  for (;;) {
    while (!in.next_line(line)) {
      const util::LineChannel::Fill f = in.fill();
      if (f == util::LineChannel::Fill::Eof ||
          f == util::LineChannel::Fill::Error) {
        if (!in.next_line(line)) {
          stop_heartbeat();
          return 0;  // coordinator hung up: clean exit
        }
        break;
      }
    }
    const Message m = parse_message(line);
    if (m.kind == MsgKind::Shutdown) break;
    if (m.kind != MsgKind::Assign) {
      rc = 2;  // the coordinator never sends anything else
      break;
    }
    // A valid assignment is either a whole aligned block or a
    // single-case PROBE of a suspect block (poison containment).
    const bool aligned = m.start % opts_.block == 0 && m.start < n_cases &&
                         m.count == std::min(opts_.block, n_cases - m.start);
    const bool probe = m.count == 1 && m.start < n_cases;
    if (!aligned && !probe) {
      rc = 2;
      break;
    }

    SweepBlock block;
    block.start = m.start;
    block.cases.resize(m.count);
    const double block_t0_s = clock.now_s();
    fleet_instant("worker.assign", static_cast<double>(m.start));
    {
      const std::uint64_t span_t0_ns = obs::Tracer::now_ns();
      pool.parallel_for_chunked(m.count, 1, [&](std::size_t i) {
        block.cases[i] = runner->run_case(m.start + i);
      });
      block.digest_after = sweep_block_digest(block);
      fleet_span("worker.block", span_t0_ns);
    }
    {
      // Chaos hook, placed in the worst spot by design: AFTER the block
      // computed, BEFORE it is journaled or reported. Kill loses the
      // whole block's work (re-lease must recompute); Stall wedges the
      // main thread while the heartbeat thread keeps beating — exactly
      // the failure the coordinator's progress deadline exists to catch.
      util::FaultHit hit;
      if (chaos.consult("worker.block", hit)) {
        if (hit.action == util::FaultAction::Kill && chaos.lethal()) {
          chaos_kill();
        }
        if (hit.action == util::FaultAction::Stall) chaos_sleep_ms(hit.param);
      }
    }

    // Durability before visibility: once the coordinator sees this
    // record it may never be re-leased, so it must already be on disk.
    // Probe results are deliberately NOT journaled: shard records must
    // stay block-aligned, and a restarted coordinator re-probes from
    // its own lease-death evidence.
    if (shard != nullptr && aligned) {
      const std::uint64_t span_t0_ns = obs::Tracer::now_ns();
      try {
        shard->append(block);
      } catch (const JournalIoError& e) {
        obs::Registry::global().counter("sweep.journal_io_degraded").add();
        std::fprintf(stderr,
                     "greenhpc: worker shard journal degraded to "
                     "journal-less operation: %s\n",
                     e.what());
        shard.reset();
      }
      fleet_span("worker.journal", span_t0_ns);
    }
    block_hist.record(clock.now_s() - block_t0_s);
    done_cases += m.count;
    const double elapsed_s = clock.now_s() - t0_s;
    if (elapsed_s > 0.0) {
      rate_gauge.set(static_cast<double>(done_cases) / elapsed_s);
    }
    std::string report = SweepJournal::serialize_block_line(block);
    {
      // Chaos hook: corrupt the sealed report line in flight. Every
      // mutation fails the line's FNV seal at the coordinator (a
      // surviving corruption is a ~2^-64 event), which must be treated
      // as a protocol violation, never folded.
      util::FaultHit hit;
      if (chaos.consult("worker.report", hit)) {
        switch (hit.action) {
          case util::FaultAction::Truncate:
            report.resize(report.size() -
                          std::min<std::size_t>(hit.param, report.size()));
            break;
          case util::FaultAction::ShortWrite:
            report.resize(std::min<std::size_t>(hit.param, report.size()));
            break;
          case util::FaultAction::BitFlip:
            if (!report.empty()) {
              const std::uint64_t bit = hit.param % (report.size() * 8);
              report[bit / 8] = static_cast<char>(
                  static_cast<unsigned char>(report[bit / 8]) ^
                  (1u << (bit % 8)));
            }
            break;
          default:
            break;
        }
      }
    }
    if (!out.write_line(report)) {
      break;  // coordinator died mid-run; the shard record survives
    }
    if (opts_.ship_stats) ship_stat();
    ship_trace_batch();
  }
  // Last snapshot out the door (best effort — the coordinator may
  // already be gone): the final protocol exchange a postmortem shows.
  if (ship_obs) ship_stat();
  ship_trace_batch();
  stop_heartbeat();
  return rc;
}

}  // namespace greenhpc::core
