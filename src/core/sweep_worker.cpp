#include "core/sweep_worker.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "core/sweep_journal.hpp"
#include "core/sweep_protocol.hpp"
#include "util/error.hpp"
#include "util/subprocess.hpp"

namespace greenhpc::core {

namespace {

/// Split `dir/file` for SweepJournal::create_shard.
void split_path(const std::string& path, std::string& dir, std::string& file) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) {
    dir = ".";
    file = path;
  } else {
    dir = path.substr(0, slash);
    file = path.substr(slash + 1);
  }
}

}  // namespace

SweepWorker::SweepWorker(Options opts) : opts_(std::move(opts)) {
  if (opts_.block == 0) opts_.block = 256;
}

int SweepWorker::run(const SweepGrid& grid) {
  std::unique_ptr<SweepCaseRunner> runner;
  try {
    runner = std::make_unique<SweepCaseRunner>(grid, opts_.case_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "greenhpc: sweep worker rejects grid: %s\n", e.what());
    return 3;
  }
  const std::size_t n_cases = runner->case_count();
  const std::uint64_t config = grid.config_digest();
  util::ThreadPool& pool =
      opts_.pool != nullptr ? *opts_.pool : util::ThreadPool::global();

  std::unique_ptr<SweepJournal> shard;
  if (!opts_.shard_path.empty()) {
    std::string dir, file;
    split_path(opts_.shard_path, dir, file);
    shard = std::make_unique<SweepJournal>(
        SweepJournal::create_shard(dir, file, config, n_cases, opts_.block));
  }

  util::LineWriter out(opts_.out_fd);
  util::LineChannel in(opts_.in_fd);  // blocking fd: fill() waits for data
  const long pid = static_cast<long>(::getpid());

  if (!out.write_line(encode_hello(pid, config, n_cases, opts_.block))) {
    return 0;  // coordinator already gone; nothing to serve
  }

  // Heartbeat side thread: liveness must keep flowing WHILE a block
  // simulates, or a long block is indistinguishable from a hang. The
  // LineWriter mutex keeps heartbeat lines and block lines from
  // interleaving bytes.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mu);
    for (;;) {
      hb_cv.wait_for(lock,
                     std::chrono::duration<double>(opts_.heartbeat_interval_s));
      if (hb_stop) return;
      if (!out.write_line(encode_heartbeat(pid))) return;  // peer gone
    }
  });
  const auto stop_heartbeat = [&] {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  std::string line;
  int rc = 0;
  for (;;) {
    while (!in.next_line(line)) {
      const util::LineChannel::Fill f = in.fill();
      if (f == util::LineChannel::Fill::Eof ||
          f == util::LineChannel::Fill::Error) {
        if (!in.next_line(line)) {
          stop_heartbeat();
          return 0;  // coordinator hung up: clean exit
        }
        break;
      }
    }
    const Message m = parse_message(line);
    if (m.kind == MsgKind::Shutdown) break;
    if (m.kind != MsgKind::Assign) {
      rc = 2;  // the coordinator never sends anything else
      break;
    }
    if (m.start % opts_.block != 0 || m.start >= n_cases ||
        m.count != std::min(opts_.block, n_cases - m.start)) {
      rc = 2;
      break;
    }

    SweepBlock block;
    block.start = m.start;
    block.cases.resize(m.count);
    pool.parallel_for_chunked(m.count, 1, [&](std::size_t i) {
      block.cases[i] = runner->run_case(m.start + i);
    });
    block.digest_after = sweep_block_digest(block);

    // Durability before visibility: once the coordinator sees this
    // record it may never be re-leased, so it must already be on disk.
    if (shard != nullptr) shard->append(block);
    if (!out.write_line(SweepJournal::serialize_block_line(block))) {
      break;  // coordinator died mid-run; the shard record survives
    }
  }
  stop_heartbeat();
  return rc;
}

}  // namespace greenhpc::core
