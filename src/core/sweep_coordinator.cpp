#include "core/sweep_coordinator.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/sweep_journal.hpp"
#include "core/sweep_protocol.hpp"
#include "obs/fleet.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"
#include "util/subprocess.hpp"

namespace greenhpc::core {

// ---------------------------------------------------------------------------
// BlockLedger

BlockLedger::BlockLedger(std::size_t cases, std::size_t block)
    : BlockLedger(cases, block, Options()) {}

BlockLedger::BlockLedger(std::size_t cases, std::size_t block, Options opts)
    : cases_(cases), block_(block), opts_(opts) {
  GREENHPC_REQUIRE(block_ > 0, "ledger block size must be positive");
  const std::size_t n = cases_ == 0 ? 0 : (cases_ + block_ - 1) / block_;
  states_.resize(n);
  pending_ = n;
}

std::size_t BlockLedger::size_of(std::size_t index) const {
  return std::min(block_, cases_ - index * block_);
}

bool BlockLedger::lease(int worker, double now_s, Lease& out) {
  // Lowest-start-first keeps the fold frontier moving: the block gating
  // next_to_fold() is always the most urgent lease.
  for (std::size_t i = next_fold_; i < states_.size(); ++i) {
    Entry& e = states_[i];
    if (e.state != State::Pending) continue;
    if (now_s < e.ready_at_s) continue;  // still in reassignment backoff
    if (e.suspect) {
      // Suspect block: hand out ONE unpinned case as a probe. One probe
      // in flight per block (the entry is Leased while it runs), so a
      // probe death accuses exactly one case.
      std::size_t j = 0;
      while (j < e.probe_done.size() && e.probe_done[j] != 0) ++j;
      if (j == e.probe_done.size()) continue;  // fully pinned, finalizing
      e.state = State::Leased;
      e.worker = worker;
      e.probe_active = j;
      --pending_;
      ++leased_;
      ++probes_launched_;
      out.start = i * block_ + j;
      out.count = 1;
      out.probe = true;
      return true;
    }
    e.state = State::Leased;
    e.worker = worker;
    --pending_;
    ++leased_;
    out.start = i * block_;
    out.count = size_of(i);
    out.probe = false;
    return true;
  }
  return false;
}

std::size_t BlockLedger::orphan_worker(int worker, double now_s) {
  std::size_t orphaned = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    Entry& e = states_[i];
    if (e.state != State::Leased || e.worker != worker) continue;
    const double backoff =
        std::min(opts_.backoff_cap_s,
                 opts_.backoff_base_s * std::pow(2.0, e.orphanings));
    ++e.orphanings;
    e.state = State::Pending;
    e.worker = -1;
    e.ready_at_s = now_s + backoff;
    --leased_;
    ++pending_;
    ++orphaned;
    if (e.suspect && e.probe_active != kNoProbe) {
      // A probe death is evidence against ONE case, not the block.
      const std::size_t j = e.probe_active;
      e.probe_active = kNoProbe;
      if (++e.probe_deaths[j] >= opts_.probe_case_deaths) {
        SweepCaseOutcome q;
        q.ok = false;
        q.attempts = e.probe_deaths[j];
        q.error = "case killed its worker in " +
                  std::to_string(e.probe_deaths[j]) +
                  " consecutive probe(s) — quarantined by poison containment";
        e.probe_out[j] = std::move(q);
        e.probe_done[j] = 1;
        ++probe_quarantined_;
        finalize_if_probed(i);
      }
    } else if (!e.suspect && opts_.suspect_after > 0 &&
               e.orphanings >= opts_.suspect_after) {
      // The block keeps killing whoever runs it: stop retrying it whole
      // and start bisecting. Without this, a poison case is reassigned
      // forever and eventually takes the entire fleet with it.
      e.suspect = true;
      const std::size_t n = size_of(i);
      e.probe_out.assign(n, SweepCaseOutcome{});
      e.probe_done.assign(n, 0);
      e.probe_deaths.assign(n, 0);
      ++suspect_blocks_;
    }
  }
  return orphaned;
}

void BlockLedger::finalize_if_probed(std::size_t index) {
  Entry& e = states_[index];
  for (const std::uint8_t d : e.probe_done) {
    if (d == 0) return;
  }
  // Every case pinned: synthesize the block record a healthy worker
  // would have delivered. Quarantined cases are ok=false outcomes, so
  // the block-local digest folds only the survivors — exactly the
  // partial-digest contract the fold path already implements.
  SweepBlock rec;
  rec.start = index * block_;
  rec.cases = std::move(e.probe_out);
  rec.digest_after = sweep_block_digest(rec);
  GREENHPC_ASSERT(e.state == State::Pending,
                  "probe finalization from a non-pending entry");
  e.digest = rec.digest_after;
  e.record = std::move(rec);
  e.state = State::Ready;
  --pending_;
  e.probe_out.clear();
  e.probe_done.clear();
  e.probe_deaths.clear();
}

BlockLedger::Deliver BlockLedger::deliver(const SweepBlock& rec) {
  GREENHPC_REQUIRE(!rec.cases.empty() && rec.start < cases_,
                   "block record is empty or out of range");
  GREENHPC_REQUIRE(sweep_block_digest(rec) == rec.digest_after,
                   "block record digest does not re-fold");
  const std::size_t index = rec.start / block_;
  Entry& e = states_[index];
  const bool full =
      rec.start % block_ == 0 && rec.cases.size() == size_of(index);
  if (!full) {
    // Single-case probe result for a suspect block.
    GREENHPC_REQUIRE(rec.cases.size() == 1 && e.suspect,
                     "block record is not aligned to the sweep's block grid");
    if (e.state == State::Ready || e.state == State::Folded) {
      ++duplicates_;  // the block was resolved while this probe was in flight
      return Deliver::Duplicate;
    }
    const std::size_t j = rec.start % block_;
    if (e.probe_done[j] != 0) {
      ++duplicates_;
      return Deliver::Duplicate;
    }
    e.probe_out[j] = rec.cases[0];
    e.probe_done[j] = 1;
    if (e.state == State::Leased && e.probe_active == j) {
      e.probe_active = kNoProbe;
      e.worker = -1;
      e.state = State::Pending;
      e.ready_at_s = 0.0;  // the next probe needs no backoff: this one worked
      --leased_;
      ++pending_;
    }
    finalize_if_probed(index);
    return Deliver::Accepted;
  }
  GREENHPC_REQUIRE(rec.start % block_ == 0,
                   "block record is not aligned to the sweep's block grid");
  if (e.state == State::Ready || e.state == State::Folded) {
    // At-least-once delivery: honest duplicates (same bits) are normal;
    // the same block with different bits is nondeterminism or forgery
    // and folding either copy could fabricate results.
    GREENHPC_REQUIRE(e.digest == rec.digest_after,
                     "conflicting duplicate record for block " +
                         std::to_string(rec.start) +
                         " — nondeterminism or corruption");
    ++duplicates_;
    return Deliver::Duplicate;
  }
  if (e.state == State::Leased) {
    --leased_;
  } else {
    --pending_;
  }
  e.state = State::Ready;
  e.worker = -1;
  e.probe_active = kNoProbe;
  e.digest = rec.digest_after;
  e.record = rec;
  return Deliver::Accepted;
}

bool BlockLedger::next_to_fold(SweepBlock& out) {
  if (next_fold_ >= states_.size()) return false;
  Entry& e = states_[next_fold_];
  if (e.state != State::Ready) return false;
  out = std::move(e.record);
  e.record = SweepBlock{};
  e.state = State::Folded;
  ++folded_blocks_;
  ++next_fold_;
  return true;
}

double BlockLedger::next_ready_s() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Entry& e : states_) {
    if (e.state == State::Pending) best = std::min(best, e.ready_at_s);
  }
  return best;
}

// ---------------------------------------------------------------------------
// SweepCoordinator

namespace {

/// Bucket bounds (seconds) for the heartbeat/stat receipt-lag
/// histograms — sub-millisecond through a stalled event loop.
const std::vector<double> kRttBounds = {5e-4, 1e-3, 2.5e-3, 5e-3,  1e-2,
                                        2.5e-2, 5e-2, 0.1,  0.25, 1.0};

/// Coordinator-side view of one worker process.
struct WorkerConn {
  int id = -1;  ///< stable worker index (ledger lease owner, stats slot)
  util::Subprocess proc;
  std::unique_ptr<util::LineChannel> channel;
  bool alive = true;
  bool hello_ok = false;
  int misses = 0;                 ///< consecutive heartbeat misses
  util::Deadline liveness;        ///< hello deadline, then heartbeat deadline
  bool has_lease = false;
  std::size_t lease_start = 0;
  util::Deadline lease_deadline;     ///< hung-worker trap
  util::Deadline progress_deadline;  ///< wedged-but-heartbeating trap
  int incarnation = 0;               ///< 0 = first spawn of this slot

  // Observability plane.
  int lane = -1;                   ///< fleet trace lane (-1 = no fleet)
  bool obs_aligned = false;        ///< clock anchor received
  std::int64_t obs_offset_ns = 0;  ///< local ns = remote ns + offset
  std::uint64_t lease_grant_ns = 0;  ///< for synthesized lease spans
  obs::FlightRecorder fr{256};
  std::unique_ptr<obs::Histogram> rtt;  ///< per-worker receipt lag
  /// Latest shipped sweep.block_seconds snapshot (cumulative, so the
  /// last one wins; merged fleet-wide at finalization).
  obs::HistogramSnapshot block_hist;
};

}  // namespace

SweepCoordinator::SweepCoordinator(Options opts) : opts_(std::move(opts)) {
  if (opts_.block == 0) opts_.block = 256;
}

SweepResult SweepCoordinator::run(const SweepGrid& grid) {
  GREENHPC_TRACE_SPAN("sweep.coordinator");
  static obs::Counter& deaths_counter =
      obs::Registry::global().counter("sweep.worker_deaths");
  static obs::Counter& reassigned_counter =
      obs::Registry::global().counter("sweep.blocks_reassigned");
  static obs::Counter& hb_miss_counter =
      obs::Registry::global().counter("sweep.heartbeat_misses");
  static obs::Counter& dup_counter =
      obs::Registry::global().counter("sweep.duplicate_block_records");
  static obs::Gauge& alive_gauge =
      obs::Registry::global().gauge("sweep.workers_alive");
  static obs::Counter& obs_rejected_counter =
      obs::Registry::global().counter("sweep.obs_lines_rejected");
  static obs::Gauge& lease_age_gauge =
      obs::Registry::global().gauge("sweep.lease_age_s");
  static obs::Counter& respawned_counter =
      obs::Registry::global().counter("sweep.workers_respawned");
  static obs::Counter& evicted_counter =
      obs::Registry::global().counter("sweep.workers_evicted_wedged");
  static obs::Counter& journal_degraded_counter =
      obs::Registry::global().counter("sweep.journal_io_degraded");
  static obs::Histogram& rtt_registry_hist =
      obs::Registry::global().histogram("sweep.heartbeat_rtt_s", kRttBounds);
  // Fleet-summed throughput: each worker ships its own sweep.cases_per_s
  // gauge; the coordinator republishes the sum so --progress (and the
  // metrics snapshot) show fleet throughput, not a dead-zero local gauge.
  static obs::Gauge& rate_gauge =
      obs::Registry::global().gauge("sweep.cases_per_s");

  stats_ = Stats{};
  const SweepCaseRunner runner(grid, opts_.case_opts);
  const std::size_t n_cases = runner.case_count();
  const std::uint64_t config = grid.config_digest();
  SweepResult result;
  runner.init_result(result);

  util::MonotoneClock clock;

  // Observability plane: the merged fleet trace (one lane per process),
  // the coordinator's own flight recorder, and the per-run RTT fold.
  // All of it is bookkeeping beside the fold path — digests cannot see it.
  std::unique_ptr<obs::FleetTrace> fleet;
  int coord_lane = -1;
  const std::uint64_t run_begin_ns = obs::Tracer::now_ns();
  if (!opts_.fleet_trace_path.empty()) {
    fleet = std::make_unique<obs::FleetTrace>();
    coord_lane = fleet->add_lane(static_cast<long>(::getpid()),
                                 "greenhpc sweep coordinator");
  }
  obs::FlightRecorder coord_fr(opts_.flight_recorder_events);
  obs::Histogram fleet_rtt(kRttBounds);  // this run only (registry accumulates)

  /// Instant event on the coordinator's control-plane lane. Goes through
  /// FleetTrace directly (local clock, zero offset) so the control plane
  /// shows up even when the process-global Tracer is disabled.
  const auto fleet_mark = [&](const char* name, double value) {
    if (fleet == nullptr) return;
    obs::RemoteTraceEvent e;
    e.name = name;
    e.cat = "fleet";
    e.phase = 'i';
    e.ts_ns = obs::Tracer::now_ns();
    e.value = value;
    fleet->add_event(coord_lane, std::move(e));
  };

  /// Dump a flight recorder as a postmortem JSONL artifact; returns the
  /// path ("" when postmortems are off or the write failed — a failed
  /// postmortem must never fail the sweep).
  const auto dump_recorder = [&](const obs::FlightRecorder& fr,
                                 const std::string& file) -> std::string {
    if (opts_.postmortem_dir.empty()) return std::string();
    ::mkdir(opts_.postmortem_dir.c_str(), 0777);  // EEXIST is fine
    const std::string path = opts_.postmortem_dir + "/" + file;
    try {
      util::atomic_write_file(path,
                              [&](std::ostream& os) { fr.write_jsonl(os); });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "greenhpc: cannot write postmortem %s: %s\n",
                   path.c_str(), e.what());
      return std::string();
    }
    ++stats_.postmortems_written;
    return path;
  };

  /// Close the coordinator's run span and publish the merged trace.
  const auto finalize_fleet = [&] {
    if (fleet == nullptr) return;
    obs::RemoteTraceEvent run_span;
    run_span.name = "coord.run";
    run_span.cat = "fleet";
    run_span.phase = 'X';
    run_span.ts_ns = run_begin_ns;
    run_span.dur_ns = obs::Tracer::now_ns() - run_begin_ns;
    fleet->add_event(coord_lane, std::move(run_span));
    try {
      util::atomic_write_file(
          opts_.fleet_trace_path,
          [&](std::ostream& os) { fleet->write_chrome_json(os); });
      stats_.fleet_trace_path = opts_.fleet_trace_path;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "greenhpc: cannot write fleet trace %s: %s\n",
                   opts_.fleet_trace_path.c_str(), e.what());
    }
  };

  // Resume: seed the ledger with every block the surviving shard
  // journals prove complete, and bump the shard generation so this run's
  // files never clobber the evidence it just recovered from.
  std::size_t block_size = opts_.block;
  int gen = 0;
  std::vector<SweepBlock> seeded;
  if (!opts_.journal_dir.empty() && opts_.resume) {
    SweepJournal::ShardLoad load =
        SweepJournal::load_shards(opts_.journal_dir, config, n_cases);
    if (load.block != 0) block_size = load.block;
    gen = load.max_gen + 1;
    seeded = std::move(load.blocks);
    stats_.journal_truncations = load.truncations;
    result.journal_truncations = load.truncations;
    coord_fr.record(clock.now_s(), "restart",
                    "gen=" + std::to_string(gen) +
                        " shard_blocks=" + std::to_string(seeded.size()) +
                        " truncations=" + std::to_string(load.truncations));
  }
  stats_.shard_generation = gen;

  BlockLedger::Options lopts;
  lopts.backoff_base_s = opts_.lease_backoff_base_s;
  lopts.backoff_cap_s = opts_.lease_backoff_cap_s;
  lopts.suspect_after = opts_.lease_suspect_after;
  lopts.probe_case_deaths = opts_.probe_case_deaths;
  BlockLedger ledger(n_cases, block_size, lopts);
  const auto finalize_containment = [&] {
    stats_.suspect_blocks = ledger.suspects();
    stats_.probes_launched = ledger.probes_launched();
    stats_.probe_quarantined_cases = ledger.probe_quarantined();
  };

  std::size_t folded_cases = 0;
  const auto drain_folds = [&] {
    // The determinism gate: blocks fold strictly in flat case order, no
    // matter which worker finished first, so digest and failed_cases are
    // those of the serial engine.
    SweepBlock b;
    while (ledger.next_to_fold(b)) {
      // Chaos hook: simulated coordinator death at a fold boundary. The
      // thrown InjectedFailure unwinds run() (worker children are killed
      // by their Subprocess destructors); the chaos harness then
      // restarts the coordinator with resume=true and proves the shard
      // union re-folds to the same digest.
      util::FaultHit coord_hit;
      if (util::FaultInjector::global().consult("coord.fold", coord_hit) &&
          coord_hit.action == util::FaultAction::Fail) {
        throw util::InjectedFailure(
            "injected coordinator failure before folding block " +
            std::to_string(b.start));
      }
      fleet_mark("coord.fold", static_cast<double>(b.start));
      for (std::size_t i = 0; i < b.cases.size(); ++i) {
        runner.fold(result, b.start + i, b.cases[i]);
      }
      folded_cases += b.cases.size();
      if (opts_.progress) opts_.progress(folded_cases, n_cases);
    }
  };

  for (const SweepBlock& b : seeded) {
    if (ledger.deliver(b) == BlockLedger::Deliver::Accepted) {
      ++stats_.replayed_blocks;
      result.replayed_cases += b.cases.size();
      coord_fr.record(clock.now_s(), "replayed",
                      "start=" + std::to_string(b.start) +
                          " count=" + std::to_string(b.cases.size()));
    }
  }
  seeded.clear();
  drain_folds();

  // A restarted coordinator is itself a postmortem trigger: the dump
  // records what the shard union proved before anything new runs.
  if (opts_.resume && !opts_.journal_dir.empty()) {
    dump_recorder(coord_fr,
                  "postmortem-restart-g" + std::to_string(gen) + ".jsonl");
  }

  // In-process execution: the workers==0 configuration AND the
  // all-workers-dead degradation path. Journals its blocks into its own
  // shard so coordinator crashes stay recoverable on this path too.
  const auto journal_degrade = [&](const JournalIoError& e) {
    // The journal is crash insurance, not a correctness dependency:
    // losing the disk mid-sweep degrades to journal-less, loudly, and
    // the sweep keeps going.
    stats_.journal_degraded = true;
    journal_degraded_counter.add();
    coord_fr.record(clock.now_s(), "journal_degraded", e.what());
    fleet_mark("coord.journal_degraded", 0.0);
    std::fprintf(stderr,
                 "greenhpc: shard journal degraded to journal-less "
                 "operation: %s\n",
                 e.what());
  };

  const auto run_in_process = [&] {
    if (ledger.all_folded()) return;
    util::ThreadPool& pool =
        opts_.pool != nullptr ? *opts_.pool : util::ThreadPool::global();
    std::unique_ptr<SweepJournal> shard;
    if (!opts_.journal_dir.empty()) {
      try {
        shard = std::make_unique<SweepJournal>(SweepJournal::create_shard(
            opts_.journal_dir, SweepJournal::shard_file_name(gen, "coord"),
            config, n_cases, block_size));
      } catch (const JournalIoError& e) {
        journal_degrade(e);
      }
    }
    const double kNoBackoff = std::numeric_limits<double>::infinity();
    BlockLedger::Lease ls;
    while (ledger.lease(-1, kNoBackoff, ls)) {
      SweepBlock b;
      b.start = ls.start;
      b.cases.resize(ls.count);
      pool.parallel_for_chunked(b.cases.size(), 1, [&](std::size_t i) {
        b.cases[i] = runner.run_case(ls.start + i);
      });
      b.digest_after = sweep_block_digest(b);
      // Probe results are not shard-journaled: they are single-case and
      // a restarted coordinator re-probes from its own evidence.
      if (shard != nullptr && !ls.probe) {
        try {
          shard->append(b);
        } catch (const JournalIoError& e) {
          journal_degrade(e);
          shard.reset();
        }
      }
      ledger.deliver(b);
      drain_folds();
    }
  };

  if (opts_.workers <= 0 || ledger.all_folded()) {
    run_in_process();
    finalize_containment();
    finalize_fleet();
    return result;
  }

  GREENHPC_REQUIRE(!opts_.worker_argv.empty(),
                   "distributed sweep needs the worker exec argv");

  // One WorkerConn per SLOT, not per spawn: a respawned worker reuses
  // its slot (and its stats row), with a fresh incarnation and its own
  // shard file so a dead incarnation's journaled evidence survives.
  std::vector<WorkerConn> conns(static_cast<std::size_t>(opts_.workers));
  stats_.workers.assign(static_cast<std::size_t>(opts_.workers), WorkerInfo{});

  const auto alive_count = [&] {
    std::size_t n = 0;
    for (const WorkerConn& c : conns) n += c.alive ? 1 : 0;
    return n;
  };

  const auto declare_dead = [&](WorkerConn& c, const char* why) {
    if (!c.alive) return;
    c.alive = false;
    c.has_lease = false;
    const long pid = static_cast<long>(c.proc.pid());
    c.proc.kill_hard();
    const std::size_t orphaned = ledger.orphan_worker(c.id, clock.now_s());
    // A probe death can be the final accusation that quarantines a case
    // and completes its block — the fold frontier may be movable NOW.
    drain_folds();
    stats_.blocks_reassigned += orphaned;
    for (std::size_t i = 0; i < orphaned; ++i) reassigned_counter.add();
    ++stats_.worker_deaths;
    deaths_counter.add();
    WorkerInfo& wi = stats_.workers[static_cast<std::size_t>(c.id)];
    wi.died = true;
    wi.busy = false;
    alive_gauge.set(static_cast<double>(alive_count()));
    fleet_mark("coord.worker_dead", static_cast<double>(c.id));
    if (orphaned > 0) {
      fleet_mark("coord.reassign", static_cast<double>(orphaned));
    }
    c.fr.record(clock.now_s(), "dead",
                std::string(why) + "; orphaned=" + std::to_string(orphaned));
    // Worker death is THE postmortem trigger: dump the last protocol
    // exchange this connection saw.
    wi.postmortem_path =
        dump_recorder(c.fr, "postmortem-w" + std::to_string(c.id) + "-pid" +
                                std::to_string(pid) + ".jsonl");
    if (c.rtt != nullptr) {
      wi.rtt_p50_s = c.rtt->percentile(0.5);
      wi.rtt_p99_s = c.rtt->percentile(0.99);
    }
    std::fprintf(stderr,
                 "greenhpc: sweep worker %d (pid %ld) dead: %s; %zu block(s) "
                 "returned for reassignment\n",
                 c.id, pid, why, orphaned);
  };

  /// (Re)spawn slot `k` at incarnation `inc`. False = the spawn failed
  /// (a dead worker, not a dead sweep).
  const auto spawn_worker = [&](int k, int inc) -> bool {
    std::vector<std::string> argv = opts_.worker_argv;
    if (!opts_.journal_dir.empty()) {
      // Incarnation-tagged shard name: a respawn must never truncate the
      // shard its dead predecessor already made durable.
      const std::string tag =
          "w" + std::to_string(k) +
          (inc > 0 ? "r" + std::to_string(inc) : std::string());
      argv.push_back("--shard-path");
      argv.push_back(opts_.journal_dir + "/" +
                     SweepJournal::shard_file_name(gen, tag));
    }
    argv.push_back("--block");
    argv.push_back(std::to_string(block_size));
    if (!opts_.ship_stats) argv.push_back("--no-ship-stats");
    if (fleet != nullptr) argv.push_back("--ship-trace");
    if (opts_.worker_extra_args) {
      for (std::string& a : opts_.worker_extra_args(k, inc)) {
        argv.push_back(std::move(a));
      }
    }
    WorkerConn c;
    c.id = k;
    c.incarnation = inc;
    try {
      c.proc = util::Subprocess::spawn(argv);
    } catch (const std::exception& e) {
      stats_.workers[static_cast<std::size_t>(k)].died = true;
      ++stats_.worker_deaths;
      deaths_counter.add();
      std::fprintf(stderr, "greenhpc: cannot spawn sweep worker %d: %s\n", k,
                   e.what());
      c.alive = false;
      conns[static_cast<std::size_t>(k)] = std::move(c);
      return false;
    }
    const long wpid = static_cast<long>(c.proc.pid());
    WorkerInfo& wi = stats_.workers[static_cast<std::size_t>(k)];
    wi.pid = wpid;
    wi.died = false;
    wi.ready = false;
    wi.busy = false;
    c.proc.set_stdout_nonblocking();
    c.channel = std::make_unique<util::LineChannel>(c.proc.stdout_fd());
    c.liveness = util::Deadline(clock.now_s(), opts_.hello_timeout_s);
    c.fr = obs::FlightRecorder(opts_.flight_recorder_events);
    c.rtt = std::make_unique<obs::Histogram>(kRttBounds);
    if (fleet != nullptr) {
      c.lane = fleet->add_lane(
          wpid, "sweep worker " + std::to_string(k) +
                    (inc > 0 ? " (respawn " + std::to_string(inc) + ")"
                             : std::string()));
    }
    c.fr.record(clock.now_s(), "spawn",
                "pid=" + std::to_string(wpid) + " inc=" + std::to_string(inc));
    fleet_mark("coord.spawn", static_cast<double>(k));
    conns[static_cast<std::size_t>(k)] = std::move(c);
    return true;
  };

  for (int k = 0; k < opts_.workers; ++k) {
    conns[static_cast<std::size_t>(k)].id = k;
    conns[static_cast<std::size_t>(k)].alive = false;
    spawn_worker(k, 0);
  }
  alive_gauge.set(static_cast<double>(alive_count()));

  // Returns false when the worker must be declared dead (protocol
  // violation, unfoldable record). Throws only on config skew — a worker
  // computing a DIFFERENT grid is an operator error no reassignment can
  // fix, so it fails the sweep loudly.
  const auto handle_line = [&](WorkerConn& c, const std::string& line) -> bool {
    Message m = parse_message(line);
    WorkerInfo& wi = stats_.workers[static_cast<std::size_t>(c.id)];
    switch (m.kind) {
      case MsgKind::Hello:
        GREENHPC_REQUIRE(
            m.config_digest == config && m.cases == n_cases &&
                m.block_size == block_size,
            "sweep worker disagrees about the grid (config/case-count/block "
            "skew) — refusing to fold its results");
        c.hello_ok = true;
        wi.ready = true;
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        c.fr.record(clock.now_s(), "hello", "pid=" + std::to_string(m.pid));
        fleet_mark("coord.hello", static_cast<double>(c.id));
        return true;
      case MsgKind::Heartbeat:
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        c.fr.record(clock.now_s(), "hb");
        return true;
      case MsgKind::Block: {
        BlockLedger::Deliver d;
        try {
          d = ledger.deliver(m.block);
        } catch (const std::exception&) {
          return false;  // structurally wrong record: the worker is broken
        }
        if (d == BlockLedger::Deliver::Duplicate) {
          ++stats_.duplicate_block_records;
          dup_counter.add();
        } else {
          ++wi.blocks;
        }
        c.fr.record(clock.now_s(), "block",
                    "start=" + std::to_string(m.block.start) +
                        " count=" + std::to_string(m.block.cases.size()) +
                        (d == BlockLedger::Deliver::Duplicate ? " dup" : ""));
        fleet_mark("coord.block_recv", static_cast<double>(m.block.start));
        if (c.has_lease && m.block.start == c.lease_start) {
          c.has_lease = false;
          wi.busy = false;
          if (fleet != nullptr) {
            // Synthesize the assign->completion window as a span on the
            // control-plane lane, one thread row per worker.
            obs::RemoteTraceEvent span;
            span.name = "coord.lease";
            span.cat = "fleet";
            span.phase = 'X';
            span.tid = c.id;
            span.ts_ns = c.lease_grant_ns;
            const std::uint64_t now_ns = obs::Tracer::now_ns();
            span.dur_ns =
                now_ns > c.lease_grant_ns ? now_ns - c.lease_grant_ns : 0;
            fleet->add_event(coord_lane, std::move(span));
          }
        }
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        drain_folds();
        return true;
      }
      case MsgKind::Stat: {
        const std::uint64_t local_now = obs::Tracer::now_ns();
        if (!c.obs_aligned) {
          // First obs line = the clock anchor (sent right after hello,
          // when the pipe is empty, so the pairing latency is minimal).
          c.obs_aligned = true;
          c.obs_offset_ns = static_cast<std::int64_t>(local_now) -
                            static_cast<std::int64_t>(m.remote_now_ns);
        } else {
          // Receipt lag relative to the anchor: how much later than the
          // anchor's pipe latency this line landed — the round-trip
          // proxy the fleet RTT histograms aggregate.
          const std::int64_t mapped =
              static_cast<std::int64_t>(m.remote_now_ns) + c.obs_offset_ns;
          const double rtt_s = std::max(
              0.0,
              static_cast<double>(static_cast<std::int64_t>(local_now) - mapped) *
                  1e-9);
          c.rtt->record(rtt_s);
          fleet_rtt.record(rtt_s);
          rtt_registry_hist.record(rtt_s);
        }
        if (fleet != nullptr && c.lane >= 0) {
          fleet->align(c.lane, m.remote_now_ns, local_now);
        }
        if (const double* g = m.stats.find_gauge("sweep.cases_per_s")) {
          wi.cases_per_s = *g;
          double fleet_rate = 0.0;
          for (const WorkerInfo& w : stats_.workers) fleet_rate += w.cases_per_s;
          rate_gauge.set(fleet_rate);
        }
        if (const std::uint64_t* v = m.stats.find_counter("sweep.case_retries")) {
          wi.case_retries = *v;
        }
        if (const std::uint64_t* v =
                m.stats.find_counter("sweep.cases_quarantined")) {
          wi.cases_quarantined = *v;
        }
        if (const obs::HistogramSnapshot* h =
                m.stats.find_histogram("sweep.block_seconds")) {
          c.block_hist = *h;
        }
        ++wi.stat_batches;
        ++stats_.stat_batches;
        c.fr.record(clock.now_s(), "stat",
                    "counters=" + std::to_string(m.stats.counters.size()) +
                        " gauges=" + std::to_string(m.stats.gauges.size()) +
                        " hists=" + std::to_string(m.stats.histograms.size()));
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        return true;
      }
      case MsgKind::Trace: {
        const std::uint64_t local_now = obs::Tracer::now_ns();
        if (fleet != nullptr && c.lane >= 0) {
          fleet->align(c.lane, m.remote_now_ns, local_now);
          fleet->add_dropped(c.lane, m.trace_dropped);
          fleet->add_events(c.lane, m.trace_events);
        }
        ++wi.trace_batches;
        wi.trace_events += m.trace_events.size();
        ++stats_.trace_batches;
        stats_.trace_events += m.trace_events.size();
        c.fr.record(clock.now_s(), "trace",
                    "events=" + std::to_string(m.trace_events.size()) +
                        " dropped=" + std::to_string(m.trace_dropped));
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        return true;
      }
      case MsgKind::ObsRejected:
        // Telemetry must never kill the worker that ships it: drop the
        // line, count it, and snapshot the flight recorder — a mangled
        // obs line IS a postmortem trigger, just not a fatal one.
        ++stats_.obs_lines_rejected;
        obs_rejected_counter.add();
        c.fr.record(clock.now_s(), "obs_rejected", line.substr(0, 96));
        wi.postmortem_path = dump_recorder(
            c.fr, "postmortem-w" + std::to_string(c.id) + "-pid" +
                      std::to_string(static_cast<long>(c.proc.pid())) +
                      ".jsonl");
        return true;
      default:
        return false;  // malformed or a coordinator-only verb
    }
  };

  int respawns_used = 0;
  const auto can_respawn = [&] {
    return opts_.max_respawns > 0 && respawns_used < opts_.max_respawns;
  };

  while (!ledger.all_folded() && (alive_count() > 0 || can_respawn())) {
    // Fleet survival: refill dead slots from the respawn budget before
    // handing out work. Fresh incarnations get their own shard files
    // (and, via worker_extra_args, their own fault schedules).
    for (int k = 0; k < opts_.workers && can_respawn(); ++k) {
      WorkerConn& c = conns[static_cast<std::size_t>(k)];
      if (c.alive) continue;
      ++respawns_used;
      if (spawn_worker(k, c.incarnation + 1)) {
        ++stats_.workers_respawned;
        respawned_counter.add();
        fleet_mark("coord.respawn", static_cast<double>(k));
      }
    }
    alive_gauge.set(static_cast<double>(alive_count()));

    // Hand work to every idle, handshaken worker.
    for (WorkerConn& c : conns) {
      if (!c.alive || !c.hello_ok || c.has_lease) continue;
      BlockLedger::Lease ls;
      if (!ledger.lease(c.id, clock.now_s(), ls)) break;
      if (!util::write_all(c.proc.stdin_fd(),
                           encode_assign(ls.start, ls.count) + "\n")) {
        declare_dead(c, "assign write failed");
        continue;
      }
      c.has_lease = true;
      c.lease_start = ls.start;
      c.lease_deadline = util::Deadline(clock.now_s(), opts_.lease_timeout_s);
      if (opts_.progress_timeout_s > 0.0) {
        c.progress_deadline =
            util::Deadline(clock.now_s(), opts_.progress_timeout_s);
      }
      c.lease_grant_ns = obs::Tracer::now_ns();
      stats_.workers[static_cast<std::size_t>(c.id)].busy = true;
      c.fr.record(clock.now_s(), "assign",
                  "start=" + std::to_string(ls.start) +
                      " count=" + std::to_string(ls.count) +
                      (ls.probe ? " probe" : ""));
      fleet_mark("coord.assign", static_cast<double>(ls.start));
    }

    // Sleep until the earliest of: any pipe readable, the next liveness
    // or lease deadline, the next backoff expiry. Capped so a lost
    // wakeup can only cost one beat.
    const double now = clock.now_s();
    double timeout = 0.25;
    for (const WorkerConn& c : conns) {
      if (!c.alive) continue;
      timeout = std::min(timeout, c.liveness.remaining_s(now));
      if (c.has_lease) {
        timeout = std::min(timeout, c.lease_deadline.remaining_s(now));
        if (opts_.progress_timeout_s > 0.0) {
          timeout = std::min(timeout, c.progress_deadline.remaining_s(now));
        }
      }
    }
    const double next_ready = ledger.next_ready_s();
    if (next_ready < std::numeric_limits<double>::infinity()) {
      timeout = std::min(timeout, std::max(0.0, next_ready - now));
    }
    timeout = std::max(timeout, 0.005);

    std::vector<int> fds;
    fds.reserve(conns.size());
    for (const WorkerConn& c : conns) {
      fds.push_back(c.alive ? c.proc.stdout_fd() : -1);
    }
    for (const std::size_t idx : util::poll_readable(fds, timeout)) {
      WorkerConn& c = conns[idx];
      if (!c.alive) continue;
      bool dead = false;
      for (;;) {
        const util::LineChannel::Fill f = c.channel->fill();
        std::string line;
        while (c.channel->next_line(line)) {
          if (!handle_line(c, line)) {
            dead = true;
            break;
          }
        }
        if (dead || f == util::LineChannel::Fill::WouldBlock) break;
        if (f == util::LineChannel::Fill::Eof ||
            f == util::LineChannel::Fill::Error) {
          dead = true;
          break;
        }
      }
      if (dead) declare_dead(c, "pipe closed or protocol violation");
    }

    // Failure detectors: hello deadline, heartbeat misses, hung leases.
    const double tick = clock.now_s();
    double max_lease_age_s = 0.0;
    for (WorkerConn& c : conns) {
      if (!c.alive) continue;
      if (!c.hello_ok) {
        if (c.liveness.expired(tick)) declare_dead(c, "no hello before deadline");
        continue;
      }
      if (c.liveness.expired(tick)) {
        ++c.misses;
        ++stats_.heartbeat_misses;
        ++stats_.workers[static_cast<std::size_t>(c.id)].heartbeat_misses;
        hb_miss_counter.add();
        c.fr.record(tick, "hb_miss", "misses=" + std::to_string(c.misses));
        fleet_mark("coord.hb_miss", static_cast<double>(c.id));
        if (c.misses >= opts_.heartbeat_miss_limit) {
          declare_dead(c, "heartbeat timeout");
          continue;
        }
        c.liveness.extend(tick, opts_.heartbeat_timeout_s);
      }
      if (c.has_lease) {
        const double age_s =
            opts_.lease_timeout_s - c.lease_deadline.remaining_s(tick);
        max_lease_age_s = std::max(max_lease_age_s, age_s);
        // The wedged trap fires FIRST and separately from the heartbeat
        // detector: a worker stuck in a busy loop (or an injected stall)
        // keeps heartbeating from its heartbeat thread, so liveness
        // alone would wait out the full lease timeout.
        if (opts_.progress_timeout_s > 0.0 &&
            c.progress_deadline.expired(tick)) {
          ++stats_.workers_evicted_wedged;
          evicted_counter.add();
          c.fr.record(tick, "wedged",
                      "start=" + std::to_string(c.lease_start) +
                          " no progress for " +
                          std::to_string(opts_.progress_timeout_s) + "s");
          fleet_mark("coord.evict_wedged", static_cast<double>(c.id));
          declare_dead(c, "wedged: heartbeating but no block progress");
          continue;
        }
        if (c.lease_deadline.expired(tick)) {
          declare_dead(c, "lease timeout (hung block)");
        }
      }
    }
    lease_age_gauge.set(max_lease_age_s);
    stats_.max_lease_age_s = std::max(stats_.max_lease_age_s, max_lease_age_s);
  }

  // Graceful shutdown: shutdown verb + stdin EOF, a short grace window,
  // then SIGKILL. The destructorial kill is the backstop either way.
  for (WorkerConn& c : conns) {
    if (!c.alive) continue;
    util::write_all(c.proc.stdin_fd(), encode_shutdown() + "\n");
    c.proc.close_stdin();
    c.fr.record(clock.now_s(), "shutdown_sent");
    fleet_mark("coord.shutdown", static_cast<double>(c.id));
  }
  // Drain the farewell batches: a worker ships its final stat/trace
  // lines AFTER its last block record, i.e. after the fold frontier
  // closed and the event loop exited — without this read-to-EOF pass a
  // one-block worker's whole lane would be lost. Bounded by the same
  // grace the process wait uses; late blocks are duplicates by now and
  // handle_line absorbs them.
  {
    const double drain_end = clock.now_s() + 2.0;
    for (WorkerConn& c : conns) {
      if (!c.alive) continue;
      bool open = true;
      while (open) {
        const util::LineChannel::Fill f = c.channel->fill();
        std::string line;
        while (c.channel->next_line(line)) {
          if (!handle_line(c, line)) {
            open = false;
            break;
          }
        }
        if (f == util::LineChannel::Fill::Eof ||
            f == util::LineChannel::Fill::Error) {
          break;
        }
        if (f == util::LineChannel::Fill::WouldBlock) {
          const double left = drain_end - clock.now_s();
          if (left <= 0.0) break;
          (void)util::poll_readable({c.proc.stdout_fd()}, std::min(left, 0.05));
        }
      }
    }
  }
  const double grace_end = clock.now_s() + 2.0;
  for (WorkerConn& c : conns) {
    if (!c.alive) continue;
    while (c.proc.running() && clock.now_s() < grace_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (c.proc.running()) {
      c.proc.kill_hard();
    } else {
      c.proc.wait();
    }
  }
  alive_gauge.set(0.0);

  // Rollup finalization: survivors get their RTT percentiles here (the
  // dead already got theirs in declare_dead), and the fleet-wide
  // percentiles come from this run's histogram, not the process-global
  // registry one (which accumulates across runs).
  obs::HistogramSnapshot merged_block_hist;
  for (WorkerConn& c : conns) {
    WorkerInfo& wi = stats_.workers[static_cast<std::size_t>(c.id)];
    if (!wi.died) {
      wi.rtt_p50_s = c.rtt->percentile(0.5);
      wi.rtt_p99_s = c.rtt->percentile(0.99);
    }
    if (c.block_hist.counts.empty()) continue;
    if (merged_block_hist.counts.empty()) {
      merged_block_hist = c.block_hist;
    } else if (merged_block_hist.bounds == c.block_hist.bounds) {
      for (std::size_t i = 0; i < merged_block_hist.counts.size(); ++i) {
        merged_block_hist.counts[i] += c.block_hist.counts[i];
      }
      merged_block_hist.sum += c.block_hist.sum;
    }
  }
  if (merged_block_hist.total() > 0) {
    stats_.block_seconds_p50_s = merged_block_hist.percentile(0.5);
    stats_.block_seconds_p99_s = merged_block_hist.percentile(0.99);
  }
  stats_.rtt_p50_s = fleet_rtt.percentile(0.5);
  stats_.rtt_p99_s = fleet_rtt.percentile(0.99);

  if (!ledger.all_folded()) {
    // Graceful degradation: every worker is gone, work remains. Slower
    // is acceptable; wrong or empty-handed is not.
    stats_.degraded_in_process = true;
    coord_fr.record(clock.now_s(), "degrade",
                    std::to_string(ledger.pending() + ledger.leased()) +
                        " blocks to in-process fallback");
    fleet_mark("coord.degrade",
               static_cast<double>(ledger.pending() + ledger.leased()));
    std::fprintf(stderr,
                 "greenhpc: all %d sweep worker(s) died; running the remaining "
                 "%zu block(s) in-process\n",
                 opts_.workers, ledger.pending() + ledger.leased());
    run_in_process();
  }
  finalize_containment();
  finalize_fleet();
  return result;
}

}  // namespace greenhpc::core
