#include "core/sweep_coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/sweep_journal.hpp"
#include "core/sweep_protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/subprocess.hpp"

namespace greenhpc::core {

// ---------------------------------------------------------------------------
// BlockLedger

BlockLedger::BlockLedger(std::size_t cases, std::size_t block)
    : BlockLedger(cases, block, Options()) {}

BlockLedger::BlockLedger(std::size_t cases, std::size_t block, Options opts)
    : cases_(cases), block_(block), opts_(opts) {
  GREENHPC_REQUIRE(block_ > 0, "ledger block size must be positive");
  const std::size_t n = cases_ == 0 ? 0 : (cases_ + block_ - 1) / block_;
  states_.resize(n);
  pending_ = n;
}

std::size_t BlockLedger::size_of(std::size_t index) const {
  return std::min(block_, cases_ - index * block_);
}

bool BlockLedger::lease(int worker, double now_s, std::size_t& start_out) {
  // Lowest-start-first keeps the fold frontier moving: the block gating
  // next_to_fold() is always the most urgent lease.
  for (std::size_t i = next_fold_; i < states_.size(); ++i) {
    Entry& e = states_[i];
    if (e.state != State::Pending) continue;
    if (now_s < e.ready_at_s) continue;  // still in reassignment backoff
    e.state = State::Leased;
    e.worker = worker;
    --pending_;
    ++leased_;
    start_out = i * block_;
    return true;
  }
  return false;
}

std::size_t BlockLedger::orphan_worker(int worker, double now_s) {
  std::size_t orphaned = 0;
  for (Entry& e : states_) {
    if (e.state != State::Leased || e.worker != worker) continue;
    e.state = State::Pending;
    e.worker = -1;
    const double backoff =
        std::min(opts_.backoff_cap_s,
                 opts_.backoff_base_s * std::pow(2.0, e.orphanings));
    ++e.orphanings;
    e.ready_at_s = now_s + backoff;
    --leased_;
    ++pending_;
    ++orphaned;
  }
  return orphaned;
}

BlockLedger::Deliver BlockLedger::deliver(const SweepBlock& rec) {
  GREENHPC_REQUIRE(rec.start % block_ == 0 && rec.start < cases_,
                   "block record is not aligned to the sweep's block grid");
  const std::size_t index = rec.start / block_;
  GREENHPC_REQUIRE(rec.cases.size() == size_of(index),
                   "block record has the wrong case count");
  GREENHPC_REQUIRE(sweep_block_digest(rec) == rec.digest_after,
                   "block record digest does not re-fold");
  Entry& e = states_[index];
  if (e.state == State::Ready || e.state == State::Folded) {
    // At-least-once delivery: honest duplicates (same bits) are normal;
    // the same block with different bits is nondeterminism or forgery
    // and folding either copy could fabricate results.
    GREENHPC_REQUIRE(e.digest == rec.digest_after,
                     "conflicting duplicate record for block " +
                         std::to_string(rec.start) +
                         " — nondeterminism or corruption");
    ++duplicates_;
    return Deliver::Duplicate;
  }
  if (e.state == State::Leased) {
    --leased_;
  } else {
    --pending_;
  }
  e.state = State::Ready;
  e.worker = -1;
  e.digest = rec.digest_after;
  e.record = rec;
  return Deliver::Accepted;
}

bool BlockLedger::next_to_fold(SweepBlock& out) {
  if (next_fold_ >= states_.size()) return false;
  Entry& e = states_[next_fold_];
  if (e.state != State::Ready) return false;
  out = std::move(e.record);
  e.record = SweepBlock{};
  e.state = State::Folded;
  ++folded_blocks_;
  ++next_fold_;
  return true;
}

double BlockLedger::next_ready_s() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Entry& e : states_) {
    if (e.state == State::Pending) best = std::min(best, e.ready_at_s);
  }
  return best;
}

// ---------------------------------------------------------------------------
// SweepCoordinator

namespace {

/// Coordinator-side view of one worker process.
struct WorkerConn {
  int id = -1;  ///< stable worker index (ledger lease owner, stats slot)
  util::Subprocess proc;
  std::unique_ptr<util::LineChannel> channel;
  bool alive = true;
  bool hello_ok = false;
  int misses = 0;                 ///< consecutive heartbeat misses
  util::Deadline liveness;        ///< hello deadline, then heartbeat deadline
  bool has_lease = false;
  std::size_t lease_start = 0;
  util::Deadline lease_deadline;  ///< hung-worker trap
};

}  // namespace

SweepCoordinator::SweepCoordinator(Options opts) : opts_(std::move(opts)) {
  if (opts_.block == 0) opts_.block = 256;
}

SweepResult SweepCoordinator::run(const SweepGrid& grid) {
  GREENHPC_TRACE_SPAN("sweep.coordinator");
  static obs::Counter& deaths_counter =
      obs::Registry::global().counter("sweep.worker_deaths");
  static obs::Counter& reassigned_counter =
      obs::Registry::global().counter("sweep.blocks_reassigned");
  static obs::Counter& hb_miss_counter =
      obs::Registry::global().counter("sweep.heartbeat_misses");
  static obs::Counter& dup_counter =
      obs::Registry::global().counter("sweep.duplicate_block_records");
  static obs::Gauge& alive_gauge =
      obs::Registry::global().gauge("sweep.workers_alive");

  stats_ = Stats{};
  const SweepCaseRunner runner(grid, opts_.case_opts);
  const std::size_t n_cases = runner.case_count();
  const std::uint64_t config = grid.config_digest();
  SweepResult result;
  runner.init_result(result);

  // Resume: seed the ledger with every block the surviving shard
  // journals prove complete, and bump the shard generation so this run's
  // files never clobber the evidence it just recovered from.
  std::size_t block_size = opts_.block;
  int gen = 0;
  std::vector<SweepBlock> seeded;
  if (!opts_.journal_dir.empty() && opts_.resume) {
    SweepJournal::ShardLoad load =
        SweepJournal::load_shards(opts_.journal_dir, config, n_cases);
    if (load.block != 0) block_size = load.block;
    gen = load.max_gen + 1;
    seeded = std::move(load.blocks);
  }
  stats_.shard_generation = gen;

  BlockLedger::Options lopts;
  lopts.backoff_base_s = opts_.lease_backoff_base_s;
  lopts.backoff_cap_s = opts_.lease_backoff_cap_s;
  BlockLedger ledger(n_cases, block_size, lopts);

  std::size_t folded_cases = 0;
  const auto drain_folds = [&] {
    // The determinism gate: blocks fold strictly in flat case order, no
    // matter which worker finished first, so digest and failed_cases are
    // those of the serial engine.
    SweepBlock b;
    while (ledger.next_to_fold(b)) {
      for (std::size_t i = 0; i < b.cases.size(); ++i) {
        runner.fold(result, b.start + i, b.cases[i]);
      }
      folded_cases += b.cases.size();
      if (opts_.progress) opts_.progress(folded_cases, n_cases);
    }
  };

  for (const SweepBlock& b : seeded) {
    if (ledger.deliver(b) == BlockLedger::Deliver::Accepted) {
      ++stats_.replayed_blocks;
      result.replayed_cases += b.cases.size();
    }
  }
  seeded.clear();
  drain_folds();

  // In-process execution: the workers==0 configuration AND the
  // all-workers-dead degradation path. Journals its blocks into its own
  // shard so coordinator crashes stay recoverable on this path too.
  const auto run_in_process = [&] {
    if (ledger.all_folded()) return;
    util::ThreadPool& pool =
        opts_.pool != nullptr ? *opts_.pool : util::ThreadPool::global();
    std::unique_ptr<SweepJournal> shard;
    if (!opts_.journal_dir.empty()) {
      shard = std::make_unique<SweepJournal>(SweepJournal::create_shard(
          opts_.journal_dir, SweepJournal::shard_file_name(gen, "coord"),
          config, n_cases, block_size));
    }
    const double kNoBackoff = std::numeric_limits<double>::infinity();
    std::size_t start = 0;
    while (ledger.lease(-1, kNoBackoff, start)) {
      SweepBlock b;
      b.start = start;
      b.cases.resize(std::min(block_size, n_cases - start));
      pool.parallel_for_chunked(b.cases.size(), 1, [&](std::size_t i) {
        b.cases[i] = runner.run_case(start + i);
      });
      b.digest_after = sweep_block_digest(b);
      if (shard != nullptr) shard->append(b);
      ledger.deliver(b);
      drain_folds();
    }
  };

  if (opts_.workers <= 0 || ledger.all_folded()) {
    run_in_process();
    return result;
  }

  GREENHPC_REQUIRE(!opts_.worker_argv.empty(),
                   "distributed sweep needs the worker exec argv");

  util::MonotoneClock clock;
  std::vector<WorkerConn> conns;
  conns.reserve(static_cast<std::size_t>(opts_.workers));
  stats_.workers.assign(static_cast<std::size_t>(opts_.workers), WorkerInfo{});

  const auto alive_count = [&] {
    std::size_t n = 0;
    for (const WorkerConn& c : conns) n += c.alive ? 1 : 0;
    return n;
  };

  const auto declare_dead = [&](WorkerConn& c, const char* why) {
    if (!c.alive) return;
    c.alive = false;
    c.has_lease = false;
    const long pid = static_cast<long>(c.proc.pid());
    c.proc.kill_hard();
    const std::size_t orphaned = ledger.orphan_worker(c.id, clock.now_s());
    stats_.blocks_reassigned += orphaned;
    for (std::size_t i = 0; i < orphaned; ++i) reassigned_counter.add();
    ++stats_.worker_deaths;
    deaths_counter.add();
    stats_.workers[static_cast<std::size_t>(c.id)].died = true;
    alive_gauge.set(static_cast<double>(alive_count()));
    std::fprintf(stderr,
                 "greenhpc: sweep worker %d (pid %ld) dead: %s; %zu block(s) "
                 "returned for reassignment\n",
                 c.id, pid, why, orphaned);
  };

  for (int k = 0; k < opts_.workers; ++k) {
    std::vector<std::string> argv = opts_.worker_argv;
    if (!opts_.journal_dir.empty()) {
      argv.push_back("--shard-path");
      argv.push_back(opts_.journal_dir + "/" +
                     SweepJournal::shard_file_name(gen, "w" + std::to_string(k)));
    }
    argv.push_back("--block");
    argv.push_back(std::to_string(block_size));
    WorkerConn c;
    c.id = k;
    try {
      c.proc = util::Subprocess::spawn(argv);
    } catch (const std::exception& e) {
      // A spawn failure is a dead worker, not a dead sweep.
      stats_.workers[static_cast<std::size_t>(k)].died = true;
      ++stats_.worker_deaths;
      deaths_counter.add();
      std::fprintf(stderr, "greenhpc: cannot spawn sweep worker %d: %s\n", k,
                   e.what());
      continue;
    }
    stats_.workers[static_cast<std::size_t>(k)].pid =
        static_cast<long>(c.proc.pid());
    c.proc.set_stdout_nonblocking();
    c.channel = std::make_unique<util::LineChannel>(c.proc.stdout_fd());
    c.liveness = util::Deadline(clock.now_s(), opts_.hello_timeout_s);
    conns.push_back(std::move(c));
  }
  alive_gauge.set(static_cast<double>(alive_count()));

  // Returns false when the worker must be declared dead (protocol
  // violation, unfoldable record). Throws only on config skew — a worker
  // computing a DIFFERENT grid is an operator error no reassignment can
  // fix, so it fails the sweep loudly.
  const auto handle_line = [&](WorkerConn& c, const std::string& line) -> bool {
    const Message m = parse_message(line);
    switch (m.kind) {
      case MsgKind::Hello:
        GREENHPC_REQUIRE(
            m.config_digest == config && m.cases == n_cases &&
                m.block_size == block_size,
            "sweep worker disagrees about the grid (config/case-count/block "
            "skew) — refusing to fold its results");
        c.hello_ok = true;
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        return true;
      case MsgKind::Heartbeat:
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        return true;
      case MsgKind::Block: {
        BlockLedger::Deliver d;
        try {
          d = ledger.deliver(m.block);
        } catch (const std::exception&) {
          return false;  // structurally wrong record: the worker is broken
        }
        if (d == BlockLedger::Deliver::Duplicate) {
          ++stats_.duplicate_block_records;
          dup_counter.add();
        } else {
          ++stats_.workers[static_cast<std::size_t>(c.id)].blocks;
        }
        if (c.has_lease && m.block.start == c.lease_start) c.has_lease = false;
        c.misses = 0;
        c.liveness.extend(clock.now_s(), opts_.heartbeat_timeout_s);
        drain_folds();
        return true;
      }
      default:
        return false;  // malformed or a coordinator-only verb
    }
  };

  while (!ledger.all_folded() && alive_count() > 0) {
    // Hand work to every idle, handshaken worker.
    for (WorkerConn& c : conns) {
      if (!c.alive || !c.hello_ok || c.has_lease) continue;
      std::size_t start = 0;
      if (!ledger.lease(c.id, clock.now_s(), start)) break;
      const std::size_t count = std::min(block_size, n_cases - start);
      if (!util::write_all(c.proc.stdin_fd(),
                           encode_assign(start, count) + "\n")) {
        declare_dead(c, "assign write failed");
        continue;
      }
      c.has_lease = true;
      c.lease_start = start;
      c.lease_deadline = util::Deadline(clock.now_s(), opts_.lease_timeout_s);
    }

    // Sleep until the earliest of: any pipe readable, the next liveness
    // or lease deadline, the next backoff expiry. Capped so a lost
    // wakeup can only cost one beat.
    const double now = clock.now_s();
    double timeout = 0.25;
    for (const WorkerConn& c : conns) {
      if (!c.alive) continue;
      timeout = std::min(timeout, c.liveness.remaining_s(now));
      if (c.has_lease) {
        timeout = std::min(timeout, c.lease_deadline.remaining_s(now));
      }
    }
    const double next_ready = ledger.next_ready_s();
    if (next_ready < std::numeric_limits<double>::infinity()) {
      timeout = std::min(timeout, std::max(0.0, next_ready - now));
    }
    timeout = std::max(timeout, 0.005);

    std::vector<int> fds;
    fds.reserve(conns.size());
    for (const WorkerConn& c : conns) {
      fds.push_back(c.alive ? c.proc.stdout_fd() : -1);
    }
    for (const std::size_t idx : util::poll_readable(fds, timeout)) {
      WorkerConn& c = conns[idx];
      if (!c.alive) continue;
      bool dead = false;
      for (;;) {
        const util::LineChannel::Fill f = c.channel->fill();
        std::string line;
        while (c.channel->next_line(line)) {
          if (!handle_line(c, line)) {
            dead = true;
            break;
          }
        }
        if (dead || f == util::LineChannel::Fill::WouldBlock) break;
        if (f == util::LineChannel::Fill::Eof ||
            f == util::LineChannel::Fill::Error) {
          dead = true;
          break;
        }
      }
      if (dead) declare_dead(c, "pipe closed or protocol violation");
    }

    // Failure detectors: hello deadline, heartbeat misses, hung leases.
    const double tick = clock.now_s();
    for (WorkerConn& c : conns) {
      if (!c.alive) continue;
      if (!c.hello_ok) {
        if (c.liveness.expired(tick)) declare_dead(c, "no hello before deadline");
        continue;
      }
      if (c.liveness.expired(tick)) {
        ++c.misses;
        ++stats_.heartbeat_misses;
        ++stats_.workers[static_cast<std::size_t>(c.id)].heartbeat_misses;
        hb_miss_counter.add();
        if (c.misses >= opts_.heartbeat_miss_limit) {
          declare_dead(c, "heartbeat timeout");
          continue;
        }
        c.liveness.extend(tick, opts_.heartbeat_timeout_s);
      }
      if (c.has_lease && c.lease_deadline.expired(tick)) {
        declare_dead(c, "lease timeout (hung block)");
      }
    }
  }

  // Graceful shutdown: shutdown verb + stdin EOF, a short grace window,
  // then SIGKILL. The destructorial kill is the backstop either way.
  for (WorkerConn& c : conns) {
    if (!c.alive) continue;
    util::write_all(c.proc.stdin_fd(), encode_shutdown() + "\n");
    c.proc.close_stdin();
  }
  const double grace_end = clock.now_s() + 2.0;
  for (WorkerConn& c : conns) {
    if (!c.alive) continue;
    while (c.proc.running() && clock.now_s() < grace_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (c.proc.running()) {
      c.proc.kill_hard();
    } else {
      c.proc.wait();
    }
  }
  alive_gauge.set(0.0);

  if (!ledger.all_folded()) {
    // Graceful degradation: every worker is gone, work remains. Slower
    // is acceptable; wrong or empty-handed is not.
    stats_.degraded_in_process = true;
    std::fprintf(stderr,
                 "greenhpc: all %d sweep worker(s) died; running the remaining "
                 "%zu block(s) in-process\n",
                 opts_.workers, ledger.pending() + ledger.leased());
    run_in_process();
  }
  return result;
}

}  // namespace greenhpc::core
