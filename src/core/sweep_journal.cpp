#include "core/sweep_journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "core/sweep_wire.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"

namespace greenhpc::core {

namespace {

constexpr const char* kMagic = "greenhpc-sweep-journal";
constexpr const char* kVersion = "v1";
constexpr const char* kShardVersion = "v1-shard";

void mkdir_recursive(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial += dir[i];
      continue;
    }
    if (i < dir.size()) partial += '/';
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
      throw JournalIoError("cannot create journal directory: " + partial +
                           ": " + std::strerror(errno));
    }
  }
}

void append_durable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    throw JournalIoError("cannot open journal for append: " + path + ": " +
                         std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw JournalIoError("journal write failed: " + path + ": " +
                           std::strerror(saved));
    }
    off += static_cast<std::size_t>(n);
  }
  // The WAL property lives or dies here: the block is only "complete"
  // once its record survives a crash.
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw JournalIoError("journal fsync failed: " + path);
}

/// Write the fsynced header of a fresh journal file and fsync the
/// directory entry, so the file survives a crash the moment create()
/// returns.
void write_header_durable(const std::string& dir, const std::string& path,
                          const std::string& version, std::uint64_t config_digest,
                          std::size_t cases, std::size_t block) {
  const std::string header =
      wire::seal(std::string(kMagic) + ' ' + version + ' ' +
                 wire::hex64(config_digest) + ' ' + std::to_string(cases) + ' ' +
                 std::to_string(block)) +
      "\n";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw JournalIoError("cannot create journal file: " + path);
    out << header;
    out.flush();
    if (!out) throw JournalIoError("journal header write failed: " + path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) throw JournalIoError("cannot reopen journal: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw JournalIoError("journal fsync failed: " + path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

struct Header {
  std::string version;
  std::uint64_t config = 0;
  std::size_t cases = 0;
  std::size_t block = 0;
};

/// Parse and validate a journal header line against the grid. The
/// version check is against `version`; everything else throws the same
/// clear InvalidArgument messages for chained and shard files.
Header read_header(const std::string& line, const std::string& path,
                   const std::string& version, std::uint64_t config_digest,
                   std::size_t cases) {
  std::string content;
  GREENHPC_REQUIRE(wire::unseal(line, content),
                   "cannot resume: journal header is corrupt (checksum "
                   "mismatch): " + path);
  const std::vector<std::string> head = wire::tokens_of(content);
  GREENHPC_REQUIRE(head.size() == 5 && head[0] == kMagic,
                   "cannot resume: not a sweep journal: " + path);
  GREENHPC_REQUIRE(head[1] == version,
                   "cannot resume: unsupported journal version '" + head[1] +
                       "' (expected " + version + "): " + path);
  Header h;
  h.version = head[1];
  GREENHPC_REQUIRE(wire::parse_hex64(head[2], h.config) &&
                       wire::parse_size(head[3], h.cases) &&
                       wire::parse_size(head[4], h.block) && h.block > 0,
                   "cannot resume: journal header is malformed: " + path);
  GREENHPC_REQUIRE(h.config == config_digest,
                   "cannot resume: journal was written for a different grid "
                   "(config digest " + wire::hex64(h.config) + " != " +
                       wire::hex64(config_digest) + "): " + path);
  GREENHPC_REQUIRE(h.cases == cases,
                   "cannot resume: journal case count " +
                       std::to_string(h.cases) + " != grid case count " +
                       std::to_string(cases) + ": " + path);
  return h;
}

/// Dropping a torn/corrupt suffix must be loud. One stderr line (file,
/// first dropped line, bytes discarded) plus a metrics counter — silent
/// data loss in a recovery path is how corruption goes unnoticed for
/// months. Returns 1 when a truncation happened so CALLERS can account
/// per run (the obs counter is process-cumulative; RunReports must not
/// bleed counts across back-to-back sweeps in one process).
std::size_t report_truncation(const std::string& path,
                              std::size_t first_bad_line,
                              std::size_t bytes_dropped) {
  if (bytes_dropped == 0) return 0;
  static obs::Counter& truncations =
      obs::Registry::global().counter("sweep.journal_truncations");
  truncations.add();
  std::fprintf(stderr,
               "greenhpc: journal %s: dropped %zu bytes of torn/corrupt "
               "suffix starting at line %zu\n",
               path.c_str(), bytes_dropped, first_bad_line);
  return 1;
}

[[nodiscard]] std::size_t file_size_of(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::size_t>(st.st_size);
}

bool is_shard_file_name(const std::string& name) {
  constexpr const char* kPrefix = "shard-";
  constexpr const char* kSuffix = ".journal";
  if (name.size() < std::strlen(kPrefix) + std::strlen(kSuffix)) return false;
  return name.compare(0, std::strlen(kPrefix), kPrefix) == 0 &&
         name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                      kSuffix) == 0;
}

/// Generation number out of `shard-g<gen>-<tag>.journal`; -1 when the
/// name does not carry one (foreign but tolerated shard names).
int shard_gen_of(const std::string& name) {
  constexpr const char* kGenPrefix = "shard-g";
  if (name.compare(0, std::strlen(kGenPrefix), kGenPrefix) != 0) return -1;
  std::size_t i = std::strlen(kGenPrefix);
  if (i >= name.size() || name[i] < '0' || name[i] > '9') return -1;
  int gen = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    gen = gen * 10 + (name[i] - '0');
    ++i;
  }
  return (i < name.size() && name[i] == '-') ? gen : -1;
}

}  // namespace

std::size_t SweepJournal::resume_point() const {
  if (completed_.empty()) return 0;
  return completed_.back().start + completed_.back().cases.size();
}

std::string SweepJournal::serialize_block_line(const BlockRecord& rec) {
  return wire::serialize_block(rec);
}

bool SweepJournal::parse_block_line(const std::string& line, BlockRecord& rec) {
  std::string content;
  return wire::unseal(line, content) && wire::parse_block(content, rec);
}

bool SweepJournal::exists(const std::string& dir) {
  if (file_size_of(dir + "/" + kFileName) > 0) return true;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (const struct dirent* ent = ::readdir(d)) {
    if (is_shard_file_name(ent->d_name)) {
      found = true;
      break;
    }
  }
  ::closedir(d);
  return found;
}

SweepJournal SweepJournal::create(const std::string& dir,
                                  std::uint64_t config_digest, std::size_t cases,
                                  std::size_t block) {
  GREENHPC_REQUIRE(!dir.empty(), "journal directory must not be empty");
  GREENHPC_REQUIRE(block > 0, "journal block size must be positive");
  mkdir_recursive(dir);
  SweepJournal j;
  j.path_ = dir + "/" + kFileName;
  j.config_digest_ = config_digest;
  j.cases_ = cases;
  j.block_ = block;
  write_header_durable(dir, j.path_, kVersion, config_digest, cases, block);
  return j;
}

SweepJournal SweepJournal::create_shard(const std::string& dir,
                                        const std::string& file_name,
                                        std::uint64_t config_digest,
                                        std::size_t cases, std::size_t block) {
  GREENHPC_REQUIRE(!dir.empty(), "journal directory must not be empty");
  GREENHPC_REQUIRE(block > 0, "journal block size must be positive");
  GREENHPC_REQUIRE(is_shard_file_name(file_name),
                   "shard journal file name must look like shard-*.journal: " +
                       file_name);
  mkdir_recursive(dir);
  SweepJournal j;
  j.path_ = dir + "/" + file_name;
  j.config_digest_ = config_digest;
  j.cases_ = cases;
  j.block_ = block;
  j.shard_ = true;
  write_header_durable(dir, j.path_, kShardVersion, config_digest, cases, block);
  return j;
}

std::string SweepJournal::shard_file_name(int gen, const std::string& tag) {
  return "shard-g" + std::to_string(gen) + "-" + tag + ".journal";
}

SweepJournal SweepJournal::resume(const std::string& dir,
                                  std::uint64_t config_digest, std::size_t cases) {
  SweepJournal j;
  j.path_ = dir + "/" + kFileName;
  std::ifstream in(j.path_, std::ios::binary);
  GREENHPC_REQUIRE(static_cast<bool>(in),
                   "cannot resume: no journal at " + j.path_);

  std::string line;
  GREENHPC_REQUIRE(static_cast<bool>(std::getline(in, line)),
                   "cannot resume: journal is empty: " + j.path_);
  const Header h = read_header(line, j.path_, kVersion, config_digest, cases);
  j.config_digest_ = h.config;
  j.cases_ = h.cases;
  j.block_ = h.block;

  // Load the longest valid prefix of block records. A line that fails its
  // checksum (torn tail, bit flip) or breaks the block chain invalidates
  // itself AND everything after it — later records could depend on state
  // the corrupt one was supposed to establish.
  std::size_t valid_bytes = line.size() + 1;  // header + '\n'
  std::size_t line_no = 1;
  std::string content;
  while (std::getline(in, line)) {
    ++line_no;
    BlockRecord rec;
    if (!wire::unseal(line, content) || !wire::parse_block(content, rec)) break;
    if (rec.start != j.resume_point()) break;  // chain break = corruption
    const std::size_t expect =
        std::min(j.block_, j.cases_ - std::min(j.cases_, rec.start));
    if (rec.cases.empty() || rec.cases.size() != expect) break;
    valid_bytes += line.size() + 1;
    j.completed_.push_back(std::move(rec));
  }
  in.close();
  j.truncations_ +=
      report_truncation(j.path_, line_no, file_size_of(j.path_) - valid_bytes);
  // Truncate away the invalid suffix so appended blocks follow the last
  // valid record, not garbage.
  GREENHPC_REQUIRE(::truncate(j.path_.c_str(),
                              static_cast<off_t>(valid_bytes)) == 0,
                   "cannot truncate journal to its valid prefix: " + j.path_);
  return j;
}

SweepJournal::ShardLoad SweepJournal::load_shards(const std::string& dir,
                                                  std::uint64_t config_digest,
                                                  std::size_t cases) {
  ShardLoad load;
  std::vector<std::string> names;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const struct dirent* ent = ::readdir(d)) {
      if (is_shard_file_name(ent->d_name)) names.emplace_back(ent->d_name);
    }
    ::closedir(d);
  }
  // readdir order is filesystem-dependent; sort so duplicate accounting
  // and error attribution are deterministic.
  std::sort(names.begin(), names.end());

  std::map<std::size_t, std::uint64_t> seen;  // start -> block-local digest
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    load.max_gen = std::max(load.max_gen, shard_gen_of(name));
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // raced away (a worker crashed mid-create): skip
    ++load.files;
    std::string line;
    if (!std::getline(in, line)) {
      // Header never made it to disk — the worker died inside create.
      // An empty shard carries no records; nothing to recover.
      continue;
    }
    const Header h = read_header(line, path, kShardVersion, config_digest, cases);
    if (load.block == 0) load.block = h.block;
    GREENHPC_REQUIRE(h.block == load.block,
                     "cannot resume: shard journals disagree on block size (" +
                         std::to_string(h.block) + " vs " +
                         std::to_string(load.block) + "): " + path);

    std::size_t valid_bytes = line.size() + 1;
    std::size_t line_no = 1;
    std::string content;
    while (std::getline(in, line)) {
      ++line_no;
      BlockRecord rec;
      // Per-file valid-prefix: any torn, corrupt or structurally invalid
      // record drops the rest of THIS file only — other shards are
      // independent evidence and keep their records.
      if (!wire::unseal(line, content) || !wire::parse_block(content, rec)) break;
      if (rec.cases.empty() || rec.start % load.block != 0 ||
          rec.start >= cases ||
          rec.cases.size() != std::min(load.block, cases - rec.start)) {
        break;
      }
      if (sweep_block_digest(rec) != rec.digest_after) break;
      valid_bytes += line.size() + 1;

      const auto it = seen.find(rec.start);
      if (it != seen.end()) {
        // At-least-once delivery makes honest duplicates normal (worker
        // journaled, sent, died; coordinator reassigned). The SAME block
        // with a DIFFERENT digest is something else entirely.
        GREENHPC_REQUIRE(it->second == rec.digest_after,
                         "cannot resume: shards disagree about block " +
                             std::to_string(rec.start) + " (digest " +
                             wire::hex64(it->second) + " vs " +
                             wire::hex64(rec.digest_after) +
                             ") — nondeterminism or corruption: " + path);
        ++load.duplicate_blocks;
        continue;
      }
      seen.emplace(rec.start, rec.digest_after);
      load.blocks.push_back(std::move(rec));
    }
    in.close();
    load.truncations +=
        report_truncation(path, line_no, file_size_of(path) - valid_bytes);
  }
  std::sort(load.blocks.begin(), load.blocks.end(),
            [](const BlockRecord& a, const BlockRecord& b) {
              return a.start < b.start;
            });
  return load;
}

void SweepJournal::append(const BlockRecord& record) {
  GREENHPC_ASSERT(!record.cases.empty(), "journal block must not be empty");
  if (shard_) {
    GREENHPC_ASSERT(record.start % block_ == 0 && record.start < cases_,
                    "shard journal blocks must be block-aligned");
    GREENHPC_ASSERT(record.cases.size() ==
                        std::min(block_, cases_ - record.start),
                    "shard journal block has the wrong case count");
    GREENHPC_ASSERT(sweep_block_digest(record) == record.digest_after,
                    "shard journal block digest does not re-fold");
  } else {
    GREENHPC_ASSERT(record.start == resume_point(),
                    "journal blocks must be appended in case order");
  }
  const std::string line = wire::serialize_block(record) + "\n";
  util::FaultHit hit;
  if (util::FaultInjector::global().consult("journal.append", hit)) {
    switch (hit.action) {
      case util::FaultAction::Fail:
        // ENOSPC/EIO stand-in: the write never reaches the disk.
        throw JournalIoError("injected journal I/O failure: " + path_);
      case util::FaultAction::ShortWrite: {
        // Torn-line stand-in: part of the record lands durably, then the
        // device fails. resume()/load_shards() must drop the torn tail.
        const std::size_t keep =
            std::min<std::size_t>(hit.param, line.size());
        append_durable(path_, line.substr(0, keep));
        throw JournalIoError("injected short journal write (" +
                             std::to_string(keep) + " of " +
                             std::to_string(line.size()) + " bytes): " + path_);
      }
      default:
        break;  // action meant for another site: ignore
    }
  }
  append_durable(path_, line);
  completed_.push_back(record);
}

}  // namespace greenhpc::core
