#include "core/sweep_journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/run_report.hpp"  // obs::fnv1a
#include "util/error.hpp"

namespace greenhpc::core {

namespace {

constexpr const char* kMagic = "greenhpc-sweep-journal";
constexpr const char* kVersion = "v1";

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 16);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_size(const std::string& tok, std::size_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Error texts travel hex-encoded so they stay one whitespace-free token
/// regardless of content; "-" encodes the empty string.
std::string encode_text(const std::string& s) {
  if (s.empty()) return "-";
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out += digits[c >> 4];
    out += digits[c & 0xf];
  }
  return out;
}

bool decode_text(const std::string& tok, std::string& out) {
  out.clear();
  if (tok == "-") return true;
  if (tok.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < tok.size(); i += 2) {
    const int hi = nibble(tok[i]);
    const int lo = nibble(tok[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>((hi << 4) | lo);
  }
  return true;
}

/// Append the ` | <fnv16>` trailer that lets the parser reject torn and
/// bit-flipped lines.
std::string seal_line(const std::string& content) {
  return content + " | " + hex64(obs::fnv1a(content)) + "\n";
}

/// Split a sealed line into content and checksum; false on a malformed or
/// checksum-failing line.
bool unseal_line(const std::string& line, std::string& content) {
  const std::size_t sep = line.rfind(" | ");
  if (sep == std::string::npos) return false;
  content = line.substr(0, sep);
  std::uint64_t sum = 0;
  if (!parse_hex64(line.substr(sep + 3), sum)) return false;
  return sum == obs::fnv1a(content);
}

std::vector<std::string> tokens_of(const std::string& content) {
  std::vector<std::string> toks;
  std::istringstream ss(content);
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

void mkdir_recursive(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial += dir[i];
      continue;
    }
    if (i < dir.size()) partial += '/';
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
      GREENHPC_REQUIRE(false, "cannot create journal directory: " + partial +
                                  ": " + std::strerror(errno));
    }
  }
}

void append_durable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  GREENHPC_REQUIRE(fd >= 0, "cannot open journal for append: " + path);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      GREENHPC_REQUIRE(false, "journal write failed: " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  // The WAL property lives or dies here: the block is only "complete"
  // once its record survives a crash.
  const int rc = ::fsync(fd);
  ::close(fd);
  GREENHPC_REQUIRE(rc == 0, "journal fsync failed: " + path);
}

std::string serialize_block(const SweepJournal::BlockRecord& rec) {
  std::string content = "block " + std::to_string(rec.start) + ' ' +
                        std::to_string(rec.cases.size()) + ' ' +
                        hex64(rec.digest_after);
  for (const SweepJournal::CaseEntry& e : rec.cases) {
    if (e.ok) {
      const double fields[] = {e.metrics.total_carbon_t,
                               e.metrics.total_energy_mwh,
                               e.metrics.mean_wait_h,
                               e.metrics.mean_bounded_slowdown,
                               e.metrics.utilization,
                               e.metrics.green_energy_share,
                               e.metrics.completed};
      content += " c";
      for (const double v : fields) content += ' ' + hex64(double_bits(v));
    } else {
      content += " f " + std::to_string(e.attempts) + ' ' + encode_text(e.error);
    }
  }
  return seal_line(content);
}

/// Parse one sealed block line; false on any structural problem (the
/// caller then discards this line and everything after it).
bool parse_block(const std::string& content, SweepJournal::BlockRecord& rec) {
  const std::vector<std::string> toks = tokens_of(content);
  if (toks.size() < 4 || toks[0] != "block") return false;
  std::size_t count = 0;
  if (!parse_size(toks[1], rec.start) || !parse_size(toks[2], count) ||
      !parse_hex64(toks[3], rec.digest_after)) {
    return false;
  }
  rec.cases.clear();
  std::size_t i = 4;
  while (i < toks.size()) {
    SweepJournal::CaseEntry entry;
    if (toks[i] == "c") {
      if (i + 7 >= toks.size()) return false;
      double* fields[] = {&entry.metrics.total_carbon_t,
                          &entry.metrics.total_energy_mwh,
                          &entry.metrics.mean_wait_h,
                          &entry.metrics.mean_bounded_slowdown,
                          &entry.metrics.utilization,
                          &entry.metrics.green_energy_share,
                          &entry.metrics.completed};
      for (std::size_t k = 0; k < 7; ++k) {
        std::uint64_t bits = 0;
        if (!parse_hex64(toks[i + 1 + k], bits)) return false;
        *fields[k] = bits_double(bits);
      }
      entry.ok = true;
      i += 8;
    } else if (toks[i] == "f") {
      if (i + 2 >= toks.size()) return false;
      std::size_t attempts = 0;
      if (!parse_size(toks[i + 1], attempts)) return false;
      entry.attempts = static_cast<int>(attempts);
      if (!decode_text(toks[i + 2], entry.error)) return false;
      entry.ok = false;
      i += 3;
    } else {
      return false;
    }
    rec.cases.push_back(std::move(entry));
  }
  return rec.cases.size() == count;
}

}  // namespace

std::size_t SweepJournal::resume_point() const {
  if (completed_.empty()) return 0;
  return completed_.back().start + completed_.back().cases.size();
}

SweepJournal SweepJournal::create(const std::string& dir,
                                  std::uint64_t config_digest, std::size_t cases,
                                  std::size_t block) {
  GREENHPC_REQUIRE(!dir.empty(), "journal directory must not be empty");
  GREENHPC_REQUIRE(block > 0, "journal block size must be positive");
  mkdir_recursive(dir);
  SweepJournal j;
  j.path_ = dir + "/" + kFileName;
  j.config_digest_ = config_digest;
  j.cases_ = cases;
  j.block_ = block;
  const std::string header =
      seal_line(std::string(kMagic) + ' ' + kVersion + ' ' + hex64(config_digest) +
                ' ' + std::to_string(cases) + ' ' + std::to_string(block));
  {
    std::ofstream out(j.path_, std::ios::binary | std::ios::trunc);
    GREENHPC_REQUIRE(static_cast<bool>(out),
                     "cannot create journal file: " + j.path_);
    out << header;
    out.flush();
    GREENHPC_REQUIRE(static_cast<bool>(out), "journal header write failed: " + j.path_);
  }
  // Durable header + directory entry before any block is reported done.
  const int fd = ::open(j.path_.c_str(), O_WRONLY);
  GREENHPC_REQUIRE(fd >= 0, "cannot reopen journal: " + j.path_);
  const int rc = ::fsync(fd);
  ::close(fd);
  GREENHPC_REQUIRE(rc == 0, "journal fsync failed: " + j.path_);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return j;
}

SweepJournal SweepJournal::resume(const std::string& dir,
                                  std::uint64_t config_digest, std::size_t cases) {
  SweepJournal j;
  j.path_ = dir + "/" + kFileName;
  std::ifstream in(j.path_, std::ios::binary);
  GREENHPC_REQUIRE(static_cast<bool>(in),
                   "cannot resume: no journal at " + j.path_);

  std::string line;
  GREENHPC_REQUIRE(static_cast<bool>(std::getline(in, line)),
                   "cannot resume: journal is empty: " + j.path_);
  std::string content;
  GREENHPC_REQUIRE(unseal_line(line, content),
                   "cannot resume: journal header is corrupt (checksum "
                   "mismatch): " + j.path_);
  const std::vector<std::string> head = tokens_of(content);
  GREENHPC_REQUIRE(head.size() == 5 && head[0] == kMagic,
                   "cannot resume: not a sweep journal: " + j.path_);
  GREENHPC_REQUIRE(head[1] == kVersion,
                   "cannot resume: unsupported journal version '" + head[1] +
                       "' (expected " + kVersion + ")");
  std::uint64_t recorded_config = 0;
  std::size_t recorded_cases = 0;
  std::size_t recorded_block = 0;
  GREENHPC_REQUIRE(parse_hex64(head[2], recorded_config) &&
                       parse_size(head[3], recorded_cases) &&
                       parse_size(head[4], recorded_block) && recorded_block > 0,
                   "cannot resume: journal header is malformed: " + j.path_);
  GREENHPC_REQUIRE(recorded_config == config_digest,
                   "cannot resume: journal was written for a different grid "
                   "(config digest " + hex64(recorded_config) + " != " +
                       hex64(config_digest) + ")");
  GREENHPC_REQUIRE(recorded_cases == cases,
                   "cannot resume: journal case count " +
                       std::to_string(recorded_cases) + " != grid case count " +
                       std::to_string(cases));
  j.config_digest_ = recorded_config;
  j.cases_ = recorded_cases;
  j.block_ = recorded_block;

  // Load the longest valid prefix of block records. A line that fails its
  // checksum (torn tail, bit flip) or breaks the block chain invalidates
  // itself AND everything after it — later records could depend on state
  // the corrupt one was supposed to establish.
  std::size_t valid_bytes = line.size() + 1;  // header + '\n'
  while (std::getline(in, line)) {
    BlockRecord rec;
    if (!unseal_line(line, content) || !parse_block(content, rec)) break;
    if (rec.start != j.resume_point()) break;  // chain break = corruption
    const std::size_t expect =
        std::min(j.block_, j.cases_ - std::min(j.cases_, rec.start));
    if (rec.cases.empty() || rec.cases.size() != expect) break;
    valid_bytes += line.size() + 1;
    j.completed_.push_back(std::move(rec));
  }
  in.close();
  // Truncate away the invalid suffix so appended blocks follow the last
  // valid record, not garbage.
  GREENHPC_REQUIRE(::truncate(j.path_.c_str(),
                              static_cast<off_t>(valid_bytes)) == 0,
                   "cannot truncate journal to its valid prefix: " + j.path_);
  return j;
}

void SweepJournal::append(const BlockRecord& record) {
  GREENHPC_ASSERT(record.start == resume_point(),
                  "journal blocks must be appended in case order");
  GREENHPC_ASSERT(!record.cases.empty(), "journal block must not be empty");
  append_durable(path_, serialize_block(record));
  completed_.push_back(record);
}

}  // namespace greenhpc::core
