#pragma once
// Whole-site carbon composition: embodied (section 2) + operational
// (section 3) over a system's lifetime, including the renewable-mix rule
// of thumb the paper quotes ("for data centers operating with 70-75%
// renewable energy, the embodied carbon accounts for 50% of the total
// carbon emissions").

#include "carbon/region.hpp"
#include "embodied/act_model.hpp"
#include "embodied/systems.hpp"
#include "util/units.hpp"

namespace greenhpc::core {

/// Electricity mix: a renewable share at a (near-zero) renewable intensity
/// blended with grid power at the residual-grid intensity.
struct RenewableMix {
  double renewable_fraction = 0.0;
  /// Lifecycle intensity of the renewable supply (hydro/wind ~ 15-25).
  CarbonIntensity renewable_ci = grams_per_kwh(15.0);
  /// Intensity of the non-renewable residual grid.
  CarbonIntensity residual_ci = grams_per_kwh(460.0);

  [[nodiscard]] CarbonIntensity effective() const;
};

/// One HPC system operating at a site.
class SiteModel {
 public:
  SiteModel(const embodied::ActModel& model, embodied::SystemInventory inventory,
            CarbonIntensity grid);

  [[nodiscard]] const embodied::SystemInventory& inventory() const { return inventory_; }
  [[nodiscard]] CarbonIntensity grid() const { return grid_; }

  /// Total embodied carbon of the system (Fig. 1 methodology).
  [[nodiscard]] Carbon embodied_total() const { return embodied_; }
  /// Operational carbon over the planned lifetime at the site intensity.
  [[nodiscard]] Carbon operational_lifetime() const;
  /// Embodied share of the lifetime total — the quantity behind both the
  /// "LRZ: embodied dominates" observation and the 70-75% rule of thumb.
  [[nodiscard]] double embodied_share() const;
  /// Carbon per delivered PFLOP-year (a per-system Carbon500-style figure).
  [[nodiscard]] double tonnes_per_pflop_year() const;

 private:
  embodied::SystemInventory inventory_;
  CarbonIntensity grid_;
  Carbon embodied_;
};

/// Reference cloud server for the rule-of-thumb experiment (the claim is
/// about cloud datacenters, which are storage-heavy and power-light
/// relative to HPC nodes): Dell-class dual-socket LCA figures.
struct CloudServer {
  Carbon embodied = kilograms_co2(3300.0);
  Power it_power = watts(400.0);
  double pue = 1.4;
  int lifetime_years = 5;
};

/// Embodied share of a cloud server's lifetime footprint under a mix.
[[nodiscard]] double cloud_embodied_share(const CloudServer& server,
                                          const RenewableMix& mix);

/// Renewable fraction at which embodied == operational (the 50% point).
/// Solved analytically from the mix model.
[[nodiscard]] double renewable_fraction_for_parity(const CloudServer& server,
                                                   CarbonIntensity renewable_ci,
                                                   CarbonIntensity residual_ci);

}  // namespace greenhpc::core
