#pragma once
// Seeded node-failure model (robustness layer).
//
// Generates deterministic per-node failure schedules for
// hpcsim::FaultInjectionConfig from a per-node MTBF: each node is an
// independent Weibull renewal process (shape 1 = the classic exponential
// assumption behind Young/Daly; shape < 1 models infant mortality,
// shape > 1 wear-out). An age-dependent hazard multiplier ties failure
// rates to lifecycle::SystemLifetime, so the lifetime extensions the
// paper advocates (section 2.3) come with their reliability cost: the
// longer a system serves, the more node-hours its failures destroy.

#include <cstdint>
#include <vector>

#include "hpcsim/faults.hpp"
#include "lifecycle/fleet.hpp"
#include "util/units.hpp"

namespace greenhpc::resilience {

struct FaultModelConfig {
  /// Number of independent nodes generating failures.
  int nodes = 0;
  /// Schedule generation horizon (events beyond it are not generated).
  Duration horizon = days(30.0);
  /// Per-node mean time between failures at age zero. Non-positive
  /// disables failure generation entirely (perfect hardware).
  Duration node_mtbf = seconds(0.0);
  /// Weibull shape k of the inter-failure distribution (1 = exponential).
  double weibull_shape = 1.0;
  /// Mean per-node repair time (exponentially distributed).
  Duration mean_repair = hours(4.0);
  /// System age in service years (see for_system()).
  double age_years = 0.0;
  /// Hazard growth per service year: effective failure rate is scaled by
  /// hazard_multiplier() = 1 + age_acceleration * age_years. Zero keeps
  /// the age out of the model.
  double age_acceleration = 0.0;
  /// Root seed; node i draws from an independent SplitMix64-derived stream.
  std::uint64_t seed = 0x5eedfa17ull;

  [[nodiscard]] double hazard_multiplier() const {
    return 1.0 + age_acceleration * age_years;
  }
  /// MTBF after age derating: node_mtbf / hazard_multiplier().
  [[nodiscard]] Duration effective_mtbf() const;
  void validate() const;
};

class FaultModel {
 public:
  explicit FaultModel(FaultModelConfig config);

  [[nodiscard]] const FaultModelConfig& config() const { return cfg_; }

  /// The deterministic failure schedule: one single-node event per
  /// failure, sorted by time. Identical configs (including seed) yield
  /// bit-identical schedules on every platform.
  [[nodiscard]] std::vector<hpcsim::NodeFailureEvent> schedule() const;

  /// Convenience: the schedule wrapped in a FaultInjectionConfig carrying
  /// the given retry budget.
  [[nodiscard]] hpcsim::FaultInjectionConfig injection(
      int max_retries = 3, Duration backoff_base = minutes(10.0)) const;

  /// Derive a config whose age is the system's service years at
  /// `reference_year`, keeping everything else from `base`.
  [[nodiscard]] static FaultModelConfig for_system(
      const lifecycle::SystemLifetime& system, int reference_year,
      FaultModelConfig base);

 private:
  FaultModelConfig cfg_;
};

}  // namespace greenhpc::resilience
