#pragma once
// Degraded carbon-intensity feed (robustness layer).
//
// Real carbon-intensity APIs go down: network partitions, provider
// outages, rate limits. DegradedFeed models the feed as an alternating
// renewal process of up/down windows (both exponentially distributed,
// tuned to a long-run outage fraction) and implements
// hpcsim::IntensityFeed: during an outage observe() returns nullopt and
// the simulator holds the last known value while its staleness clock
// grows. Carbon-aware policies then degrade along the ladder
//   fresh signal -> last-known-value hold -> carbon-blind
// instead of acting on garbage (ISSUE acceptance: no policy ever reads a
// stale value past its staleness horizon without knowing it is stale).

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hpcsim/faults.hpp"
#include "util/units.hpp"

namespace greenhpc::resilience {

struct DegradedFeedConfig {
  /// Long-run fraction of time the feed is unavailable, in [0, 1].
  /// 0 = perfect feed (no outages generated), 1 = permanently dark.
  double outage_fraction = 0.0;
  /// Mean length of a single outage window.
  Duration mean_outage = hours(2.0);
  std::uint64_t seed = 0xfeedbeefull;

  void validate() const;
};

class DegradedFeed final : public hpcsim::IntensityFeed {
 public:
  /// Pre-generates the outage windows over [0, horizon]; observations
  /// past the horizon are treated as fresh.
  DegradedFeed(DegradedFeedConfig config, Duration horizon);

  /// Fresh sample of the true value, or nullopt while the feed is down.
  [[nodiscard]] std::optional<double> observe(Duration now,
                                              double true_value) override;

  [[nodiscard]] bool down_at(Duration t) const;
  /// Generated outage windows as [start, end) pairs, ascending.
  [[nodiscard]] const std::vector<std::pair<Duration, Duration>>& outages() const {
    return outages_;
  }
  /// Fraction of [0, horizon] actually covered by outages.
  [[nodiscard]] double realized_outage_fraction() const;

 private:
  DegradedFeedConfig cfg_;
  Duration horizon_;
  std::vector<std::pair<Duration, Duration>> outages_;
};

}  // namespace greenhpc::resilience
