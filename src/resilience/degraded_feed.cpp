#include "resilience/degraded_feed.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace greenhpc::resilience {

void DegradedFeedConfig::validate() const {
  GREENHPC_REQUIRE(outage_fraction >= 0.0 && outage_fraction <= 1.0,
                   "degraded feed: outage fraction must be in [0, 1]");
  GREENHPC_REQUIRE(mean_outage.seconds() > 0.0,
                   "degraded feed: mean outage must be > 0");
}

DegradedFeed::DegradedFeed(DegradedFeedConfig config, Duration horizon)
    : cfg_(config), horizon_(horizon) {
  cfg_.validate();
  GREENHPC_REQUIRE(horizon_.seconds() > 0.0, "degraded feed: horizon must be > 0");
  const double f = cfg_.outage_fraction;
  if (f <= 0.0) return;
  if (f >= 1.0) {
    outages_.emplace_back(seconds(0.0), horizon_);
    return;
  }
  // Alternating renewal process: exponential up-times with mean chosen so
  // the long-run down fraction is f, exponential down-times with mean
  // mean_outage. The realization is a pure function of (config, horizon).
  const double mean_down = cfg_.mean_outage.seconds();
  const double mean_up = mean_down * (1.0 - f) / f;
  util::Rng rng(cfg_.seed);
  double t = rng.exponential(1.0 / mean_up);  // start in an up-window
  while (t < horizon_.seconds()) {
    const double down = rng.exponential(1.0 / mean_down);
    const double end = std::min(t + down, horizon_.seconds());
    outages_.emplace_back(seconds(t), seconds(end));
    t = end + rng.exponential(1.0 / mean_up);
  }
}

bool DegradedFeed::down_at(Duration t) const {
  // First window starting after t; its predecessor is the only candidate.
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](Duration v, const std::pair<Duration, Duration>& w) { return v < w.first; });
  if (it == outages_.begin()) return false;
  --it;
  return t < it->second;
}

std::optional<double> DegradedFeed::observe(Duration now, double true_value) {
  if (down_at(now)) return std::nullopt;
  return true_value;
}

double DegradedFeed::realized_outage_fraction() const {
  double down = 0.0;
  for (const auto& [start, end] : outages_) down += (end - start).seconds();
  return down / horizon_.seconds();
}

}  // namespace greenhpc::resilience
