#include "resilience/checkpoint_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::resilience {

void CheckpointPolicyConfig::validate() const {
  GREENHPC_REQUIRE(fixed_interval.seconds() > 0.0 || node_mtbf.seconds() > 0.0,
                   "checkpoint policy: needs node_mtbf or fixed_interval");
  GREENHPC_REQUIRE(fixed_interval.seconds() >= 0.0 && min_interval.seconds() >= 0.0,
                   "checkpoint policy: intervals must be >= 0");
}

PeriodicCheckpointPolicy::PeriodicCheckpointPolicy(hpcsim::SchedulingPolicy& inner,
                                                   CheckpointPolicyConfig config)
    : inner_(inner), cfg_(config) {
  cfg_.validate();
}

Duration PeriodicCheckpointPolicy::young_daly_interval(Duration overhead,
                                                       Duration node_mtbf,
                                                       int nodes) {
  GREENHPC_REQUIRE(node_mtbf.seconds() > 0.0 && nodes >= 1,
                   "young/daly: mtbf and nodes must be positive");
  // System MTBF of an n-node job is node MTBF / n (independent failures).
  const double system_mtbf = node_mtbf.seconds() / static_cast<double>(nodes);
  return seconds(std::sqrt(2.0 * overhead.seconds() * system_mtbf));
}

Duration PeriodicCheckpointPolicy::interval_for(const hpcsim::JobSpec& spec) const {
  if (cfg_.fixed_interval.seconds() > 0.0) return cfg_.fixed_interval;
  const Duration tau =
      young_daly_interval(spec.checkpoint_overhead, cfg_.node_mtbf, spec.nodes_used);
  return std::max(tau, cfg_.min_interval);
}

void PeriodicCheckpointPolicy::on_tick(hpcsim::SimulationView& view) {
  inner_.on_tick(view);
  const hpcsim::JobTable& t = view.job_table();
  for (hpcsim::JobId id : view.running_jobs()) {
    const std::size_t i = view.slot_of(id);
    if (t.checkpointable[i] == 0 || t.ckpt_overhead_s[i] <= 0.0) continue;
    if (view.now() - seconds(t.last_checkpoint_s[i]) >= interval_for(view.spec(id))) {
      view.checkpoint(id);
    }
  }
}

bool PeriodicCheckpointPolicy::quiescent_over_release(
    const hpcsim::SimulationView& view) const {
  const hpcsim::JobTable& t = view.job_table();
  for (hpcsim::JobId id : view.running_jobs()) {
    const std::size_t i = view.slot_of(id);
    if (t.checkpointable[i] == 0 || t.ckpt_overhead_s[i] <= 0.0) continue;
    if (view.now() - seconds(t.last_checkpoint_s[i]) >= interval_for(view.spec(id))) {
      return false;  // on_tick would checkpoint this job right now
    }
  }
  return inner_.quiescent_over_release(view);
}

Duration PeriodicCheckpointPolicy::quiescent_until(
    const hpcsim::SimulationView& view) const {
  Duration horizon = inner_.quiescent_until(view);
  const hpcsim::JobTable& t = view.job_table();
  for (hpcsim::JobId id : view.running_jobs()) {
    const std::size_t i = view.slot_of(id);
    if (t.checkpointable[i] == 0 || t.ckpt_overhead_s[i] <= 0.0) continue;
    const Duration due =
        seconds(t.last_checkpoint_s[i]) + interval_for(view.spec(id));
    if (due < horizon) horizon = due;
  }
  return horizon < view.now() ? view.now() : horizon;
}

}  // namespace greenhpc::resilience
