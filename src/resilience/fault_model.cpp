#include "resilience/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace greenhpc::resilience {

Duration FaultModelConfig::effective_mtbf() const {
  if (node_mtbf.seconds() <= 0.0) return node_mtbf;
  return seconds(node_mtbf.seconds() / hazard_multiplier());
}

void FaultModelConfig::validate() const {
  GREENHPC_REQUIRE(nodes >= 0, "fault model: nodes must be >= 0");
  GREENHPC_REQUIRE(horizon.seconds() > 0.0, "fault model: horizon must be > 0");
  GREENHPC_REQUIRE(weibull_shape > 0.0, "fault model: weibull shape must be > 0");
  GREENHPC_REQUIRE(mean_repair.seconds() > 0.0, "fault model: mean repair must be > 0");
  GREENHPC_REQUIRE(age_years >= 0.0, "fault model: age must be >= 0");
  GREENHPC_REQUIRE(age_acceleration >= 0.0,
                   "fault model: age acceleration must be >= 0");
}

FaultModel::FaultModel(FaultModelConfig config) : cfg_(config) { cfg_.validate(); }

std::vector<hpcsim::NodeFailureEvent> FaultModel::schedule() const {
  std::vector<hpcsim::NodeFailureEvent> events;
  if (cfg_.node_mtbf.seconds() <= 0.0 || cfg_.nodes == 0) return events;

  // Weibull mean = scale * Gamma(1 + 1/k); invert so the draw's mean is
  // the age-derated MTBF regardless of shape.
  const double mtbf_s = cfg_.effective_mtbf().seconds();
  const double scale = mtbf_s / std::tgamma(1.0 + 1.0 / cfg_.weibull_shape);
  const double repair_rate = 1.0 / cfg_.mean_repair.seconds();

  for (int node = 0; node < cfg_.nodes; ++node) {
    // Independent per-node stream: mixing the node index through
    // SplitMix64 keeps streams uncorrelated and the whole schedule a pure
    // function of (config, seed).
    std::uint64_t mix = cfg_.seed + 0x9e3779b97f4a7c15ull * (node + 1u);
    util::Rng rng(util::splitmix64(mix));
    double t = rng.weibull(cfg_.weibull_shape, scale);  // renewal process
    while (t < cfg_.horizon.seconds()) {
      const double repair_s = std::max(60.0, rng.exponential(repair_rate));
      events.push_back({seconds(t), 1, seconds(repair_s)});
      t += repair_s + rng.weibull(cfg_.weibull_shape, scale);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const hpcsim::NodeFailureEvent& a,
                      const hpcsim::NodeFailureEvent& b) { return a.time < b.time; });
  return events;
}

hpcsim::FaultInjectionConfig FaultModel::injection(int max_retries,
                                                   Duration backoff_base) const {
  hpcsim::FaultInjectionConfig inj;
  inj.events = schedule();
  inj.max_retries = max_retries;
  inj.backoff_base = backoff_base;
  inj.victim_seed = cfg_.seed ^ 0x71c71a5ull;
  return inj;
}

FaultModelConfig FaultModel::for_system(const lifecycle::SystemLifetime& system,
                                        int reference_year, FaultModelConfig base) {
  base.age_years = static_cast<double>(system.service_years(reference_year));
  return base;
}

}  // namespace greenhpc::resilience
