#pragma once
// Periodic in-place checkpointing with the Young/Daly optimal interval.
//
// A decorator over any SchedulingPolicy: the inner policy makes all
// start/suspend/resume decisions; this layer additionally writes in-place
// checkpoints (SimulationView::checkpoint) for running checkpointable
// jobs on a periodic clock. The interval is Young's first-order optimum
//   tau = sqrt(2 * delta * M_sys),   M_sys = node_mtbf / nodes_used
// per job (delta = the job's checkpoint overhead): frequent enough that
// failures destroy little work, rare enough that the overhead does not
// swamp goodput. Checkpointing trades a known small carbon cost (the
// overhead) against a stochastic large one (recomputation), which is why
// it appears in a sustainability simulator at all.

#include <string>

#include "hpcsim/policy.hpp"
#include "util/units.hpp"

namespace greenhpc::resilience {

struct CheckpointPolicyConfig {
  /// Per-node MTBF assumed by the Young/Daly formula. Must be > 0 unless
  /// fixed_interval is set.
  Duration node_mtbf = seconds(0.0);
  /// Non-zero overrides Young/Daly with a fixed interval (for sweeps).
  Duration fixed_interval = seconds(0.0);
  /// Lower clamp on the interval (guards tiny-overhead jobs from
  /// checkpointing every tick).
  Duration min_interval = minutes(5.0);

  void validate() const;
};

class PeriodicCheckpointPolicy final : public hpcsim::SchedulingPolicy {
 public:
  /// `inner` must outlive this policy.
  PeriodicCheckpointPolicy(hpcsim::SchedulingPolicy& inner,
                           CheckpointPolicyConfig config);

  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override {
    return inner_.name() + "+ydckpt";
  }

  /// Quiescent until the earliest periodic checkpoint comes due (each
  /// running checkpointable job's last checkpoint plus its Young/Daly or
  /// fixed interval) or the inner policy's own horizon, whichever is
  /// first. The due times are fixed while the discrete state is frozen —
  /// the checkpoint clock only moves on checkpoint/start/resume, all of
  /// which end a span through the engine's epoch gate.
  [[nodiscard]] Duration quiescent_until(
      const hpcsim::SimulationView& view) const override;

  /// The periodic checkpoint clock never looks at the pending queue.
  [[nodiscard]] bool quiescent_over_arrivals(
      const hpcsim::SimulationView& view) const override {
    return inner_.quiescent_over_arrivals(view);
  }

  /// A release never moves a checkpoint clock, but on_tick checkpoints
  /// any running job whose interval elapsed by now — so attest only when
  /// no checkpoint is due at the post-release tick, then defer to the
  /// inner policy's release attestation.
  [[nodiscard]] bool quiescent_over_release(
      const hpcsim::SimulationView& view) const override;

  /// Young's interval sqrt(2 * overhead * node_mtbf / nodes) for a job
  /// spanning `nodes` nodes.
  [[nodiscard]] static Duration young_daly_interval(Duration overhead,
                                                    Duration node_mtbf, int nodes);

 private:
  [[nodiscard]] Duration interval_for(const hpcsim::JobSpec& spec) const;

  hpcsim::SchedulingPolicy& inner_;
  CheckpointPolicyConfig cfg_;
};

}  // namespace greenhpc::resilience
