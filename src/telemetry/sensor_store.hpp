#pragma once
// DCDB-style operational data store (paper section 3.4: "extend operational
// data analytics tools, such as DCDB, to quantify and aggregate carbon
// emissions data derived from submitted HPC jobs").
//
// Sensors are named hierarchically ("node042.power", "system.ci") and hold
// irregularly timestamped samples. The store supports the aggregation
// queries the accounting module needs: time integrals over a window
// (energy from power sensors) and weighted integrals against a second
// sensor (carbon from power x intensity). Samples are zero-order-hold
// between timestamps, matching the simulator's piecewise-constant outputs.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace greenhpc::telemetry {

/// One timestamped observation.
struct Sample {
  Duration time;
  double value = 0.0;
};

/// A single named sensor's sample sequence (monotonically increasing time).
class Sensor {
 public:
  explicit Sensor(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Append a sample; time must be >= the last recorded time.
  void record(Duration time, double value);

  /// Zero-order-hold value at time t (last sample at or before t);
  /// nullopt before the first sample.
  [[nodiscard]] std::optional<double> value_at(Duration t) const;

  /// Integral of the zero-order-hold signal over [t0, t1] in
  /// value-units * seconds. Time before the first sample contributes 0.
  [[nodiscard]] double integrate(Duration t0, Duration t1) const;

  /// Integral of this sensor's signal multiplied by `weight`'s signal over
  /// [t0, t1] — e.g. power (W) x carbon intensity (g/kWh) integrates to
  /// carbon when divided by 3.6e6. Both signals are zero-order-hold, so
  /// the product is piecewise constant on the union of their breakpoints.
  [[nodiscard]] double integrate_weighted(const Sensor& weight, Duration t0,
                                          Duration t1) const;

 private:
  /// Index of the last sample at or before t, or npos.
  [[nodiscard]] std::size_t index_at_or_before(Duration t) const;

  std::string name_;
  std::vector<Sample> samples_;
};

/// The store: a name-indexed collection of sensors.
class SensorStore {
 public:
  /// Get or create a sensor by name.
  Sensor& sensor(const std::string& name);
  /// Lookup without creating; nullptr if absent.
  [[nodiscard]] const Sensor* find(const std::string& name) const;
  /// All sensor names in lexicographic order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Record into a named sensor (creates it on first use).
  void record(const std::string& name, Duration time, double value);
  /// Number of sensors.
  [[nodiscard]] std::size_t size() const { return sensors_.size(); }

  /// Energy (J) from a power sensor (values in watts) over a window.
  [[nodiscard]] Energy energy(const std::string& power_sensor, Duration t0,
                              Duration t1) const;
  /// Carbon (g) from a power sensor and an intensity sensor (g/kWh).
  [[nodiscard]] Carbon carbon(const std::string& power_sensor,
                              const std::string& intensity_sensor, Duration t0,
                              Duration t1) const;

 private:
  std::map<std::string, Sensor> sensors_;
};

}  // namespace greenhpc::telemetry
