#include "telemetry/sensor_store.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::telemetry {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}

Sensor::Sensor(std::string name) : name_(std::move(name)) {
  GREENHPC_REQUIRE(!name_.empty(), "sensor name must not be empty");
}

void Sensor::record(Duration time, double value) {
  GREENHPC_REQUIRE(samples_.empty() || time >= samples_.back().time,
                   "sensor samples must be recorded in time order");
  // Coalesce same-timestamp updates: the latest write wins.
  if (!samples_.empty() && samples_.back().time == time) {
    samples_.back().value = value;
    return;
  }
  samples_.push_back({time, value});
}

std::size_t Sensor::index_at_or_before(Duration t) const {
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Duration lhs, const Sample& s) { return lhs < s.time; });
  if (it == samples_.begin()) return kNpos;
  return static_cast<std::size_t>(std::distance(samples_.begin(), it)) - 1;
}

std::optional<double> Sensor::value_at(Duration t) const {
  const std::size_t i = index_at_or_before(t);
  if (i == kNpos) return std::nullopt;
  return samples_[i].value;
}

double Sensor::integrate(Duration t0, Duration t1) const {
  GREENHPC_REQUIRE(t0 <= t1, "integration bounds inverted");
  if (samples_.empty() || t0 == t1) return 0.0;
  double total = 0.0;
  std::size_t i = index_at_or_before(t0);
  Duration cursor = t0;
  if (i == kNpos) {
    // Nothing recorded yet at t0: skip forward to the first sample.
    cursor = std::min(t1, samples_.front().time);
    i = 0;
    if (cursor == t1) return 0.0;
  }
  while (cursor < t1) {
    const Duration next =
        (i + 1 < samples_.size()) ? std::min(t1, samples_[i + 1].time) : t1;
    total += samples_[i].value * (next - cursor).seconds();
    cursor = next;
    ++i;
    if (i >= samples_.size()) break;
    if (cursor < samples_[i].time) {  // only when we started before sample i
      cursor = std::min(t1, samples_[i].time);
    }
  }
  return total;
}

double Sensor::integrate_weighted(const Sensor& weight, Duration t0, Duration t1) const {
  GREENHPC_REQUIRE(t0 <= t1, "integration bounds inverted");
  if (samples_.empty() || weight.samples_.empty() || t0 == t1) return 0.0;
  // Merge both breakpoint sets inside [t0, t1].
  std::vector<Duration> cuts;
  cuts.push_back(t0);
  for (const auto& s : samples_) {
    if (s.time > t0 && s.time < t1) cuts.push_back(s.time);
  }
  for (const auto& s : weight.samples_) {
    if (s.time > t0 && s.time < t1) cuts.push_back(s.time);
  }
  cuts.push_back(t1);
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    const Duration a = cuts[k];
    const Duration b = cuts[k + 1];
    if (b <= a) continue;
    const auto va = value_at(a);
    const auto wa = weight.value_at(a);
    if (!va || !wa) continue;
    total += *va * *wa * (b - a).seconds();
  }
  return total;
}

Sensor& SensorStore::sensor(const std::string& name) {
  auto it = sensors_.find(name);
  if (it == sensors_.end()) {
    it = sensors_.emplace(name, Sensor(name)).first;
  }
  return it->second;
}

const Sensor* SensorStore::find(const std::string& name) const {
  const auto it = sensors_.find(name);
  return it == sensors_.end() ? nullptr : &it->second;
}

std::vector<std::string> SensorStore::names() const {
  std::vector<std::string> out;
  out.reserve(sensors_.size());
  for (const auto& [name, _] : sensors_) out.push_back(name);
  return out;
}

void SensorStore::record(const std::string& name, Duration time, double value) {
  sensor(name).record(time, value);
}

Energy SensorStore::energy(const std::string& power_sensor, Duration t0, Duration t1) const {
  const Sensor* s = find(power_sensor);
  GREENHPC_REQUIRE(s != nullptr, "unknown power sensor: " + power_sensor);
  return joules(s->integrate(t0, t1));
}

Carbon SensorStore::carbon(const std::string& power_sensor,
                           const std::string& intensity_sensor, Duration t0,
                           Duration t1) const {
  const Sensor* p = find(power_sensor);
  const Sensor* ci = find(intensity_sensor);
  GREENHPC_REQUIRE(p != nullptr, "unknown power sensor: " + power_sensor);
  GREENHPC_REQUIRE(ci != nullptr, "unknown intensity sensor: " + intensity_sensor);
  // watts * (g/kWh) * s -> grams: divide by J-per-kWh.
  return grams_co2(p->integrate_weighted(*ci, t0, t1) / 3.6e6);
}

}  // namespace greenhpc::telemetry
