#pragma once
// Per-run report artifact: one JSON file bundling what was run (config
// line + digest), what it produced (named numbers/labels, e.g. resilience
// telemetry or sweep digests), how long it took, and — optionally — the
// global metrics snapshot, so a single artifact makes a run auditable.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greenhpc::obs {

/// FNV-1a 64-bit over a byte string; matches the digest convention used
/// by core::SweepEngine and bench_perf.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s);

struct RunReport {
  std::string tool;     ///< e.g. "greenhpc sweep"
  std::string config;   ///< reconstructed command line / config string
  std::uint64_t config_digest = 0;
  double wall_s = 0.0;
  bool embed_metrics = true;  ///< include Registry::global() snapshot

  void add(std::string name, double value) {
    numbers.emplace_back(std::move(name), value);
  }
  void add_label(std::string name, std::string value) {
    labels.emplace_back(std::move(name), std::move(value));
  }
  void write_json(std::ostream& os) const;

  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::pair<std::string, std::string>> labels;
};

}  // namespace greenhpc::obs
