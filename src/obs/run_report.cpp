#include "obs/run_report.hpp"

#include <ostream>

#include "obs/metrics.hpp"

namespace greenhpc::obs {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

void RunReport::write_json(std::ostream& os) const {
  os << "{\n  \"tool\": \"";
  json_escape(os, tool);
  os << "\",\n  \"config\": \"";
  json_escape(os, config);
  os << "\",\n  \"config_digest\": \"" << std::hex << config_digest << std::dec
     << "\",\n  \"wall_s\": " << wall_s;
  os << ",\n  \"numbers\": {";
  for (std::size_t i = 0; i < numbers.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    \"";
    json_escape(os, numbers[i].first);
    os << "\": " << numbers[i].second;
  }
  os << (numbers.empty() ? "}" : "\n  }");
  os << ",\n  \"labels\": {";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    \"";
    json_escape(os, labels[i].first);
    os << "\": \"";
    json_escape(os, labels[i].second);
    os << "\"";
  }
  os << (labels.empty() ? "}" : "\n  }");
  if (embed_metrics) {
    os << ",\n  \"metrics\": ";
    Registry::global().write_json(os);
    // write_json ends with '\n'; swallow it into our layout by not adding
    // another before the closing brace.
    os << "}\n";
  } else {
    os << "\n}\n";
  }
}

}  // namespace greenhpc::obs
