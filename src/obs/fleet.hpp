#pragma once
// Fleet trace merge: one Chrome trace with a process lane per worker.
//
// The per-process Tracer (obs/trace.hpp) stops at the fork boundary: a
// distributed sweep's workers each buffer their own events with their
// own steady-clock epoch, invisible to the coordinator. FleetTrace is
// the merge point. The coordinator opens one lane per process (itself
// plus every worker), anchors each worker's clock once — the first
// timestamped obs line a worker ships after `hello` pairs a remote
// "now" with a local "now", and the constant offset between them maps
// every later event — and appends shipped event batches in arrival
// order. Because the offset per lane is a single constant fixed at
// alignment, a worker's event order (and thus per-(pid,tid) timestamp
// monotonicity) survives the mapping; the property test in
// tests/obs/test_fleet.cpp holds that line.
//
// The output is standard Chrome trace_event JSON: each lane becomes a
// `pid` with a `process_name` metadata record (real OS pids, so the
// viewer lines up with `ps` output from the run), worker threads keep
// their remote tids, and the coordinator's control-plane events
// interleave on their own lane. Loadable in chrome://tracing or
// https://ui.perfetto.dev next to any single-process trace.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace greenhpc::obs {

/// A trace event that crossed (or may cross) a process boundary: same
/// shape as TraceEvent but with OWNED strings — the tracer's
/// static-pointer contract cannot survive the wire.
struct RemoteTraceEvent {
  std::string name;
  std::string cat;
  int tid = 0;
  char phase = 'X';  ///< 'X' complete span, 'i' instant, 'C' counter
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  double value = 0.0;
};

class FleetTrace {
 public:
  /// Open a lane. `pid` is the OS pid shown in the viewer; `label`
  /// becomes the lane's process_name metadata. Returns the lane handle.
  int add_lane(long pid, std::string label);

  /// Anchor `lane`'s clock: `remote_now_ns` was sampled by the remote
  /// process at (one pipe latency before) the moment `local_now_ns` was
  /// sampled here. The first call fixes the lane's constant offset;
  /// later calls are ignored so per-lane event order is preserved.
  void align(int lane, std::uint64_t remote_now_ns, std::uint64_t local_now_ns);
  [[nodiscard]] bool aligned(int lane) const;
  /// Mapped local-clock value of a remote timestamp (0 offset before
  /// align). Clamped at 0 — the clamp is monotone, so ordering holds.
  [[nodiscard]] std::uint64_t map_ns(int lane, std::uint64_t remote_ts_ns) const;

  /// Append a batch of remote events to `lane`, mapping timestamps
  /// through the lane's offset. Events recorded with 0 offset (a local
  /// lane, e.g. the coordinator's own control plane) pass unchanged.
  void add_events(int lane, const std::vector<RemoteTraceEvent>& events);
  /// Convenience for the coordinator's own lane: one event, local clock.
  void add_event(int lane, RemoteTraceEvent event);
  /// Accumulate the remote side's ring-drop report for `lane`.
  void add_dropped(int lane, std::uint64_t dropped);

  /// Append locally recorded events (a Tracer snapshot) to `lane`,
  /// keeping only category `cat` (nullptr = all).
  void add_local(int lane, const std::vector<ThreadTrace>& snapshot,
                 const char* cat = nullptr);

  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  [[nodiscard]] std::size_t event_count(int lane) const;
  [[nodiscard]] const std::vector<RemoteTraceEvent>& events(int lane) const;
  [[nodiscard]] std::uint64_t dropped(int lane) const;

  /// Chrome trace_event JSON: process_name metadata per lane, then every
  /// event under its lane's pid (ts/dur in µs, matching Tracer output).
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Lane {
    long pid = 0;
    std::string label;
    bool aligned = false;
    std::int64_t offset_ns = 0;  ///< local = remote + offset
    std::uint64_t dropped = 0;
    std::vector<RemoteTraceEvent> events;
  };
  std::vector<Lane> lanes_;
};

}  // namespace greenhpc::obs
