#pragma once
// Structured event tracer for the engine's own runtime (not the simulated
// machine — that is telemetry::SensorStore's job).
//
// The paper's section 3.4 argues carbon claims stay auditable only when
// the operational stack can introspect itself; the same holds for this
// reproduction's engine. The tracer records scoped begin/end spans and
// instant events into per-thread ring buffers and drains them to Chrome
// trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Cost model:
//   - tracing disabled (the default): a span is one relaxed atomic load
//     and a predictable branch — cheap enough for per-tick simulator
//     phases and per-chunk pool dispatch. Instant/counter macros are the
//     same load behind a branch.
//   - tracing enabled: two steady_clock reads plus one ring-slot write
//     per span, all thread-local; no locks, no allocation on the hot
//     path (buffers are allocated once per thread at registration).
//   - compiled out entirely when GREENHPC_OBS_DISABLED is defined: the
//     macros expand to nothing.
//
// Event names and categories must be string literals (or otherwise have
// static storage duration): the ring stores the pointers, not copies.
//
// Drain contract: snapshot()/write_chrome_json()/aggregate_spans()/reset()
// must run while instrumented work is quiescent (no thread currently
// recording). Completion of a ThreadPool task or a std::thread::join
// establishes the needed happens-before edge; idle pool workers are fine.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace greenhpc::obs {

namespace detail {
extern std::atomic<bool> trace_enabled;
}  // namespace detail

/// One recorded event. `dur_ns` is nonzero only for complete spans.
struct TraceEvent {
  const char* name = nullptr;  ///< static string, not owned
  const char* cat = nullptr;   ///< static string, not owned
  std::uint64_t ts_ns = 0;     ///< steady-clock ns since the tracer epoch
  std::uint64_t dur_ns = 0;
  char phase = 'X';  ///< 'X' complete span, 'i' instant, 'C' counter
  double value = 0.0;  ///< instant/counter payload (ignored for spans)
};

/// Drained events of one thread, oldest first.
struct ThreadTrace {
  int tid = 0;               ///< small sequential id (registration order)
  std::uint64_t dropped = 0; ///< events overwritten by the ring
  std::vector<TraceEvent> events;
};

/// Aggregate over every complete span with one name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

class Tracer {
 public:
  /// Hot-path gate: relaxed load, no fence.
  [[nodiscard]] static bool enabled() {
    return detail::trace_enabled.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on);

  /// Ring capacity (events per thread) for buffers registered after the
  /// call; existing buffers keep their size. Default 65536.
  static void set_buffer_capacity(std::size_t events);

  /// Nanoseconds since the tracer epoch (first call in the process).
  [[nodiscard]] static std::uint64_t now_ns();

  // Raw recording entry points. They do NOT re-check enabled(): a span
  // opened while tracing was on is recorded even if tracing was switched
  // off mid-span. Use the macros below for gated call sites.
  static void record_complete(const char* name, const char* cat,
                              std::uint64_t begin_ns, std::uint64_t end_ns);
  static void record_instant(const char* name, const char* cat, double value = 0.0);
  static void record_counter(const char* name, double value);

  /// Copy out every thread's buffered events (see drain contract above).
  [[nodiscard]] static std::vector<ThreadTrace> snapshot();
  /// Per-name totals over all buffered complete spans, sorted by name.
  [[nodiscard]] static std::vector<SpanStat> aggregate_spans();
  /// Chrome trace_event JSON ("traceEvents" array; ts/dur in µs).
  static void write_chrome_json(std::ostream& os);
  /// Drop all buffered events (thread registrations are kept).
  static void reset();
  /// Total events overwritten across all rings since the last reset.
  [[nodiscard]] static std::uint64_t dropped();
};

/// RAII span: samples the clock only when tracing was enabled at entry.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "greenhpc") {
    if (Tracer::enabled()) {
      name_ = name;
      cat_ = cat;
      begin_ = Tracer::now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) Tracer::record_complete(name_, cat_, begin_, Tracer::now_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t begin_ = 0;
};

}  // namespace greenhpc::obs

#define GREENHPC_OBS_CONCAT2(a, b) a##b
#define GREENHPC_OBS_CONCAT(a, b) GREENHPC_OBS_CONCAT2(a, b)

#if defined(GREENHPC_OBS_DISABLED)
#define GREENHPC_TRACE_SPAN(name) static_cast<void>(0)
#define GREENHPC_TRACE_INSTANT(name, value) \
  do {                                      \
  } while (false)
#define GREENHPC_TRACE_COUNTER(name, value) \
  do {                                      \
  } while (false)
#else
/// Scoped span covering the rest of the enclosing block.
#define GREENHPC_TRACE_SPAN(name) \
  ::greenhpc::obs::ScopedSpan GREENHPC_OBS_CONCAT(greenhpc_span_, __LINE__)(name)
/// Instant event with a numeric payload, recorded only while enabled.
#define GREENHPC_TRACE_INSTANT(name, value)                                  \
  do {                                                                       \
    if (::greenhpc::obs::Tracer::enabled())                                  \
      ::greenhpc::obs::Tracer::record_instant((name), "greenhpc", (value));  \
  } while (false)
/// Counter sample ('C' event), recorded only while enabled.
#define GREENHPC_TRACE_COUNTER(name, value)                       \
  do {                                                            \
    if (::greenhpc::obs::Tracer::enabled())                       \
      ::greenhpc::obs::Tracer::record_counter((name), (value));   \
  } while (false)
#endif
