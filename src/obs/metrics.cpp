#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace greenhpc::obs {

namespace {

/// Fixed-bucket quantile estimate shared by Histogram and its snapshot:
/// walk the cumulative counts to the bucket holding rank q*total, then
/// interpolate linearly between that bucket's edges. The first bucket's
/// lower edge is 0 (non-negative series), the overflow bucket saturates
/// to the last finite bound.
double bucket_percentile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c == 0.0 || cum + c < rank) {
      cum += c;
      continue;
    }
    if (i >= bounds.size()) break;  // overflow bucket: saturate below
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    return lo + (hi - lo) * ((rank - cum) / c);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::record(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::percentile(double q) const {
  return bucket_percentile(bounds_, counts(), q);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t t = 0;
  for (const std::uint64_t c : counts) t += c;
  return t;
}

double HistogramSnapshot::percentile(double q) const {
  return bucket_percentile(bounds, counts, q);
}

const std::uint64_t* StatSnapshot::find_counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* StatSnapshot::find_gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* StatSnapshot::find_histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

StatSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->counts();
    hs.sum = h->sum();
    out.histograms.push_back(std::move(hs));
  }
  return out;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, name);
    os << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, name);
    os << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, name);
    os << "\":{\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) os << ",";
      os << bounds[i];
    }
    os << "],\"counts\":[";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ",";
      os << counts[i];
    }
    os << "],\"sum\":" << h->sum() << ",\"count\":" << h->count() << "}";
  }
  os << "}}\n";
}

void Registry::write_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "kind,name,value\n";
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << "," << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << "," << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto& bounds = h->bounds();
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << "histogram," << name << "[";
      if (i < bounds.size()) {
        os << "le=" << bounds[i];
      } else {
        os << "le=inf";
      }
      os << "]," << counts[i] << "\n";
    }
    os << "histogram," << name << "[sum]," << h->sum() << "\n";
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace greenhpc::obs
