#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

namespace greenhpc::obs {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::record(double t_s, std::string kind, std::string detail) {
  FlightEvent& slot = ring_[head_ % ring_.size()];
  slot.t_s = t_s;
  slot.kind = std::move(kind);
  slot.detail = std::move(detail);
  ++head_;
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head_, ring_.size()));
}

std::uint64_t FlightRecorder::dropped() const { return head_ - size(); }

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  const std::uint64_t n = size();
  out.reserve(n);
  for (std::uint64_t i = head_ - n; i < head_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void FlightRecorder::write_jsonl(std::ostream& os) const {
  const std::uint64_t n = size();
  for (std::uint64_t i = head_ - n; i < head_; ++i) {
    const FlightEvent& e = ring_[i % ring_.size()];
    os << "{\"seq\":" << i << ",\"t_s\":" << e.t_s << ",\"kind\":\"";
    json_escape(os, e.kind);
    os << "\",\"detail\":\"";
    json_escape(os, e.detail);
    os << "\"}\n";
  }
}

}  // namespace greenhpc::obs
