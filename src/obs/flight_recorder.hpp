#pragma once
// Flight recorder: a fixed-size ring of recent structured events, dumped
// as a postmortem artifact when something dies.
//
// The distributed sweep keeps one recorder per worker connection and one
// for the coordinator itself; every protocol/ledger event (spawn, hello,
// assign, block receipt, heartbeat miss, reassignment, rejected obs
// line, death) is appended as it happens. The ring is deliberately
// small: when a worker is `kill -9`ed or a line arrives mangled, the
// LAST few hundred events — the final protocol exchange — are what make
// the failure debuggable, and a bounded ring means recording can stay on
// even on week-long sweeps. write_jsonl emits one JSON object per line
// (oldest surviving event first, with its global sequence number), the
// shape the CI kill jobs validate and upload. The chaos harness reuses
// the same ring + JSONL shape for its per-schedule verdict lane
// (`chaos-events.jsonl`), so one validator reads both artifacts.
//
// Not thread-safe: each recorder is owned by the single thread that runs
// the coordinator event loop (matching the rest of the coordinator's
// state).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace greenhpc::obs {

/// One recorded event. `t_s` is whatever clock the owner runs on — the
/// sweep coordinator records util::MonotoneClock seconds since its start.
struct FlightEvent {
  double t_s = 0.0;
  std::string kind;    ///< short machine tag, e.g. "assign", "hb_miss"
  std::string detail;  ///< free text; may embed (a prefix of) a wire line
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(double t_s, std::string kind, std::string detail = "");

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Events ever recorded.
  [[nodiscard]] std::uint64_t total() const { return head_; }
  /// Events overwritten by the ring (total - size).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Surviving events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// One JSON object per line, oldest surviving event first:
  ///   {"seq":17,"t_s":3.25,"kind":"assign","detail":"start=512 count=256"}
  /// `seq` is the global sequence number, so a dump whose first seq is
  /// nonzero says exactly how much history the ring shed.
  void write_jsonl(std::ostream& os) const;

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t head_ = 0;  ///< next write position == total recorded
};

}  // namespace greenhpc::obs
