#include "obs/fleet.hpp"

#include <cstring>
#include <ostream>

namespace greenhpc::obs {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

int FleetTrace::add_lane(long pid, std::string label) {
  Lane lane;
  lane.pid = pid;
  lane.label = std::move(label);
  lanes_.push_back(std::move(lane));
  return static_cast<int>(lanes_.size()) - 1;
}

void FleetTrace::align(int lane, std::uint64_t remote_now_ns,
                       std::uint64_t local_now_ns) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  if (l.aligned) return;  // first anchor wins: the offset stays constant
  l.offset_ns = static_cast<std::int64_t>(local_now_ns) -
                static_cast<std::int64_t>(remote_now_ns);
  l.aligned = true;
}

bool FleetTrace::aligned(int lane) const {
  return lanes_.at(static_cast<std::size_t>(lane)).aligned;
}

std::uint64_t FleetTrace::map_ns(int lane, std::uint64_t remote_ts_ns) const {
  const Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  const std::int64_t mapped =
      static_cast<std::int64_t>(remote_ts_ns) + l.offset_ns;
  return mapped < 0 ? 0 : static_cast<std::uint64_t>(mapped);
}

void FleetTrace::add_events(int lane,
                            const std::vector<RemoteTraceEvent>& events) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  l.events.reserve(l.events.size() + events.size());
  for (RemoteTraceEvent e : events) {
    e.ts_ns = map_ns(lane, e.ts_ns);
    l.events.push_back(std::move(e));
  }
}

void FleetTrace::add_event(int lane, RemoteTraceEvent event) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  event.ts_ns = map_ns(lane, event.ts_ns);
  l.events.push_back(std::move(event));
}

void FleetTrace::add_dropped(int lane, std::uint64_t dropped) {
  lanes_.at(static_cast<std::size_t>(lane)).dropped += dropped;
}

void FleetTrace::add_local(int lane, const std::vector<ThreadTrace>& snapshot,
                           const char* cat) {
  Lane& l = lanes_.at(static_cast<std::size_t>(lane));
  for (const ThreadTrace& tt : snapshot) {
    for (const TraceEvent& e : tt.events) {
      const char* ecat = e.cat != nullptr ? e.cat : "greenhpc";
      if (cat != nullptr && std::strcmp(ecat, cat) != 0) continue;
      RemoteTraceEvent r;
      r.name = e.name;
      r.cat = ecat;
      r.tid = tt.tid;
      r.phase = e.phase;
      r.ts_ns = map_ns(lane, e.ts_ns);
      r.dur_ns = e.dur_ns;
      r.value = e.value;
      l.events.push_back(std::move(r));
    }
  }
}

std::size_t FleetTrace::event_count(int lane) const {
  return lanes_.at(static_cast<std::size_t>(lane)).events.size();
}

const std::vector<RemoteTraceEvent>& FleetTrace::events(int lane) const {
  return lanes_.at(static_cast<std::size_t>(lane)).events;
}

std::uint64_t FleetTrace::dropped(int lane) const {
  return lanes_.at(static_cast<std::size_t>(lane)).dropped;
}

void FleetTrace::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Metadata first: one process_name record per lane makes every lane
  // visible in the viewer even before (or without) any events.
  for (const Lane& l : lanes_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << l.pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(os, l.label);
    os << "\"}}";
  }
  for (const Lane& l : lanes_) {
    for (const RemoteTraceEvent& e : l.events) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"";
      json_escape(os, e.name);
      os << "\",\"cat\":\"";
      json_escape(os, e.cat.empty() ? std::string("greenhpc") : e.cat);
      os << "\",\"ph\":\"" << e.phase << "\",\"pid\":" << l.pid
         << ",\"tid\":" << e.tid
         << ",\"ts\":" << static_cast<double>(e.ts_ns) * 1e-3;
      if (e.phase == 'X') {
        os << ",\"dur\":" << static_cast<double>(e.dur_ns) * 1e-3;
      } else if (e.phase == 'i') {
        os << ",\"s\":\"t\",\"args\":{\"value\":" << e.value << "}";
      } else if (e.phase == 'C') {
        os << ",\"args\":{\"value\":" << e.value << "}";
      }
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace greenhpc::obs
