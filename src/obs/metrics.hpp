#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-free hot-path updates.
//
// Lookup (Registry::counter/gauge/histogram) takes a mutex and should be
// hoisted out of hot loops — the canonical pattern is a function-local
// static reference:
//
//   static obs::Counter& started =
//       obs::Registry::global().counter("sim.jobs_started");
//   started.add();
//
// Returned references stay valid for the registry's lifetime (entries are
// never erased; reset() zeroes values but keeps the objects). All update
// paths are single relaxed atomic RMWs (CAS loop for doubles), safe from
// any thread.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greenhpc::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written (or accumulated) double value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // fetch_add on atomic<double> is C++20 but takes the locked path on
    // some targets; an explicit CAS loop keeps the semantics portable.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bound histogram: bucket i counts samples <= bounds[i]; one
/// overflow bucket catches the rest. Bounds are set at creation and
/// immutable after.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Estimated q-quantile (q clamped to [0,1]) by linear interpolation
  /// inside the fixed buckets: bucket i spans (bounds[i-1], bounds[i]]
  /// with an implicit lower edge of 0 for the first bucket (every series
  /// we record is a non-negative duration). Quantiles landing in the
  /// overflow bucket saturate to the last finite bound — the histogram
  /// cannot know more. Returns 0 on an empty histogram.
  [[nodiscard]] double percentile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram (bounds + per-bucket counts).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1, last = overflow
  double sum = 0.0;

  [[nodiscard]] std::uint64_t total() const;
  /// Same fixed-bucket interpolation as Histogram::percentile.
  [[nodiscard]] double percentile(double q) const;
};

/// Structured point-in-time copy of a whole registry — the unit the
/// distributed sweep ships over the wire on `stat` lines
/// (core/sweep_protocol.hpp) and the coordinator folds into its fleet
/// rollup. Entries are name-sorted (map iteration order).
struct StatSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const std::uint64_t* find_counter(std::string_view name) const;
  [[nodiscard]] const double* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(std::string_view name) const;
};

/// Named metric store. `global()` is the process-wide instance every
/// instrumentation site uses; independent instances exist for tests.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Structured copy of every metric (safe from any thread; concurrent
  /// updates land in either this snapshot or the next).
  [[nodiscard]] StatSnapshot snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} snapshot.
  void write_json(std::ostream& os) const;
  /// One `kind,name,value` row per scalar; histograms expand per bucket.
  void write_csv(std::ostream& os) const;
  /// Zero every value; registered entries (and references) survive.
  void reset();
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace greenhpc::obs
