#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace greenhpc::obs {

namespace detail {
std::atomic<bool> trace_enabled{false};
}  // namespace detail

namespace {

// Per-thread ring of events. The owning thread is the only writer; `head`
// is published with release so a quiescent reader (snapshot/reset) sees
// fully written slots after an acquire load. Slots wrap silently once the
// ring is full — `dropped()` reports how much history was lost.
struct Ring {
  explicit Ring(int tid_, std::size_t capacity)
      : tid(tid_), slots(capacity) {}

  void push(const TraceEvent& e) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % slots.size()] = e;
    head.store(h + 1, std::memory_order_release);
  }

  int tid;
  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> head{0};
};

// Registry of every ring ever created. Rings are shared_ptr-owned so a
// buffer outlives its thread and can still be drained after joins.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  int next_tid = 0;
  std::size_t capacity = 1u << 16;
};

RingRegistry& registry() {
  static RingRegistry r;
  return r;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    RingRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto r = std::make_shared<Ring>(reg.next_tid++, reg.capacity);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

void json_escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

void Tracer::set_enabled(bool on) {
  // Acts as the epoch anchor too: the first enable pins t=0 near the
  // start of the traced region instead of process start.
  if (on) (void)epoch();
  detail::trace_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::set_buffer_capacity(std::size_t events) {
  RingRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.capacity = events == 0 ? 1 : events;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void Tracer::record_complete(const char* name, const char* cat,
                             std::uint64_t begin_ns, std::uint64_t end_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = begin_ns;
  e.dur_ns = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  e.phase = 'X';
  local_ring().push(e);
}

void Tracer::record_instant(const char* name, const char* cat, double value) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  e.phase = 'i';
  e.value = value;
  local_ring().push(e);
}

void Tracer::record_counter(const char* name, double value) {
  TraceEvent e;
  e.name = name;
  e.cat = "greenhpc";
  e.ts_ns = now_ns();
  e.phase = 'C';
  e.value = value;
  local_ring().push(e);
}

std::vector<ThreadTrace> Tracer::snapshot() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<ThreadTrace> out;
  out.reserve(rings.size());
  for (const auto& ring : rings) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t n = std::min(h, cap);
    ThreadTrace tt;
    tt.tid = ring->tid;
    tt.dropped = h - n;
    tt.events.reserve(n);
    for (std::uint64_t i = h - n; i < h; ++i) {
      tt.events.push_back(ring->slots[i % cap]);
    }
    out.push_back(std::move(tt));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) { return a.tid < b.tid; });
  return out;
}

std::vector<SpanStat> Tracer::aggregate_spans() {
  std::map<std::string, SpanStat> by_name;
  for (const ThreadTrace& tt : snapshot()) {
    for (const TraceEvent& e : tt.events) {
      if (e.phase != 'X') continue;
      SpanStat& s = by_name[e.name];
      if (s.name.empty()) s.name = e.name;
      ++s.count;
      s.total_ms += static_cast<double>(e.dur_ns) * 1e-6;
    }
  }
  std::vector<SpanStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  return out;
}

void Tracer::write_chrome_json(std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& tt : snapshot()) {
    for (const TraceEvent& e : tt.events) {
      if (!first) os << ",";
      first = false;
      // trace_event ts/dur are microseconds; keep sub-µs precision as a
      // fractional component so short spans stay visible in Perfetto.
      os << "{\"name\":\"";
      json_escape(os, e.name);
      os << "\",\"cat\":\"";
      json_escape(os, e.cat != nullptr ? e.cat : "greenhpc");
      os << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << tt.tid
         << ",\"ts\":" << static_cast<double>(e.ts_ns) * 1e-3;
      if (e.phase == 'X') {
        os << ",\"dur\":" << static_cast<double>(e.dur_ns) * 1e-3;
      } else if (e.phase == 'i') {
        os << ",\"s\":\"t\",\"args\":{\"value\":" << e.value << "}";
      } else if (e.phase == 'C') {
        os << ",\"args\":{\"value\":" << e.value << "}";
      }
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::reset() {
  RingRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

std::uint64_t Tracer::dropped() {
  std::uint64_t total = 0;
  RingRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    total += h > cap ? h - cap : 0;
  }
  return total;
}

}  // namespace greenhpc::obs
