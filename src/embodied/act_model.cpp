#include "embodied/act_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace greenhpc::embodied {

namespace {
// Per-node fab parameters, shaped like the ACT (ISCA'22) published curves:
// energy per area grows steeply at leading-edge nodes (EUV multi-patterning),
// direct gas emissions and material footprint grow more slowly, and defect
// density is higher for the newest nodes.
//            EPA kWh/cm2  GPA kg/cm2  MPA kg/cm2  D0 /cm2
constexpr FabParams kFab[] = {
    /* N28 */ {0.60, 0.18, 0.25, 0.070},
    /* N14 */ {0.85, 0.22, 0.32, 0.090},
    /* N10 */ {1.05, 0.26, 0.38, 0.110},
    /* N7  */ {1.25, 0.30, 0.45, 0.130},
    // EUV multi-patterning drives fab energy per area up steeply at the
    // leading edge (ACT reports ~2-2.5x carbon/cm^2 from 7nm to 3nm).
    /* N5  */ {3.00, 0.34, 0.55, 0.160},
    /* N3  */ {4.40, 0.38, 0.70, 0.200},
};

constexpr const char* kNodeNames[] = {"28nm", "14nm", "10nm", "7nm", "5nm", "3nm"};

[[nodiscard]] constexpr std::size_t index_of(ProcessNode n) {
  return static_cast<std::size_t>(n);
}

// Per-GB memory/storage factors: an energy term (scaled by the fab grid
// intensity) plus a fixed material term. Calibrated so that, at the
// default fab grid, DDR4 lands near 0.9 kgCO2e/GB and HDD-based parallel-
// filesystem storage near 0.014 kgCO2e/GB *system-level* (drives plus
// enclosures, JBOD controllers and PSUs — the deployed unit an HPC site
// procures, which is what Fig. 1's storage bars measure).
struct PerGbParams {
  double kwh_per_gb;
  double material_kg_per_gb;
};
constexpr PerGbParams kDram[] = {
    /* DDR4  */ {1.00, 0.28},
    /* DDR5  */ {0.85, 0.25},
    /* HBM2e */ {1.70, 0.25},
};
constexpr PerGbParams kStorage[] = {
    /* HDD */ {0.0080, 0.0090},
    /* SSD */ {0.1400, 0.0300},
};
}  // namespace

const char* node_name(ProcessNode n) { return kNodeNames[index_of(n)]; }

ActModel::ActModel(Config config) : cfg_(config) {
  GREENHPC_REQUIRE(cfg_.fab_grid.grams_per_kwh() > 0.0, "fab grid intensity must be > 0");
  GREENHPC_REQUIRE(cfg_.packaging_per_die_kg >= 0.0, "packaging carbon must be >= 0");
}

const FabParams& ActModel::fab_params(ProcessNode node) { return kFab[index_of(node)]; }

double ActModel::die_yield(double area_mm2, ProcessNode node) const {
  GREENHPC_REQUIRE(area_mm2 > 0.0, "die area must be positive");
  const double area_cm2 = area_mm2 / 100.0;
  return std::exp(-area_cm2 * fab_params(node).defect_density_per_cm2);
}

Carbon ActModel::logic_die(double area_mm2, ProcessNode node) const {
  GREENHPC_REQUIRE(area_mm2 > 0.0, "die area must be positive");
  const FabParams& fp = fab_params(node);
  const double area_cm2 = area_mm2 / 100.0;
  const double per_cm2_kg = cfg_.fab_grid.grams_per_kwh() / 1000.0 * fp.epa_kwh_per_cm2 +
                            fp.gpa_kg_per_cm2 + fp.mpa_kg_per_cm2;
  return kilograms_co2(area_cm2 * per_cm2_kg / die_yield(area_mm2, node));
}

Carbon ActModel::dram(double gigabytes, DramType type) const {
  GREENHPC_REQUIRE(gigabytes >= 0.0, "memory capacity must be >= 0");
  const PerGbParams& p = kDram[static_cast<std::size_t>(type)];
  const double per_gb_kg =
      cfg_.fab_grid.grams_per_kwh() / 1000.0 * p.kwh_per_gb + p.material_kg_per_gb;
  return kilograms_co2(gigabytes * per_gb_kg);
}

Carbon ActModel::storage(double gigabytes, StorageType type) const {
  GREENHPC_REQUIRE(gigabytes >= 0.0, "storage capacity must be >= 0");
  const PerGbParams& p = kStorage[static_cast<std::size_t>(type)];
  const double per_gb_kg =
      cfg_.fab_grid.grams_per_kwh() / 1000.0 * p.kwh_per_gb + p.material_kg_per_gb;
  return kilograms_co2(gigabytes * per_gb_kg);
}

Carbon ActModel::packaging(int die_count, double substrate_cm2, double interposer_cm2) const {
  GREENHPC_REQUIRE(die_count >= 0, "die count must be >= 0");
  GREENHPC_REQUIRE(substrate_cm2 >= 0.0 && interposer_cm2 >= 0.0,
                   "package areas must be >= 0");
  return kilograms_co2(die_count * cfg_.packaging_per_die_kg +
                       substrate_cm2 * cfg_.substrate_per_cm2_kg +
                       interposer_cm2 * cfg_.interposer_per_cm2_kg);
}

}  // namespace greenhpc::embodied
