#pragma once
// Hardware component descriptions and their embodied carbon.
//
// A processor is a set of chiplets on a package (optionally a 2.5D silicon
// interposer) plus on-package HBM; memory and storage are capacity
// quantities. Embodied carbon of each component is a pure function of the
// spec and an ActModel.

#include <string>
#include <vector>

#include "embodied/act_model.hpp"
#include "util/units.hpp"

namespace greenhpc::embodied {

/// A group of identical chiplets within one package.
struct ChipletSpec {
  double area_mm2 = 0.0;              ///< area of one die
  ProcessNode node = ProcessNode::N7; ///< process generation
  int count = 1;                      ///< identical dies of this kind
};

/// A packaged processor (CPU or GPU module).
struct ProcessorSpec {
  std::string name;
  std::vector<ChipletSpec> chiplets;
  double substrate_cm2 = 0.0;   ///< organic package substrate area
  double interposer_cm2 = 0.0;  ///< 2.5D silicon interposer area (0 = none)
  double hbm_gb = 0.0;          ///< on-package HBM capacity
  /// Module-level overhead beyond the package: carrier PCB, VRMs, cold
  /// plate, mechanical (kgCO2e). Dominant for SXM-class GPU modules.
  double module_overhead_kg = 0.0;
  /// Total silicon area across all chiplets (mm^2).
  [[nodiscard]] double total_die_area_mm2() const;
  /// Total die count across all chiplet groups.
  [[nodiscard]] int total_die_count() const;
};

/// Embodied carbon of one packaged processor: chiplet manufacturing
/// (yield-adjusted per die), packaging, and on-package HBM.
[[nodiscard]] Carbon processor_embodied(const ActModel& model, const ProcessorSpec& spec);

/// Embodied carbon of a DRAM capacity.
[[nodiscard]] Carbon memory_embodied(const ActModel& model, double gigabytes, DramType type);

/// Embodied carbon of a storage capacity.
[[nodiscard]] Carbon storage_embodied(const ActModel& model, double gigabytes,
                                      StorageType type);

// --- reference processor specs used by the Fig. 1 systems -----------------

/// NVIDIA A100-40GB SXM module: one 826 mm^2 GA100 die (7nm-class), six HBM
/// stacks on a CoWoS interposer, 40 GB HBM2e.
[[nodiscard]] ProcessorSpec nvidia_a100_sxm();

/// AMD EPYC 7402 (Rome, 24-core): 4 CCDs (7nm) + 1 IO die (14nm-class) on
/// an SP3 organic substrate.
[[nodiscard]] ProcessorSpec amd_epyc_7402();

/// AMD EPYC 7742 (Rome, 64-core): 8 CCDs (7nm) + 1 IO die (14nm-class).
[[nodiscard]] ProcessorSpec amd_epyc_7742();

/// Intel Xeon Platinum 8174 (Skylake-SP, 24-core): one ~694 mm^2 XCC die
/// (14nm) on an LGA3647 substrate.
[[nodiscard]] ProcessorSpec intel_xeon_8174();

}  // namespace greenhpc::embodied
