#pragma once
// High-performance interconnect embodied carbon.
//
// The paper explicitly omits interconnects from Fig. 1 "due to the lack
// of production carbon-emission reports"; this module makes the omission
// quantifiable: a parametric fat-tree model (per-node NICs and cables,
// port-counted switch tiers) whose defaults are engineering estimates
// from PCB/ASIC mass and the same ACT logic-per-area factors, so the
// ablation bench can show how Fig. 1's shares move when the network is
// included.

#include "embodied/act_model.hpp"
#include "util/units.hpp"

namespace greenhpc::embodied {

/// Parametric description of one system's interconnect.
struct InterconnectSpec {
  int nics_per_node = 1;            ///< HCAs per node
  double nic_kg = 9.0;              ///< embodied carbon of one NIC (PCB + ASIC)
  double cable_kg = 3.0;            ///< per active cable (AOC/DAC average)
  int switch_ports = 40;            ///< radix of one switch
  double switch_kg = 160.0;         ///< embodied carbon of one switch
  /// Fat-tree blow-up: total switch ports per end-point port (2.0-3.0 for
  /// 2:1-oversubscribed to full-bisection three-tier fabrics).
  double topology_factor = 2.5;
};

/// HDR InfiniBand-class defaults (used for the Fig. 1 ablation).
[[nodiscard]] InterconnectSpec hdr_infiniband();

/// Total embodied carbon of the fabric for `node_count` nodes.
[[nodiscard]] Carbon interconnect_embodied(const InterconnectSpec& spec, long node_count);

}  // namespace greenhpc::embodied
