#include "embodied/metrics.hpp"

#include "util/error.hpp"

namespace greenhpc::embodied {

Carbon operational_carbon(Power power, Duration duration, CarbonIntensity ci) {
  GREENHPC_REQUIRE(power.watts() >= 0.0, "power must be >= 0");
  GREENHPC_REQUIRE(duration.seconds() >= 0.0, "duration must be >= 0");
  return (power * duration) * ci;
}

Carbon amortized_embodied(Carbon device_embodied, Duration run_time, Duration lifetime) {
  GREENHPC_REQUIRE(lifetime.seconds() > 0.0, "lifetime must be positive");
  GREENHPC_REQUIRE(run_time.seconds() >= 0.0, "run time must be >= 0");
  return device_embodied * (run_time.seconds() / lifetime.seconds());
}

double flops_per_gram(double sustained_pflops, Duration lifetime, Carbon embodied,
                      Power avg_power, CarbonIntensity ci) {
  GREENHPC_REQUIRE(sustained_pflops > 0.0, "performance must be positive");
  const double total_flops = sustained_pflops * 1e15 * lifetime.seconds();
  const Carbon total = embodied + operational_carbon(avg_power, lifetime, ci);
  GREENHPC_REQUIRE(total.grams() > 0.0, "total carbon must be positive");
  return total_flops / total.grams();
}

}  // namespace greenhpc::embodied
