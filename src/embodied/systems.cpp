#include "embodied/systems.hpp"

#include "util/error.hpp"

namespace greenhpc::embodied {

double EmbodiedBreakdown::memory_storage_share() const {
  const Carbon t = total();
  if (t.grams() <= 0.0) return 0.0;
  return (dram + storage) / t;
}

double EmbodiedBreakdown::share(Carbon part) const {
  const Carbon t = total();
  return t.grams() > 0.0 ? part / t : 0.0;
}

EmbodiedBreakdown embodied_breakdown(const ActModel& model, const SystemInventory& system) {
  GREENHPC_REQUIRE(system.cpu_count >= 0 && system.gpu_count >= 0 && system.node_count >= 0,
                   "inventory counts must be >= 0");
  EmbodiedBreakdown b;
  b.cpu = processor_embodied(model, system.cpu) * static_cast<double>(system.cpu_count) +
          kilograms_co2(system.node_overhead_kg * static_cast<double>(system.node_count));
  if (system.gpu && system.gpu_count > 0) {
    b.gpu = processor_embodied(model, *system.gpu) * static_cast<double>(system.gpu_count);
  }
  b.dram = memory_embodied(model, system.dram_gb, system.dram_type);
  b.storage = storage_embodied(model, system.storage_gb, system.storage_type);
  return b;
}

namespace {
constexpr double kPetabyteGb = 1.0e6;  // decimal PB, matching vendor specs
}

SystemInventory juwels_booster() {
  SystemInventory s;
  s.name = "Juwels Booster";
  s.node_count = 936;  // 936 nodes x (2 EPYC + 4 A100)
  s.cpu = amd_epyc_7402();
  s.cpu_count = 1872;
  s.gpu = nvidia_a100_sxm();
  s.gpu_count = 3744;
  s.dram_gb = 0.47 * kPetabyteGb;
  s.dram_type = DramType::DDR4;
  s.storage_gb = 37.6 * kPetabyteGb;
  s.storage_type = StorageType::HDD;
  // Dense liquid-cooled GPU superchassis: NVSwitch baseboard, 4x HDR
  // NICs, mainboard, cooling distribution.
  s.node_overhead_kg = 398.0;
  s.avg_power = megawatts(1.8);
  s.peak_pflops = 44.1;  // TOP500 Rmax
  s.lifetime_years = 6;
  return s;
}

SystemInventory supermuc_ng() {
  SystemInventory s;
  s.name = "SuperMUC-NG";
  s.node_count = 6480;  // dual-socket thin/fat nodes
  s.cpu = intel_xeon_8174();
  s.cpu_count = 12960;
  s.dram_gb = 0.72 * kPetabyteGb;
  s.dram_type = DramType::DDR4;
  s.storage_gb = 70.26 * kPetabyteGb;
  s.storage_type = StorageType::HDD;
  // Lenovo direct-water-cooled thin node (mainboard, PSU share, NIC).
  s.node_overhead_kg = 126.0;
  s.avg_power = megawatts(3.0);
  s.peak_pflops = 19.5;
  s.lifetime_years = 5;  // 2019-2024 per Table 1
  return s;
}

SystemInventory hawk() {
  SystemInventory s;
  s.name = "Hawk";
  s.node_count = 5632;  // dual-socket Apollo 9000
  s.cpu = amd_epyc_7742();
  s.cpu_count = 11264;
  s.dram_gb = 1.4 * kPetabyteGb;
  s.dram_type = DramType::DDR4;
  s.storage_gb = 42.0 * kPetabyteGb;
  s.storage_type = StorageType::HDD;
  // HPE Apollo dense chassis: heavier per-node mechanical/fabric share.
  s.node_overhead_kg = 205.0;
  s.avg_power = megawatts(3.5);
  s.peak_pflops = 19.3;
  s.lifetime_years = 6;
  return s;
}

std::vector<SystemInventory> fig1_systems() {
  return {juwels_booster(), supermuc_ng(), hawk()};
}

SystemInventory frontier() {
  SystemInventory s;
  s.name = "Frontier";
  s.node_count = 9408;
  // "Optimized 3rd Gen EPYC" is Rome/Milan-class: reuse the 8+1 layout.
  s.cpu = amd_epyc_7742();
  s.cpu.name = "AMD EPYC (Trento)";
  s.cpu_count = 9408;
  // MI250X: two 724 mm^2 GCDs (6nm-class, modeled as N7) + 128 GB HBM2e
  // on a large interposer.
  ProcessorSpec mi250x;
  mi250x.name = "AMD MI250X";
  mi250x.chiplets = {{724.0, ProcessNode::N7, 2}};
  mi250x.substrate_cm2 = 70.0;
  mi250x.interposer_cm2 = 28.0;
  mi250x.hbm_gb = 128.0;
  mi250x.module_overhead_kg = 125.0;
  s.gpu = mi250x;
  s.gpu_count = 9408 * 4;
  s.dram_gb = 4.8e6;  // 512 GB DDR4 per node
  s.dram_type = DramType::DDR4;
  s.storage_gb = 700.0e6;  // Orion parallel filesystem
  s.storage_type = StorageType::HDD;
  s.node_overhead_kg = 450.0;  // Cray EX dense liquid-cooled blades
  s.avg_power = megawatts(20.0);  // the paper's continuous-operation figure
  s.peak_pflops = 1194.0;         // TOP500 Rmax
  s.lifetime_years = 6;
  return s;
}

SystemInventory aurora_estimate() {
  SystemInventory s;
  s.name = "Aurora (estimate)";
  s.node_count = 10624;
  // Xeon Max (Sapphire Rapids HBM): 4 compute tiles + HBM on package.
  ProcessorSpec xeon_max;
  xeon_max.name = "Intel Xeon Max";
  xeon_max.chiplets = {{400.0, ProcessNode::N7, 4}};
  xeon_max.substrate_cm2 = 57.0;
  xeon_max.hbm_gb = 64.0;
  s.cpu = xeon_max;
  s.cpu_count = 10624 * 2;
  // Ponte Vecchio: the paper itself cites its 63 chiplets across five
  // process nodes [31]. Modeled as the dominant silicon groups: 16
  // compute tiles (N5), 2 base tiles (N7), 8 Xe-Link/RAMBO tiles (N7);
  // the remaining dies of the 63 are HBM stacks, covered by hbm_gb.
  ProcessorSpec pvc;
  pvc.name = "Intel Ponte Vecchio";
  pvc.chiplets = {{41.0, ProcessNode::N5, 16},
                  {650.0, ProcessNode::N7, 2},
                  {24.0, ProcessNode::N7, 8}};
  pvc.substrate_cm2 = 75.0;
  pvc.interposer_cm2 = 30.0;  // EMIB bridges + Foveros base
  pvc.hbm_gb = 128.0;
  pvc.module_overhead_kg = 140.0;
  s.gpu = pvc;
  s.gpu_count = 10624 * 6;
  s.dram_gb = 10.9e6;
  s.dram_type = DramType::DDR5;
  s.storage_gb = 230.0e6;  // DAOS, SSD-based
  s.storage_type = StorageType::SSD;
  s.node_overhead_kg = 480.0;
  s.avg_power = megawatts(60.0);  // the paper's estimate for Aurora
  s.peak_pflops = 1012.0;
  s.lifetime_years = 6;
  return s;
}

}  // namespace greenhpc::embodied
