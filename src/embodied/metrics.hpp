#pragma once
// Carbon-efficiency metrics (paper section 2.1, following Gupta et al.'s
// ACT): Carbon-Delay-Product and Carbon-Energy-Product, plus the embodied/
// operational composition helpers shared by the DSE and procurement
// modules.

#include "util/units.hpp"

namespace greenhpc::embodied {

/// Complete carbon accounting of one design executing one workload.
struct CarbonMetrics {
  Carbon embodied;     ///< amortized embodied share attributed to this run
  Carbon operational;  ///< grid emissions of the run's energy
  Duration delay;      ///< workload completion time
  Energy energy;       ///< energy consumed

  /// Total carbon attributed to the run.
  [[nodiscard]] Carbon total() const { return embodied + operational; }
  /// Carbon-Delay Product (gCO2e * s): favours fast, clean designs.
  [[nodiscard]] double cdp() const { return total().grams() * delay.seconds(); }
  /// Carbon-Energy Product (gCO2e * J): favours frugal, clean designs.
  [[nodiscard]] double cep() const { return total().grams() * energy.joules(); }
  /// Energy-Delay Product (J * s), the classical carbon-blind metric.
  [[nodiscard]] double edp() const { return energy.joules() * delay.seconds(); }
};

/// Operational carbon of drawing `power` for `duration` at intensity `ci`.
[[nodiscard]] Carbon operational_carbon(Power power, Duration duration, CarbonIntensity ci);

/// Share of a device's total embodied carbon attributable to a run of
/// `run_time` on a device with the given service lifetime (linear
/// amortization, the standard accounting convention).
[[nodiscard]] Carbon amortized_embodied(Carbon device_embodied, Duration run_time,
                                        Duration lifetime);

/// Carbon efficiency in FLOP per gCO2e over a lifetime: sustained
/// performance integrated over life divided by (embodied + operational)
/// carbon. This is the ranking quantity of the proposed "Carbon500" list.
[[nodiscard]] double flops_per_gram(double sustained_pflops, Duration lifetime,
                                    Carbon embodied, Power avg_power, CarbonIntensity ci);

}  // namespace greenhpc::embodied
