#include "embodied/interconnect.hpp"

#include <cmath>

#include "util/error.hpp"

namespace greenhpc::embodied {

InterconnectSpec hdr_infiniband() {
  return InterconnectSpec{};  // the defaults model HDR-class fabrics
}

Carbon interconnect_embodied(const InterconnectSpec& spec, long node_count) {
  GREENHPC_REQUIRE(node_count >= 0, "node count must be >= 0");
  GREENHPC_REQUIRE(spec.nics_per_node >= 0 && spec.switch_ports >= 1,
                   "interconnect spec out of range");
  GREENHPC_REQUIRE(spec.topology_factor >= 1.0,
                   "topology factor must be >= 1 (at least one switch port per endpoint)");
  const double endpoints =
      static_cast<double>(node_count) * static_cast<double>(spec.nics_per_node);
  const double nic_total = endpoints * spec.nic_kg;
  // Each endpoint port implies topology_factor switch ports; cables scale
  // with total port count (endpoint links + inter-switch links).
  const double switch_count =
      std::ceil(endpoints * spec.topology_factor / static_cast<double>(spec.switch_ports));
  const double switch_total = switch_count * spec.switch_kg;
  const double cable_total = endpoints * spec.topology_factor * spec.cable_kg / 2.0;
  return kilograms_co2(nic_total + switch_total + cable_total);
}

}  // namespace greenhpc::embodied
