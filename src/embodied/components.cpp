#include "embodied/components.hpp"

#include "util/error.hpp"

namespace greenhpc::embodied {

double ProcessorSpec::total_die_area_mm2() const {
  double area = 0.0;
  for (const auto& c : chiplets) area += c.area_mm2 * c.count;
  return area;
}

int ProcessorSpec::total_die_count() const {
  int n = 0;
  for (const auto& c : chiplets) n += c.count;
  return n;
}

Carbon processor_embodied(const ActModel& model, const ProcessorSpec& spec) {
  GREENHPC_REQUIRE(!spec.chiplets.empty(), "processor spec needs at least one chiplet");
  Carbon total{};
  for (const auto& c : spec.chiplets) {
    GREENHPC_REQUIRE(c.count >= 1, "chiplet count must be >= 1");
    total += model.logic_die(c.area_mm2, c.node) * static_cast<double>(c.count);
  }
  total += model.packaging(spec.total_die_count(), spec.substrate_cm2, spec.interposer_cm2);
  if (spec.hbm_gb > 0.0) total += model.dram(spec.hbm_gb, DramType::HBM2e);
  total += kilograms_co2(spec.module_overhead_kg);
  return total;
}

Carbon memory_embodied(const ActModel& model, double gigabytes, DramType type) {
  return model.dram(gigabytes, type);
}

Carbon storage_embodied(const ActModel& model, double gigabytes, StorageType type) {
  return model.storage(gigabytes, type);
}

ProcessorSpec nvidia_a100_sxm() {
  ProcessorSpec s;
  s.name = "NVIDIA A100-40GB SXM";
  s.chiplets = {{826.0, ProcessNode::N7, 1}};
  s.substrate_cm2 = 55.0;   // SXM4 board-level substrate share
  s.interposer_cm2 = 14.0;  // CoWoS interposer under die + 6 HBM stacks
  s.hbm_gb = 40.0;
  s.module_overhead_kg = 115.0;  // SXM carrier, VRM stages, cold plate
  return s;
}

ProcessorSpec amd_epyc_7402() {
  ProcessorSpec s;
  s.name = "AMD EPYC 7402";
  s.chiplets = {{74.0, ProcessNode::N7, 4},    // CCDs
                {416.0, ProcessNode::N14, 1}}; // IO die (GloFo 14nm-class)
  s.substrate_cm2 = 43.5;  // SP3: 58 x 75 mm
  return s;
}

ProcessorSpec amd_epyc_7742() {
  ProcessorSpec s;
  s.name = "AMD EPYC 7742";
  s.chiplets = {{74.0, ProcessNode::N7, 8},
                {416.0, ProcessNode::N14, 1}};
  s.substrate_cm2 = 43.5;
  return s;
}

ProcessorSpec intel_xeon_8174() {
  ProcessorSpec s;
  s.name = "Intel Xeon Platinum 8174";
  s.chiplets = {{694.0, ProcessNode::N14, 1}};  // Skylake XCC
  s.substrate_cm2 = 42.9;                       // LGA3647: 76.0 x 56.5 mm
  return s;
}

}  // namespace greenhpc::embodied
