#pragma once
// Carbon-aware processor design-space exploration (paper section 2.1).
//
// The paper argues that "the optimal design point could change depending on
// the design objective metric such as CDP, CEP, and others" and that the
// choice depends on "the carbon intensity of the power grid at which the
// processor will operate". This module makes that claim testable: a
// parametric processor model (process node x core count x frequency x
// chiplet split) is evaluated under a reference workload, and the optimum
// is located for each (objective, grid intensity) pair.

#include <string>
#include <vector>

#include "embodied/act_model.hpp"
#include "embodied/metrics.hpp"
#include "util/units.hpp"

namespace greenhpc::embodied {

/// Objectives a designer may optimize (section 2.1 lists CDP/CEP "and
/// others"; Delay/Energy/EDP are the carbon-blind classics).
enum class Objective { Delay, Energy, Edp, TotalCarbon, Cdp, Cep };

/// Display name of an objective.
[[nodiscard]] const char* objective_name(Objective o);

/// One candidate processor configuration.
struct DesignPoint {
  ProcessNode node = ProcessNode::N7;
  int cores = 32;
  double freq_ghz = 2.0;
  int chiplet_count = 1;  ///< cores split evenly across this many dies
};

/// Reference workload the candidate must execute.
struct WorkloadModel {
  double total_ops = 1.0e15;       ///< work to complete
  double parallel_fraction = 0.97; ///< Amdahl parallel share
  double ops_per_cycle = 4.0;      ///< per-core IPC x SIMD width
};

/// Per-node core technology parameters (area and power of one core).
struct CoreTech {
  double core_area_mm2;     ///< area of one core including L2 share
  double uncore_area_mm2;   ///< per-die fixed area (IO, fabric)
  double dyn_watt_at_1ghz;  ///< dynamic power of one core at 1 GHz
  double freq_exponent;     ///< P_dyn ~ f^freq_exponent (voltage scaling)
  double static_watt;       ///< leakage per core
  double max_freq_ghz;      ///< process frequency ceiling
};

/// Technology parameters for a node (built-in table; newer nodes are
/// denser and more energy-efficient but carry higher embodied carbon per
/// area — the tension the experiment explores).
[[nodiscard]] const CoreTech& core_tech(ProcessNode node);

/// Full evaluation of one design point.
struct DesignEvaluation {
  DesignPoint point;
  CarbonMetrics metrics;   ///< embodied share amortized over device lifetime
  Carbon device_embodied;  ///< total embodied carbon of the device
  Power power;             ///< power while executing the workload

  /// Value of the chosen objective (lower is better for all objectives).
  [[nodiscard]] double objective_value(Objective o) const;
};

/// Explorer over the processor design space.
class DesignSpaceExplorer {
 public:
  struct Config {
    WorkloadModel workload{};
    Duration device_lifetime = days(365.0 * 4.0);  ///< amortization window
    /// Fraction of the lifetime the device spends executing this workload
    /// class; idle time's embodied carbon is charged to the work actually
    /// done, so a lower duty cycle raises the embodied share of each run.
    double duty_cycle = 0.4;
  };

  DesignSpaceExplorer(const ActModel& model, Config config);

  /// Evaluate a single candidate under the given operating-grid intensity.
  [[nodiscard]] DesignEvaluation evaluate(const DesignPoint& point,
                                          CarbonIntensity grid) const;

  /// Default sweep grid: all nodes x {8..128 cores} x {1.5..3.5 GHz} x
  /// {1, 2, 4, 8 chiplets}, filtered to feasible points (frequency within
  /// the node's ceiling, cores divisible by chiplet count).
  [[nodiscard]] std::vector<DesignPoint> default_grid() const;

  /// Best design for an objective at a grid intensity (exhaustive scan of
  /// `candidates`, parallelized over the candidate list).
  [[nodiscard]] DesignEvaluation best(const std::vector<DesignPoint>& candidates,
                                      Objective objective, CarbonIntensity grid) const;

  /// Non-dominated designs in the (delay, total carbon) plane — the
  /// Pareto front a section-2.1 designer actually navigates: every point
  /// on it is the carbon-optimal design for some performance target.
  /// Sorted by ascending delay; evaluated in parallel.
  [[nodiscard]] std::vector<DesignEvaluation> pareto_front(
      const std::vector<DesignPoint>& candidates, CarbonIntensity grid) const;

 private:
  const ActModel* model_;
  Config cfg_;
};

}  // namespace greenhpc::embodied
