#include "embodied/dse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace greenhpc::embodied {

namespace {
// Newer nodes: smaller cores, lower dynamic energy, but see act_model.cpp —
// higher embodied carbon per area. Core-area scaling flattens toward the
// leading edge (SRAM and analog stop shrinking), so embodied carbon *per
// core* is U-shaped across nodes — the tension behind section 2.1's
// grid-dependent optimal node. Leakage bottoms out around 7nm and creeps
// back up (thin-oxide leakage), matching industry characterization.
//            core_mm2 uncore_mm2 dyn@1GHz  f_exp  static  f_max
constexpr CoreTech kTech[] = {
    /* N28 */ {4.50, 42.0, 1.00, 2.2, 0.30, 3.2},
    /* N14 */ {2.80, 34.0, 0.66, 2.2, 0.24, 3.6},
    /* N10 */ {2.30, 30.0, 0.54, 2.2, 0.22, 3.8},
    /* N7  */ {1.90, 26.0, 0.44, 2.2, 0.20, 4.0},
    /* N5  */ {1.60, 24.0, 0.37, 2.2, 0.21, 4.1},
    /* N3  */ {1.40, 22.0, 0.32, 2.2, 0.23, 4.2},
};

constexpr const char* kObjectiveNames[] = {"delay", "energy", "EDP",
                                           "total-carbon", "CDP", "CEP"};
}  // namespace

const CoreTech& core_tech(ProcessNode node) {
  return kTech[static_cast<std::size_t>(node)];
}

const char* objective_name(Objective o) {
  return kObjectiveNames[static_cast<std::size_t>(o)];
}

double DesignEvaluation::objective_value(Objective o) const {
  switch (o) {
    case Objective::Delay: return metrics.delay.seconds();
    case Objective::Energy: return metrics.energy.joules();
    case Objective::Edp: return metrics.edp();
    case Objective::TotalCarbon: return metrics.total().grams();
    case Objective::Cdp: return metrics.cdp();
    case Objective::Cep: return metrics.cep();
  }
  return 0.0;
}

DesignSpaceExplorer::DesignSpaceExplorer(const ActModel& model, Config config)
    : model_(&model), cfg_(config) {
  GREENHPC_REQUIRE(cfg_.workload.total_ops > 0.0, "workload must have positive work");
  GREENHPC_REQUIRE(cfg_.workload.parallel_fraction > 0.0 && cfg_.workload.parallel_fraction <= 1.0,
                   "parallel fraction must be in (0,1]");
  GREENHPC_REQUIRE(cfg_.duty_cycle > 0.0 && cfg_.duty_cycle <= 1.0,
                   "duty cycle must be in (0,1]");
}

DesignEvaluation DesignSpaceExplorer::evaluate(const DesignPoint& point,
                                               CarbonIntensity grid) const {
  GREENHPC_REQUIRE(point.cores >= 1, "design needs at least one core");
  GREENHPC_REQUIRE(point.chiplet_count >= 1 && point.cores % point.chiplet_count == 0,
                   "cores must divide evenly across chiplets");
  const CoreTech& tech = core_tech(point.node);
  GREENHPC_REQUIRE(point.freq_ghz > 0.0 && point.freq_ghz <= tech.max_freq_ghz,
                   "frequency outside the node's range");

  // --- performance: Amdahl speedup over a single-core baseline ---
  const WorkloadModel& w = cfg_.workload;
  const double core_rate = w.ops_per_cycle * point.freq_ghz * 1e9;  // ops/s
  const double f = w.parallel_fraction;
  const double speedup = 1.0 / ((1.0 - f) + f / static_cast<double>(point.cores));
  const Duration delay = seconds(w.total_ops / (core_rate * speedup));

  // --- power: all cores powered, dynamic part scales with utilization ---
  const double util = speedup / static_cast<double>(point.cores);
  const double dyn_per_core =
      tech.dyn_watt_at_1ghz * std::pow(point.freq_ghz, tech.freq_exponent);
  const Power power = watts(static_cast<double>(point.cores) *
                            (tech.static_watt + dyn_per_core * util));
  const Energy energy = power * delay;

  // --- embodied: the section-2.1 packaging trade-off. The uncore (memory
  //     controllers, IO, fabric) is partitioned across chiplets; splitting
  //     costs a die-to-die PHY per chiplet plus extra bonding, but small
  //     dies yield far better — so chiplets pay off for large designs on
  //     defect-prone nodes and lose for small ones. ---
  constexpr double kD2dPhyMm2 = 6.0;
  const double cores_per_die =
      static_cast<double>(point.cores) / static_cast<double>(point.chiplet_count);
  const double die_area =
      cores_per_die * tech.core_area_mm2 +
      tech.uncore_area_mm2 / static_cast<double>(point.chiplet_count) +
      (point.chiplet_count > 1 ? kD2dPhyMm2 : 0.0);
  Carbon device = model_->logic_die(die_area, point.node) *
                  static_cast<double>(point.chiplet_count);
  const double total_silicon = die_area * point.chiplet_count;
  const double substrate_cm2 = 6.0 + 0.02 * total_silicon;
  device += model_->packaging(point.chiplet_count, substrate_cm2, 0.0);

  DesignEvaluation ev;
  ev.point = point;
  ev.device_embodied = device;
  ev.power = power;
  ev.metrics.delay = delay;
  ev.metrics.energy = energy;
  ev.metrics.operational = operational_carbon(power, delay, grid);
  ev.metrics.embodied =
      amortized_embodied(device, delay, cfg_.device_lifetime * cfg_.duty_cycle);
  return ev;
}

std::vector<DesignPoint> DesignSpaceExplorer::default_grid() const {
  std::vector<DesignPoint> grid;
  for (ProcessNode node : all_nodes()) {
    const CoreTech& tech = core_tech(node);
    for (int cores : {8, 16, 24, 32, 48, 64, 96, 128}) {
      for (double freq = 1.5; freq <= tech.max_freq_ghz + 1e-9; freq += 0.5) {
        for (int chiplets : {1, 2, 4, 8}) {
          if (cores % chiplets != 0) continue;
          grid.push_back({node, cores, freq, chiplets});
        }
      }
    }
  }
  return grid;
}

std::vector<DesignEvaluation> DesignSpaceExplorer::pareto_front(
    const std::vector<DesignPoint>& candidates, CarbonIntensity grid) const {
  GREENHPC_REQUIRE(!candidates.empty(), "candidate set must not be empty");
  std::vector<DesignEvaluation> evals(candidates.size());
  util::parallel_for(candidates.size(), [&](std::size_t i) {
    evals[i] = evaluate(candidates[i], grid);
  });
  std::sort(evals.begin(), evals.end(),
            [](const DesignEvaluation& a, const DesignEvaluation& b) {
              if (a.metrics.delay != b.metrics.delay) {
                return a.metrics.delay < b.metrics.delay;
              }
              return a.metrics.total().grams() < b.metrics.total().grams();
            });
  // Sweep ascending in delay; keep designs that strictly improve carbon.
  std::vector<DesignEvaluation> front;
  double best_carbon = std::numeric_limits<double>::infinity();
  for (const auto& ev : evals) {
    if (ev.metrics.total().grams() < best_carbon - 1e-12) {
      best_carbon = ev.metrics.total().grams();
      front.push_back(ev);
    }
  }
  return front;
}

DesignEvaluation DesignSpaceExplorer::best(const std::vector<DesignPoint>& candidates,
                                           Objective objective, CarbonIntensity grid) const {
  GREENHPC_REQUIRE(!candidates.empty(), "candidate set must not be empty");
  std::mutex mutex;
  DesignEvaluation best_eval;
  double best_value = std::numeric_limits<double>::infinity();
  util::parallel_for(candidates.size(), [&](std::size_t i) {
    const DesignEvaluation ev = evaluate(candidates[i], grid);
    const double value = ev.objective_value(objective);
    std::lock_guard lock(mutex);
    if (value < best_value) {
      best_value = value;
      best_eval = ev;
    }
  });
  return best_eval;
}

}  // namespace greenhpc::embodied
