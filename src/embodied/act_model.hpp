#pragma once
// ACT-style embodied-carbon model (Gupta et al., ISCA'22 — reference [32]
// of the paper; the methodology behind the paper's Fig. 1 via Li et al.
// [37]).
//
// Embodied carbon of a logic die:
//
//   C_logic = area / yield(area) * (CI_fab * EPA + GPA + MPA)
//
// where EPA is fab energy per wafer area (kWh/cm^2), GPA direct gas
// emissions per area (kgCO2e/cm^2), MPA upstream material footprint per
// area (kgCO2e/cm^2), CI_fab the carbon intensity of the fab's electricity
// supply, and yield the Poisson die-yield model exp(-area * D0).
//
// Memory and storage are modeled per GB (energy + material terms), and
// packaging contributes per-die bonding plus substrate/interposer area
// terms. All defaults are calibrated against the published ACT curves and
// the paper's Fig. 1 shares; see systems.cpp for the calibration targets.

#include <array>

#include "util/units.hpp"

namespace greenhpc::embodied {

/// Semiconductor process generations the model covers.
enum class ProcessNode { N28, N14, N10, N7, N5, N3 };

/// All modeled nodes, oldest to newest.
[[nodiscard]] constexpr std::array<ProcessNode, 6> all_nodes() {
  return {ProcessNode::N28, ProcessNode::N14, ProcessNode::N10,
          ProcessNode::N7,  ProcessNode::N5,  ProcessNode::N3};
}

/// Display name ("7nm", ...).
[[nodiscard]] const char* node_name(ProcessNode n);

/// Fab manufacturing parameters for one process node.
struct FabParams {
  double epa_kwh_per_cm2;        ///< fab energy per die area
  double gpa_kg_per_cm2;         ///< direct (scope-1) gas emissions per area
  double mpa_kg_per_cm2;         ///< upstream material carbon per area
  double defect_density_per_cm2; ///< D0 of the Poisson yield model
};

/// DRAM generations (per-GB factors differ by density/process maturity).
enum class DramType { DDR4, DDR5, HBM2e };

/// Storage technologies.
enum class StorageType { HDD, SSD };

/// The embodied-carbon model. Immutable after construction; all queries are
/// pure functions, so one instance can be shared across threads.
class ActModel {
 public:
  /// Configuration knobs; defaults reproduce the calibration targets.
  struct Config {
    /// Carbon intensity of the fab's electricity. Leading-edge fabs sit in
    /// East-Asian grids around 500-700 gCO2/kWh; ACT's default scenario.
    CarbonIntensity fab_grid = grams_per_kwh(620.0);
    /// Per-die packaging/bonding carbon (kgCO2e per die attached).
    double packaging_per_die_kg = 0.5;
    /// Organic substrate carbon per cm^2 of package substrate.
    double substrate_per_cm2_kg = 0.18;
    /// 2.5D silicon interposer carbon per cm^2 (processed on a trailing
    /// node, hence cheaper per area than leading-edge logic).
    double interposer_per_cm2_kg = 0.30;
  };

  ActModel() : ActModel(Config{}) {}
  explicit ActModel(Config config);

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Fab parameters for a node (the built-in per-node table).
  [[nodiscard]] static const FabParams& fab_params(ProcessNode node);

  /// Poisson die yield for a die of `area_mm2` on `node`.
  [[nodiscard]] double die_yield(double area_mm2, ProcessNode node) const;

  /// Embodied carbon of one logic die (manufacturing only; packaging is
  /// separate). area_mm2 > 0.
  [[nodiscard]] Carbon logic_die(double area_mm2, ProcessNode node) const;

  /// Embodied carbon of `gigabytes` of DRAM of the given generation.
  [[nodiscard]] Carbon dram(double gigabytes, DramType type) const;

  /// Embodied carbon of `gigabytes` of storage of the given technology.
  [[nodiscard]] Carbon storage(double gigabytes, StorageType type) const;

  /// Packaging carbon: per-die bonding for `die_count` dies, substrate of
  /// `substrate_cm2`, plus an optional 2.5D interposer of `interposer_cm2`.
  [[nodiscard]] Carbon packaging(int die_count, double substrate_cm2,
                                 double interposer_cm2 = 0.0) const;

 private:
  Config cfg_;
};

}  // namespace greenhpc::embodied
