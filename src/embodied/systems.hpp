#pragma once
// System inventories for the paper's Fig. 1 (Top-3 German HPC systems) and
// the per-component embodied-carbon breakdown.

#include <optional>
#include <string>

#include "embodied/components.hpp"
#include "util/units.hpp"

namespace greenhpc::embodied {

/// Full inventory of one HPC system, with the capacity figures the paper
/// quotes verbatim in section 2 plus the operational figures (power, peak
/// performance, lifetime) used by the Carbon500 and lifetime experiments.
struct SystemInventory {
  std::string name;
  long node_count = 0;
  ProcessorSpec cpu;
  long cpu_count = 0;
  std::optional<ProcessorSpec> gpu;
  long gpu_count = 0;
  double dram_gb = 0.0;
  DramType dram_type = DramType::DDR4;
  double storage_gb = 0.0;
  StorageType storage_type = StorageType::HDD;
  /// Node-level platform overhead (chassis, mainboard, NIC, cooling loop)
  /// in kgCO2e per node; charged to the compute class in the breakdown.
  double node_overhead_kg = 0.0;
  Power avg_power;             ///< typical operating draw
  double peak_pflops = 0.0;    ///< Rmax-style sustained performance
  int lifetime_years = 6;      ///< planned operating lifetime
};

/// Per-component-class embodied breakdown (the paper's Fig. 1 categories).
struct EmbodiedBreakdown {
  Carbon cpu;      ///< CPU packages + node platform share
  Carbon gpu;      ///< GPU modules (incl. their HBM)
  Carbon dram;     ///< system DRAM
  Carbon storage;  ///< parallel filesystem storage

  [[nodiscard]] Carbon total() const { return cpu + gpu + dram + storage; }
  /// Fraction of total embodied carbon in memory + storage — the quantity
  /// the paper reports as 43.5% / 59.6% / 55.5% for the three systems.
  [[nodiscard]] double memory_storage_share() const;
  /// Fraction contributed by each class.
  [[nodiscard]] double share(Carbon part) const;
};

/// Compute the Fig. 1 breakdown of a system under an embodied model.
[[nodiscard]] EmbodiedBreakdown embodied_breakdown(const ActModel& model,
                                                   const SystemInventory& system);

// --- the paper's three systems (capacities quoted from section 2) ---------

/// Juwels Booster: 3744 A100 + 1872 EPYC 7402, 0.47 PB DRAM, 37.6 PB storage.
[[nodiscard]] SystemInventory juwels_booster();
/// SuperMUC-NG: 12960 Skylake, 0.72 PB DRAM, 70.26 PB storage (CPU-only).
[[nodiscard]] SystemInventory supermuc_ng();
/// Hawk: 11264 AMD Rome, 1.4 PB DRAM, 42 PB storage (CPU-only).
[[nodiscard]] SystemInventory hawk();

/// All three Fig. 1 systems in display order.
[[nodiscard]] std::vector<SystemInventory> fig1_systems();

// --- the paper's introduction systems (exascale context) -------------------

/// Frontier (OLCF): the paper's 20 MW continuous-operation anchor.
/// Inventory estimated from public specifications (9,408 nodes, 4 MI250X
/// + 1 EPYC each, ~4.8 PB DDR4, ~700 PB Orion storage).
[[nodiscard]] SystemInventory frontier();
/// Aurora (ALCF) as the paper frames it: "estimated to draw 60 MW".
/// Inventory estimated from public specifications (10,624 nodes, 6 Ponte
/// Vecchio + 2 Xeon Max each, ~10 PB memory, ~230 PB DAOS SSD storage).
[[nodiscard]] SystemInventory aurora_estimate();

}  // namespace greenhpc::embodied
