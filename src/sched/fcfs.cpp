#include "sched/fcfs.hpp"

#include <algorithm>

namespace greenhpc::sched {

int start_nodes(const hpcsim::JobSpec& spec) {
  if (spec.kind == hpcsim::JobKind::Rigid) return spec.nodes_requested;
  return std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
}

void FcfsScheduler::on_tick(hpcsim::SimulationView& view) {
  scratch_ = view.pending_jobs();  // snapshot: start() mutates the queue
  for (hpcsim::JobId id : scratch_) {
    if (!view.start(id, start_nodes(view.spec(id)))) break;  // strict order
  }
}

}  // namespace greenhpc::sched
