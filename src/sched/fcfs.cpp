#include "sched/fcfs.hpp"

#include <algorithm>

namespace greenhpc::sched {

int start_nodes(const hpcsim::JobSpec& spec) {
  if (spec.kind == hpcsim::JobKind::Rigid) return spec.nodes_requested;
  return std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
}

void FcfsScheduler::on_tick(hpcsim::SimulationView& view) {
  // No snapshot needed: a successful start() erases the queue head, so
  // re-reading front() after each start visits exactly the sequence the
  // former snapshot loop visited, without the per-tick copy.
  const hpcsim::JobTable& t = view.job_table();
  const std::vector<hpcsim::JobId>& pending = view.pending_jobs();
  while (!pending.empty()) {
    const hpcsim::JobId id = pending.front();
    if (!view.start(id, start_nodes(t, view.slot_of(id)))) break;  // strict order
  }
}

}  // namespace greenhpc::sched
