#include "sched/fcfs.hpp"

#include <algorithm>

namespace greenhpc::sched {

int start_nodes(const hpcsim::JobSpec& spec) {
  if (spec.kind == hpcsim::JobKind::Rigid) return spec.nodes_requested;
  return std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
}

void FcfsScheduler::on_tick(hpcsim::SimulationView& view) {
  for (hpcsim::JobId id : view.pending_jobs()) {
    if (!view.start(id, start_nodes(view.spec(id)))) break;  // strict order
  }
}

}  // namespace greenhpc::sched
