#pragma once
// EASY backfilling (Lifka '95) — the standard production scheduling
// baseline in Slurm-class RJMS software, and the base algorithm the
// paper's section 3.3 proposes to make carbon-aware.
//
// Head-of-queue jobs start in order while they fit. When the head does not
// fit, it receives a reservation at the earliest time enough nodes are
// projected free (using walltime-based completion estimates), and later
// queued jobs may start immediately iff they cannot delay that
// reservation — either they finish before the reservation (by their own
// walltime) or they use only nodes the reservation does not need.

#include <vector>

#include "hpcsim/policy.hpp"

namespace greenhpc::sched {

/// Projected node-availability timeline entry.
struct ReleaseEvent {
  Duration time;
  int nodes = 0;
};

/// Walltime-based release schedule of the currently running jobs,
/// ascending in time. Jobs past their walltime are projected to release
/// one tick from now.
[[nodiscard]] std::vector<ReleaseEvent> projected_releases(
    const hpcsim::SimulationView& view);

/// Shadow time and spare nodes of the EASY reservation for a job needing
/// `needed` nodes given `free` nodes now and the release schedule.
struct Reservation {
  Duration shadow;   ///< earliest projected start of the reserved job
  int spare = 0;     ///< nodes free at shadow beyond the reservation's need
};
[[nodiscard]] Reservation compute_reservation(Duration now, int free, int needed,
                                              const std::vector<ReleaseEvent>& releases);

class EasyBackfillScheduler final : public hpcsim::SchedulingPolicy {
 public:
  /// With `shrink_moldable`, moldable jobs that do not fit at their
  /// natural size are started shrunk-to-fit (within [min_nodes, natural])
  /// instead of waiting — the section-3.2 moldability benefit.
  explicit EasyBackfillScheduler(bool shrink_moldable = false)
      : shrink_moldable_(shrink_moldable) {}
  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override {
    return shrink_moldable_ ? "easy-backfill+mold" : "easy-backfill";
  }

 private:
  bool shrink_moldable_;
};

/// Node count for starting `spec` when `available` nodes are free and
/// moldable shrinking is allowed: the natural size if it fits, otherwise
/// the largest feasible size within the moldable range (0 = cannot start).
[[nodiscard]] int shrink_to_fit_nodes(const hpcsim::JobSpec& spec, int available);

/// The shared EASY pass over an explicitly ordered candidate list: starts
/// what fits, reserves for the first blocked candidate, backfills the
/// rest. Returns the number of jobs started. Used by both the plain and
/// the carbon-aware schedulers.
int easy_pass(hpcsim::SimulationView& view, const std::vector<hpcsim::JobId>& queue,
              bool shrink_moldable = false);

}  // namespace greenhpc::sched
