#pragma once
// EASY backfilling (Lifka '95) — the standard production scheduling
// baseline in Slurm-class RJMS software, and the base algorithm the
// paper's section 3.3 proposes to make carbon-aware.
//
// Head-of-queue jobs start in order while they fit. When the head does not
// fit, it receives a reservation at the earliest time enough nodes are
// projected free (using walltime-based completion estimates), and later
// queued jobs may start immediately iff they cannot delay that
// reservation — either they finish before the reservation (by their own
// walltime) or they use only nodes the reservation does not need.

#include <vector>

#include "hpcsim/policy.hpp"

namespace greenhpc::sched {

/// Projected node-availability timeline entry.
struct ReleaseEvent {
  Duration time;
  int nodes = 0;
};

/// Walltime-based release schedule of the currently running jobs,
/// ascending in time. Jobs past their walltime are projected to release
/// one tick from now.
[[nodiscard]] std::vector<ReleaseEvent> projected_releases(
    const hpcsim::SimulationView& view);

/// Shadow time and spare nodes of the EASY reservation for a job needing
/// `needed` nodes given `free` nodes now and the release schedule.
struct Reservation {
  Duration shadow;   ///< earliest projected start of the reserved job
  int spare = 0;     ///< nodes free at shadow beyond the reservation's need
};
[[nodiscard]] Reservation compute_reservation(Duration now, int free, int needed,
                                              const std::vector<ReleaseEvent>& releases);

/// Memoized release schedule: a long-running job set makes the projected
/// timeline identical tick after tick, so the sorted vector is rebuilt
/// only when the running set (ids, allocations, walltime-projected ends)
/// changes or a job overruns its estimate (its projected release then
/// tracks the moving clock). The cached vector is byte-identical to what
/// projected_releases() would return, so memoization cannot change any
/// scheduling decision.
class ReleaseCache {
 public:
  /// The release schedule for the view's current running set; reference
  /// valid until the next get() call.
  [[nodiscard]] const std::vector<ReleaseEvent>& get(
      const hpcsim::SimulationView& view);

 private:
  struct Entry {
    hpcsim::JobId id;
    int nodes;
    Duration end;  ///< raw walltime-projected end (before overrun remap)
    bool operator==(const Entry&) const = default;
  };
  std::vector<Entry> signature_;
  std::vector<Entry> scratch_;
  std::vector<ReleaseEvent> releases_;
  bool valid_ = false;
};

class EasyBackfillScheduler final : public hpcsim::SchedulingPolicy {
 public:
  /// With `shrink_moldable`, moldable jobs that do not fit at their
  /// natural size are started shrunk-to-fit (within [min_nodes, natural])
  /// instead of waiting — the section-3.2 moldability benefit.
  explicit EasyBackfillScheduler(bool shrink_moldable = false)
      : shrink_moldable_(shrink_moldable) {}
  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override {
    return shrink_moldable_ ? "easy-backfill+mold" : "easy-backfill";
  }

  /// EASY is carbon-blind; under a frozen discrete state only the moving
  /// clock can change a decision, and it enters exactly two ways: a
  /// running job crossing its walltime-projected end (its release remaps
  /// to the sliding `now + tick`, which can reorder the timeline and move
  /// the shadow), and backfill's `now + walltime <= shadow` test — which
  /// with no overrun is monotone (flips only toward *not* starting, and
  /// we know nothing started at the frozen state). Hence: quiescent until
  /// the earliest projected end; forever when nothing is pending or no
  /// node is free (no start can succeed regardless of time).
  [[nodiscard]] Duration quiescent_until(
      const hpcsim::SimulationView& view) const override;

  /// Unlike FCFS, backfill can reach past a blocked head, so a new
  /// arrival may genuinely start — except with zero free nodes, where no
  /// start of any kind can succeed.
  [[nodiscard]] bool quiescent_over_arrivals(
      const hpcsim::SimulationView& view) const override {
    return view.free_nodes() == 0;
  }

  /// After an in-span release, the EASY pass acts iff some pending job's
  /// minimal feasible size fits the freed capacity (head start, or any
  /// backfill candidate — the shadow/spare tests only further restrict).
  /// When every pending job still needs more than free_nodes(), all
  /// three phases are proven no-ops and the span may continue.
  [[nodiscard]] bool quiescent_over_release(
      const hpcsim::SimulationView& view) const override;

 private:
  bool shrink_moldable_;
  ReleaseCache releases_;
  std::vector<hpcsim::JobId> scratch_;  ///< queue snapshot, reused across ticks
};

/// Node count for starting `spec` when `available` nodes are free and
/// moldable shrinking is allowed: the natural size if it fits, otherwise
/// the largest feasible size within the moldable range (0 = cannot start).
[[nodiscard]] int shrink_to_fit_nodes(const hpcsim::JobSpec& spec, int available);
/// SoA twin over the flat job table.
[[nodiscard]] int shrink_to_fit_nodes(const hpcsim::JobTable& t, std::size_t i,
                                      int available);

/// The shared EASY pass over an explicitly ordered candidate list: starts
/// what fits, reserves for the first blocked candidate, backfills the
/// rest. Returns the number of jobs started. Used by both the plain and
/// the carbon-aware schedulers. A caller-held ReleaseCache avoids
/// rebuilding the release schedule when the running set is unchanged.
int easy_pass(hpcsim::SimulationView& view, const std::vector<hpcsim::JobId>& queue,
              bool shrink_moldable = false, ReleaseCache* cache = nullptr);

}  // namespace greenhpc::sched
