#pragma once
// First-come-first-served scheduling — the simplest RJMS baseline: start
// pending jobs strictly in submission order; block on the first job that
// does not fit.

#include "hpcsim/policy.hpp"

namespace greenhpc::sched {

/// Node count a job is started with: the requested count for rigid jobs,
/// the natural size (clamped into the malleable range) otherwise.
[[nodiscard]] int start_nodes(const hpcsim::JobSpec& spec);

class FcfsScheduler final : public hpcsim::SchedulingPolicy {
 public:
  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override { return "fcfs"; }

 private:
  std::vector<hpcsim::JobId> scratch_;  ///< queue snapshot, reused across ticks
};

}  // namespace greenhpc::sched
