#pragma once
// First-come-first-served scheduling — the simplest RJMS baseline: start
// pending jobs strictly in submission order; block on the first job that
// does not fit.

#include <algorithm>

#include "hpcsim/policy.hpp"

namespace greenhpc::sched {

/// Node count a job is started with: the requested count for rigid jobs,
/// the natural size (clamped into the malleable range) otherwise.
[[nodiscard]] int start_nodes(const hpcsim::JobSpec& spec);

/// SoA twin of start_nodes for hot paths that walk the flat job table.
[[nodiscard]] inline int start_nodes(const hpcsim::JobTable& t, std::size_t i) {
  if (t.kind[i] == hpcsim::JobKind::Rigid) return t.nodes_requested[i];
  return std::clamp(t.nodes_used[i], t.min_nodes[i], t.max_nodes[i]);
}

class FcfsScheduler final : public hpcsim::SchedulingPolicy {
 public:
  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override { return "fcfs"; }

  /// FCFS reads neither the clock nor the carbon signal: with the queues,
  /// allocations and free-node count frozen, the head job either fits now
  /// or never will until something discrete changes. Quiescent until the
  /// next discrete event.
  [[nodiscard]] Duration quiescent_until(
      const hpcsim::SimulationView&) const override {
    return hpcsim::quiescent_forever();
  }

  /// Strict submission order shields the queue tail: while the head is
  /// blocked (which it is whenever on_tick took no action with work
  /// pending), arrivals join behind it and can never be reached.
  [[nodiscard]] bool quiescent_over_arrivals(
      const hpcsim::SimulationView& view) const override {
    return !view.pending_jobs().empty();
  }

  /// After an in-span node release, FCFS acts iff the queue head now
  /// fits: on_tick is a pure head-fits loop, so an empty queue or a head
  /// needing more than the (post-release) free count is a proven no-op.
  [[nodiscard]] bool quiescent_over_release(
      const hpcsim::SimulationView& view) const override {
    const std::vector<hpcsim::JobId>& pending = view.pending_jobs();
    if (pending.empty()) return true;
    const hpcsim::JobTable& t = view.job_table();
    return start_nodes(t, view.slot_of(pending.front())) > view.free_nodes();
  }
};

}  // namespace greenhpc::sched
