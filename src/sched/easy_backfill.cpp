#include "sched/easy_backfill.hpp"

#include <algorithm>

#include "sched/fcfs.hpp"

namespace greenhpc::sched {

std::vector<ReleaseEvent> projected_releases(const hpcsim::SimulationView& view) {
  std::vector<ReleaseEvent> releases;
  const Duration now = view.now();
  for (hpcsim::JobId id : view.running_jobs()) {
    const auto& spec = view.spec(id);
    const auto& info = view.info(id);
    Duration end = info.start + spec.walltime;
    if (end <= now) end = now + view.cluster().tick;  // overran its estimate
    releases.push_back({end, info.alloc_nodes});
  }
  std::sort(releases.begin(), releases.end(),
            [](const ReleaseEvent& a, const ReleaseEvent& b) { return a.time < b.time; });
  return releases;
}

Reservation compute_reservation(Duration now, int free, int needed,
                                const std::vector<ReleaseEvent>& releases) {
  Reservation r{now, 0};
  int avail = free;
  if (avail >= needed) {
    r.shadow = now;
    r.spare = avail - needed;
    return r;
  }
  for (const auto& ev : releases) {
    avail += ev.nodes;
    if (avail >= needed) {
      r.shadow = ev.time;
      r.spare = avail - needed;
      return r;
    }
  }
  // Should not happen if the job fits the machine; treat as far future.
  r.shadow = now + days(3650.0);
  r.spare = 0;
  return r;
}

int shrink_to_fit_nodes(const hpcsim::JobSpec& spec, int available) {
  const int natural = std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
  if (natural <= available) return natural;
  if (spec.kind != hpcsim::JobKind::Moldable) return 0;
  if (available >= spec.min_nodes) return std::min(available, natural);
  return 0;
}

int easy_pass(hpcsim::SimulationView& view, const std::vector<hpcsim::JobId>& queue,
              bool shrink_moldable) {
  int started = 0;
  std::size_t head = 0;
  // Phase 1: start in order while possible.
  while (head < queue.size()) {
    const hpcsim::JobId id = queue[head];
    const auto& spec = view.spec(id);
    int nodes = start_nodes(spec);
    if (shrink_moldable) {
      const int fitted = shrink_to_fit_nodes(spec, view.free_nodes());
      if (fitted > 0) nodes = fitted;
    }
    if (view.start(id, nodes)) {
      ++started;
      ++head;
    } else {
      break;
    }
  }
  if (head >= queue.size()) return started;

  // Phase 2: reservation for the blocked head.
  const hpcsim::JobId blocked = queue[head];
  const int needed = start_nodes(view.spec(blocked));
  const auto releases = projected_releases(view);
  Reservation res = compute_reservation(view.now(), view.free_nodes(), needed, releases);

  // Phase 3: backfill the remaining queue against the reservation.
  int spare = res.spare;
  for (std::size_t i = head + 1; i < queue.size(); ++i) {
    const hpcsim::JobId id = queue[i];
    const auto& spec = view.spec(id);
    int nodes = start_nodes(spec);
    if (shrink_moldable && nodes > view.free_nodes()) {
      const int fitted = shrink_to_fit_nodes(spec, view.free_nodes());
      if (fitted > 0) nodes = fitted;
    }
    if (nodes > view.free_nodes()) continue;
    const bool ends_before_shadow = view.now() + spec.walltime <= res.shadow;
    const bool fits_in_spare = nodes <= spare;
    if (!ends_before_shadow && !fits_in_spare) continue;
    if (view.start(id, nodes)) {
      ++started;
      if (!ends_before_shadow) spare -= nodes;
    }
  }
  return started;
}

void EasyBackfillScheduler::on_tick(hpcsim::SimulationView& view) {
  const std::vector<hpcsim::JobId> queue = view.pending_jobs();
  if (!queue.empty()) easy_pass(view, queue, shrink_moldable_);
}

}  // namespace greenhpc::sched
