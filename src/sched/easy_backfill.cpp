#include "sched/easy_backfill.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "sched/fcfs.hpp"

namespace greenhpc::sched {

std::vector<ReleaseEvent> projected_releases(const hpcsim::SimulationView& view) {
  std::vector<ReleaseEvent> releases;
  const Duration now = view.now();
  const hpcsim::JobTable& t = view.job_table();
  for (hpcsim::JobId id : view.running_jobs()) {
    const std::size_t i = view.slot_of(id);
    Duration end = seconds(t.start_s[i]) + seconds(t.walltime_s[i]);
    if (end <= now) end = now + view.cluster().tick;  // overran its estimate
    releases.push_back({end, t.alloc_nodes[i]});
  }
  std::sort(releases.begin(), releases.end(),
            [](const ReleaseEvent& a, const ReleaseEvent& b) { return a.time < b.time; });
  return releases;
}

const std::vector<ReleaseEvent>& ReleaseCache::get(const hpcsim::SimulationView& view) {
  const Duration now = view.now();
  const hpcsim::JobTable& t = view.job_table();
  scratch_.clear();
  bool any_overrun = false;
  for (hpcsim::JobId id : view.running_jobs()) {
    const std::size_t i = view.slot_of(id);
    const Duration end = seconds(t.start_s[i]) + seconds(t.walltime_s[i]);
    if (end <= now) any_overrun = true;
    scratch_.push_back({id, t.alloc_nodes[i], end});
  }
  // An overrunning job's projected release is now + tick, which moves
  // every tick even with the set unchanged — never reuse across it.
  if (valid_ && !any_overrun && scratch_ == signature_) return releases_;
  signature_ = scratch_;
  releases_.clear();
  for (const Entry& e : signature_) {
    const Duration end = e.end <= now ? now + view.cluster().tick : e.end;
    releases_.push_back({end, e.nodes});
  }
  std::sort(releases_.begin(), releases_.end(),
            [](const ReleaseEvent& a, const ReleaseEvent& b) { return a.time < b.time; });
  valid_ = true;
  return releases_;
}

Reservation compute_reservation(Duration now, int free, int needed,
                                const std::vector<ReleaseEvent>& releases) {
  Reservation r{now, 0};
  int avail = free;
  if (avail >= needed) {
    r.shadow = now;
    r.spare = avail - needed;
    return r;
  }
  for (const auto& ev : releases) {
    avail += ev.nodes;
    if (avail >= needed) {
      r.shadow = ev.time;
      r.spare = avail - needed;
      return r;
    }
  }
  // Should not happen if the job fits the machine; treat as far future.
  r.shadow = now + days(3650.0);
  r.spare = 0;
  return r;
}

int shrink_to_fit_nodes(const hpcsim::JobSpec& spec, int available) {
  const int natural = std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
  if (natural <= available) return natural;
  if (spec.kind != hpcsim::JobKind::Moldable) return 0;
  if (available >= spec.min_nodes) return std::min(available, natural);
  return 0;
}

int shrink_to_fit_nodes(const hpcsim::JobTable& t, std::size_t i, int available) {
  const int natural = std::clamp(t.nodes_used[i], t.min_nodes[i], t.max_nodes[i]);
  if (natural <= available) return natural;
  if (t.kind[i] != hpcsim::JobKind::Moldable) return 0;
  if (available >= t.min_nodes[i]) return std::min(available, natural);
  return 0;
}

int easy_pass(hpcsim::SimulationView& view, const std::vector<hpcsim::JobId>& queue,
              bool shrink_moldable, ReleaseCache* cache) {
  static obs::Counter& head_started =
      obs::Registry::global().counter("sched.easy.head_started");
  static obs::Counter& reservations =
      obs::Registry::global().counter("sched.easy.reservations");
  static obs::Counter& backfilled =
      obs::Registry::global().counter("sched.easy.backfilled");
  const hpcsim::JobTable& table = view.job_table();
  int started = 0;
  std::size_t head = 0;
  // Phase 1: start in order while possible.
  while (head < queue.size()) {
    const hpcsim::JobId id = queue[head];
    const std::size_t s = view.slot_of(id);
    int nodes = start_nodes(table, s);
    if (shrink_moldable) {
      const int fitted = shrink_to_fit_nodes(table, s, view.free_nodes());
      if (fitted > 0) nodes = fitted;
    }
    if (view.start(id, nodes)) {
      ++started;
      ++head;
      head_started.add();
    } else {
      break;
    }
  }
  if (head >= queue.size()) return started;

  // Phase 2: reservation for the blocked head.
  reservations.add();
  const hpcsim::JobId blocked = queue[head];
  const int needed = start_nodes(table, view.slot_of(blocked));
  std::vector<ReleaseEvent> local;
  if (cache == nullptr) local = projected_releases(view);
  const std::vector<ReleaseEvent>& releases = cache != nullptr ? cache->get(view) : local;
  Reservation res = compute_reservation(view.now(), view.free_nodes(), needed, releases);

  // Phase 3: backfill the remaining queue against the reservation.
  int spare = res.spare;
  for (std::size_t i = head + 1; i < queue.size(); ++i) {
    if (view.free_nodes() == 0) break;  // every candidate needs >= 1 node
    const hpcsim::JobId id = queue[i];
    const std::size_t s = view.slot_of(id);
    int nodes = start_nodes(table, s);
    if (shrink_moldable && nodes > view.free_nodes()) {
      const int fitted = shrink_to_fit_nodes(table, s, view.free_nodes());
      if (fitted > 0) nodes = fitted;
    }
    if (nodes > view.free_nodes()) continue;
    const bool ends_before_shadow =
        view.now() + seconds(table.walltime_s[s]) <= res.shadow;
    const bool fits_in_spare = nodes <= spare;
    if (!ends_before_shadow && !fits_in_spare) continue;
    if (view.start(id, nodes)) {
      ++started;
      backfilled.add();
      if (!ends_before_shadow) spare -= nodes;
    }
  }
  return started;
}

void EasyBackfillScheduler::on_tick(hpcsim::SimulationView& view) {
  scratch_ = view.pending_jobs();  // snapshot: start() mutates the queue
  if (!scratch_.empty()) easy_pass(view, scratch_, shrink_moldable_, &releases_);
}

bool EasyBackfillScheduler::quiescent_over_release(
    const hpcsim::SimulationView& view) const {
  const std::vector<hpcsim::JobId>& pending = view.pending_jobs();
  if (pending.empty()) return true;
  const int free = view.free_nodes();
  if (free == 0) return true;
  const hpcsim::JobTable& t = view.job_table();
  for (const hpcsim::JobId id : pending) {
    const std::size_t i = view.slot_of(id);
    // Smallest allocation any phase could attempt: the natural size, or
    // the moldable floor when shrinking is on (shrink_to_fit never goes
    // below min_nodes). A job whose minimum exceeds the free count
    // cannot be started by the head pass or by backfill.
    int minimal = start_nodes(t, i);
    if (shrink_moldable_ && t.kind[i] == hpcsim::JobKind::Moldable) {
      minimal = std::min(minimal, t.min_nodes[i]);
    }
    if (minimal <= free) return false;
  }
  return true;
}

Duration EasyBackfillScheduler::quiescent_until(
    const hpcsim::SimulationView& view) const {
  if (view.pending_jobs().empty()) return hpcsim::quiescent_forever();
  // Every start needs at least one free node; with none, neither the
  // in-order pass nor backfill can act until something discrete releases
  // nodes (which ends the span through the engine's epoch gate).
  if (view.free_nodes() == 0) return hpcsim::quiescent_forever();
  const hpcsim::JobTable& t = view.job_table();
  double end_min_s = std::numeric_limits<double>::infinity();
  for (const hpcsim::JobId id : view.running_jobs()) {
    const std::size_t i = view.slot_of(id);
    end_min_s = std::min(end_min_s, t.start_s[i] + t.walltime_s[i]);
  }
  const Duration end_min = seconds(end_min_s);
  // A job already past its projected end makes the shadow slide with the
  // clock: opt out (horizon = now keeps the engine tick-exact).
  return end_min > view.now() ? end_min : view.now();
}

}  // namespace greenhpc::sched
