#include "sched/easy_backfill.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sched/fcfs.hpp"

namespace greenhpc::sched {

std::vector<ReleaseEvent> projected_releases(const hpcsim::SimulationView& view) {
  std::vector<ReleaseEvent> releases;
  const Duration now = view.now();
  for (hpcsim::JobId id : view.running_jobs()) {
    const auto& spec = view.spec(id);
    const auto& info = view.info(id);
    Duration end = info.start + spec.walltime;
    if (end <= now) end = now + view.cluster().tick;  // overran its estimate
    releases.push_back({end, info.alloc_nodes});
  }
  std::sort(releases.begin(), releases.end(),
            [](const ReleaseEvent& a, const ReleaseEvent& b) { return a.time < b.time; });
  return releases;
}

const std::vector<ReleaseEvent>& ReleaseCache::get(const hpcsim::SimulationView& view) {
  const Duration now = view.now();
  scratch_.clear();
  bool any_overrun = false;
  for (hpcsim::JobId id : view.running_jobs()) {
    const auto& info = view.info(id);
    const Duration end = info.start + view.spec(id).walltime;
    if (end <= now) any_overrun = true;
    scratch_.push_back({id, info.alloc_nodes, end});
  }
  // An overrunning job's projected release is now + tick, which moves
  // every tick even with the set unchanged — never reuse across it.
  if (valid_ && !any_overrun && scratch_ == signature_) return releases_;
  signature_ = scratch_;
  releases_.clear();
  for (const Entry& e : signature_) {
    const Duration end = e.end <= now ? now + view.cluster().tick : e.end;
    releases_.push_back({end, e.nodes});
  }
  std::sort(releases_.begin(), releases_.end(),
            [](const ReleaseEvent& a, const ReleaseEvent& b) { return a.time < b.time; });
  valid_ = true;
  return releases_;
}

Reservation compute_reservation(Duration now, int free, int needed,
                                const std::vector<ReleaseEvent>& releases) {
  Reservation r{now, 0};
  int avail = free;
  if (avail >= needed) {
    r.shadow = now;
    r.spare = avail - needed;
    return r;
  }
  for (const auto& ev : releases) {
    avail += ev.nodes;
    if (avail >= needed) {
      r.shadow = ev.time;
      r.spare = avail - needed;
      return r;
    }
  }
  // Should not happen if the job fits the machine; treat as far future.
  r.shadow = now + days(3650.0);
  r.spare = 0;
  return r;
}

int shrink_to_fit_nodes(const hpcsim::JobSpec& spec, int available) {
  const int natural = std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
  if (natural <= available) return natural;
  if (spec.kind != hpcsim::JobKind::Moldable) return 0;
  if (available >= spec.min_nodes) return std::min(available, natural);
  return 0;
}

int easy_pass(hpcsim::SimulationView& view, const std::vector<hpcsim::JobId>& queue,
              bool shrink_moldable, ReleaseCache* cache) {
  static obs::Counter& head_started =
      obs::Registry::global().counter("sched.easy.head_started");
  static obs::Counter& reservations =
      obs::Registry::global().counter("sched.easy.reservations");
  static obs::Counter& backfilled =
      obs::Registry::global().counter("sched.easy.backfilled");
  int started = 0;
  std::size_t head = 0;
  // Phase 1: start in order while possible.
  while (head < queue.size()) {
    const hpcsim::JobId id = queue[head];
    const auto& spec = view.spec(id);
    int nodes = start_nodes(spec);
    if (shrink_moldable) {
      const int fitted = shrink_to_fit_nodes(spec, view.free_nodes());
      if (fitted > 0) nodes = fitted;
    }
    if (view.start(id, nodes)) {
      ++started;
      ++head;
      head_started.add();
    } else {
      break;
    }
  }
  if (head >= queue.size()) return started;

  // Phase 2: reservation for the blocked head.
  reservations.add();
  const hpcsim::JobId blocked = queue[head];
  const int needed = start_nodes(view.spec(blocked));
  std::vector<ReleaseEvent> local;
  if (cache == nullptr) local = projected_releases(view);
  const std::vector<ReleaseEvent>& releases = cache != nullptr ? cache->get(view) : local;
  Reservation res = compute_reservation(view.now(), view.free_nodes(), needed, releases);

  // Phase 3: backfill the remaining queue against the reservation.
  int spare = res.spare;
  for (std::size_t i = head + 1; i < queue.size(); ++i) {
    if (view.free_nodes() == 0) break;  // every candidate needs >= 1 node
    const hpcsim::JobId id = queue[i];
    const auto& spec = view.spec(id);
    int nodes = start_nodes(spec);
    if (shrink_moldable && nodes > view.free_nodes()) {
      const int fitted = shrink_to_fit_nodes(spec, view.free_nodes());
      if (fitted > 0) nodes = fitted;
    }
    if (nodes > view.free_nodes()) continue;
    const bool ends_before_shadow = view.now() + spec.walltime <= res.shadow;
    const bool fits_in_spare = nodes <= spare;
    if (!ends_before_shadow && !fits_in_spare) continue;
    if (view.start(id, nodes)) {
      ++started;
      backfilled.add();
      if (!ends_before_shadow) spare -= nodes;
    }
  }
  return started;
}

void EasyBackfillScheduler::on_tick(hpcsim::SimulationView& view) {
  scratch_ = view.pending_jobs();  // snapshot: start() mutates the queue
  if (!scratch_.empty()) easy_pass(view, scratch_, shrink_moldable_, &releases_);
}

}  // namespace greenhpc::sched
