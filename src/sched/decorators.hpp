#pragma once
// Composable scheduling decorators.
//
// CheckpointDecorator implements the paper's section 3.3 proposal of
// "carbon-aware checkpoint and restore strategies [that] can suspend the
// execution of the job during high carbon periods and resume execution
// when the intensity is low".
//
// MalleableDecorator implements section 3.2: under a shrinking power
// budget, reducing the node count of malleable jobs is preferable to
// capping every node (capped nodes waste their static power), and under
// headroom malleable jobs expand into free nodes.

#include <memory>
#include <unordered_map>

#include "hpcsim/policy.hpp"

namespace greenhpc::sched {

/// Suspends checkpointable jobs in dirty periods, resumes them in green
/// ones. Wraps an inner scheduler that handles normal starts.
class CheckpointDecorator final : public hpcsim::SchedulingPolicy {
 public:
  struct Config {
    /// Suspend when intensity rises above this quantile of trailing
    /// history; resume below `resume_quantile`. Hysteresis avoids thrash.
    double suspend_quantile = 0.80;
    double resume_quantile = 0.50;
    Duration history_window = days(3.0);
    /// Jobs are only suspended if their remaining runtime exceeds this
    /// (suspending nearly-done work wastes the checkpoint overhead).
    Duration min_remaining = hours(1.0);
    /// Upper bound on simultaneously suspended node capacity, as a
    /// fraction of the cluster.
    double max_suspended_fraction = 0.5;
    /// Minimal dwell time between suspend and resume of the same job.
    Duration min_dwell = minutes(30.0);
    /// Once the observed intensity is older than this (feed outage), the
    /// decorator goes carbon-blind: suspended jobs are resumed (the
    /// carbon justification for holding them expired with the signal)
    /// and no new suspends are issued until the feed recovers.
    Duration staleness_horizon = hours(2.0);
  };

  CheckpointDecorator(Config config, std::unique_ptr<hpcsim::SchedulingPolicy> inner);

  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override;

  /// The suspend/resume thresholds re-read the intensity signal every
  /// tick, so the decorator is only quiescent when no suspend or resume
  /// is reachable regardless of the signal: nothing suspended and no
  /// running job checkpointable. Then only the inner policy can act, and
  /// its own attestation bounds the horizon.
  [[nodiscard]] Duration quiescent_until(
      const hpcsim::SimulationView& view) const override {
    if (!view.suspended_jobs().empty()) return view.now();
    const hpcsim::JobTable& t = view.job_table();
    for (const hpcsim::JobId id : view.running_jobs()) {
      if (t.checkpointable[view.slot_of(id)] != 0) return view.now();
    }
    return inner_->quiescent_until(view);
  }

  /// Suspend/resume decisions never look at the pending queue.
  [[nodiscard]] bool quiescent_over_arrivals(
      const hpcsim::SimulationView& view) const override {
    return inner_->quiescent_over_arrivals(view);
  }

  /// A node release cannot create a suspend/resume opportunity: resumes
  /// need a suspended job and suspends need a running checkpointable
  /// one, and a release produces neither. Re-check both guards against
  /// the post-release state (they also gated span entry), then the inner
  /// policy's own release attestation is the binding one.
  [[nodiscard]] bool quiescent_over_release(
      const hpcsim::SimulationView& view) const override {
    if (!view.suspended_jobs().empty()) return false;
    const hpcsim::JobTable& t = view.job_table();
    for (const hpcsim::JobId id : view.running_jobs()) {
      if (t.checkpointable[view.slot_of(id)] != 0) return false;
    }
    return inner_->quiescent_over_release(view);
  }

 private:
  [[nodiscard]] double quantile_threshold(const hpcsim::SimulationView& view,
                                          double quantile) const;

  Config cfg_;
  std::unique_ptr<hpcsim::SchedulingPolicy> inner_;
  std::unordered_map<hpcsim::JobId, Duration> suspended_at_;
};

/// Grows/shrinks malleable jobs so the system tracks its power budget with
/// node counts instead of deep power caps.
class MalleableDecorator final : public hpcsim::SchedulingPolicy {
 public:
  struct Config {
    /// Target draw as a fraction of the budget (a little slack avoids
    /// oscillation against the uniform-cap fallback).
    double target_utilization = 0.98;
    /// Largest allocation change per job per tick (nodes).
    int max_step = 8;
  };

  MalleableDecorator(Config config, std::unique_ptr<hpcsim::SchedulingPolicy> inner);

  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override;

  /// Reshape decisions read only the budget and the current draw, both
  /// constant while the discrete state is frozen (and the engine only
  /// asks after an on_tick that reshaped nothing), so the inner policy's
  /// attestation is the binding one.
  [[nodiscard]] Duration quiescent_until(
      const hpcsim::SimulationView& view) const override {
    return inner_->quiescent_until(view);
  }

  /// Reshape decisions never look at the pending queue.
  [[nodiscard]] bool quiescent_over_arrivals(
      const hpcsim::SimulationView& view) const override {
    return inner_->quiescent_over_arrivals(view);
  }

  // quiescent_over_release intentionally stays the default (false): a
  // release creates headroom that on_tick would grow malleable jobs
  // into, so every in-span release must fence the span here.

 private:
  Config cfg_;
  std::unique_ptr<hpcsim::SchedulingPolicy> inner_;
};

}  // namespace greenhpc::sched
