#pragma once
// Conservative backfilling: every queued job holds a reservation, and a
// job may only start early if it delays no reservation at all. Stronger
// fairness guarantees than EASY at the cost of lower utilization — the
// other classic RJMS baseline, included so the section-3.3 experiments
// can show the carbon-aware gate composes with either discipline.

#include <vector>

#include "hpcsim/policy.hpp"

namespace greenhpc::sched {

/// Stepwise free-node profile over future time, seeded from the currently
/// running jobs' walltime-based completion estimates. Reservations carve
/// capacity out of the profile; earliest_fit() queries it.
class CapacityProfile {
 public:
  /// Profile starting at `now` with `free` nodes available immediately and
  /// `total` nodes as the capacity ceiling after all running jobs drain.
  CapacityProfile(Duration now, int free, int total);

  /// Register a projected release of `nodes` at `time`.
  void add_release(Duration time, int nodes);
  /// Earliest time >= now at which `nodes` are continuously free for
  /// `duration`. Requires nodes <= total capacity.
  [[nodiscard]] Duration earliest_fit(int nodes, Duration duration) const;
  /// Reserve `nodes` over [start, start + duration), reducing the profile.
  void reserve(Duration start, Duration duration, int nodes);

  /// Free nodes at an instant (test hook).
  [[nodiscard]] int free_at(Duration t) const;

 private:
  void add_delta(Duration time, int delta);

  Duration now_;
  // Sorted breakpoints: capacity changes by `delta` at `time`.
  std::vector<std::pair<Duration, int>> deltas_;
};

class ConservativeBackfillScheduler final : public hpcsim::SchedulingPolicy {
 public:
  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override { return "conservative-backfill"; }
};

}  // namespace greenhpc::sched
