#include "sched/decorators.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::sched {

CheckpointDecorator::CheckpointDecorator(Config config,
                                         std::unique_ptr<hpcsim::SchedulingPolicy> inner)
    : cfg_(config), inner_(std::move(inner)) {
  GREENHPC_REQUIRE(inner_ != nullptr, "checkpoint decorator needs an inner scheduler");
  GREENHPC_REQUIRE(cfg_.resume_quantile < cfg_.suspend_quantile,
                   "resume quantile must sit below suspend quantile (hysteresis)");
}

std::string CheckpointDecorator::name() const {
  return inner_->name() + "+checkpoint";
}

double CheckpointDecorator::quantile_threshold(const hpcsim::SimulationView& view,
                                               double quantile) const {
  const auto& history = view.intensity_history();
  if (history.empty()) return view.carbon_intensity_now();
  const auto window_ticks = static_cast<std::size_t>(
      cfg_.history_window.seconds() / view.cluster().tick.seconds());
  const std::size_t n = std::min(history.size(), std::max<std::size_t>(window_ticks, 1));
  const std::span<const double> tail(history.data() + (history.size() - n), n);
  return util::percentile(tail, quantile);
}

void CheckpointDecorator::on_tick(hpcsim::SimulationView& view) {
  // Degraded-feed fallback: with the signal past its staleness horizon
  // there is no defensible carbon reason to keep work off the machine, so
  // resume everything (ignoring min_dwell — the hold's justification
  // expired with the signal) and stop suspending until the feed recovers.
  if (view.carbon_signal_staleness() > cfg_.staleness_horizon) {
    const std::vector<hpcsim::JobId> suspended = view.suspended_jobs();
    for (hpcsim::JobId id : suspended) {
      const auto& spec = view.spec(id);
      const int nodes = spec.kind == hpcsim::JobKind::Rigid
                            ? spec.nodes_requested
                            : std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
      if (view.resume(id, nodes)) suspended_at_.erase(id);
    }
    inner_->on_tick(view);
    return;
  }
  const double ci = view.carbon_intensity_now();
  // History needs a day of context before the thresholds mean anything.
  const bool warmed = view.intensity_history().size() * view.cluster().tick.seconds() >
                      86400.0;
  if (warmed) {
    const double hi = quantile_threshold(view, cfg_.suspend_quantile);
    const double lo = quantile_threshold(view, cfg_.resume_quantile);

    if (ci <= lo) {
      // Green: resume suspended jobs (oldest suspension first).
      std::vector<hpcsim::JobId> suspended = view.suspended_jobs();
      std::sort(suspended.begin(), suspended.end(),
                [&](hpcsim::JobId a, hpcsim::JobId b) {
                  return suspended_at_[a] < suspended_at_[b];
                });
      for (hpcsim::JobId id : suspended) {
        if (view.now() - suspended_at_[id] < cfg_.min_dwell) continue;
        const auto& spec = view.spec(id);
        const int nodes = spec.kind == hpcsim::JobKind::Rigid
                              ? spec.nodes_requested
                              : std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
        if (view.resume(id, nodes)) suspended_at_.erase(id);
      }
    } else if (ci >= hi) {
      // Dirty: suspend long-remaining checkpointable jobs, largest power
      // footprint first, bounded by the suspended-capacity cap.
      int suspended_nodes = 0;
      for (hpcsim::JobId id : view.suspended_jobs()) {
        suspended_nodes += view.spec(id).nodes_used;
      }
      const int cap = static_cast<int>(cfg_.max_suspended_fraction *
                                       static_cast<double>(view.cluster().nodes));
      std::vector<hpcsim::JobId> running = view.running_jobs();
      std::sort(running.begin(), running.end(), [&](hpcsim::JobId a, hpcsim::JobId b) {
        const auto da = view.info(a).alloc_nodes * view.spec(a).effective_node_power().watts();
        const auto db = view.info(b).alloc_nodes * view.spec(b).effective_node_power().watts();
        return da > db;
      });
      for (hpcsim::JobId id : running) {
        if (suspended_nodes >= cap) break;
        const auto& spec = view.spec(id);
        if (!spec.checkpointable) continue;
        if (view.estimated_remaining(id) < cfg_.min_remaining) continue;
        const int held = view.info(id).alloc_nodes;
        if (view.suspend(id)) {
          suspended_at_[id] = view.now();
          suspended_nodes += held;
        }
      }
    }
  }
  inner_->on_tick(view);
}

MalleableDecorator::MalleableDecorator(Config config,
                                       std::unique_ptr<hpcsim::SchedulingPolicy> inner)
    : cfg_(config), inner_(std::move(inner)) {
  GREENHPC_REQUIRE(inner_ != nullptr, "malleable decorator needs an inner scheduler");
  GREENHPC_REQUIRE(cfg_.target_utilization > 0.0 && cfg_.target_utilization <= 1.0,
                   "target utilization must be in (0,1]");
  GREENHPC_REQUIRE(cfg_.max_step >= 1, "max step must be >= 1");
}

std::string MalleableDecorator::name() const { return inner_->name() + "+malleable"; }

void MalleableDecorator::on_tick(hpcsim::SimulationView& view) {
  inner_->on_tick(view);

  const double budget_w = view.power_budget().watts() * cfg_.target_utilization;
  double draw_w = view.full_draw().watts();

  std::vector<hpcsim::JobId> malleable;
  for (hpcsim::JobId id : view.running_jobs()) {
    if (view.spec(id).kind == hpcsim::JobKind::Malleable) malleable.push_back(id);
  }
  if (malleable.empty()) return;

  if (draw_w > budget_w) {
    // Over budget: shrink, largest allocations first.
    std::sort(malleable.begin(), malleable.end(), [&](hpcsim::JobId a, hpcsim::JobId b) {
      return view.info(a).alloc_nodes > view.info(b).alloc_nodes;
    });
    for (hpcsim::JobId id : malleable) {
      if (draw_w <= budget_w) break;
      const auto& spec = view.spec(id);
      const int alloc = view.info(id).alloc_nodes;
      const double per_node_w = spec.effective_node_power().watts();
      const int deficit_nodes =
          static_cast<int>(std::ceil((draw_w - budget_w) / per_node_w));
      const int target =
          std::max(spec.min_nodes, alloc - std::min(cfg_.max_step, deficit_nodes));
      if (target < alloc && view.reshape(id, target)) {
        draw_w -= per_node_w * static_cast<double>(alloc - target);
      }
    }
  } else {
    // Headroom: grow, smallest allocations first (fairness).
    std::sort(malleable.begin(), malleable.end(), [&](hpcsim::JobId a, hpcsim::JobId b) {
      return view.info(a).alloc_nodes < view.info(b).alloc_nodes;
    });
    for (hpcsim::JobId id : malleable) {
      const auto& spec = view.spec(id);
      const int alloc = view.info(id).alloc_nodes;
      const double per_node_w = spec.effective_node_power().watts();
      const int headroom_nodes =
          static_cast<int>((budget_w - draw_w) / std::max(per_node_w, 1.0));
      if (headroom_nodes <= 0 || view.free_nodes() <= 0) break;
      const int target = std::min({spec.max_nodes, alloc + cfg_.max_step,
                                   alloc + headroom_nodes, alloc + view.free_nodes()});
      if (target > alloc && view.reshape(id, target)) {
        draw_w += per_node_w * static_cast<double>(target - alloc);
      }
    }
  }
}

}  // namespace greenhpc::sched
