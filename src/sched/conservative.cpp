#include "sched/conservative.hpp"

#include <algorithm>

#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {

CapacityProfile::CapacityProfile(Duration now, int free, int total) : now_(now) {
  GREENHPC_REQUIRE(free >= 0 && free <= total, "free nodes must be in [0, total]");
  add_delta(now, free);
  // Capacity beyond `free` becomes available through add_release calls;
  // the ceiling is implicit in the deltas the caller registers.
  (void)total;
}

void CapacityProfile::add_delta(Duration time, int delta) {
  const auto it = std::lower_bound(
      deltas_.begin(), deltas_.end(), time,
      [](const std::pair<Duration, int>& p, Duration t) { return p.first < t; });
  if (it != deltas_.end() && it->first == time) {
    it->second += delta;
  } else {
    deltas_.insert(it, {time, delta});
  }
}

void CapacityProfile::add_release(Duration time, int nodes) {
  GREENHPC_REQUIRE(nodes >= 0, "release must be >= 0 nodes");
  add_delta(std::max(time, now_), nodes);
}

int CapacityProfile::free_at(Duration t) const {
  int level = 0;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    level += delta;
  }
  return level;
}

Duration CapacityProfile::earliest_fit(int nodes, Duration duration) const {
  GREENHPC_REQUIRE(nodes >= 1, "fit query needs at least one node");
  // Candidate start times are the breakpoints; for each, verify the level
  // stays >= nodes across [start, start + duration).
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    const Duration start = deltas_[i].first;
    if (start < now_) continue;
    int level = 0;
    for (std::size_t j = 0; j <= i; ++j) level += deltas_[j].second;
    if (level < nodes) continue;
    bool ok = true;
    const Duration end = start + duration;
    for (std::size_t j = i + 1; j < deltas_.size() && deltas_[j].first < end; ++j) {
      level += deltas_[j].second;
      if (level < nodes) {
        ok = false;
        break;
      }
    }
    if (ok) return start;
  }
  // No breakpoint works: after the last breakpoint the level is the total
  // sum; if that suffices the last breakpoint would have matched, so the
  // request can never fit (larger than the machine's steady capacity).
  return now_ + days(3650.0);
}

void CapacityProfile::reserve(Duration start, Duration duration, int nodes) {
  GREENHPC_REQUIRE(nodes >= 1 && duration.seconds() > 0.0, "reservation must be non-empty");
  add_delta(start, -nodes);
  add_delta(start + duration, nodes);
}

void ConservativeBackfillScheduler::on_tick(hpcsim::SimulationView& view) {
  const std::vector<hpcsim::JobId> pending = view.pending_jobs();
  if (pending.empty()) return;

  CapacityProfile profile(view.now(), view.free_nodes(), view.cluster().nodes);
  for (const auto& release : projected_releases(view)) {
    profile.add_release(release.time, release.nodes);
  }

  // Walk the queue in order; every job gets the earliest reservation the
  // profile allows, and starts right away when that reservation is "now".
  for (hpcsim::JobId id : pending) {
    const auto& spec = view.spec(id);
    const int nodes = start_nodes(spec);
    const Duration start = profile.earliest_fit(nodes, spec.walltime);
    if (start <= view.now()) {
      if (view.start(id, nodes)) {
        profile.reserve(view.now(), spec.walltime, nodes);
      }
    } else {
      profile.reserve(start, spec.walltime, nodes);
    }
  }
}

}  // namespace greenhpc::sched
