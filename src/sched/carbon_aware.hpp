#pragma once
// Carbon-aware scheduling (paper section 3.3): "intelligent carbon-aware
// scheduling plugins ... combined with forecasting techniques that
// leverage historical carbon intensity data ... can intelligently
// backfill submitted jobs with suitable execution times during green
// periods."
//
// CarbonAwareEasyScheduler layers a green gate over the EASY pass:
// during high-carbon periods, jobs whose wait budget still has slack and
// for which the forecaster predicts a greener window within the lookahead
// are held back; everything else is scheduled with plain EASY. Bounded
// holding preserves worst-case wait behaviour.

#include <memory>

#include "carbon/forecast.hpp"
#include "hpcsim/policy.hpp"
#include "sched/easy_backfill.hpp"
#include "util/stats.hpp"
#include "util/time_series.hpp"

namespace greenhpc::sched {

class CarbonAwareEasyScheduler final : public hpcsim::SchedulingPolicy {
 public:
  struct Config {
    /// A tick is green when the intensity is at or below this quantile of
    /// the trailing history window.
    double green_quantile = 0.40;
    /// History window used for the quantile.
    Duration history_window = days(3.0);
    /// How far ahead the forecaster is consulted for a greener period.
    Duration lookahead = hours(12.0);
    /// Predicted improvement (relative to now) required to keep holding.
    double improvement_factor = 0.90;
    /// Hard bound on added wait per job; beyond this the gate opens.
    Duration max_hold = hours(12.0);
    /// Holding is skipped while the pending queue exceeds this backlog
    /// (expressed as a fraction of cluster nodes worth of requests).
    double backlog_pressure_limit = 2.0;
    /// Once the observed intensity is older than this (feed outage), the
    /// scheduler goes carbon-blind: plain EASY, no green gating. Holding
    /// jobs on a signal this stale risks optimizing against a grid state
    /// that no longer exists.
    Duration staleness_horizon = hours(2.0);
  };

  /// The forecaster must outlive the scheduler.
  CarbonAwareEasyScheduler(Config config, std::shared_ptr<const carbon::Forecaster> forecaster);

  void on_tick(hpcsim::SimulationView& view) override;
  [[nodiscard]] std::string name() const override { return "carbon-easy"; }

  /// The green gate re-reads the intensity signal every tick, so with
  /// work pending and nodes free the policy cannot promise anything
  /// beyond now. It can when no decision is reachable: nothing pending
  /// (on_tick returns immediately), or zero free nodes (no start can
  /// succeed; holds are aged against submit time, not tick-counted, and
  /// the incremental threshold/history windows consume the intensity
  /// history in batch to the same values). Both states end with a
  /// discrete event, which ends the span via the engine's epoch gate.
  [[nodiscard]] Duration quiescent_until(
      const hpcsim::SimulationView& view) const override {
    if (view.pending_jobs().empty() || view.free_nodes() == 0) {
      return hpcsim::quiescent_forever();
    }
    return view.now();
  }

  /// With zero free nodes no start can succeed regardless of what
  /// arrives; hold bookkeeping is recomputed from submit times when the
  /// queue is next examined, so skipped ticks observe nothing.
  [[nodiscard]] bool quiescent_over_arrivals(
      const hpcsim::SimulationView& view) const override {
    return view.free_nodes() == 0;
  }

  /// After an in-span release the green gate would re-examine the queue
  /// against the freed nodes, so the only provable no-op is an empty
  /// pending queue (on_tick returns before touching any state). A
  /// release always leaves free_nodes() > 0, so the zero-free shortcut
  /// that quiescent_until relies on never applies here.
  [[nodiscard]] bool quiescent_over_release(
      const hpcsim::SimulationView& view) const override {
    return view.pending_jobs().empty();
  }

  /// Green threshold currently in force (for tests and reporting).
  /// Recomputes from scratch; the tick loop uses the incremental twin
  /// below, which returns bit-identical values.
  [[nodiscard]] double current_threshold(const hpcsim::SimulationView& view) const;

 private:
  [[nodiscard]] bool greener_period_ahead(const hpcsim::SimulationView& view);
  /// current_threshold() via a sliding sorted window over the intensity
  /// history instead of a per-tick copy-and-sort of the whole window.
  [[nodiscard]] double incremental_threshold(const hpcsim::SimulationView& view);
  /// The intensity history as a TimeSeries for the forecaster, appended
  /// incrementally instead of copied wholesale every tick.
  [[nodiscard]] const util::TimeSeries& history_series(const hpcsim::SimulationView& view);

  Config cfg_;
  std::shared_ptr<const carbon::Forecaster> forecaster_;
  ReleaseCache releases_;
  // Per-tick queue snapshots, reused across ticks to avoid reallocation.
  std::vector<hpcsim::JobId> pending_scratch_;
  std::vector<hpcsim::JobId> eligible_scratch_;
  // Incremental views of the (append-only) intensity history. Both track
  // how much history they have consumed and rebuild from scratch if the
  // view's history or tick is inconsistent with what was consumed (fresh
  // simulation under a reused policy instance).
  util::SlidingPercentile threshold_window_{1};
  std::size_t threshold_consumed_ = 0;
  util::TimeSeries hist_series_;
  std::size_t hist_consumed_ = 0;
};

}  // namespace greenhpc::sched
