#include "sched/carbon_aware.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::sched {

CarbonAwareEasyScheduler::CarbonAwareEasyScheduler(
    Config config, std::shared_ptr<const carbon::Forecaster> forecaster)
    : cfg_(config), forecaster_(std::move(forecaster)) {
  GREENHPC_REQUIRE(forecaster_ != nullptr, "carbon-aware scheduler needs a forecaster");
  GREENHPC_REQUIRE(cfg_.green_quantile > 0.0 && cfg_.green_quantile < 1.0,
                   "green quantile must be in (0,1)");
  GREENHPC_REQUIRE(cfg_.improvement_factor > 0.0 && cfg_.improvement_factor <= 1.0,
                   "improvement factor must be in (0,1]");
}

double CarbonAwareEasyScheduler::current_threshold(
    const hpcsim::SimulationView& view) const {
  const auto& history = view.intensity_history();
  if (history.empty()) return view.carbon_intensity_now();
  const auto window_ticks = static_cast<std::size_t>(
      cfg_.history_window.seconds() / view.cluster().tick.seconds());
  const std::size_t n = std::min(history.size(), std::max<std::size_t>(window_ticks, 1));
  const std::span<const double> tail(history.data() + (history.size() - n), n);
  return util::percentile(tail, cfg_.green_quantile);
}

double CarbonAwareEasyScheduler::incremental_threshold(
    const hpcsim::SimulationView& view) {
  const auto& history = view.intensity_history();
  if (history.empty()) return view.carbon_intensity_now();
  const auto window_ticks = static_cast<std::size_t>(
      cfg_.history_window.seconds() / view.cluster().tick.seconds());
  const std::size_t cap = std::max<std::size_t>(window_ticks, 1);
  if (cap != threshold_window_.capacity() || history.size() < threshold_consumed_) {
    threshold_window_ = util::SlidingPercentile(cap);
    threshold_consumed_ = 0;
  }
  for (; threshold_consumed_ < history.size(); ++threshold_consumed_) {
    threshold_window_.push(history[threshold_consumed_]);
  }
  // The window now holds the last min(size, cap) history values — exactly
  // the tail current_threshold() takes its percentile over.
  return threshold_window_.percentile(cfg_.green_quantile);
}

const util::TimeSeries& CarbonAwareEasyScheduler::history_series(
    const hpcsim::SimulationView& view) {
  const auto& history = view.intensity_history();
  const Duration tick = view.cluster().tick;
  if (history.size() < hist_consumed_ || hist_series_.step() != tick ||
      hist_consumed_ == 0) {
    hist_series_ = util::TimeSeries(seconds(0.0), tick);
    hist_consumed_ = 0;
  }
  for (; hist_consumed_ < history.size(); ++hist_consumed_) {
    hist_series_.push_back(history[hist_consumed_]);
  }
  return hist_series_;
}

bool CarbonAwareEasyScheduler::greener_period_ahead(
    const hpcsim::SimulationView& view) {
  const auto& history = view.intensity_history();
  if (history.size() < 2) return false;  // nothing to forecast from yet
  const util::TimeSeries& hist = history_series(view);
  const Duration now = hist.end();
  const double target = view.carbon_intensity_now() * cfg_.improvement_factor;
  for (Duration h = hours(1.0); h <= cfg_.lookahead; h += hours(1.0)) {
    if (forecaster_->forecast(hist, now, h) <= target) return true;
  }
  return false;
}

void CarbonAwareEasyScheduler::on_tick(hpcsim::SimulationView& view) {
  pending_scratch_ = view.pending_jobs();  // snapshot: start() mutates the queue
  const std::vector<hpcsim::JobId>& pending = pending_scratch_;
  if (pending.empty()) return;

  // Degraded-feed fallback: past the staleness horizon the held value is
  // no longer trustworthy, so drop to carbon-blind EASY rather than gate
  // on a phantom grid state.
  if (view.carbon_signal_staleness() > cfg_.staleness_horizon) {
    static obs::Counter& stale_ticks =
        obs::Registry::global().counter("sched.carbon.stale_fallback_ticks");
    stale_ticks.add();
    easy_pass(view, pending, /*shrink_moldable=*/false, &releases_);
    return;
  }

  const double threshold = incremental_threshold(view);
  const bool green_now = view.carbon_intensity_now() <= threshold;

  // Queue-pressure guard: holding jobs while the backlog is deep only
  // trades wait time for no carbon benefit (the machine will be full
  // either way), so the gate opens under pressure.
  const hpcsim::JobTable& table = view.job_table();
  double backlog_nodes = 0.0;
  const double backlog_limit =
      cfg_.backlog_pressure_limit * static_cast<double>(view.cluster().nodes);
  for (hpcsim::JobId id : pending) {
    backlog_nodes += static_cast<double>(start_nodes(table, view.slot_of(id)));
    if (backlog_nodes > backlog_limit) break;  // only the comparison matters
  }
  const bool pressured = backlog_nodes > backlog_limit;

  bool hold_allowed = !green_now && !pressured;
  if (hold_allowed) {
    // Only hold if the forecast actually promises a greener window.
    hold_allowed = greener_period_ahead(view);
  }
  static obs::Counter& hold_ticks =
      obs::Registry::global().counter("sched.carbon.hold_ticks");
  static obs::Counter& held_jobs =
      obs::Registry::global().counter("sched.carbon.held_jobs");
  static obs::Counter& over_budget_releases =
      obs::Registry::global().counter("sched.carbon.released_over_budget");
  if (hold_allowed) hold_ticks.add();

  std::vector<hpcsim::JobId>& eligible = eligible_scratch_;
  eligible.clear();
  eligible.reserve(pending.size());
  for (hpcsim::JobId id : pending) {
    const Duration waited = view.now() - seconds(table.submit_s[view.slot_of(id)]);
    const bool over_budget = waited >= cfg_.max_hold;
    if (hold_allowed && !over_budget) {
      held_jobs.add();
      continue;  // hold for a green period
    }
    if (hold_allowed && over_budget) over_budget_releases.add();
    eligible.push_back(id);
  }
  if (!eligible.empty()) easy_pass(view, eligible, /*shrink_moldable=*/false, &releases_);
}

}  // namespace greenhpc::sched
