#pragma once
// System power-budget policies (paper section 3.1: "scaling up/down the
// total system power constraint in accordance with the carbon intensity
// changes is essential ... a carbon intensity monitor and a simple
// mechanism to automatically determine the total system power budget
// based on it").

#include <memory>
#include <string>

#include "hpcsim/policy.hpp"
#include "util/units.hpp"

namespace greenhpc::powerstack {

/// Constant budget (the PowerStack status quo and the experiment baseline).
class StaticBudgetPolicy final : public hpcsim::PowerBudgetPolicy {
 public:
  explicit StaticBudgetPolicy(Power budget);
  [[nodiscard]] Power system_budget(Duration now, double carbon_intensity,
                                    const hpcsim::ClusterConfig& cluster) override;
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  Power budget_;
};

/// Linear intensity-proportional scaling: the budget slides between
/// [min_fraction, max_fraction] of the cluster's max power as the current
/// intensity moves between the configured clean and dirty anchors.
///
///   budget = Pmax * ( min_f + (max_f - min_f) *
///            clamp((ci_dirty - ci) / (ci_dirty - ci_clean), 0, 1) )
class IntensityProportionalPolicy final : public hpcsim::PowerBudgetPolicy {
 public:
  struct Config {
    double ci_clean = 100.0;   ///< gCO2/kWh at or below which budget = max
    double ci_dirty = 400.0;   ///< gCO2/kWh at or above which budget = min
    double min_fraction = 0.6; ///< budget floor as fraction of max power
    double max_fraction = 1.0; ///< budget ceiling as fraction of max power
  };
  explicit IntensityProportionalPolicy(Config config);
  [[nodiscard]] Power system_budget(Duration now, double carbon_intensity,
                                    const hpcsim::ClusterConfig& cluster) override;
  [[nodiscard]] std::string name() const override { return "ci-proportional"; }

 private:
  Config cfg_;
};

/// Carbon-rate capping: choose the largest budget whose instantaneous
/// emission rate power * ci stays at or below a target gCO2/hour, within
/// [min_fraction, 1] of max power. This is the natural control law when
/// the site has a carbon budget per unit time rather than a power
/// contract.
class CarbonRateCapPolicy final : public hpcsim::PowerBudgetPolicy {
 public:
  struct Config {
    double target_kg_per_hour = 500.0;  ///< emission-rate ceiling
    double min_fraction = 0.5;          ///< never throttle below this
  };
  explicit CarbonRateCapPolicy(Config config);
  [[nodiscard]] Power system_budget(Duration now, double carbon_intensity,
                                    const hpcsim::ClusterConfig& cluster) override;
  [[nodiscard]] std::string name() const override { return "carbon-rate-cap"; }

 private:
  Config cfg_;
};

/// Ramp-rate limiting decorator: facility power contracts and cooling
/// plants bound how fast a site may swing its draw, so a realistic
/// PowerStack clamps the inner policy's budget changes to a maximum
/// slew rate (W per second).
class RampLimitedPolicy final : public hpcsim::PowerBudgetPolicy {
 public:
  /// `max_slew` in watts per second of simulated time; the first call
  /// passes through unclamped.
  RampLimitedPolicy(std::unique_ptr<hpcsim::PowerBudgetPolicy> inner, Power max_slew_per_s);
  [[nodiscard]] Power system_budget(Duration now, double carbon_intensity,
                                    const hpcsim::ClusterConfig& cluster) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::unique_ptr<hpcsim::PowerBudgetPolicy> inner_;
  Power max_slew_per_s_;
  bool primed_ = false;
  Duration last_time_;
  Power last_budget_;
};

}  // namespace greenhpc::powerstack
