#include "powerstack/budget_tree.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::powerstack {

Power BudgetNode::aggregate_min() const {
  if (children.empty()) return min_power;
  Power total{};
  for (const auto& c : children) total += c.aggregate_min();
  return total;
}

Power BudgetNode::aggregate_max() const {
  if (children.empty()) return max_power;
  Power total{};
  for (const auto& c : children) total += c.aggregate_max();
  return total;
}

std::vector<Power> water_fill(const std::vector<BudgetNode>& children, Power total) {
  GREENHPC_REQUIRE(!children.empty(), "water_fill needs children");
  const std::size_t n = children.size();
  std::vector<Power> out(n);
  std::vector<double> mins(n), maxs(n);
  double min_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mins[i] = children[i].aggregate_min().watts();
    maxs[i] = children[i].aggregate_max().watts();
    GREENHPC_REQUIRE(maxs[i] >= mins[i], "child max must be >= min");
    GREENHPC_REQUIRE(children[i].weight > 0.0, "child weight must be positive");
    min_sum += mins[i];
  }
  double budget = total.watts();
  if (budget <= min_sum) {
    // Infeasible (or exactly-feasible) floor: hand out floors scaled down
    // proportionally so the assignment never exceeds the parent's budget.
    const double scale = min_sum > 0.0 ? budget / min_sum : 0.0;
    for (std::size_t i = 0; i < n; ++i) out[i] = watts(mins[i] * scale);
    return out;
  }
  // Everyone gets the floor; split the surplus by weight, saturating at max.
  std::vector<double> assigned(mins);
  double surplus = budget - min_sum;
  std::vector<std::size_t> open(n);
  for (std::size_t i = 0; i < n; ++i) open[i] = i;
  while (surplus > 1e-9 && !open.empty()) {
    double weight_sum = 0.0;
    for (std::size_t i : open) weight_sum += children[i].weight;
    double distributed = 0.0;
    std::vector<std::size_t> still_open;
    for (std::size_t i : open) {
      const double offer = surplus * children[i].weight / weight_sum;
      const double headroom = maxs[i] - assigned[i];
      const double take = std::min(offer, headroom);
      assigned[i] += take;
      distributed += take;
      if (assigned[i] < maxs[i] - 1e-9) still_open.push_back(i);
    }
    surplus -= distributed;
    if (distributed <= 1e-9) break;  // all saturated
    open = std::move(still_open);
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = watts(assigned[i]);
  return out;
}

namespace {
void distribute_rec(const BudgetNode& node, Power budget, const std::string& prefix,
                    std::vector<Assignment>& out) {
  const std::string path = prefix.empty() ? node.name : prefix + "/" + node.name;
  out.push_back({path, budget, node.children.empty()});
  if (node.children.empty()) return;
  const std::vector<Power> shares = water_fill(node.children, budget);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    distribute_rec(node.children[i], shares[i], path, out);
  }
}
}  // namespace

std::vector<Assignment> distribute(const BudgetNode& root, Power total) {
  GREENHPC_REQUIRE(total.watts() >= 0.0, "budget must be >= 0");
  std::vector<Assignment> out;
  // Clamp to the tree's physical envelope.
  const Power clamped = std::min(total, root.aggregate_max());
  distribute_rec(root, clamped, "", out);
  return out;
}

BudgetNode make_site_tree(int jobs, int nodes_per_job, const ComponentBounds& b) {
  GREENHPC_REQUIRE(jobs >= 1 && nodes_per_job >= 1, "tree needs jobs and nodes");
  BudgetNode site{"system", {}, {}, 1.0, {}};
  for (int j = 0; j < jobs; ++j) {
    BudgetNode job{"job" + std::to_string(j), {}, {}, 1.0, {}};
    for (int nidx = 0; nidx < nodes_per_job; ++nidx) {
      BudgetNode node{"node" + std::to_string(nidx), {}, {}, 1.0, {}};
      node.children.push_back({"cpu", b.cpu_min, b.cpu_max, 1.0, {}});
      for (int g = 0; g < b.gpus_per_node; ++g) {
        node.children.push_back(
            {"gpu" + std::to_string(g), b.gpu_min, b.gpu_max, 2.0, {}});
      }
      node.children.push_back({"dram", b.dram_min, b.dram_max, 0.5, {}});
      job.children.push_back(std::move(node));
    }
    site.children.push_back(std::move(job));
  }
  return site;
}

}  // namespace greenhpc::powerstack
