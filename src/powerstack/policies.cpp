#include "powerstack/policies.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::powerstack {

StaticBudgetPolicy::StaticBudgetPolicy(Power budget) : budget_(budget) {
  GREENHPC_REQUIRE(budget.watts() > 0.0, "static budget must be positive");
}

Power StaticBudgetPolicy::system_budget(Duration /*now*/, double /*carbon_intensity*/,
                                        const hpcsim::ClusterConfig& /*cluster*/) {
  return budget_;
}

IntensityProportionalPolicy::IntensityProportionalPolicy(Config config) : cfg_(config) {
  GREENHPC_REQUIRE(cfg_.ci_dirty > cfg_.ci_clean, "dirty anchor must exceed clean anchor");
  GREENHPC_REQUIRE(cfg_.min_fraction > 0.0 && cfg_.min_fraction <= cfg_.max_fraction &&
                       cfg_.max_fraction <= 1.0,
                   "fractions must satisfy 0 < min <= max <= 1");
}

Power IntensityProportionalPolicy::system_budget(Duration /*now*/, double carbon_intensity,
                                                 const hpcsim::ClusterConfig& cluster) {
  const double cleanliness = std::clamp(
      (cfg_.ci_dirty - carbon_intensity) / (cfg_.ci_dirty - cfg_.ci_clean), 0.0, 1.0);
  const double fraction =
      cfg_.min_fraction + (cfg_.max_fraction - cfg_.min_fraction) * cleanliness;
  return cluster.max_power() * fraction;
}

CarbonRateCapPolicy::CarbonRateCapPolicy(Config config) : cfg_(config) {
  GREENHPC_REQUIRE(cfg_.target_kg_per_hour > 0.0, "carbon-rate target must be positive");
  GREENHPC_REQUIRE(cfg_.min_fraction > 0.0 && cfg_.min_fraction <= 1.0,
                   "min fraction must be in (0,1]");
}

Power CarbonRateCapPolicy::system_budget(Duration /*now*/, double carbon_intensity,
                                         const hpcsim::ClusterConfig& cluster) {
  // rate (g/h) = P(kW) * ci(g/kWh)  =>  P = rate / ci.
  const double ci = std::max(carbon_intensity, 1e-9);
  const double allowed_kw = cfg_.target_kg_per_hour * 1000.0 / ci;
  const double floor_w = cluster.max_power().watts() * cfg_.min_fraction;
  const double budget_w =
      std::clamp(allowed_kw * 1000.0, floor_w, cluster.max_power().watts());
  return watts(budget_w);
}

RampLimitedPolicy::RampLimitedPolicy(std::unique_ptr<hpcsim::PowerBudgetPolicy> inner,
                                     Power max_slew_per_s)
    : inner_(std::move(inner)), max_slew_per_s_(max_slew_per_s) {
  GREENHPC_REQUIRE(inner_ != nullptr, "ramp limiter needs an inner policy");
  GREENHPC_REQUIRE(max_slew_per_s.watts() > 0.0, "slew rate must be positive");
}

std::string RampLimitedPolicy::name() const { return inner_->name() + "+ramp"; }

Power RampLimitedPolicy::system_budget(Duration now, double carbon_intensity,
                                       const hpcsim::ClusterConfig& cluster) {
  const Power target = inner_->system_budget(now, carbon_intensity, cluster);
  if (!primed_) {
    primed_ = true;
    last_time_ = now;
    last_budget_ = target;
    return target;
  }
  const double dt = std::max(0.0, (now - last_time_).seconds());
  const double max_step = max_slew_per_s_.watts() * dt;
  const double delta =
      std::clamp(target.watts() - last_budget_.watts(), -max_step, max_step);
  last_time_ = now;
  last_budget_ = watts(last_budget_.watts() + delta);
  return last_budget_;
}

}  // namespace greenhpc::powerstack
