#pragma once
// Hierarchical power budgeting (paper section 3.1, the HPC PowerStack
// architecture): "the system management tool divides and distributes the
// given power budget accordingly to the currently running jobs. The given
// power budget is distributed across the allocated nodes for each job, and
// then the power budget at each node is split and assigned to the in-node
// hardware components (e.g., CPUs, GPUs, and DRAMs) by setting up their
// hardware knobs, typically power caps."
//
// BudgetTree models exactly that hierarchy: site -> job -> node ->
// component. Distribution at every level is weighted water-filling: each
// child is guaranteed its minimum, the surplus is split proportionally to
// weights, and children saturate at their maximum with the excess
// re-distributed among the rest.

#include <string>
#include <vector>

#include "util/units.hpp"

namespace greenhpc::powerstack {

/// One node of the budget hierarchy.
struct BudgetNode {
  std::string name;
  Power min_power;        ///< guaranteed floor (idle/leakage)
  Power max_power;        ///< hardware cap (TDP)
  double weight = 1.0;    ///< share of surplus relative to siblings
  std::vector<BudgetNode> children;

  /// Sum of children's floors (or own floor for a leaf).
  [[nodiscard]] Power aggregate_min() const;
  /// Sum of children's caps (or own cap for a leaf).
  [[nodiscard]] Power aggregate_max() const;
};

/// Budget assigned to one tree node after distribution, keyed by the
/// slash-joined path from the root ("system/job3/node1/gpu0").
struct Assignment {
  std::string path;
  Power budget;
  bool is_leaf = false;
};

/// Distribute `total` over the tree. At each level the children receive a
/// weighted water-filling split of the parent's budget, clamped to
/// [min, max]; the parent's budget is first clamped to the children's
/// aggregate bounds (a floor deficit is reported as an infeasible
/// assignment at the floor). Returns assignments in pre-order.
[[nodiscard]] std::vector<Assignment> distribute(const BudgetNode& root, Power total);

/// Weighted water-filling over one sibling group: returns each child's
/// budget for a parent budget of `total`. Exposed separately for testing
/// and for the simulator's job-level split.
[[nodiscard]] std::vector<Power> water_fill(const std::vector<BudgetNode>& children,
                                            Power total);

/// Convenience builder: a site tree with `jobs` jobs of `nodes_per_job`
/// nodes, each node holding cpu/gpu/dram components with the given bounds.
struct ComponentBounds {
  Power cpu_min = watts(40.0), cpu_max = watts(280.0);
  Power gpu_min = watts(100.0), gpu_max = watts(400.0);
  Power dram_min = watts(10.0), dram_max = watts(40.0);
  int gpus_per_node = 0;
};
[[nodiscard]] BudgetNode make_site_tree(int jobs, int nodes_per_job,
                                        const ComponentBounds& bounds);

}  // namespace greenhpc::powerstack
