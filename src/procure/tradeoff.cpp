#include "procure/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace greenhpc::procure {

TradeoffPoint evaluate_split(const ProcurementOptimizer& optimizer,
                             const TradeoffConfig& config, double embodied_fraction) {
  GREENHPC_REQUIRE(embodied_fraction > 0.0 && embodied_fraction < 1.0,
                   "embodied fraction must be in (0,1)");
  GREENHPC_REQUIRE(config.power_elasticity > 0.0 && config.power_elasticity <= 1.0,
                   "power elasticity must be in (0,1]");
  TradeoffPoint point;
  point.embodied_fraction = embodied_fraction;

  ProcurementConstraints constraints = config.base;
  constraints.embodied_budget = config.total_budget * embodied_fraction;
  point.plan = optimizer.optimize(constraints);
  point.procured_pflops = point.plan.perf_tflops(optimizer.catalog()) / 1000.0;

  // Operational budget -> sustainable average power over the lifetime.
  const Carbon op_budget = config.total_budget * (1.0 - embodied_fraction);
  const double kwh_allowed = op_budget.grams() / config.grid.grams_per_kwh();
  const double hours_of_life = config.lifetime.hours();
  point.sustainable_power = kilowatts(kwh_allowed / hours_of_life);

  const Power system_power = point.plan.power(optimizer.catalog());
  const double u =
      system_power.watts() > 0.0
          ? std::min(1.0, point.sustainable_power.watts() / system_power.watts())
          : 0.0;
  point.delivered_pflops =
      point.procured_pflops * std::pow(u, config.power_elasticity);
  return point;
}

std::vector<TradeoffPoint> sweep_budget_split(const ProcurementOptimizer& optimizer,
                                              const TradeoffConfig& config, int steps) {
  GREENHPC_REQUIRE(steps >= 3, "sweep needs at least three steps");
  std::vector<TradeoffPoint> sweep(static_cast<std::size_t>(steps));
  util::parallel_for(sweep.size(), [&](std::size_t i) {
    const double x = static_cast<double>(i + 1) / static_cast<double>(steps + 1);
    sweep[i] = evaluate_split(optimizer, config, x);
  });
  return sweep;
}

const TradeoffPoint& best_split(const std::vector<TradeoffPoint>& sweep) {
  GREENHPC_REQUIRE(!sweep.empty(), "sweep must not be empty");
  return *std::max_element(sweep.begin(), sweep.end(),
                           [](const TradeoffPoint& a, const TradeoffPoint& b) {
                             return a.delivered_pflops < b.delivered_pflops;
                           });
}

}  // namespace greenhpc::procure
