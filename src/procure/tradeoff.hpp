#pragma once
// Embodied vs operational carbon budget trade-off (paper section 2.2):
// "If this embodied carbon budget is not fully used, the remaining part
// can be shifted to the operational carbon budget in order to boost the
// system performance by raising the system power limit for a certain
// amount of time. Trading-off the embodied and operational carbon budgets
// under a total carbon footprint budget will be another optimization
// opportunity for system designs."
//
// Given a total lifetime carbon budget, a split fraction x assigns
// x * budget to manufacturing and (1-x) * budget to operation. The
// operational share fixes the sustainable average power (via the grid
// intensity), which derates the procured system's delivered performance
// through the standard power-performance elasticity. Sweeping x exposes
// the interior optimum the paper predicts.

#include <vector>

#include "procure/optimizer.hpp"
#include "util/units.hpp"

namespace greenhpc::procure {

struct TradeoffConfig {
  Carbon total_budget = tonnes_co2(20000.0);  ///< lifetime carbon budget
  Duration lifetime = days(365.0 * 6.0);
  CarbonIntensity grid = grams_per_kwh(300.0);
  /// Cost/power/node envelopes that apply regardless of the carbon split.
  ProcurementConstraints base;
  /// Delivered performance = perf * u^elasticity with
  /// u = min(1, P_operational / P_system).
  double power_elasticity = 0.7;
};

struct TradeoffPoint {
  double embodied_fraction = 0.0;  ///< x
  ProcurementPlan plan;
  Power sustainable_power;         ///< operational-budget-implied power
  double procured_pflops = 0.0;    ///< nameplate performance of the plan
  double delivered_pflops = 0.0;   ///< after power derating
};

/// Evaluate one split point.
[[nodiscard]] TradeoffPoint evaluate_split(const ProcurementOptimizer& optimizer,
                                           const TradeoffConfig& config,
                                           double embodied_fraction);

/// Sweep x over (0, 1) in `steps` steps (parallelized).
[[nodiscard]] std::vector<TradeoffPoint> sweep_budget_split(
    const ProcurementOptimizer& optimizer, const TradeoffConfig& config, int steps = 19);

/// The sweep point with the highest delivered performance.
[[nodiscard]] const TradeoffPoint& best_split(const std::vector<TradeoffPoint>& sweep);

}  // namespace greenhpc::procure
