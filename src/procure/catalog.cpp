#include "procure/catalog.hpp"

#include "embodied/components.hpp"

namespace greenhpc::procure {

std::vector<NodeBlueprint> default_catalog(const embodied::ActModel& model) {
  using namespace greenhpc::embodied;
  std::vector<NodeBlueprint> catalog;

  // Dual-socket Skylake-class node (trailing process, cheap, power hungry).
  {
    NodeBlueprint n;
    n.name = "cpu-14nm";
    n.perf_tflops = 3.0;
    n.power = watts(900.0);
    n.embodied = processor_embodied(model, intel_xeon_8174()) * 2.0 +
                 model.dram(192.0, DramType::DDR4) + kilograms_co2(130.0);
    n.cost_keur = 14.0;
    catalog.push_back(std::move(n));
  }
  // Dual-socket EPYC-class node (leading process, better perf/W).
  {
    NodeBlueprint n;
    n.name = "cpu-7nm";
    n.perf_tflops = 5.2;
    n.power = watts(850.0);
    n.embodied = processor_embodied(model, amd_epyc_7742()) * 2.0 +
                 model.dram(256.0, DramType::DDR4) + kilograms_co2(140.0);
    n.cost_keur = 18.0;
    catalog.push_back(std::move(n));
  }
  // A100-class GPU node: 2 CPUs + 4 GPU modules.
  {
    NodeBlueprint n;
    n.name = "gpu-a100";
    n.perf_tflops = 42.0;
    n.power = watts(2900.0);
    n.embodied = processor_embodied(model, nvidia_a100_sxm()) * 4.0 +
                 processor_embodied(model, amd_epyc_7402()) * 2.0 +
                 model.dram(512.0, DramType::DDR4) + kilograms_co2(431.0);
    n.cost_keur = 160.0;
    catalog.push_back(std::move(n));
  }
  // Next-generation GPU node (5nm-class dies, HBM-heavy).
  {
    NodeBlueprint n;
    n.name = "gpu-next";
    ProcessorSpec gpu;
    gpu.name = "next-gen GPU";
    gpu.chiplets = {{814.0, ProcessNode::N5, 1}};
    gpu.substrate_cm2 = 60.0;
    gpu.interposer_cm2 = 16.0;
    gpu.hbm_gb = 80.0;
    gpu.module_overhead_kg = 130.0;
    n.perf_tflops = 95.0;
    n.power = watts(3600.0);
    n.embodied = processor_embodied(model, gpu) * 4.0 +
                 processor_embodied(model, amd_epyc_7742()) * 2.0 +
                 model.dram(512.0, DramType::DDR5) + kilograms_co2(460.0);
    n.cost_keur = 240.0;
    catalog.push_back(std::move(n));
  }
  // Low-power many-core node (A64FX-style co-design, section 2.1).
  {
    NodeBlueprint n;
    n.name = "manycore-lp";
    ProcessorSpec soc;
    soc.name = "manycore SoC";
    soc.chiplets = {{400.0, ProcessNode::N7, 1}};
    soc.substrate_cm2 = 35.0;
    soc.hbm_gb = 32.0;
    n.perf_tflops = 3.4;
    n.power = watts(200.0);
    n.embodied = processor_embodied(model, soc) + kilograms_co2(90.0);
    n.cost_keur = 11.0;
    catalog.push_back(std::move(n));
  }
  return catalog;
}

}  // namespace greenhpc::procure
