#pragma once
// Carbon-constrained procurement optimization (paper section 2.2):
// "Traditionally, the system configurations are determined in order to
// maximize performance of proxy applications while adhering to constraints
// like total budget, power supply, machine footprint, or weight. In the
// future, system architects will need to take carbon footprint budget into
// account as another design constraint."
//
// The problem is an integer program: choose node counts n_i maximizing
// sum(n_i * perf_i) subject to cost, power, node-count and embodied-carbon
// budgets. The solver is a deterministic greedy construction (by
// performance per tightest-resource unit) refined by steepest-ascent
// exchange search; optimize_exhaustive() provides ground truth for small
// instances and is used by the tests to validate the heuristic.

#include <vector>

#include "procure/catalog.hpp"
#include "util/units.hpp"

namespace greenhpc::procure {

/// Budget envelope of a procurement round. Any constraint can be disabled
/// by leaving it at its (effectively unlimited) default.
struct ProcurementConstraints {
  double cost_budget_keur = 1e12;
  Power power_limit = megawatts(1e6);
  Carbon embodied_budget = tonnes_co2(1e12);
  int max_nodes = 1000000;
};

/// A chosen system configuration (counts parallel to the catalog order).
struct ProcurementPlan {
  std::vector<int> counts;

  [[nodiscard]] double perf_tflops(const std::vector<NodeBlueprint>& catalog) const;
  [[nodiscard]] double cost_keur(const std::vector<NodeBlueprint>& catalog) const;
  [[nodiscard]] Power power(const std::vector<NodeBlueprint>& catalog) const;
  [[nodiscard]] Carbon embodied(const std::vector<NodeBlueprint>& catalog) const;
  [[nodiscard]] int total_nodes() const;
  [[nodiscard]] bool feasible(const std::vector<NodeBlueprint>& catalog,
                              const ProcurementConstraints& c) const;
};

class ProcurementOptimizer {
 public:
  explicit ProcurementOptimizer(std::vector<NodeBlueprint> catalog);

  [[nodiscard]] const std::vector<NodeBlueprint>& catalog() const { return catalog_; }

  /// Heuristic optimum: greedy fill ordered by performance per unit of the
  /// binding constraint, then pairwise exchange improvement until a local
  /// optimum. Deterministic.
  [[nodiscard]] ProcurementPlan optimize(const ProcurementConstraints& c) const;

  /// Exact optimum by bounded enumeration; cost grows as
  /// (max_count+1)^types, so only use with small instances (tests).
  [[nodiscard]] ProcurementPlan optimize_exhaustive(const ProcurementConstraints& c,
                                                    int max_count_per_type) const;

 private:
  [[nodiscard]] bool can_add(const ProcurementPlan& plan, std::size_t type,
                             const ProcurementConstraints& c) const;

  std::vector<NodeBlueprint> catalog_;
};

}  // namespace greenhpc::procure
