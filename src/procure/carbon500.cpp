#include "procure/carbon500.hpp"

#include <algorithm>

#include "embodied/metrics.hpp"
#include "util/error.hpp"

namespace greenhpc::procure {

Carbon500Entry make_entry(const embodied::ActModel& model,
                          const embodied::SystemInventory& system,
                          carbon::Region region) {
  Carbon500Entry e;
  e.system = system.name;
  e.region = region;
  e.rmax_pflops = system.peak_pflops;
  e.avg_power = system.avg_power;
  e.embodied = embodied_breakdown(model, system).total();
  e.lifetime_years = system.lifetime_years;
  return e;
}

std::vector<Carbon500Entry> rank(std::vector<Carbon500Entry> entries) {
  for (auto& e : entries) {
    GREENHPC_REQUIRE(e.rmax_pflops > 0.0 && e.lifetime_years >= 1,
                     "entry needs performance and lifetime");
    const Duration life = days(365.0 * e.lifetime_years);
    const CarbonIntensity ci =
        grams_per_kwh(carbon::traits(e.region).mean_gkwh);
    e.lifetime_operational = embodied::operational_carbon(e.avg_power, life, ci);
    e.score_gflops_per_gram =
        embodied::flops_per_gram(e.rmax_pflops, life, e.embodied, e.avg_power, ci) / 1e9;
    e.top500_rank_hint = e.rmax_pflops;
  }
  std::sort(entries.begin(), entries.end(),
            [](const Carbon500Entry& a, const Carbon500Entry& b) {
              return a.score_gflops_per_gram > b.score_gflops_per_gram;
            });
  return entries;
}

std::vector<Carbon500Entry> reference_list(const embodied::ActModel& model) {
  using carbon::Region;
  std::vector<Carbon500Entry> list;
  // Real placements (Juwels Booster at FZJ and SuperMUC-NG at LRZ; LRZ's
  // hydropower contract is modeled as a France-class clean intensity).
  list.push_back(make_entry(model, embodied::juwels_booster(), Region::Germany));
  {
    auto e = make_entry(model, embodied::supermuc_ng(), Region::Norway);
    e.system = "SuperMUC-NG (LRZ hydro)";
    list.push_back(e);
  }
  list.push_back(make_entry(model, embodied::hawk(), Region::Germany));
  // What-if placements of identical hardware (the location lever, Fig. 2).
  {
    auto e = make_entry(model, embodied::juwels_booster(), Region::Poland);
    e.system = "Juwels Booster (if in PL)";
    list.push_back(e);
  }
  {
    auto e = make_entry(model, embodied::juwels_booster(), Region::Norway);
    e.system = "Juwels Booster (if in NO)";
    list.push_back(e);
  }
  // A synthetic accelerator-dense successor in a clean grid.
  {
    Carbon500Entry e;
    e.system = "NextGen-GPU (synthetic, SE)";
    e.region = Region::Sweden;
    e.rmax_pflops = 120.0;
    e.avg_power = megawatts(4.2);
    e.embodied = tonnes_co2(5200.0);
    e.lifetime_years = 6;
    list.push_back(e);
  }
  // The paper's introduction systems: Frontier (20 MW continuous) and
  // Aurora (the paper's 60 MW estimate). US grids mapped to the closest
  // European preset by mean intensity (TVA ~ Italy, PJM/ComEd ~ Germany).
  {
    auto e = make_entry(model, embodied::frontier(), Region::Italy);
    list.push_back(e);
  }
  {
    auto e = make_entry(model, embodied::aurora_estimate(), Region::Germany);
    list.push_back(e);
  }
  // A Fugaku-class co-designed system (section 2.1 cites the A64FX as a
  // co-design exemplar): Japanese grid, scaled to a Fugaku tranche.
  {
    Carbon500Entry e;
    e.system = "A64FX co-design tranche (JP-like grid)";
    e.region = Region::Italy;  // comparable mean intensity to Japan's grid
    e.rmax_pflops = 44.0;      // one tenth of Fugaku's Rmax
    e.avg_power = megawatts(3.0);
    // ~16k single-socket A64FX nodes: HBM-on-package SoC, no DIMMs.
    const auto model_embodied = [&] {
      embodied::ProcessorSpec soc;
      soc.name = "A64FX";
      soc.chiplets = {{400.0, embodied::ProcessNode::N7, 1}};
      soc.substrate_cm2 = 35.0;
      soc.hbm_gb = 32.0;
      return processor_embodied(model, soc) * 16000.0 +
             model.storage(15.0e6, embodied::StorageType::HDD) +
             kilograms_co2(120.0 * 16000.0);  // chassis/boards
    };
    e.embodied = model_embodied();
    e.lifetime_years = 7;
    list.push_back(e);
  }
  return list;
}

}  // namespace greenhpc::procure
