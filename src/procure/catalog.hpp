#pragma once
// Node blueprints a system architect can procure (paper section 2.2: "the
// number of available hardware choices is increasing dramatically").
// Embodied carbon of each blueprint is derived from the embodied module's
// component models, so catalog and Fig. 1 share one carbon methodology.

#include <string>
#include <vector>

#include "embodied/act_model.hpp"
#include "util/units.hpp"

namespace greenhpc::procure {

/// One procurable node type.
struct NodeBlueprint {
  std::string name;
  double perf_tflops = 0.0;   ///< sustained FP64 per node
  Power power;                ///< typical draw per node
  Carbon embodied;            ///< manufacturing carbon per node
  double cost_keur = 0.0;     ///< procurement cost per node (kEUR)
};

/// Reference catalog built from the embodied component models: trailing-
/// node CPU, leading-node CPU, A100-class GPU node, next-gen GPU node,
/// and a low-power many-core node.
[[nodiscard]] std::vector<NodeBlueprint> default_catalog(const embodied::ActModel& model);

}  // namespace greenhpc::procure
