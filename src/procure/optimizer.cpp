#include "procure/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace greenhpc::procure {

double ProcurementPlan::perf_tflops(const std::vector<NodeBlueprint>& catalog) const {
  double total = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) total += counts[i] * catalog[i].perf_tflops;
  return total;
}

double ProcurementPlan::cost_keur(const std::vector<NodeBlueprint>& catalog) const {
  double total = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) total += counts[i] * catalog[i].cost_keur;
  return total;
}

Power ProcurementPlan::power(const std::vector<NodeBlueprint>& catalog) const {
  Power total{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += catalog[i].power * static_cast<double>(counts[i]);
  }
  return total;
}

Carbon ProcurementPlan::embodied(const std::vector<NodeBlueprint>& catalog) const {
  Carbon total{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += catalog[i].embodied * static_cast<double>(counts[i]);
  }
  return total;
}

int ProcurementPlan::total_nodes() const {
  int total = 0;
  for (int c : counts) total += c;
  return total;
}

bool ProcurementPlan::feasible(const std::vector<NodeBlueprint>& catalog,
                               const ProcurementConstraints& c) const {
  return cost_keur(catalog) <= c.cost_budget_keur + 1e-9 &&
         power(catalog) <= c.power_limit + watts(1e-6) &&
         embodied(catalog) <= c.embodied_budget + grams_co2(1e-3) &&
         total_nodes() <= c.max_nodes;
}

ProcurementOptimizer::ProcurementOptimizer(std::vector<NodeBlueprint> catalog)
    : catalog_(std::move(catalog)) {
  GREENHPC_REQUIRE(!catalog_.empty(), "optimizer needs a non-empty catalog");
  for (const auto& b : catalog_) {
    GREENHPC_REQUIRE(b.perf_tflops > 0.0 && b.power.watts() > 0.0 &&
                         b.embodied.grams() > 0.0 && b.cost_keur > 0.0,
                     "blueprint quantities must be positive");
  }
}

bool ProcurementOptimizer::can_add(const ProcurementPlan& plan, std::size_t type,
                                   const ProcurementConstraints& c) const {
  ProcurementPlan next = plan;
  ++next.counts[type];
  return next.feasible(catalog_, c);
}

ProcurementPlan ProcurementOptimizer::optimize(const ProcurementConstraints& c) const {
  const std::size_t types = catalog_.size();
  ProcurementPlan plan;
  plan.counts.assign(types, 0);

  // Greedy: repeatedly add the node type with the best performance per
  // unit of its scarcest (budget-normalized) resource consumption.
  bool progress = true;
  while (progress) {
    progress = false;
    double best_density = -1.0;
    std::size_t best_type = 0;
    for (std::size_t t = 0; t < types; ++t) {
      if (!can_add(plan, t, c)) continue;
      // Density: performance per unit of the scarcest resource this type
      // consumes (normalized by budget).
      const double cost_frac = catalog_[t].cost_keur / c.cost_budget_keur;
      const double power_frac = catalog_[t].power / c.power_limit;
      const double carbon_frac = catalog_[t].embodied / c.embodied_budget;
      const double node_frac = 1.0 / static_cast<double>(c.max_nodes);
      const double consumption = std::max({cost_frac, power_frac, carbon_frac, node_frac});
      const double density = catalog_[t].perf_tflops / std::max(consumption, 1e-18);
      if (density > best_density) {
        best_density = density;
        best_type = t;
      }
    }
    if (best_density > 0.0) {
      ++plan.counts[best_type];
      progress = true;
    }
  }

  // Exchange refinement: swap k units of one type for units of another if
  // feasible and strictly better. Steepest ascent until fixpoint.
  bool improved = true;
  while (improved) {
    improved = false;
    double best_gain = 1e-9;
    ProcurementPlan best_plan = plan;
    for (std::size_t from = 0; from < types; ++from) {
      if (plan.counts[from] == 0) continue;
      for (std::size_t to = 0; to < types; ++to) {
        if (to == from) continue;
        for (int take = 1; take <= std::min(plan.counts[from], 8); take *= 2) {
          ProcurementPlan cand = plan;
          cand.counts[from] -= take;
          // Add as many `to` nodes as now fit.
          while (can_add(cand, to, c)) ++cand.counts[to];
          const double gain =
              cand.perf_tflops(catalog_) - plan.perf_tflops(catalog_);
          if (gain > best_gain && cand.feasible(catalog_, c)) {
            best_gain = gain;
            best_plan = cand;
          }
        }
      }
    }
    if (best_gain > 1e-9) {
      plan = best_plan;
      improved = true;
    }
  }
  return plan;
}

ProcurementPlan ProcurementOptimizer::optimize_exhaustive(const ProcurementConstraints& c,
                                                          int max_count_per_type) const {
  GREENHPC_REQUIRE(max_count_per_type >= 0, "max count must be >= 0");
  const std::size_t types = catalog_.size();
  GREENHPC_REQUIRE(std::pow(static_cast<double>(max_count_per_type + 1),
                            static_cast<double>(types)) < 2e7,
                   "exhaustive search space too large");
  ProcurementPlan best;
  best.counts.assign(types, 0);
  double best_perf = -1.0;
  ProcurementPlan cur;
  cur.counts.assign(types, 0);
  // Odometer enumeration.
  for (;;) {
    if (cur.feasible(catalog_, c)) {
      const double perf = cur.perf_tflops(catalog_);
      if (perf > best_perf) {
        best_perf = perf;
        best = cur;
      }
    }
    std::size_t pos = 0;
    while (pos < types) {
      if (cur.counts[pos] < max_count_per_type) {
        ++cur.counts[pos];
        break;
      }
      cur.counts[pos] = 0;
      ++pos;
    }
    if (pos == types) break;
  }
  return best;
}

}  // namespace greenhpc::procure
