#pragma once
// The "Carbon500" ranking the paper proposes (section 2.2: "we should
// extend the existing supercomputing rankings to cover the carbon
// efficiency perspective (something like a Carbon500 list)").
//
// Systems are ranked by lifetime carbon efficiency: total FLOP delivered
// over the planned lifetime divided by total (embodied + operational)
// carbon — the flops_per_gram metric of the embodied module.

#include <string>
#include <vector>

#include "carbon/region.hpp"
#include "embodied/act_model.hpp"
#include "embodied/systems.hpp"
#include "util/units.hpp"

namespace greenhpc::procure {

struct Carbon500Entry {
  std::string system;
  carbon::Region region = carbon::Region::Germany;
  double rmax_pflops = 0.0;
  Power avg_power;
  Carbon embodied;
  int lifetime_years = 6;

  // Derived at ranking time:
  double score_gflops_per_gram = 0.0;  ///< ranking key (higher is better)
  Carbon lifetime_operational;
  double top500_rank_hint = 0.0;       ///< raw Rmax, for contrast columns
};

/// Build an entry from a system inventory placed in a region (intensity
/// taken as the region's long-run mean).
[[nodiscard]] Carbon500Entry make_entry(const embodied::ActModel& model,
                                        const embodied::SystemInventory& system,
                                        carbon::Region region);

/// Compute scores and sort descending by carbon efficiency.
[[nodiscard]] std::vector<Carbon500Entry> rank(std::vector<Carbon500Entry> entries);

/// Reference list: the paper's three German systems in their real regions
/// plus what-if placements (the same Juwels Booster hardware in Poland vs
/// Norway) and a synthetic next-gen entry — enough spread to show how the
/// ranking diverges from a pure-performance Top500 ordering.
[[nodiscard]] std::vector<Carbon500Entry> reference_list(const embodied::ActModel& model);

}  // namespace greenhpc::procure
