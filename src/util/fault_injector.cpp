#include "util/fault_injector.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"

namespace greenhpc::util {

namespace {

/// Chaos lane accounting: every fired spec is visible in the registry
/// (and thus in shipped `stat` snapshots), so a chaos run can tell
/// "nothing fired" apart from "everything fired and was contained".
void count_fired() {
  static obs::Counter& fired =
      obs::Registry::global().counter("chaos.faults_injected");
  fired.add();
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::arm(std::vector<FaultSpec> specs) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_ = std::move(specs);
  counters_.clear();
  armed_.store(!specs_.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  counters_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::consult(const std::string& site, FaultHit& hit) {
  if (!armed()) return false;  // the production fast path: one atomic load
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t n = counters_[site]++;
  for (const FaultSpec& s : specs_) {
    if (s.site != site) continue;
    if (n < s.at || n - s.at >= s.count) continue;
    hit.action = s.action;
    hit.param = s.param;
    count_fired();
    return true;
  }
  return false;
}

bool FaultInjector::match_value(const std::string& site, std::uint64_t value,
                                FaultHit& hit) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (const FaultSpec& s : specs_) {
    if (s.site != site || s.at != value) continue;
    hit.action = s.action;
    hit.param = s.param;
    count_fired();
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::occurrences(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(site);
  return it == counters_.end() ? 0 : it->second;
}

const char* FaultInjector::action_name(FaultAction action) {
  switch (action) {
    case FaultAction::Fail: return "fail";
    case FaultAction::Kill: return "kill";
    case FaultAction::Stall: return "stall";
    case FaultAction::Delay: return "delay";
    case FaultAction::Drop: return "drop";
    case FaultAction::Truncate: return "truncate";
    case FaultAction::BitFlip: return "bitflip";
    case FaultAction::ShortWrite: return "shortwrite";
  }
  return "fail";
}

bool FaultInjector::parse_action(const std::string& name, FaultAction& out) {
  static const struct { const char* name; FaultAction action; } kTable[] = {
      {"fail", FaultAction::Fail},         {"kill", FaultAction::Kill},
      {"stall", FaultAction::Stall},       {"delay", FaultAction::Delay},
      {"drop", FaultAction::Drop},         {"truncate", FaultAction::Truncate},
      {"bitflip", FaultAction::BitFlip},   {"shortwrite", FaultAction::ShortWrite},
  };
  for (const auto& e : kTable) {
    if (name == e.name) {
      out = e.action;
      return true;
    }
  }
  return false;
}

std::string FaultInjector::encode(const std::vector<FaultSpec>& specs) {
  std::string out;
  for (const FaultSpec& s : specs) {
    if (!out.empty()) out += ',';
    out += s.site;
    out += ':';
    out += std::to_string(s.at);
    out += ':';
    out += std::to_string(s.count);
    out += ':';
    out += action_name(s.action);
    out += ':';
    out += std::to_string(s.param);
  }
  return out;
}

namespace {

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

std::vector<std::string> split_on(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

bool FaultInjector::decode(const std::string& text,
                           std::vector<FaultSpec>& out) {
  out.clear();
  if (text.empty()) return true;
  for (const std::string& item : split_on(text, ',')) {
    const std::vector<std::string> f = split_on(item, ':');
    if (f.size() != 5 || f[0].empty()) return false;
    FaultSpec s;
    s.site = f[0];
    if (!parse_u64(f[1], s.at) || !parse_u64(f[2], s.count) ||
        !parse_action(f[3], s.action) || !parse_u64(f[4], s.param)) {
      return false;
    }
    out.push_back(std::move(s));
  }
  return true;
}

}  // namespace greenhpc::util
