#include "util/csv.hpp"

#include <charconv>
#include <cstdio>

namespace greenhpc::util {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void CsvWriter::write_row(const std::string& label, const std::vector<double>& cells) {
  *out_ << escape(label);
  for (double v : cells) *out_ << ',' << fmt(v);
  *out_ << '\n';
}

}  // namespace greenhpc::util
