#pragma once
// Descriptive statistics used by calibration, experiments and tests.

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace greenhpc::util {

/// Numerically stable streaming mean/variance/extrema (Welford's algorithm).
class RunningStats {
 public:
  /// Fold one observation into the accumulator.
  void add(double x);
  /// Number of observations folded so far.
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two observations.
  [[nodiscard]] double variance() const;
  /// Sample variance (n-1 denominator); 0 with fewer than two observations.
  [[nodiscard]] double sample_variance() const;
  /// Population standard deviation.
  [[nodiscard]] double stddev() const;
  /// Sample standard deviation.
  [[nodiscard]] double sample_stddev() const;
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const { return sum_; }
  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Compute a Summary of `xs`. Empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 1]. Requires non-empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Percentiles over a sliding window of the last `capacity` appended
/// values, bit-identical to calling percentile() on that window but
/// without the per-query copy-and-sort: the window is kept sorted across
/// appends (one binary search + memmove per push instead of an
/// O(W log W) sort per query). Built for per-tick quantile gates over a
/// trailing history window (e.g. the carbon-aware green threshold).
class SlidingPercentile {
 public:
  /// Window capacity in samples (>= 1).
  explicit SlidingPercentile(std::size_t capacity);

  /// Append one value, evicting the oldest once the window is full.
  void push(double x);
  /// Number of values currently in the window (<= capacity).
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Same contract and arithmetic as percentile(window, q); requires a
  /// non-empty window.
  [[nodiscard]] double percentile(double q) const;

 private:
  std::size_t capacity_;
  std::size_t oldest_ = 0;      ///< ring index of the next eviction victim
  std::vector<double> order_;   ///< window contents in insertion order (ring)
  std::vector<double> sorted_;  ///< the same contents, kept sorted
};

/// Mean absolute percentage error of `forecast` against `actual`
/// (matching lengths; entries where actual == 0 are skipped).
[[nodiscard]] double mape(std::span<const double> actual, std::span<const double> forecast);

/// Root mean squared error (matching, non-empty lengths).
[[nodiscard]] double rmse(std::span<const double> actual, std::span<const double> forecast);

/// Pearson correlation of two equal-length samples; 0 if either is constant.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                                 double hi, std::size_t bins);

}  // namespace greenhpc::util
