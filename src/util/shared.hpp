#pragma once
// Shared immutable asset handle.
//
// Parameter sweeps run hundreds of simulations over the same scenario
// assets (an intensity trace, a generated job list). Shared<T> is the
// ownership shape for those inputs: a shared_ptr<const T> with an implicit
// conversion from T, so config structs can accept either an owned value
// (wrapped once, the pre-sweep-engine style) or an already-shared asset
// (zero-copy, the sweep-engine style) without touching every call site.

#include <memory>
#include <utility>

namespace greenhpc::util {

template <typename T>
class Shared {
 public:
  /// Empty handle (no asset attached).
  Shared() = default;
  /// Wrap an owned value into shared immutable storage (one move/copy).
  Shared(T value) : ptr_(std::make_shared<const T>(std::move(value))) {}
  /// Adopt an already-shared asset (zero-copy).
  Shared(std::shared_ptr<const T> ptr) : ptr_(std::move(ptr)) {}

  /// Whether an asset is attached.
  explicit operator bool() const { return ptr_ != nullptr; }
  [[nodiscard]] const T& operator*() const { return *ptr_; }
  [[nodiscard]] const T* operator->() const { return ptr_.get(); }
  [[nodiscard]] const T* get() const { return ptr_.get(); }
  [[nodiscard]] const std::shared_ptr<const T>& ptr() const { return ptr_; }

 private:
  std::shared_ptr<const T> ptr_;
};

}  // namespace greenhpc::util
