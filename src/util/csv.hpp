#pragma once
// Minimal CSV emission for experiment data that downstream plotting
// scripts consume. Values are quoted only when needed (comma/quote/newline).

#include <ostream>
#include <string>
#include <vector>

namespace greenhpc::util {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Emit one row of string cells.
  void write_row(const std::vector<std::string>& cells);
  /// Emit a label followed by numeric cells (formatted with max precision
  /// that round-trips).
  void write_row(const std::string& label, const std::vector<double>& cells);

  /// Quote a single cell per RFC 4180 when it contains a delimiter.
  [[nodiscard]] static std::string escape(const std::string& cell);
  /// Format one numeric cell the same way the numeric write_row does
  /// (max precision that round-trips) — for rows mixing text and numbers.
  [[nodiscard]] static std::string fmt(double v);

 private:
  std::ostream* out_;
};

}  // namespace greenhpc::util
