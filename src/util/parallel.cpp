#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/error.hpp"

namespace greenhpc::util {

namespace {
thread_local bool inside_parallel_region = false;

/// configure_global request (0 = none) and whether global() has run.
std::atomic<std::size_t> global_requested{0};
std::atomic<bool> global_constructed{false};
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(Task& task) {
  // Dynamic self-scheduling over a shared atomic counter; chunk size 1 is
  // fine because individual iterations (a whole simulation or DSE point)
  // are orders of magnitude more expensive than the fetch_add.
  for (;;) {
    const std::size_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.n) break;
    try {
      (*task.body)(i);
    } catch (...) {
      std::lock_guard lock(task.error_mutex);
      if (!task.error) task.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  inside_parallel_region = true;  // bodies running on workers must not re-enter
  std::size_t seen_generation = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = current_;
    }
    run_chunk(*task);
    if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Nested calls (from a worker or from a body that itself fans out) run
  // serially: the pool has a single task slot, and the outer level already
  // saturates the hardware.
  if (inside_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  inside_parallel_region = true;
  struct Reset {
    ~Reset() { inside_parallel_region = false; }
  } reset;
  Task task;
  task.body = &body;
  task.n = n;
  task.remaining.store(workers_.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    current_ = &task;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return task.remaining.load(std::memory_order_acquire) == 0; });
    current_ = nullptr;
  }
  if (task.error) std::rethrow_exception(task.error);
}

std::size_t ThreadPool::env_thread_override() {
  const char* env = std::getenv("GREENHPC_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n <= 0) return 0;
  return static_cast<std::size_t>(n);
}

void ThreadPool::configure_global(std::size_t threads) {
  GREENHPC_REQUIRE(!global_constructed.load(std::memory_order_acquire),
                   "configure_global must run before the global pool's first use");
  global_requested.store(threads, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    global_constructed.store(true, std::memory_order_release);
    const std::size_t requested = global_requested.load(std::memory_order_acquire);
    if (requested != 0) return requested;
    return env_thread_override();  // 0 falls through to hardware concurrency
  }());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

}  // namespace greenhpc::util
