#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace greenhpc::util {

namespace detail {
void note_pool_serial_fallback() {
  static obs::Counter& serial =
      obs::Registry::global().counter("pool.serial_fallbacks");
  serial.add();
}
}  // namespace detail

namespace {
thread_local bool inside_parallel_region = false;

/// configure_global request (0 = none) and whether global() has run.
std::atomic<std::size_t> global_requested{0};
std::atomic<bool> global_constructed{false};
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() { return inside_parallel_region; }

std::size_t ThreadPool::default_grain(std::size_t n) const {
  // ~8 chunks per team member (workers + caller): enough slack for
  // dynamic load balance, few enough that per-chunk dispatch stays noise.
  const std::size_t team = workers_.size() + 1;
  return std::max<std::size_t>(1, n / (8 * team));
}

void ThreadPool::run_chunks(Task& task) {
  // Dynamic self-scheduling over a shared atomic chunk counter; the body
  // runs direct (non-erased) within a chunk, so the fetch_add and the one
  // indirect call are amortized over `grain` iterations.
  static obs::Counter& chunks_done = obs::Registry::global().counter("pool.chunks");
  for (;;) {
    // Cancel-on-error: once any chunk has thrown, the remaining chunks are
    // abandoned instead of burning the rest of the grid on a doomed task.
    // The acquire pairs with the release store below so the caller's
    // rethrow happens-after the failing chunk's writes.
    if (task.failed.load(std::memory_order_acquire)) break;
    const std::size_t c = task.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= task.chunks) break;
    const std::size_t begin = c * task.grain;
    const std::size_t end = std::min(task.n, begin + task.grain);
    GREENHPC_TRACE_SPAN("pool.chunk");
    try {
      task.invoke(task.ctx, begin, end);
    } catch (...) {
      {
        std::lock_guard lock(task.error_mutex);
        if (!task.error) task.error = std::current_exception();
      }
      task.failed.store(true, std::memory_order_release);
    }
    chunks_done.add();
  }
}

void ThreadPool::worker_loop() {
  inside_parallel_region = true;  // bodies running on workers must not re-enter
  std::size_t seen_generation = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = current_;
    }
    static obs::Counter& wakeups =
        obs::Registry::global().counter("pool.worker_wakeups");
    wakeups.add();
    run_chunks(*task);
    if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_task(Task& task) {
  GREENHPC_TRACE_SPAN("pool.task");
  static obs::Counter& tasks = obs::Registry::global().counter("pool.tasks");
  tasks.add();
  inside_parallel_region = true;
  struct Reset {
    ~Reset() { inside_parallel_region = false; }
  } reset;
  task.remaining.store(workers_.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    current_ = &task;
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread is part of the team: it chews chunks alongside the
  // workers instead of blocking, so a T-worker pool runs T+1 executors and
  // small fan-outs finish before some workers even wake.
  run_chunks(task);
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return task.remaining.load(std::memory_order_acquire) == 0; });
    current_ = nullptr;
  }
  if (task.error) std::rethrow_exception(task.error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  // Chunk size 1 preserves the legacy contract exactly (each iteration is
  // an independent dispatch unit); the serial fallback inside the chunked
  // path additionally short-circuits single-worker pools and nested calls.
  parallel_for_chunked(n, 1, [&body](std::size_t i) { body(i); });
}

std::size_t ThreadPool::env_thread_override() {
  const char* env = std::getenv("GREENHPC_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n <= 0) return 0;
  return static_cast<std::size_t>(n);
}

void ThreadPool::configure_global(std::size_t threads) {
  GREENHPC_REQUIRE(!global_constructed.load(std::memory_order_acquire),
                   "configure_global must run before the global pool's first use");
  global_requested.store(threads, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    global_constructed.store(true, std::memory_order_release);
    const std::size_t requested = global_requested.load(std::memory_order_acquire);
    if (requested != 0) return requested;
    return env_thread_override();  // 0 falls through to hardware concurrency
  }());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

}  // namespace greenhpc::util
