#pragma once
// Deadline timers for liveness protocols.
//
// The sweep coordinator's failure detectors are all of one shape: "if X
// has not happened by T, act". Deadline wraps that shape over the steady
// clock (never the wall clock — NTP steps must not fire a failure
// detector), and MonotoneClock gives the coordinator a single seconds-
// since-start timebase its whole event loop shares, so lease ages,
// heartbeat gaps and backoff schedules are directly comparable numbers.

#include <chrono>

namespace greenhpc::util {

/// Seconds elapsed since construction, read off the steady clock.
class MonotoneClock {
 public:
  MonotoneClock() : t0_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// A point on a MonotoneClock timeline, with expiry and extension.
/// Timestamps are plain doubles (seconds) so state machines can be unit
/// tested with synthetic clocks — no sleeping in tests.
class Deadline {
 public:
  Deadline() = default;
  Deadline(double now_s, double delay_s) : at_s_(now_s + delay_s) {}

  [[nodiscard]] bool expired(double now_s) const { return now_s >= at_s_; }
  [[nodiscard]] double remaining_s(double now_s) const {
    return at_s_ > now_s ? at_s_ - now_s : 0.0;
  }
  [[nodiscard]] double at_s() const { return at_s_; }
  /// Push the deadline out to now + delay (heartbeat arrived: re-arm).
  void extend(double now_s, double delay_s) { at_s_ = now_s + delay_s; }

 private:
  double at_s_ = 0.0;
};

}  // namespace greenhpc::util
