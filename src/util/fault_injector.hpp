#pragma once
// Deterministic fault injection for chaos testing.
//
// The sweep fabric's failure handling (worker death, torn journals, hung
// blocks, poisoned cases) is only as trustworthy as the failure schedules
// it has been driven through. FaultInjector is the hook layer that makes
// those schedules DETERMINISTIC: production code consults named sites
// ("worker.block", "journal.append", ...) at the exact points where real
// faults would bite, and an armed injector answers "fire this action at
// the k-th occurrence" from a pre-computed spec list — no randomness at
// consult time, no wall clock, so the same spec list replays the same
// fault sequence every run.
//
// Cost contract: a DISARMED injector (the production default) is one
// relaxed atomic load per consult — never a lock, never a map lookup —
// so the hooks can live on hot paths. Arming is test/chaos-harness-only.
//
// Sites are plain strings owned by the consulting code. The convention
// is `<component>.<event>`; the full catalogue lives in DESIGN.md's
// "Failure domains & containment" table. Two consult flavours exist:
//
//   consult(site)        — occurrence-counted: the n-th consult of a site
//                          fires specs whose [at, at+count) window covers n.
//   match_value(site, v) — value-keyed: fires specs whose `at` equals v,
//                          regardless of consult order (used for the
//                          poison-case site, keyed by flat case id).
//
// Specs travel between processes as a compact string (encode/decode), so
// a coordinator can arm a worker it spawns via one argv flag.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace greenhpc::util {

/// What a firing fault spec asks the consulting site to do. Sites honor
/// the actions that make sense for them and ignore the rest (a Truncate
/// at a heartbeat site is a no-op, not an error) — the schedule generator
/// only emits actions its sites interpret, but a hand-written spec must
/// not be able to crash the harness.
enum class FaultAction {
  Fail,        ///< report failure (throw / return error) without doing the work
  Kill,        ///< terminate the process (only honored when lethal() is set)
  Stall,       ///< sleep param milliseconds before proceeding
  Delay,       ///< sleep param milliseconds, then proceed normally
  Drop,        ///< silently skip the operation (e.g. a heartbeat)
  Truncate,    ///< drop the last param bytes of the payload
  BitFlip,     ///< flip bit (param % payload_bits) of the payload
  ShortWrite,  ///< emit only the first param bytes of the payload
};

/// One scheduled fault: at occurrences [at, at+count) of `site`, perform
/// `action` with `param` (action-specific: milliseconds for Stall/Delay,
/// bytes for Truncate/ShortWrite, a bit index for BitFlip, ignored
/// otherwise). For value-keyed sites, `at` is the matched value and
/// `count` is ignored.
struct FaultSpec {
  std::string site;
  std::uint64_t at = 0;
  std::uint64_t count = 1;
  FaultAction action = FaultAction::Fail;
  std::uint64_t param = 0;
};

/// The action+param of a fired spec, handed back to the consulting site.
struct FaultHit {
  FaultAction action = FaultAction::Fail;
  std::uint64_t param = 0;
};

/// Thrown by sites that contain an injected Fail by unwinding (e.g. the
/// coordinator's fold site simulating coordinator death). Distinct from
/// InvalidArgument/LogicError so harnesses can catch exactly the faults
/// they injected and treat everything else as a real bug.
class InjectedFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// The process-wide injector every site consults.
  [[nodiscard]] static FaultInjector& global();

  /// Install a spec list and reset every occurrence counter. Arming an
  /// empty list is equivalent to disarm().
  void arm(std::vector<FaultSpec> specs);
  /// Remove every spec; consults return to the one-atomic-load fast path.
  void disarm();
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Whether Kill actions may terminate this process. Worker processes
  /// set this; the coordinator never does, so a poison spec that kills
  /// workers degrades to a thrown (quarantinable) failure in-process —
  /// chaos must not be able to crash the coordinator by design.
  void set_lethal(bool lethal) {
    lethal_.store(lethal, std::memory_order_relaxed);
  }
  [[nodiscard]] bool lethal() const {
    return lethal_.load(std::memory_order_relaxed);
  }

  /// Occurrence-counted consult: increments `site`'s counter and fires
  /// the first spec whose [at, at+count) window covers the previous
  /// value. Thread-safe; counters are per-arm().
  bool consult(const std::string& site, FaultHit& hit);
  /// Value-keyed consult: fires the first spec for `site` whose `at`
  /// equals `value`. No counter is consumed — the same value fires every
  /// time it is presented (a poisoned case stays poisoned).
  bool match_value(const std::string& site, std::uint64_t value, FaultHit& hit);

  /// Occurrences of `site` consulted since the last arm().
  [[nodiscard]] std::uint64_t occurrences(const std::string& site) const;

  /// Serialize specs as `site:at:count:action:param` joined by ','
  /// (argv-safe: no spaces). decode() rejects malformed text.
  [[nodiscard]] static std::string encode(const std::vector<FaultSpec>& specs);
  [[nodiscard]] static bool decode(const std::string& text,
                                   std::vector<FaultSpec>& out);
  [[nodiscard]] static const char* action_name(FaultAction action);
  [[nodiscard]] static bool parse_action(const std::string& name,
                                         FaultAction& out);

 private:
  std::atomic<bool> armed_{false};
  std::atomic<bool> lethal_{false};
  mutable std::mutex mu_;
  std::vector<FaultSpec> specs_;
  std::unordered_map<std::string, std::uint64_t> counters_;
};

}  // namespace greenhpc::util
