#pragma once
// Shared-memory parallelism for parameter sweeps.
//
// The discrete-event simulator itself is deterministic and single-threaded;
// parallelism in greenhpc lives one level up — design-space exploration,
// multi-seed replicas and calibration sweeps all fan out over independent
// work items. ThreadPool provides a work-stealing-free but contention-light
// static-chunked parallel_for, which is the right shape for these uniform
// workloads (cf. OpenMP's static schedule).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greenhpc::util {

class ThreadPool {
 public:
  /// Pool with `threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run body(i) for each i in [0, n). Blocks until all iterations finish.
  /// Iterations must be independent; exceptions thrown by the body are
  /// captured and the first one is rethrown on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Process-wide default pool, lazily constructed on first use. Sizing
  /// precedence: configure_global() > GREENHPC_THREADS env var > hardware
  /// concurrency.
  static ThreadPool& global();

  /// Fix the global pool's thread count before its first use (e.g. from a
  /// --threads CLI flag). Throws InvalidArgument if the global pool has
  /// already been constructed — late reconfiguration would silently not
  /// apply.
  static void configure_global(std::size_t threads);

  /// Thread count requested by the GREENHPC_THREADS environment variable;
  /// 0 when unset, empty, or not a positive integer (= use hardware
  /// concurrency). Exposed for tests and for CLI --threads precedence.
  [[nodiscard]] static std::size_t env_thread_override();

 private:
  struct Task {
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::atomic<std::size_t> remaining{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  static void run_chunk(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task* current_ = nullptr;
  std::size_t generation_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace greenhpc::util
