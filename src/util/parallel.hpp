#pragma once
// Shared-memory parallelism for parameter sweeps.
//
// The discrete-event simulator itself is deterministic and single-threaded;
// parallelism in greenhpc lives one level up — design-space exploration,
// multi-seed replicas and calibration sweeps all fan out over independent
// work items. ThreadPool provides a contention-light dynamically
// self-scheduled parallel_for with chunking, which is the right shape for
// these uniform-to-mildly-skewed workloads.
//
// Dispatch model: the calling thread is part of the team (it executes
// chunks alongside the workers, OpenMP-style), and loops fall back to a
// plain serial loop when parallel dispatch provably cannot win — a
// single-worker pool, a single chunk, or a nested call from inside a
// parallel region. The fallback is what keeps small sweeps (the measured
// serial/parallel crossover in bench_perf) from paying wakeup latency for
// nothing: below it, "parallel" IS the serial loop.
//
// The chunked entry points are templates, so the body is invoked directly
// within a chunk — the type-erasure cost (one indirect call) is paid per
// chunk, not per iteration, unlike the legacy std::function overload.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace greenhpc::util {

namespace detail {
/// Out-of-line observability hook (defined in parallel.cpp): counts
/// serial-fallback dispatches without pulling obs headers into this
/// template header. Called once per fallen-back loop, not per iteration.
void note_pool_serial_fallback();
}  // namespace detail

class ThreadPool {
 public:
  /// Pool with `threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run body(i) for each i in [0, n). Blocks until all iterations finish.
  /// Iterations must be independent.
  ///
  /// Exception contract (shared with parallel_for_chunked): the first
  /// exception a body throws is captured and rethrown on the calling
  /// thread after the loop quiesces — never swallowed, never a call to
  /// std::terminate, never a deadlocked caller. Once a task has failed,
  /// chunks that have not yet started are abandoned (their iterations do
  /// not run), in-flight chunks finish, and later exceptions are dropped.
  /// The pool itself is left fully usable: workers survive, and the next
  /// parallel loop behaves as if the failure never happened. On the
  /// serial-fallback path the exception propagates directly from the body
  /// at the throwing iteration, which satisfies the same contract.
  ///
  /// Legacy std::function shape (one indirect call per iteration); new
  /// code and hot fan-outs should prefer parallel_for_chunked.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Chunked parallel loop: iterations [0, n) are handed out to the team
  /// (workers + the calling thread) `grain` at a time, and the body is
  /// called directly inside each chunk — no per-iteration type erasure.
  /// grain == 0 picks a heuristic grain (enough chunks for dynamic load
  /// balance, few enough that dispatch cost stays invisible). Falls back
  /// to a serial loop below the crossover (single-worker pool, a single
  /// chunk, or a nested call). Same independence/exception contract as
  /// parallel_for (first exception rethrown on the calling thread,
  /// unstarted chunks abandoned after a failure, pool remains usable);
  /// results written to preallocated slots are bit-identical for every
  /// thread count including the serial fallback.
  template <typename Body>
  void parallel_for_chunked(std::size_t n, std::size_t grain, Body&& body) {
    if (n == 0) return;
    if (grain == 0) grain = default_grain(n);
    const std::size_t chunks = (n + grain - 1) / grain;
    if (chunks <= 1 || workers_.size() <= 1 || in_parallel_region()) {
      detail::note_pool_serial_fallback();
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    using Fn = std::remove_reference_t<Body>;
    Task task;
    task.invoke = [](void* ctx, std::size_t begin, std::size_t end) {
      Fn& f = *static_cast<Fn*>(ctx);
      for (std::size_t i = begin; i < end; ++i) f(i);
    };
    task.ctx = const_cast<void*>(static_cast<const void*>(&body));
    task.n = n;
    task.grain = grain;
    task.chunks = chunks;
    run_task(task);
  }

  /// Heuristic chunk size for n iterations on this pool: aims at ~8 chunks
  /// per team member so dynamic self-scheduling can absorb skew without
  /// the per-chunk dispatch showing up.
  [[nodiscard]] std::size_t default_grain(std::size_t n) const;

  /// Whether the current thread is already inside a parallel region (on a
  /// worker, or in a body fanned out by any pool); nested loops run
  /// serially.
  [[nodiscard]] static bool in_parallel_region();

  /// Process-wide default pool, lazily constructed on first use. Sizing
  /// precedence: configure_global() > GREENHPC_THREADS env var > hardware
  /// concurrency.
  static ThreadPool& global();

  /// Fix the global pool's thread count before its first use (e.g. from a
  /// --threads CLI flag). Throws InvalidArgument if the global pool has
  /// already been constructed — late reconfiguration would silently not
  /// apply.
  static void configure_global(std::size_t threads);

  /// Thread count requested by the GREENHPC_THREADS environment variable;
  /// 0 when unset, empty, or not a positive integer (= use hardware
  /// concurrency). Exposed for tests and for CLI --threads precedence.
  [[nodiscard]] static std::size_t env_thread_override();

 private:
  struct Task {
    /// Type-erased chunk runner: invoke(ctx, begin, end) calls the body
    /// for each iteration in [begin, end).
    void (*invoke)(void*, std::size_t, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> remaining{0};
    /// Set when any chunk throws; executors observe it before claiming
    /// another chunk and abandon the rest of the loop (cancel-on-error).
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  /// Post the task to the workers, help run it from the calling thread,
  /// wait for completion and rethrow the first captured exception.
  void run_task(Task& task);
  void worker_loop();
  static void run_chunks(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task* current_ = nullptr;
  std::size_t generation_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Convenience wrapper over ThreadPool::global().parallel_for_chunked.
template <typename Body>
void parallel_for_chunked(std::size_t n, std::size_t grain, Body&& body) {
  ThreadPool::global().parallel_for_chunked(n, grain, std::forward<Body>(body));
}

}  // namespace greenhpc::util
