#pragma once
// Local subprocess spawning and pipe-based line transport.
//
// The distributed sweep fabric (core::SweepCoordinator) shards work to
// worker PROCESSES, not threads: a worker that segfaults, leaks, is
// OOM-killed or SIGKILLed by an operator must never take the coordinator
// down with it. That isolation boundary is what this module provides —
// fork/exec with stdin/stdout pipes, poll-based readiness, EPIPE-safe
// writes (SIGPIPE is ignored process-wide on first spawn: a dead peer is
// an error return, not process death), and hard-kill/reap lifecycle so
// no zombie survives the coordinator.
//
// Transport framing is line-oriented: LineChannel buffers raw reads and
// hands out complete '\n'-terminated lines, working over both blocking
// fds (worker main loop) and O_NONBLOCK fds (coordinator event loop).
// LineWriter serializes multi-thread writes (worker heartbeat thread vs
// its block-report thread) behind a mutex so lines never interleave.

#include <sys/types.h>

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace greenhpc::util {

/// A spawned child connected by two pipes: the parent writes to the
/// child's stdin and reads from its stdout (stderr passes through, so
/// worker diagnostics land on the operator's terminal). The destructor
/// hard-kills and reaps a still-running child — a Subprocess can never
/// outlive its owner as a zombie or an orphan.
class Subprocess {
 public:
  /// fork/exec `argv` (argv[0] is the executable path; PATH is searched).
  /// Throws std::runtime_error when the pipes or fork fail. An exec
  /// failure surfaces as the child exiting with status 127, which the
  /// caller observes via wait()/running() — the same way a worker death
  /// mid-run does, so both take one recovery path.
  [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv);

  /// Empty handle (pid -1, no pipes): the not-yet-spawned / moved-from
  /// state. All observers are safe on it.
  Subprocess() = default;

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  [[nodiscard]] pid_t pid() const { return pid_; }
  /// Parent-side write end of the child's stdin; -1 after close_stdin().
  [[nodiscard]] int stdin_fd() const { return stdin_fd_; }
  /// Parent-side read end of the child's stdout.
  [[nodiscard]] int stdout_fd() const { return stdout_fd_; }

  /// Non-blocking liveness probe (waitpid WNOHANG); reaps on exit.
  [[nodiscard]] bool running();
  /// SIGKILL + blocking reap. Idempotent; no-op once reaped.
  void kill_hard();
  /// Blocking reap; returns the raw waitpid status (or the cached one).
  int wait();
  /// Exit code of a reaped child (-1 if signalled or still running).
  [[nodiscard]] int exit_code() const;
  /// Close the write end: the child sees EOF on its stdin (the
  /// coordinator's "no more work" signal, and half of graceful shutdown).
  void close_stdin();
  /// Put the parent's read end into O_NONBLOCK (coordinator event loop).
  void set_stdout_nonblocking();

 private:
  void reset() noexcept;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int status_ = -1;
};

/// Write every byte of `data` to `fd`, retrying short writes and EINTR.
/// Returns false on EPIPE or any other write error (dead peer) instead
/// of raising SIGPIPE.
bool write_all(int fd, const std::string& data);

/// Indices of fds in `fds` that are readable (or at EOF/HUP — a read
/// will not block either way) within `timeout_s`. Entries of -1 are
/// skipped. An empty result means the timeout elapsed.
[[nodiscard]] std::vector<std::size_t> poll_readable(const std::vector<int>& fds,
                                                     double timeout_s);

/// Buffered line extraction over an fd. Works with blocking fds (fill()
/// blocks until data or EOF) and non-blocking ones (fill() returns
/// WouldBlock when the pipe is drained).
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  enum class Fill { Data, WouldBlock, Eof, Error };

  /// Pop the next complete buffered line (without its '\n'); false when
  /// no complete line is buffered — call fill() and retry.
  bool next_line(std::string& out);
  /// One read() into the buffer. Eof is permanent once observed.
  Fill fill();
  /// Whether EOF has been observed (buffered lines may still remain).
  [[nodiscard]] bool eof() const { return eof_; }

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

/// Mutex-serialized whole-line writes: concurrent callers (a worker's
/// heartbeat thread and its main loop) never interleave bytes.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}
  /// Append '\n' and write atomically w.r.t. other write_line callers.
  /// False once the peer is gone (EPIPE); subsequent calls stay false.
  bool write_line(const std::string& line);

 private:
  int fd_;
  std::mutex mu_;
  bool broken_ = false;
};

}  // namespace greenhpc::util
