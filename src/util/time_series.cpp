#include "util/time_series.hpp"

#include <algorithm>
#include <cmath>

namespace greenhpc::util {

TimeSeries::TimeSeries(Duration start, Duration step) : start_(start), step_(step) {
  GREENHPC_REQUIRE(step.seconds() > 0.0, "time series step must be positive");
}

TimeSeries::TimeSeries(Duration start, Duration step, std::vector<double> values)
    : start_(start), step_(step), values_(std::move(values)) {
  GREENHPC_REQUIRE(step.seconds() > 0.0, "time series step must be positive");
}

Duration TimeSeries::end() const {
  return start_ + step_ * static_cast<double>(values_.size());
}

double TimeSeries::at(std::size_t i) const {
  GREENHPC_REQUIRE(i < values_.size(), "time series index out of range");
  return values_[i];
}

std::size_t TimeSeries::index_at(Duration t) const {
  GREENHPC_REQUIRE(t >= start_ && t < end(), "time out of series range");
  const auto idx =
      static_cast<std::size_t>((t.seconds() - start_.seconds()) / step_.seconds());
  return std::min(idx, values_.size() - 1);
}

double TimeSeries::sample_at(Duration t) const { return values_[index_at(t)]; }

double TimeSeries::sample_at_clamped(Duration t) const {
  GREENHPC_REQUIRE(!values_.empty(), "sample_at_clamped on empty series");
  if (t < start_) return values_.front();
  if (t >= end()) return values_.back();
  return values_[index_at(t)];
}

double TimeSeries::sample_at_clamped(Duration t, Cursor& cursor) const {
  GREENHPC_REQUIRE(!values_.empty(), "sample_at_clamped on empty series");
  if (t < start_) return values_.front();
  if (t >= end()) return values_.back();
  const double rel = t.seconds() - start_.seconds();
  const double step = step_.seconds();
  std::size_t i = std::min(cursor.idx_, values_.size() - 1);
  if (rel < static_cast<double>(i) * step ||
      rel >= static_cast<double>(i + 2) * step) {
    // Backward or multi-interval jump: recompute directly (identical to
    // index_at, so the cursor never changes which sample is returned).
    i = static_cast<std::size_t>(rel / step);
  } else if (rel >= static_cast<double>(i + 1) * step) {
    ++i;  // the common case: the caller moved into the next interval
  }
  i = std::min(i, values_.size() - 1);
  cursor.idx_ = i;
  return values_[i];
}

double TimeSeries::integrate(Duration t0, Duration t1) const {
  GREENHPC_REQUIRE(t0 <= t1, "integrate bounds inverted");
  GREENHPC_REQUIRE(t0 >= start_ && t1 <= end(), "integrate bounds out of range");
  if (t0 == t1) return 0.0;
  const double step = step_.seconds();
  const double rel0 = t0.seconds() - start_.seconds();
  const double rel1 = t1.seconds() - start_.seconds();
  auto first = static_cast<std::size_t>(rel0 / step);
  auto last = static_cast<std::size_t>((rel1 - 1e-12) / step);
  first = std::min(first, values_.size() - 1);
  last = std::min(last, values_.size() - 1);
  if (first == last) return values_[first] * (rel1 - rel0);
  double total = values_[first] * (static_cast<double>(first + 1) * step - rel0);
  for (std::size_t i = first + 1; i < last; ++i) total += values_[i] * step;
  total += values_[last] * (rel1 - static_cast<double>(last) * step);
  return total;
}

double TimeSeries::mean_over(Duration t0, Duration t1) const {
  GREENHPC_REQUIRE(t0 < t1, "mean_over requires a non-empty window");
  return integrate(t0, t1) / (t1 - t0).seconds();
}

TimeSeries TimeSeries::downsample_mean(std::size_t factor) const {
  GREENHPC_REQUIRE(factor >= 1, "downsample factor must be >= 1");
  TimeSeries out(start_, step_ * static_cast<double>(factor));
  for (std::size_t i = 0; i < values_.size(); i += factor) {
    const std::size_t count = std::min(factor, values_.size() - i);
    double sum = 0.0;
    for (std::size_t j = 0; j < count; ++j) sum += values_[i + j];
    out.push_back(sum / static_cast<double>(count));
  }
  return out;
}

TimeSeries TimeSeries::daily_mean() const {
  const double per_day = 86400.0 / step_.seconds();
  GREENHPC_REQUIRE(per_day >= 1.0 && std::fabs(per_day - std::round(per_day)) < 1e-9,
                   "daily_mean requires a step dividing 24h");
  return downsample_mean(static_cast<std::size_t>(std::round(per_day)));
}

TimeSeries TimeSeries::rolling_mean(std::size_t window) const {
  GREENHPC_REQUIRE(window >= 1, "rolling window must be >= 1");
  TimeSeries out(start_, step_);
  const auto n = static_cast<std::ptrdiff_t>(values_.size());
  const auto half = static_cast<std::ptrdiff_t>(window / 2);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min(n - 1, i + half);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += values_[static_cast<std::size_t>(j)];
    out.push_back(sum / static_cast<double>(hi - lo + 1));
  }
  return out;
}

TimeSeries TimeSeries::map(const std::function<double(double)>& f) const {
  TimeSeries out(start_, step_);
  for (double v : values_) out.push_back(f(v));
  return out;
}

double TimeSeries::autocorrelation(std::size_t lag) const {
  if (lag == 0) return 1.0;
  if (values_.size() <= lag + 1) return 0.0;
  RunningStats s;
  for (double v : values_) s.add(v);
  const double var = s.variance();
  if (var <= 0.0) return 0.0;
  double cov = 0.0;
  const std::size_t n = values_.size() - lag;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (values_[i] - s.mean()) * (values_[i + lag] - s.mean());
  }
  return cov / (static_cast<double>(n) * var);
}

TimeSeries TimeSeries::slice(std::size_t first, std::size_t count) const {
  GREENHPC_REQUIRE(first + count <= values_.size(), "slice out of range");
  std::vector<double> vals(values_.begin() + static_cast<std::ptrdiff_t>(first),
                           values_.begin() + static_cast<std::ptrdiff_t>(first + count));
  return TimeSeries(start_ + step_ * static_cast<double>(first), step_, std::move(vals));
}

}  // namespace greenhpc::util
