#pragma once
// Deterministic random number generation.
//
// greenhpc experiments must be bit-reproducible across platforms and standard
// library versions, so we implement both the generator (xoshiro256**) and the
// distributions ourselves instead of relying on <random>'s unspecified
// distribution algorithms.

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace greenhpc::util {

/// SplitMix64 — used to seed xoshiro and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). High-quality, tiny, and — unlike
/// std::mt19937 + std::normal_distribution — gives identical streams on
/// every platform.
class Rng {
 public:
  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second deviate).
  [[nodiscard]] double normal();
  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);
  /// Lognormal: exp(Normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma);
  /// Exponential with the given rate lambda > 0 (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda);
  /// Weibull with shape k > 0 and scale lambda > 0.
  [[nodiscard]] double weibull(double shape, double scale);
  /// Poisson-distributed count with mean > 0 (Knuth for small means,
  /// normal approximation above 64 to stay O(1)).
  [[nodiscard]] std::int64_t poisson(double mean);
  /// Bernoulli draw: true with probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);
  /// Draw an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);
  /// Log-uniform (uniform in log space) in [lo, hi], both > 0.
  [[nodiscard]] double log_uniform(double lo, double hi);

  /// Derive an independent child stream (for per-replica seeding).
  [[nodiscard]] Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace greenhpc::util
