#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace greenhpc::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::sample_stddev() const { return std::sqrt(sample_variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (na * mean_ + nb * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> xs, double q) {
  GREENHPC_REQUIRE(!xs.empty(), "percentile of empty sample");
  GREENHPC_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

SlidingPercentile::SlidingPercentile(std::size_t capacity) : capacity_(capacity) {
  GREENHPC_REQUIRE(capacity_ >= 1, "sliding percentile window must hold >= 1 value");
  order_.reserve(capacity_);
  sorted_.reserve(capacity_);
}

void SlidingPercentile::push(double x) {
  if (order_.size() == capacity_) {
    // Evict the oldest value: any element equal to it is interchangeable
    // in the sorted sequence, so erasing the first match is exact.
    const double victim = order_[oldest_];
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), victim);
    sorted_.erase(it);
    order_[oldest_] = x;
    oldest_ = (oldest_ + 1) % capacity_;
  } else {
    order_.push_back(x);
  }
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
}

double SlidingPercentile::percentile(double q) const {
  // Mirrors util::percentile on the already-sorted window so results are
  // bit-identical to recomputing from scratch each query.
  GREENHPC_REQUIRE(!sorted_.empty(), "percentile of empty sample");
  GREENHPC_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.sample_stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p25 = percentile(xs, 0.25);
  s.median = percentile(xs, 0.50);
  s.p75 = percentile(xs, 0.75);
  s.p95 = percentile(xs, 0.95);
  return s;
}

double mape(std::span<const double> actual, std::span<const double> forecast) {
  GREENHPC_REQUIRE(actual.size() == forecast.size(), "mape length mismatch");
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == 0.0) continue;
    total += std::fabs((forecast[i] - actual[i]) / actual[i]);
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

double rmse(std::span<const double> actual, std::span<const double> forecast) {
  GREENHPC_REQUIRE(actual.size() == forecast.size() && !actual.empty(),
                   "rmse requires matching non-empty samples");
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = forecast[i] - actual[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(actual.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  GREENHPC_REQUIRE(xs.size() == ys.size() && !xs.empty(),
                   "pearson requires matching non-empty samples");
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size());
  return cov / (sx.stddev() * sy.stddev());
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo, double hi,
                                   std::size_t bins) {
  GREENHPC_REQUIRE(bins > 0, "histogram needs at least one bin");
  GREENHPC_REQUIRE(hi > lo, "histogram range must be non-degenerate");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

}  // namespace greenhpc::util
