#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace greenhpc::util {

namespace {

std::function<void()>& failure_hook() {
  static std::function<void()> hook;
  return hook;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + ": " + path +
                           (errno != 0 ? std::string(": ") + std::strerror(errno)
                                       : std::string()));
}

/// fsync the file at `path` (opened read-only: Linux allows fsync on any
/// open description of the file). Directories take the same route.
void fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (directory) return;  // best effort: some filesystems refuse dir opens
    fail("open for fsync failed", path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory) fail("fsync failed", path);
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Removes the temporary on every exit path that does not commit it.
struct TmpGuard {
  std::string path;
  bool armed = true;
  ~TmpGuard() {
    if (armed) ::unlink(path.c_str());
  }
};

}  // namespace

void set_atomic_write_failure_hook(std::function<void()> hook) {
  failure_hook() = std::move(hook);
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& body) {
  if (path.empty()) {
    errno = 0;
    fail("empty destination path", path);
  }
  // Same-directory temporary: rename() is only atomic within a filesystem,
  // and a unique (pid-derived) suffix keeps concurrent writers from
  // clobbering each other's scratch.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  TmpGuard guard{tmp};
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("cannot open temporary", tmp);
    body(out);
    out.flush();
    if (!out) fail("write to temporary failed", tmp);
  }
  fsync_path(tmp, /*directory=*/false);
  if (const auto& hook = failure_hook()) hook();  // test-only simulated crash point
  if (std::rename(tmp.c_str(), path.c_str()) != 0) fail("rename failed", path);
  guard.armed = false;  // committed; nothing to clean up
  // Make the rename durable: without the directory fsync a power loss can
  // roll the directory entry back even though the data blocks survived.
  fsync_path(parent_dir(path), /*directory=*/true);
}

}  // namespace greenhpc::util
