#pragma once
// Error handling primitives shared by all greenhpc modules.
//
// Library-level precondition violations throw greenhpc::InvalidArgument;
// internal invariant breaches throw greenhpc::LogicError. Both derive from
// std::exception so callers can catch at whatever granularity they prefer.

#include <stdexcept>
#include <string>

namespace greenhpc {

/// Thrown when a caller passes arguments that violate a documented
/// precondition of a public API (e.g. negative power, empty trace).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated; indicates a library bug.
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const std::string& msg) {
  throw InvalidArgument(std::string("greenhpc: precondition failed: ") + expr +
                        (msg.empty() ? "" : (": " + msg)));
}
[[noreturn]] inline void throw_logic(const char* expr, const std::string& msg) {
  throw LogicError(std::string("greenhpc: invariant violated: ") + expr +
                   (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace greenhpc

/// Validate a documented precondition of a public API; throws InvalidArgument.
#define GREENHPC_REQUIRE(expr, msg)                          \
  do {                                                       \
    if (!(expr)) ::greenhpc::detail::throw_invalid(#expr, (msg)); \
  } while (0)

/// Validate an internal invariant; throws LogicError on failure.
#define GREENHPC_ASSERT(expr, msg)                           \
  do {                                                       \
    if (!(expr)) ::greenhpc::detail::throw_logic(#expr, (msg)); \
  } while (0)
