#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace greenhpc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GREENHPC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label, const std::vector<double>& cells,
                            int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size() + 1);
  row.push_back(label);
  for (double v : cells) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::str(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace greenhpc::util
