#pragma once
// ASCII table rendering for bench/experiment output.
//
// Every bench prints paper-style rows; Table keeps the formatting in one
// place so the harness output is uniform and diffable.

#include <string>
#include <vector>

namespace greenhpc::util {

class Table {
 public:
  /// Table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row of already-formatted cells (padded/truncated to the
  /// header count).
  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with the given precision into a row.
  void add_row_numeric(const std::string& label, const std::vector<double>& cells,
                       int precision = 2);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with column-aligned padding, a header separator and an optional
  /// title line.
  [[nodiscard]] std::string str(const std::string& title = {}) const;

  /// Format a double with fixed precision (shared helper).
  [[nodiscard]] static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greenhpc::util
