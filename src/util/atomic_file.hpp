#pragma once
// Atomic (all-or-nothing) file publication for run artifacts.
//
// Every artifact the toolchain emits — traces, metrics snapshots, run
// reports, sweep CSVs, journals — is consumed by something downstream
// (CI validators, plotting scripts, a resumed run). A process killed
// mid-write must therefore never leave a torn file at the destination
// path: either the complete new content is there, or whatever was there
// before (including nothing) still is.
//
// atomic_write_file implements the classic commit protocol: write the
// full content to a temporary file in the destination's directory, flush
// and fsync it, rename() it over the destination (atomic on POSIX within
// one filesystem), then fsync the directory so the rename itself is
// durable. Any failure before the rename removes the temporary and
// leaves the destination untouched.

#include <functional>
#include <iosfwd>
#include <string>

namespace greenhpc::util {

/// Write `body`'s output to `path` atomically: the content lands via a
/// same-directory temporary + fsync + rename, so a crash at ANY point
/// leaves either the old destination or the complete new one — never a
/// partial file. Throws std::runtime_error on I/O failure (temporary is
/// removed) and propagates exceptions thrown by `body` the same way.
/// `path` must name a regular file on a POSIX filesystem (rename target).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& body);

/// Test-only failure injection: the hook runs after `body` has produced
/// the temporary file but BEFORE the rename commit — throwing from it
/// simulates a crash mid-publication. The destination must be untouched
/// afterwards (asserted in test_atomic_file.cpp). Pass nullptr to clear.
void set_atomic_write_failure_hook(std::function<void()> hook);

}  // namespace greenhpc::util
