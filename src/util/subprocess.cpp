#include "util/subprocess.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace greenhpc::util {

namespace {

/// Writing to a worker that died between our poll and our write must be
/// an EPIPE error return, not process death. Installed once, before the
/// first fork, so every child inherits a clean default disposition after
/// exec anyway (exec resets ignored SIGPIPE only if handled, not ignored
/// — workers that want SIGPIPE semantics must opt back in).
void ignore_sigpipe_once() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::runtime_error("Subprocess::spawn: empty argv");
  ignore_sigpipe_once();

  int to_child[2];   // parent writes [1] -> child stdin [0]
  int from_child[2]; // child stdout [1] -> parent reads [0]
  if (::pipe(to_child) != 0) {
    throw std::runtime_error(std::string("Subprocess: pipe failed: ") +
                             std::strerror(errno));
  }
  if (::pipe(from_child) != 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error(std::string("Subprocess: pipe failed: ") +
                             std::strerror(saved));
  }
  // The parent's ends must not leak into LATER children: without
  // FD_CLOEXEC, worker N+1 inherits a copy of worker N's stdin write end,
  // and closing it in the parent no longer delivers EOF — the "no more
  // work" half of graceful shutdown silently stops working the moment a
  // second worker is spawned.
  ::fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(from_child[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw std::runtime_error(std::string("Subprocess: fork failed: ") +
                             std::strerror(saved));
  }

  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout, close everything else we
    // opened, exec. Only async-signal-safe calls between fork and exec.
    // dup2 can be interrupted by a signal delivered to the forked child;
    // a failed dup2 must not fall through to exec with a dangling stdio.
    int rc;
    do {
      rc = ::dup2(to_child[0], STDIN_FILENO);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) ::_exit(127);
    do {
      rc = ::dup2(from_child[1], STDOUT_FILENO);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) ::_exit(127);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // Exec failed: exit 127 (the shell convention) so the parent's death
    // detection fires exactly as for a mid-run worker crash.
    ::_exit(127);
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  Subprocess p;
  p.pid_ = pid;
  p.stdin_fd_ = to_child[1];
  p.stdout_fd_ = from_child[0];
  return p;
}

Subprocess::Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    reset();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    status_ = std::exchange(other.status_, -1);
  }
  return *this;
}

Subprocess::~Subprocess() { reset(); }

void Subprocess::reset() noexcept {
  if (pid_ > 0 && !reaped_) kill_hard();
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
  stdin_fd_ = -1;
  stdout_fd_ = -1;
  pid_ = -1;
}

bool Subprocess::running() {
  if (pid_ <= 0 || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    reaped_ = true;
    status_ = status;
    return false;
  }
  return r == 0;
}

void Subprocess::kill_hard() {
  if (pid_ <= 0 || reaped_) return;
  ::kill(pid_, SIGKILL);
  (void)wait();
}

int Subprocess::wait() {
  if (pid_ <= 0) return status_;
  if (!reaped_) {
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid_, &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r == pid_) {
      reaped_ = true;
      status_ = status;
    }
  }
  return status_;
}

int Subprocess::exit_code() const {
  if (!reaped_ || !WIFEXITED(status_)) return -1;
  return WEXITSTATUS(status_);
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::set_stdout_nonblocking() {
  if (stdout_fd_ < 0) return;
  const int flags = ::fcntl(stdout_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(stdout_fd_, F_SETFL, flags | O_NONBLOCK);
}

bool write_all(int fd, const std::string& data) {
  if (fd < 0) return false;
  ignore_sigpipe_once();
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE (dead peer) or a real I/O error
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::size_t> poll_readable(const std::vector<int>& fds,
                                       double timeout_s) {
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> index_of;
  pfds.reserve(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i] < 0) continue;
    pfds.push_back({fds[i], POLLIN, 0});
    index_of.push_back(i);
  }
  std::vector<std::size_t> ready;
  if (pfds.empty()) return ready;
  const int timeout_ms =
      timeout_s < 0.0 ? -1
                      : static_cast<int>(std::ceil(timeout_s * 1000.0));
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return ready;
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
      ready.push_back(index_of[k]);
    }
  }
  return ready;
}

bool LineChannel::next_line(std::string& out) {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  out.assign(buf_, 0, nl);
  buf_.erase(0, nl + 1);
  return true;
}

LineChannel::Fill LineChannel::fill() {
  if (eof_) return Fill::Eof;
  char chunk[4096];
  // Retry EINTR here rather than reporting WouldBlock: on a BLOCKING fd a
  // WouldBlock return tells the caller "poll again", and poll would report
  // the fd readable immediately — a signal-storm busy-spin. The read itself
  // is the correct retry point.
  ssize_t n;
  do {
    n = ::read(fd_, chunk, sizeof(chunk));
  } while (n < 0 && errno == EINTR);
  if (n > 0) {
    buf_.append(chunk, static_cast<std::size_t>(n));
    return Fill::Data;
  }
  if (n == 0) {
    eof_ = true;
    return Fill::Eof;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Fill::WouldBlock;
  eof_ = true;  // unrecoverable read error: treat as a dead peer
  return Fill::Error;
}

bool LineWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) return false;
  if (!write_all(fd_, line + "\n")) {
    broken_ = true;
    return false;
  }
  return true;
}

}  // namespace greenhpc::util
