#pragma once
// Regularly sampled time series.
//
// Carbon-intensity traces, power telemetry and simulator outputs are all
// fixed-step series; TimeSeries provides the shared representation plus the
// resampling/integration/window operations the carbon and accounting modules
// need. Sample i covers the half-open interval
// [start + i*step, start + (i+1)*step) — i.e. samples are zero-order-hold
// values, which makes integrals exact sums.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace greenhpc::util {

class TimeSeries {
 public:
  /// Empty series at time 0 with a 1-second step (useful as a
  /// to-be-assigned placeholder in aggregates).
  TimeSeries() : TimeSeries(seconds(0.0), seconds(1.0)) {}
  /// Empty series with the given start time and sampling step (step > 0).
  TimeSeries(Duration start, Duration step);
  /// Series with pre-populated values.
  TimeSeries(Duration start, Duration step, std::vector<double> values);

  /// Absolute time of the first sample.
  [[nodiscard]] Duration start() const { return start_; }
  /// Sampling period.
  [[nodiscard]] Duration step() const { return step_; }
  /// Time one past the last sample's interval (start + size*step).
  [[nodiscard]] Duration end() const;
  /// Number of samples.
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  /// Raw sample storage.
  [[nodiscard]] std::span<const double> values() const { return values_; }
  /// Sample by index (bounds-checked).
  [[nodiscard]] double at(std::size_t i) const;
  /// Append one sample at the end of the series.
  void push_back(double v) { values_.push_back(v); }
  /// Append `n` copies of the same sample (bulk twin of push_back).
  void append_fill(std::size_t n, double v) {
    values_.insert(values_.end(), n, v);
  }

  /// Zero-order-hold lookup of the sample covering absolute time t.
  /// Requires t within [start, end).
  [[nodiscard]] double sample_at(Duration t) const;
  /// Like sample_at but clamps t into the series' valid range, so callers
  /// probing slightly past the end (e.g. a forecaster's horizon) get the
  /// boundary value instead of an exception. Requires a non-empty series.
  [[nodiscard]] double sample_at_clamped(Duration t) const;

  /// Monotonic sampling cursor for tick loops: remembers the interval of
  /// the previous lookup so a caller advancing in (mostly) non-decreasing
  /// time pays an interval test instead of a division per sample. A
  /// cursor belongs to one series; reuse across series is undefined.
  class Cursor {
   public:
    Cursor() = default;

   private:
    friend class TimeSeries;
    std::size_t idx_ = 0;
  };
  /// Cursor-accelerated sample_at_clamped: same result for any t (the
  /// cursor falls back to the direct index computation on backward or
  /// long forward jumps), O(1) with no division for tick-step callers.
  [[nodiscard]] double sample_at_clamped(Duration t, Cursor& cursor) const;
  /// Index of the sample covering absolute time t (requires t in range).
  [[nodiscard]] std::size_t index_at(Duration t) const;

  /// Integral of the series over [t0, t1] treating samples as piecewise-
  /// constant. Result is in value-units * seconds (so a Power series
  /// integrates to joules). Requires start <= t0 <= t1 <= end.
  [[nodiscard]] double integrate(Duration t0, Duration t1) const;
  /// Mean value over [t0, t1] (integral / span). Requires t0 < t1 in range.
  [[nodiscard]] double mean_over(Duration t0, Duration t1) const;

  /// New series averaging every `factor` consecutive samples (trailing
  /// partial window averaged over its actual length). factor >= 1.
  [[nodiscard]] TimeSeries downsample_mean(std::size_t factor) const;
  /// Per-day mean values: one output sample per 86400 s window.
  [[nodiscard]] TimeSeries daily_mean() const;
  /// Centered rolling mean with the given window length (odd preferred);
  /// windows are truncated at the edges.
  [[nodiscard]] TimeSeries rolling_mean(std::size_t window) const;
  /// Elementwise transform into a new series.
  [[nodiscard]] TimeSeries map(const std::function<double(double)>& f) const;
  /// Contiguous sub-series of samples [first, first + count).
  [[nodiscard]] TimeSeries slice(std::size_t first, std::size_t count) const;

  /// Summary statistics over all samples.
  [[nodiscard]] Summary summary() const { return summarize(values_); }

  /// Sample autocorrelation at the given lag (in samples); 0 when the
  /// series is too short or constant. Used to validate that generated
  /// traces carry the intended temporal structure (diurnal cycles,
  /// multi-day weather regimes).
  [[nodiscard]] double autocorrelation(std::size_t lag) const;

 private:
  Duration start_;
  Duration step_;
  std::vector<double> values_;
};

}  // namespace greenhpc::util
