#pragma once
// Physical units used throughout greenhpc.
//
// Carbon accounting mixes quantities whose confusion is a classic source of
// silent bugs (kW vs kWh, gCO2 vs kgCO2 vs tCO2, gCO2/kWh). We therefore use
// thin strong types with explicit conversions. Each type wraps a double in a
// single canonical unit:
//
//   Power           -> watts (W)
//   Energy          -> joules (J); kWh helpers provided
//   Carbon          -> grams CO2-equivalent (gCO2e)
//   CarbonIntensity -> gCO2e per kWh
//   Duration        -> seconds (double; sub-second resolution unneeded)
//
// The types support the arithmetic that is physically meaningful and nothing
// else: Power * Duration = Energy, Energy * CarbonIntensity = Carbon, etc.

#include <cmath>
#include <compare>

namespace greenhpc {

namespace detail {
/// CRTP base providing the shared arithmetic of a scalar physical quantity.
template <class Derived>
struct ScalarUnit {
  double v = 0.0;

  constexpr ScalarUnit() = default;
  constexpr explicit ScalarUnit(double value) : v(value) {}

  [[nodiscard]] constexpr double value() const { return v; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.v + b.v}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.v - b.v}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.v * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.v <=> b.v; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.v == b.v; }
  constexpr Derived& operator+=(Derived o) { v += o.v; return static_cast<Derived&>(*this); }
  constexpr Derived& operator-=(Derived o) { v -= o.v; return static_cast<Derived&>(*this); }
  constexpr Derived& operator*=(double s) { v *= s; return static_cast<Derived&>(*this); }
  constexpr Derived& operator/=(double s) { v /= s; return static_cast<Derived&>(*this); }
};
}  // namespace detail

/// Duration in seconds. Double-valued: carbon simulations work at minute to
/// hour granularity and benefit from fractional arithmetic in integrals.
struct Duration : detail::ScalarUnit<Duration> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double seconds() const { return v; }
  [[nodiscard]] constexpr double minutes() const { return v / 60.0; }
  [[nodiscard]] constexpr double hours() const { return v / 3600.0; }
  [[nodiscard]] constexpr double days() const { return v / 86400.0; }
};
[[nodiscard]] constexpr Duration seconds(double s) { return Duration{s}; }
[[nodiscard]] constexpr Duration minutes(double m) { return Duration{m * 60.0}; }
[[nodiscard]] constexpr Duration hours(double h) { return Duration{h * 3600.0}; }
[[nodiscard]] constexpr Duration days(double d) { return Duration{d * 86400.0}; }

/// Electric power in watts.
struct Power : detail::ScalarUnit<Power> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double watts() const { return v; }
  [[nodiscard]] constexpr double kilowatts() const { return v / 1e3; }
  [[nodiscard]] constexpr double megawatts() const { return v / 1e6; }
};
[[nodiscard]] constexpr Power watts(double w) { return Power{w}; }
[[nodiscard]] constexpr Power kilowatts(double kw) { return Power{kw * 1e3}; }
[[nodiscard]] constexpr Power megawatts(double mw) { return Power{mw * 1e6}; }

/// Energy in joules.
struct Energy : detail::ScalarUnit<Energy> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double joules() const { return v; }
  [[nodiscard]] constexpr double kilowatt_hours() const { return v / 3.6e6; }
  [[nodiscard]] constexpr double megawatt_hours() const { return v / 3.6e9; }
};
[[nodiscard]] constexpr Energy joules(double j) { return Energy{j}; }
[[nodiscard]] constexpr Energy kilowatt_hours(double kwh) { return Energy{kwh * 3.6e6}; }
[[nodiscard]] constexpr Energy megawatt_hours(double mwh) { return Energy{mwh * 3.6e9}; }

/// Mass of emitted CO2-equivalent, in grams.
struct Carbon : detail::ScalarUnit<Carbon> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double grams() const { return v; }
  [[nodiscard]] constexpr double kilograms() const { return v / 1e3; }
  [[nodiscard]] constexpr double tonnes() const { return v / 1e6; }
};
[[nodiscard]] constexpr Carbon grams_co2(double g) { return Carbon{g}; }
[[nodiscard]] constexpr Carbon kilograms_co2(double kg) { return Carbon{kg * 1e3}; }
[[nodiscard]] constexpr Carbon tonnes_co2(double t) { return Carbon{t * 1e6}; }

/// Grid carbon intensity in gCO2e per kWh of electricity consumed.
struct CarbonIntensity : detail::ScalarUnit<CarbonIntensity> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double grams_per_kwh() const { return v; }
};
[[nodiscard]] constexpr CarbonIntensity grams_per_kwh(double g) { return CarbonIntensity{g}; }

// --- physically meaningful cross-unit arithmetic ---

/// Power sustained for a duration yields energy.
[[nodiscard]] constexpr Energy operator*(Power p, Duration d) { return Energy{p.v * d.v}; }
[[nodiscard]] constexpr Energy operator*(Duration d, Power p) { return p * d; }
/// Energy over a duration yields average power.
[[nodiscard]] constexpr Power operator/(Energy e, Duration d) { return Power{e.v / d.v}; }
/// Energy consumed at a grid intensity yields emitted carbon.
[[nodiscard]] constexpr Carbon operator*(Energy e, CarbonIntensity ci) {
  return Carbon{e.kilowatt_hours() * ci.v};
}
[[nodiscard]] constexpr Carbon operator*(CarbonIntensity ci, Energy e) { return e * ci; }

/// True if two quantities agree to within `rel` relative tolerance
/// (or `abs_floor` absolutely, for values near zero).
template <class U>
[[nodiscard]] bool approx_equal(U a, U b, double rel = 1e-9, double abs_floor = 1e-12) {
  const double d = std::fabs(a.value() - b.value());
  return d <= abs_floor || d <= rel * std::fmax(std::fabs(a.value()), std::fabs(b.value()));
}

}  // namespace greenhpc
