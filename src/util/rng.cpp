#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace greenhpc::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GREENHPC_REQUIRE(lo <= hi, "uniform bounds inverted");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GREENHPC_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  GREENHPC_REQUIRE(sigma >= 0.0, "normal sigma must be >= 0");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  GREENHPC_REQUIRE(lambda > 0.0, "exponential rate must be > 0");
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::weibull(double shape, double scale) {
  GREENHPC_REQUIRE(shape > 0.0 && scale > 0.0, "weibull parameters must be > 0");
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

std::int64_t Rng::poisson(double mean) {
  GREENHPC_REQUIRE(mean > 0.0, "poisson mean must be > 0");
  if (mean > 64.0) {
    // Normal approximation with continuity correction keeps this O(1) for
    // the large arrival batches used by workload generators.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

bool Rng::bernoulli(double p) {
  GREENHPC_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  GREENHPC_REQUIRE(!weights.empty(), "categorical requires weights");
  double total = 0.0;
  for (double w : weights) {
    GREENHPC_REQUIRE(w >= 0.0, "categorical weights must be >= 0");
    total += w;
  }
  GREENHPC_REQUIRE(total > 0.0, "categorical requires a positive weight");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fall into the last bucket
}

double Rng::log_uniform(double lo, double hi) {
  GREENHPC_REQUIRE(lo > 0.0 && hi >= lo, "log_uniform requires 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

Rng Rng::split() {
  // Seed the child from two fresh draws; streams are independent in practice
  // for the replica counts we use (<1e4).
  std::uint64_t seed = next_u64() ^ rotl(next_u64(), 32);
  return Rng(seed);
}

}  // namespace greenhpc::util
