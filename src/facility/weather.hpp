#pragma once
// Outdoor temperature model.
//
// Cooling overhead (and with it the facility's PUE) depends on outdoor
// temperature; free cooling works below a technology-dependent threshold.
// The model mirrors the grid generator's structure: an annual seasonal
// sinusoid, a diurnal cycle and an Ornstein-Uhlenbeck weather term, with
// per-region climate parameters. Day 0 of the epoch is January 1st, so
// simulations started at t=0 run in winter conditions (matching the
// paper's January framing).

#include <cstdint>

#include "carbon/region.hpp"
#include "util/rng.hpp"
#include "util/time_series.hpp"

namespace greenhpc::facility {

/// Climate parameters of a region (°C).
struct ClimateTraits {
  double annual_mean;
  double seasonal_amplitude;  ///< summer-winter half-spread
  double diurnal_amplitude;   ///< day-night half-spread
  double ou_sigma;            ///< weather-front variability
  double ou_tau_hours;        ///< weather-front correlation time
};

/// Climate preset for a grid region.
[[nodiscard]] const ClimateTraits& climate(carbon::Region region);

class WeatherModel {
 public:
  WeatherModel(carbon::Region region, std::uint64_t seed);
  WeatherModel(ClimateTraits traits, std::uint64_t seed);

  /// Temperature trace (°C) starting at `start` (epoch day 0 = Jan 1).
  [[nodiscard]] util::TimeSeries generate(Duration start, Duration duration,
                                          Duration step);

  /// Deterministic component (no weather fronts) at absolute time t.
  [[nodiscard]] double deterministic_component(Duration t) const;

 private:
  ClimateTraits traits_;
  util::Rng rng_;
};

}  // namespace greenhpc::facility
