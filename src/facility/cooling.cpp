#include "facility/cooling.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace greenhpc::facility {

namespace {
//                               base   free-limit  slope/°C
constexpr CoolingTraits kTraits[] = {
    /* AirCooled    */ {0.35, 15.0, 0.016},
    /* ChilledWater */ {0.22, 18.0, 0.010},
    /* WarmWater    */ {0.07, 35.0, 0.004},
};
constexpr const char* kNames[] = {"air-cooled", "chilled-water", "warm-water"};
}  // namespace

const char* cooling_name(CoolingTechnology tech) {
  return kNames[static_cast<std::size_t>(tech)];
}

const CoolingTraits& cooling_traits(CoolingTechnology tech) {
  return kTraits[static_cast<std::size_t>(tech)];
}

CoolingModel::CoolingModel(CoolingTechnology tech)
    : CoolingModel(cooling_traits(tech), cooling_name(tech)) {}

CoolingModel::CoolingModel(CoolingTraits traits, const char* label)
    : traits_(traits), label_(label) {
  GREENHPC_REQUIRE(traits_.base_overhead >= 0.0, "base overhead must be >= 0");
  GREENHPC_REQUIRE(traits_.chiller_slope_per_c >= 0.0, "chiller slope must be >= 0");
}

double CoolingModel::pue_at(double outdoor_temp_c) const {
  const double chiller =
      traits_.chiller_slope_per_c *
      std::max(0.0, outdoor_temp_c - traits_.free_cooling_limit_c);
  return 1.0 + traits_.base_overhead + chiller;
}

util::TimeSeries CoolingModel::pue_series(const util::TimeSeries& temperature) const {
  return temperature.map([this](double t) { return pue_at(t); });
}

double CoolingModel::mean_pue(const util::TimeSeries& temperature) const {
  GREENHPC_REQUIRE(!temperature.empty(), "mean PUE needs a temperature trace");
  return pue_series(temperature).summary().mean;
}

}  // namespace greenhpc::facility
