#include "facility/weather.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::facility {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kYearDays = 365.0;

// Climate presets, broadly matching the regions' Köppen classes.
//             mean  seas  diur  ou_s  tau_h
constexpr ClimateTraits kClimate[] = {
    /* France        */ {12.0, 8.0, 4.5, 3.0, 60.0},
    /* Finland       */ {3.0, 13.0, 3.0, 4.0, 72.0},
    /* Sweden        */ {5.0, 10.5, 3.0, 3.5, 72.0},
    /* Norway        */ {6.0, 8.0, 3.0, 3.5, 60.0},
    /* Germany       */ {9.5, 9.5, 4.0, 3.0, 60.0},
    /* Poland        */ {8.5, 10.5, 4.5, 3.5, 60.0},
    /* Netherlands   */ {10.5, 6.5, 3.5, 2.5, 54.0},
    /* Italy         */ {14.0, 9.0, 5.0, 2.5, 60.0},
    /* Spain         */ {15.0, 8.0, 5.5, 2.5, 60.0},
    /* UnitedKingdom */ {10.0, 6.0, 3.0, 2.5, 48.0},
};

[[nodiscard]] constexpr std::size_t index_of(carbon::Region r) {
  switch (r) {
    case carbon::Region::France: return 0;
    case carbon::Region::Finland: return 1;
    case carbon::Region::Sweden: return 2;
    case carbon::Region::Norway: return 3;
    case carbon::Region::Germany: return 4;
    case carbon::Region::Poland: return 5;
    case carbon::Region::Netherlands: return 6;
    case carbon::Region::Italy: return 7;
    case carbon::Region::Spain: return 8;
    case carbon::Region::UnitedKingdom: return 9;
  }
  return 0;
}
}  // namespace

const ClimateTraits& climate(carbon::Region region) {
  return kClimate[index_of(region)];
}

WeatherModel::WeatherModel(carbon::Region region, std::uint64_t seed)
    : WeatherModel(climate(region), seed) {}

WeatherModel::WeatherModel(ClimateTraits traits, std::uint64_t seed)
    : traits_(traits), rng_(seed ^ 0x77656174ull /* "weat" */) {
  GREENHPC_REQUIRE(traits_.ou_tau_hours > 0.0, "weather correlation time must be > 0");
  GREENHPC_REQUIRE(traits_.seasonal_amplitude >= 0.0 && traits_.diurnal_amplitude >= 0.0,
                   "amplitudes must be >= 0");
}

double WeatherModel::deterministic_component(Duration t) const {
  const double day_of_year = std::fmod(t.days(), kYearDays);
  const double hour = std::fmod(t.hours(), 24.0);
  double temp = traits_.annual_mean;
  // Coldest around mid-January (day ~15), warmest mid-July.
  temp -= traits_.seasonal_amplitude * std::cos(kTwoPi * (day_of_year - 15.0) / kYearDays);
  // Warmest around 15:00, coldest pre-dawn.
  temp += traits_.diurnal_amplitude * std::cos(kTwoPi * (hour - 15.0) / 24.0);
  return temp;
}

util::TimeSeries WeatherModel::generate(Duration start, Duration duration, Duration step) {
  GREENHPC_REQUIRE(duration.seconds() > 0.0 && step.seconds() > 0.0,
                   "weather trace needs positive duration and step");
  const auto n = static_cast<std::size_t>(std::ceil(duration.seconds() / step.seconds()));
  util::TimeSeries out(start, step);
  const double tau = traits_.ou_tau_hours * 3600.0;
  const double decay = std::exp(-step.seconds() / tau);
  const double diffusion = traits_.ou_sigma * std::sqrt(1.0 - decay * decay);
  double ou = rng_.normal(0.0, traits_.ou_sigma);
  for (std::size_t i = 0; i < n; ++i) {
    const Duration t = start + step * static_cast<double>(i);
    out.push_back(deterministic_component(t) + ou);
    ou = ou * decay + diffusion * rng_.normal();
  }
  return out;
}

}  // namespace greenhpc::facility
