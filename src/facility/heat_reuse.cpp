#include "facility/heat_reuse.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace greenhpc::facility {

double heating_demand_factor(const HeatReuseConfig& config, Duration t) {
  GREENHPC_REQUIRE(config.winter_demand >= config.summer_demand,
                   "winter demand must be >= summer demand");
  GREENHPC_REQUIRE(config.summer_demand >= 0.0 && config.winter_demand <= 1.0,
                   "demand factors must lie in [0,1]");
  const double day_of_year = std::fmod(t.days(), 365.0);
  // Peak mid-January, trough mid-July.
  const double phase =
      0.5 * (1.0 + std::cos(2.0 * std::numbers::pi * (day_of_year - 15.0) / 365.0));
  return config.summer_demand + (config.winter_demand - config.summer_demand) * phase;
}

Carbon heat_reuse_credit(const HeatReuseConfig& config, Energy it_energy, Duration t0,
                         Duration t1) {
  GREENHPC_REQUIRE(config.capture_fraction >= 0.0 && config.capture_fraction <= 1.0,
                   "capture fraction must be in [0,1]");
  GREENHPC_REQUIRE(t1 > t0, "reuse window must be non-empty");
  GREENHPC_REQUIRE(it_energy.joules() >= 0.0, "energy must be >= 0");
  // Integrate the demand factor over the window (daily resolution is
  // plenty for a seasonal curve).
  const double span_s = (t1 - t0).seconds();
  const auto steps = static_cast<std::size_t>(std::max(1.0, span_s / 86400.0));
  double demand_sum = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const Duration t = t0 + seconds(span_s * (static_cast<double>(i) + 0.5) /
                                    static_cast<double>(steps));
    demand_sum += heating_demand_factor(config, t);
  }
  const double mean_demand = demand_sum / static_cast<double>(steps);
  const Energy usable_heat = it_energy * (config.capture_fraction * mean_demand);
  return usable_heat * config.displaced_heating;
}

}  // namespace greenhpc::facility
