#pragma once
// Cooling technology and PUE.
//
// The facility draw is IT power times PUE, and PUE depends on the cooling
// technology and the outdoor temperature: every technology has a
// free-cooling regime below a threshold temperature and a rising overhead
// above it. Warm-water direct liquid cooling (the LRZ design the paper's
// host site pioneered) has both the lowest base overhead and the highest
// free-cooling ceiling, because 40-45°C return water can be cooled
// against almost any outdoor air.

#include "util/time_series.hpp"

namespace greenhpc::facility {

enum class CoolingTechnology {
  AirCooled,     ///< CRAC units, chillers above ~15 C
  ChilledWater,  ///< central chilled-water plant, free cooling below ~18 C
  WarmWater,     ///< direct warm-water liquid cooling (LRZ class)
};

[[nodiscard]] const char* cooling_name(CoolingTechnology tech);

/// Overhead parameters of one technology: PUE(T) = 1 + base +
/// slope * max(0, T - free_cooling_limit_c).
struct CoolingTraits {
  double base_overhead;        ///< pumps/fans/UPS share of IT power
  double free_cooling_limit_c; ///< outdoor temp up to which no chiller runs
  double chiller_slope_per_c;  ///< added overhead per °C beyond the limit
};

[[nodiscard]] const CoolingTraits& cooling_traits(CoolingTechnology tech);

class CoolingModel {
 public:
  explicit CoolingModel(CoolingTechnology tech);
  CoolingModel(CoolingTraits traits, const char* label);

  /// PUE at a given outdoor temperature (always >= 1).
  [[nodiscard]] double pue_at(double outdoor_temp_c) const;

  /// Elementwise PUE series for a temperature trace.
  [[nodiscard]] util::TimeSeries pue_series(const util::TimeSeries& temperature) const;

  /// Mean PUE over a temperature trace.
  [[nodiscard]] double mean_pue(const util::TimeSeries& temperature) const;

  [[nodiscard]] const char* label() const { return label_; }

 private:
  CoolingTraits traits_;
  const char* label_;
};

}  // namespace greenhpc::facility
