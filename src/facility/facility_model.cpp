#include "facility/facility_model.hpp"

#include <vector>

#include "util/error.hpp"

namespace greenhpc::facility {

FacilityResult evaluate_facility(const util::TimeSeries& it_power,
                                 const util::TimeSeries& temperature,
                                 const util::TimeSeries& intensity,
                                 const CoolingModel& cooling,
                                 const HeatReuseConfig& reuse) {
  GREENHPC_REQUIRE(!it_power.empty(), "facility evaluation needs an IT power trace");
  GREENHPC_REQUIRE(!temperature.empty() && !intensity.empty(),
                   "temperature and intensity traces required");
  const Duration step = it_power.step();
  const double step_s = step.seconds();

  FacilityResult out;
  double pue_sum = 0.0;
  for (std::size_t i = 0; i < it_power.size(); ++i) {
    const Duration t = it_power.start() + step * static_cast<double>(i);
    const double it_w = it_power.at(i);
    GREENHPC_REQUIRE(it_w >= 0.0, "IT power must be >= 0");
    const double pue = cooling.pue_at(temperature.sample_at_clamped(t));
    pue_sum += pue;
    const double it_j = it_w * step_s;
    const double fac_j = it_j * pue;
    out.it_energy += joules(it_j);
    out.facility_energy += joules(fac_j);
    out.gross_carbon +=
        grams_co2(fac_j / 3.6e6 * intensity.sample_at_clamped(t));
  }
  out.mean_pue = pue_sum / static_cast<double>(it_power.size());
  out.reuse_credit =
      heat_reuse_credit(reuse, out.it_energy, it_power.start(), it_power.end());
  return out;
}

FacilityResult evaluate_facility_constant(Power it_power, Duration start,
                                          Duration duration,
                                          const util::TimeSeries& temperature,
                                          const util::TimeSeries& intensity,
                                          const CoolingModel& cooling,
                                          const HeatReuseConfig& reuse) {
  GREENHPC_REQUIRE(duration.seconds() > 0.0, "duration must be positive");
  const Duration step = hours(1.0);
  const auto n = static_cast<std::size_t>(duration.seconds() / step.seconds());
  GREENHPC_REQUIRE(n >= 1, "window must cover at least one hour");
  util::TimeSeries it(start, step, std::vector<double>(n, it_power.watts()));
  return evaluate_facility(it, temperature, intensity, cooling, reuse);
}

}  // namespace greenhpc::facility
