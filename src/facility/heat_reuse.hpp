#pragma once
// Waste-heat reuse.
//
// Warm-water-cooled systems export usable 40-45°C heat; when it displaces
// fossil heating (campus district heating, adsorption chillers), the site
// earns a carbon credit against its operational footprint. Reuse is
// demand-limited: district heat is wanted in winter, far less in summer,
// so the usable fraction follows the heating season.

#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::facility {

struct HeatReuseConfig {
  /// Share of IT heat captured into the reuse loop (warm-water designs
  /// capture most of it; air-cooled systems almost none).
  double capture_fraction = 0.9;
  /// Demand ceiling in deep winter / high summer, as a fraction of the
  /// captured heat that is actually wanted.
  double winter_demand = 0.85;
  double summer_demand = 0.15;
  /// Carbon intensity of the heating the reused heat displaces
  /// (gas boiler ~ 220 gCO2e per kWh_thermal).
  CarbonIntensity displaced_heating = grams_per_kwh(220.0);
};

/// Seasonal demand factor in [summer_demand, winter_demand] at absolute
/// time t (epoch day 0 = Jan 1; peak demand mid-January).
[[nodiscard]] double heating_demand_factor(const HeatReuseConfig& config, Duration t);

/// Carbon credit earned by reusing the heat of `it_energy` consumed
/// uniformly over [t0, t1] (the demand factor is integrated over the
/// window).
[[nodiscard]] Carbon heat_reuse_credit(const HeatReuseConfig& config, Energy it_energy,
                                       Duration t0, Duration t1);

}  // namespace greenhpc::facility
