#pragma once
// Whole-facility operational carbon: IT draw x PUE(T_outdoor) x CI(t),
// minus the waste-heat reuse credit. Composes the weather, cooling and
// heat-reuse models over aligned time series.

#include "facility/cooling.hpp"
#include "facility/heat_reuse.hpp"
#include "facility/weather.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::facility {

/// Aggregated facility-level outcome over one evaluation window.
struct FacilityResult {
  Energy it_energy;        ///< compute + idle draw of the machine itself
  Energy facility_energy;  ///< IT x PUE(T)
  double mean_pue = 0.0;
  Carbon gross_carbon;     ///< facility energy x grid intensity
  Carbon reuse_credit;     ///< displaced heating carbon
  /// Net operational carbon after heat reuse (floored at zero — a site
  /// cannot go carbon-negative on paper by overselling heat).
  [[nodiscard]] Carbon net_carbon() const {
    const Carbon net = gross_carbon - reuse_credit;
    return net.grams() > 0.0 ? net : Carbon{};
  }
};

/// Evaluate a facility over aligned IT-power (W), outdoor-temperature (°C)
/// and carbon-intensity (g/kWh) traces. The traces must share start/step;
/// the evaluation window is the IT trace's span.
[[nodiscard]] FacilityResult evaluate_facility(const util::TimeSeries& it_power,
                                               const util::TimeSeries& temperature,
                                               const util::TimeSeries& intensity,
                                               const CoolingModel& cooling,
                                               const HeatReuseConfig& reuse);

/// Convenience: constant IT power over a window (procurement-level view).
[[nodiscard]] FacilityResult evaluate_facility_constant(
    Power it_power, Duration start, Duration duration, const util::TimeSeries& temperature,
    const util::TimeSeries& intensity, const CoolingModel& cooling,
    const HeatReuseConfig& reuse);

}  // namespace greenhpc::facility
