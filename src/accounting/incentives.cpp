#include "accounting/incentives.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace greenhpc::accounting {

Charge charge_job(const hpcsim::JobRecord& record, const util::TimeSeries& intensity,
                  const PricingPolicy& policy) {
  GREENHPC_REQUIRE(record.completed, "can only charge completed jobs");
  GREENHPC_REQUIRE(policy.green_discount >= 0.0 && policy.green_discount <= 1.0,
                   "discount must be in [0,1]");
  Charge ch;
  const Duration span = record.finish - record.start;
  ch.node_hours_raw = static_cast<double>(record.spec.nodes_requested) * span.hours();
  if (span.seconds() <= 0.0) return ch;

  const double threshold = carbon::green_threshold(intensity, policy.green_quantile);
  // Walk the execution span at trace resolution and split green/non-green.
  const Duration step = intensity.step();
  double green_s = 0.0;
  for (Duration t = record.start; t < record.finish; t += step) {
    const Duration seg_end = std::min(record.finish, t + step);
    if (intensity.sample_at_clamped(t) <= threshold) {
      green_s += (seg_end - t).seconds();
    }
  }
  ch.green_fraction = green_s / span.seconds();
  ch.node_hours_billed =
      ch.node_hours_raw * (1.0 - policy.green_discount * ch.green_fraction);
  return ch;
}

IncentiveOutcome evaluate_incentive(const std::vector<hpcsim::JobRecord>& records,
                                    const util::TimeSeries& intensity,
                                    const IncentiveConfig& config, std::uint64_t seed) {
  GREENHPC_REQUIRE(config.flexible_fraction >= 0.0 && config.flexible_fraction <= 1.0,
                   "flexible fraction must be in [0,1]");
  GREENHPC_REQUIRE(config.shift_elasticity >= 0.0, "elasticity must be >= 0");
  util::Rng rng(seed ^ 0x696e6365ull /* "ince" */);
  IncentiveOutcome out;

  const double threshold =
      carbon::green_threshold(intensity, config.pricing.green_quantile);
  const auto windows = carbon::find_green_windows(intensity, threshold);
  double green_mean = threshold;
  if (!windows.empty()) {
    double sum = 0.0;
    for (const auto& w : windows) sum += w.mean_intensity;
    green_mean = sum / static_cast<double>(windows.size());
  }

  const double shift_p =
      std::min(1.0, config.shift_elasticity * config.pricing.green_discount);
  double raw_hours = 0.0;
  double billed_hours = 0.0;
  int shifted = 0;
  int completed = 0;
  for (const auto& rec : records) {
    if (!rec.completed) continue;
    ++completed;
    out.baseline_carbon += rec.carbon;
    const bool flexible = rng.bernoulli(config.flexible_fraction);
    const bool shifts = flexible && rng.bernoulli(shift_p);
    const Charge baseline_charge = charge_job(rec, intensity, config.pricing);
    raw_hours += baseline_charge.node_hours_raw;
    if (shifts) {
      ++shifted;
      // Shifted jobs run fully inside green windows: carbon re-priced at
      // the mean green intensity, billed fully discounted.
      out.incentivized_carbon +=
          grams_co2(rec.energy.kilowatt_hours() * green_mean);
      billed_hours +=
          baseline_charge.node_hours_raw * (1.0 - config.pricing.green_discount);
    } else {
      out.incentivized_carbon += rec.carbon;
      billed_hours += baseline_charge.node_hours_billed;
    }
  }
  out.shifted_job_fraction =
      completed > 0 ? static_cast<double>(shifted) / completed : 0.0;
  out.billed_node_hour_factor = raw_hours > 0.0 ? billed_hours / raw_hours : 0.0;
  return out;
}

double max_discount_for_revenue_floor(const std::vector<hpcsim::JobRecord>& records,
                                      const util::TimeSeries& intensity,
                                      IncentiveConfig config, std::uint64_t seed,
                                      double min_billed_factor) {
  GREENHPC_REQUIRE(min_billed_factor > 0.0 && min_billed_factor <= 1.0,
                   "revenue floor must be in (0,1]");
  auto billed_at = [&](double discount) {
    config.pricing.green_discount = discount;
    return evaluate_incentive(records, intensity, config, seed).billed_node_hour_factor;
  };
  if (billed_at(1.0) >= min_billed_factor) return 1.0;
  double lo = 0.0, hi = 1.0;  // billed(lo) >= floor > billed(hi)
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (billed_at(mid) >= min_billed_factor ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace greenhpc::accounting
