#include "accounting/job_carbon.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::accounting {

JobCarbonProfile profile_job(const hpcsim::JobRecord& record,
                             const hpcsim::ClusterConfig& cluster,
                             const util::TimeSeries& intensity) {
  GREENHPC_REQUIRE(record.completed, "can only profile completed jobs");
  GREENHPC_REQUIRE(!intensity.empty(), "intensity trace required");
  JobCarbonProfile p;
  p.id = record.spec.id;
  p.user = record.spec.user;
  p.project = record.spec.project;
  p.energy = record.energy;
  p.carbon = record.carbon;

  const double kwh = record.energy.kilowatt_hours();
  p.experienced_intensity = kwh > 0.0 ? record.carbon.grams() / kwh : 0.0;

  const double green_ci = util::percentile(intensity.values(), 0.10);
  p.best_case_carbon = grams_co2(kwh * green_ci);
  // If the job happened to run greener than the 10th percentile already,
  // there is nothing left to save.
  if (p.best_case_carbon > p.carbon) p.best_case_carbon = p.carbon;

  const int extra = record.spec.nodes_requested - record.spec.nodes_used;
  if (extra > 0) {
    const double busy_w = static_cast<double>(record.spec.nodes_used) *
                          record.spec.node_power.watts();
    const double waste_w = static_cast<double>(extra) * cluster.node_idle.watts();
    p.over_allocation_waste = waste_w / (busy_w + waste_w);
  }
  p.car_km = record.carbon.grams() / kCarGramsPerKm;
  return p;
}

std::vector<JobCarbonProfile> profile_jobs(const hpcsim::SimulationResult& result,
                                           const hpcsim::ClusterConfig& cluster) {
  std::vector<JobCarbonProfile> out;
  out.reserve(result.jobs.size());
  for (const auto& rec : result.jobs) {
    if (!rec.completed) continue;
    out.push_back(profile_job(rec, cluster, result.carbon_intensity));
  }
  return out;
}

namespace {
std::vector<UsageReport> aggregate_by(
    const std::vector<JobCarbonProfile>& profiles,
    const std::function<const std::string&(const JobCarbonProfile&)>& key_of) {
  std::map<std::string, UsageReport> grouped;
  for (const auto& p : profiles) {
    UsageReport& r = grouped[key_of(p)];
    r.key = key_of(p);
    ++r.jobs;
    r.energy += p.energy;
    r.carbon += p.carbon;
    r.timing_savings_potential += p.timing_savings_potential();
    r.mean_over_allocation_waste += p.over_allocation_waste;
    r.car_km += p.car_km;
  }
  std::vector<UsageReport> out;
  out.reserve(grouped.size());
  for (auto& [_, r] : grouped) {
    if (r.jobs > 0) r.mean_over_allocation_waste /= static_cast<double>(r.jobs);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const UsageReport& a, const UsageReport& b) {
    return a.carbon > b.carbon;
  });
  return out;
}
}  // namespace

std::vector<UsageReport> aggregate_by_user(const std::vector<JobCarbonProfile>& profiles) {
  return aggregate_by(
      profiles, [](const JobCarbonProfile& p) -> const std::string& { return p.user; });
}

std::vector<UsageReport> aggregate_by_project(
    const std::vector<JobCarbonProfile>& profiles) {
  return aggregate_by(
      profiles, [](const JobCarbonProfile& p) -> const std::string& { return p.project; });
}

std::string format_job_report(const JobCarbonProfile& p) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "Job " << p.id << " (" << p.user << "/" << p.project << ")\n"
     << "  energy:           " << p.energy.kilowatt_hours() << " kWh\n"
     << "  carbon footprint: " << p.carbon.kilograms() << " kgCO2e"
     << " (grid intensity experienced: " << p.experienced_intensity << " g/kWh)\n"
     << "  equivalent to driving a car " << p.car_km << " km\n"
     << "  running in the greenest windows would have emitted "
     << p.best_case_carbon.kilograms() << " kgCO2e ("
     << (p.carbon.grams() > 0.0
             ? 100.0 * p.timing_savings_potential().grams() / p.carbon.grams()
             : 0.0)
     << "% less)\n";
  if (p.over_allocation_waste > 0.0) {
    os << "  " << 100.0 * p.over_allocation_waste
       << "% of this footprint came from allocated-but-unused nodes\n";
  }
  return os.str();
}

}  // namespace greenhpc::accounting
