#pragma once
// Green-period core-hour incentives (paper section 3.4): "To encourage
// users to submit jobs during periods of green energy, HPC centers can
// offer incentives by only charging a fraction of the actual core hours
// used by the job during that time."
//
// The module provides (a) the pricing rule itself — core-hours consumed
// inside green windows are charged at a discount — and (b) a simple user-
// behaviour model for the incentive experiment: a fraction of jobs is
// time-flexible, and flexible users shift their submissions into green
// windows with a probability that grows with the offered discount.

#include <cstdint>
#include <vector>

#include "carbon/green_periods.hpp"
#include "hpcsim/result.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::accounting {

/// Pricing rule for one job run against an intensity trace.
struct PricingPolicy {
  double green_discount = 0.3;   ///< fraction of the price waived in green windows
  double green_quantile = 0.25;  ///< what counts as green
};

/// Charge (node-hours, after discount) for a completed job, splitting its
/// execution span into green and non-green shares under the policy.
struct Charge {
  double node_hours_raw = 0.0;
  double node_hours_billed = 0.0;
  double green_fraction = 0.0;  ///< share of the span inside green windows
};
[[nodiscard]] Charge charge_job(const hpcsim::JobRecord& record,
                                const util::TimeSeries& intensity,
                                const PricingPolicy& policy);

/// Behaviour model for the incentive experiment.
struct IncentiveConfig {
  PricingPolicy pricing;
  /// Fraction of jobs whose start time is flexible (batch work without a
  /// deadline).
  double flexible_fraction = 0.5;
  /// Shift probability = min(1, elasticity * discount).
  double shift_elasticity = 2.0;
};

/// Outcome of applying an incentive to a set of completed jobs.
struct IncentiveOutcome {
  Carbon baseline_carbon;          ///< as actually run
  Carbon incentivized_carbon;      ///< with shifted flexible jobs
  double shifted_job_fraction = 0.0;
  double billed_node_hour_factor = 0.0;  ///< revenue relative to raw hours
  [[nodiscard]] double carbon_reduction() const {
    return baseline_carbon.grams() > 0.0
               ? 1.0 - incentivized_carbon / baseline_carbon
               : 0.0;
  }
};

/// Monte-Carlo (deterministic by seed) evaluation: flexible jobs shift
/// into the green windows of the trace with the modeled probability;
/// shifted jobs' carbon is re-priced at the mean green-window intensity.
[[nodiscard]] IncentiveOutcome evaluate_incentive(
    const std::vector<hpcsim::JobRecord>& records, const util::TimeSeries& intensity,
    const IncentiveConfig& config, std::uint64_t seed);

/// Largest green discount whose billed-node-hour factor stays at or above
/// `min_billed_factor` (e.g. 0.9 = the center accepts a 10% revenue
/// reduction). Solved by bisection over the discount in [0, 1]; the
/// billed factor is monotone decreasing in the discount under the shift
/// model. Returns 0 if even a zero discount violates the floor (cannot
/// happen: factor(0) == 1) and 1 if no discount reaches it.
[[nodiscard]] double max_discount_for_revenue_floor(
    const std::vector<hpcsim::JobRecord>& records, const util::TimeSeries& intensity,
    IncentiveConfig config, std::uint64_t seed, double min_billed_factor);

}  // namespace greenhpc::accounting
