#pragma once
// HPC job carbon profiles (paper section 3.4): "it is necessary to extend
// operational data analytics tools ... to be able to quantify and
// aggregate carbon emissions data derived from submitted HPC jobs; only
// then a comprehensive HPC job carbon profile can be established and
// integrated into job reports ... the carbon footprint data can also be
// presented using analogies that resonate with typical HPC system users
// [such as] the carbon produced by driving a car".

#include <string>
#include <vector>

#include "hpcsim/result.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace greenhpc::accounting {

/// Average emission of a European passenger car (g CO2e per km) used for
/// the user-facing analogy.
inline constexpr double kCarGramsPerKm = 120.0;

/// The per-job carbon profile attached to a job report.
struct JobCarbonProfile {
  hpcsim::JobId id = 0;
  std::string user;
  std::string project;
  Energy energy;
  Carbon carbon;
  /// Mean intensity the job actually experienced (g/kWh).
  double experienced_intensity = 0.0;
  /// Carbon the same energy would have emitted in the greenest windows of
  /// the trace (10th-percentile intensity) — the user's improvement bound.
  Carbon best_case_carbon;
  /// Share of the job's energy wasted by holding more nodes than used
  /// (the over-allocation behaviour the paper observed on SuperMUC-NG).
  double over_allocation_waste = 0.0;
  /// The analogy: km of car driving with the same emissions.
  double car_km = 0.0;

  /// Reduction available from green-period timing alone.
  [[nodiscard]] Carbon timing_savings_potential() const {
    return carbon - best_case_carbon;
  }
};

/// Profile one completed job against the intensity trace it ran under.
[[nodiscard]] JobCarbonProfile profile_job(const hpcsim::JobRecord& record,
                                           const hpcsim::ClusterConfig& cluster,
                                           const util::TimeSeries& intensity);

/// Profile all completed jobs of a simulation result.
[[nodiscard]] std::vector<JobCarbonProfile> profile_jobs(
    const hpcsim::SimulationResult& result, const hpcsim::ClusterConfig& cluster);

/// Aggregated per-user (or per-project) accounting report.
struct UsageReport {
  std::string key;           ///< user or project name
  int jobs = 0;
  Energy energy;
  Carbon carbon;
  Carbon timing_savings_potential;
  double mean_over_allocation_waste = 0.0;
  double car_km = 0.0;
};

/// Group profiles by user, descending by carbon.
[[nodiscard]] std::vector<UsageReport> aggregate_by_user(
    const std::vector<JobCarbonProfile>& profiles);
/// Group profiles by project, descending by carbon.
[[nodiscard]] std::vector<UsageReport> aggregate_by_project(
    const std::vector<JobCarbonProfile>& profiles);

/// Human-readable per-job report block (what the RJMS would mail the user).
[[nodiscard]] std::string format_job_report(const JobCarbonProfile& profile);

}  // namespace greenhpc::accounting
