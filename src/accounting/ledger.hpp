#pragma once
// Project budget ledger (paper section 3.4): "HPC centers commonly
// allocate compute budget to projects using units like core-hours ...
// This approach can be synergistically integrated with 3.3 to enable
// automatic incentivized HPC job budget accounting."
//
// The ledger tracks, per project, a node-hour allocation and an optional
// carbon allowance. Completed jobs are charged with the green-period
// discount applied (incentive pricing), so delay-tolerant projects that
// ride green windows stretch the same allocation further — the incentive
// loop the paper proposes.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accounting/incentives.hpp"
#include "hpcsim/result.hpp"
#include "util/time_series.hpp"

namespace greenhpc::accounting {

/// Per-project account state.
struct ProjectAccount {
  std::string project;
  double node_hours_granted = 0.0;
  double node_hours_billed = 0.0;
  std::optional<Carbon> carbon_allowance;  ///< nullopt = not carbon-capped
  Carbon carbon_used;
  int jobs_charged = 0;
  int jobs_rejected = 0;

  [[nodiscard]] double node_hours_remaining() const {
    return node_hours_granted - node_hours_billed;
  }
  [[nodiscard]] bool exhausted() const { return node_hours_remaining() <= 0.0; }
  [[nodiscard]] bool carbon_exhausted() const {
    return carbon_allowance && carbon_used >= *carbon_allowance;
  }
};

class ProjectLedger {
 public:
  /// Ledger pricing completed jobs against `intensity` under `policy`.
  /// A copy of the trace is kept so the ledger owns its pricing context.
  ProjectLedger(util::TimeSeries intensity, PricingPolicy policy);

  /// Open an account. Throws if the project already exists.
  void grant(const std::string& project, double node_hours,
             std::optional<Carbon> carbon_allowance = std::nullopt);

  /// Charge one completed job to its project's account. Jobs from
  /// projects that are exhausted (node-hours or carbon) are rejected and
  /// counted, not billed. Returns whether the job was accepted.
  bool charge(const hpcsim::JobRecord& record);

  /// Charge every completed job in a result set (in record order).
  void charge_all(const std::vector<hpcsim::JobRecord>& records);

  /// Account lookup (throws on unknown project).
  [[nodiscard]] const ProjectAccount& account(const std::string& project) const;
  /// All accounts, ordered by project name.
  [[nodiscard]] std::vector<ProjectAccount> accounts() const;

  /// Human-readable statement for one project.
  [[nodiscard]] std::string statement(const std::string& project) const;

 private:
  util::TimeSeries intensity_;
  PricingPolicy policy_;
  std::map<std::string, ProjectAccount> accounts_;
};

}  // namespace greenhpc::accounting
