#include "accounting/ledger.hpp"

#include <sstream>

#include "util/error.hpp"

namespace greenhpc::accounting {

ProjectLedger::ProjectLedger(util::TimeSeries intensity, PricingPolicy policy)
    : intensity_(std::move(intensity)), policy_(policy) {
  GREENHPC_REQUIRE(!intensity_.empty(), "ledger requires an intensity trace");
  GREENHPC_REQUIRE(policy_.green_discount >= 0.0 && policy_.green_discount <= 1.0,
                   "discount must be in [0,1]");
}

void ProjectLedger::grant(const std::string& project, double node_hours,
                          std::optional<Carbon> carbon_allowance) {
  GREENHPC_REQUIRE(!project.empty(), "project name must not be empty");
  GREENHPC_REQUIRE(node_hours > 0.0, "grant must be positive");
  ProjectAccount account;
  account.project = project;
  account.node_hours_granted = node_hours;
  account.carbon_allowance = carbon_allowance;
  GREENHPC_REQUIRE(accounts_.emplace(project, std::move(account)).second,
                   "project already granted: " + project);
}

bool ProjectLedger::charge(const hpcsim::JobRecord& record) {
  GREENHPC_REQUIRE(record.completed, "only completed jobs can be charged");
  const auto it = accounts_.find(record.spec.project);
  GREENHPC_REQUIRE(it != accounts_.end(),
                   "unknown project: " + record.spec.project);
  ProjectAccount& account = it->second;
  if (account.exhausted() || account.carbon_exhausted()) {
    ++account.jobs_rejected;
    return false;
  }
  const Charge ch = charge_job(record, intensity_, policy_);
  account.node_hours_billed += ch.node_hours_billed;
  account.carbon_used += record.carbon;
  ++account.jobs_charged;
  return true;
}

void ProjectLedger::charge_all(const std::vector<hpcsim::JobRecord>& records) {
  for (const auto& rec : records) {
    if (rec.completed) (void)charge(rec);
  }
}

const ProjectAccount& ProjectLedger::account(const std::string& project) const {
  const auto it = accounts_.find(project);
  GREENHPC_REQUIRE(it != accounts_.end(), "unknown project: " + project);
  return it->second;
}

std::vector<ProjectAccount> ProjectLedger::accounts() const {
  std::vector<ProjectAccount> out;
  out.reserve(accounts_.size());
  for (const auto& [_, account] : accounts_) out.push_back(account);
  return out;
}

std::string ProjectLedger::statement(const std::string& project) const {
  const ProjectAccount& a = account(project);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "Project " << a.project << "\n"
     << "  node-hours: " << a.node_hours_billed << " billed of "
     << a.node_hours_granted << " granted (" << a.node_hours_remaining()
     << " remaining)\n"
     << "  carbon:     " << a.carbon_used.kilograms() << " kgCO2e";
  if (a.carbon_allowance) {
    os << " of " << a.carbon_allowance->kilograms() << " allowed";
  }
  os << "\n  jobs:       " << a.jobs_charged << " charged, " << a.jobs_rejected
     << " rejected\n";
  return os.str();
}

}  // namespace greenhpc::accounting
