// DegradedFeed: alternating up/down windows and the observe() contract.

#include <gtest/gtest.h>

#include "resilience/degraded_feed.hpp"
#include "util/error.hpp"

namespace greenhpc::resilience {
namespace {

TEST(DegradedFeed, ZeroFractionIsAlwaysFresh) {
  DegradedFeed feed({.outage_fraction = 0.0}, days(10.0));
  EXPECT_TRUE(feed.outages().empty());
  for (double h = 0.0; h < 240.0; h += 7.3) {
    const auto obs = feed.observe(hours(h), 123.0);
    ASSERT_TRUE(obs.has_value());
    EXPECT_DOUBLE_EQ(*obs, 123.0);
  }
}

TEST(DegradedFeed, FullFractionIsAlwaysDark) {
  DegradedFeed feed({.outage_fraction = 1.0}, days(10.0));
  EXPECT_DOUBLE_EQ(feed.realized_outage_fraction(), 1.0);
  EXPECT_FALSE(feed.observe(seconds(0.0), 1.0).has_value());
  EXPECT_FALSE(feed.observe(days(9.9), 1.0).has_value());
}

TEST(DegradedFeed, RealizedFractionNearTarget) {
  DegradedFeedConfig cfg;
  cfg.outage_fraction = 0.25;
  cfg.mean_outage = hours(2.0);
  cfg.seed = 7;
  DegradedFeed feed(cfg, days(60.0));  // long horizon: law of large numbers
  EXPECT_NEAR(feed.realized_outage_fraction(), 0.25, 0.10);
}

TEST(DegradedFeed, ObserveMatchesDownAtAndWindows) {
  DegradedFeedConfig cfg;
  cfg.outage_fraction = 0.3;
  cfg.seed = 11;
  DegradedFeed feed(cfg, days(10.0));
  ASSERT_FALSE(feed.outages().empty());
  for (const auto& [start, end] : feed.outages()) {
    ASSERT_LT(start.seconds(), end.seconds());
    const Duration mid = seconds(0.5 * (start.seconds() + end.seconds()));
    EXPECT_TRUE(feed.down_at(mid));
    EXPECT_FALSE(feed.observe(mid, 9.0).has_value());
  }
  // Just before the first outage the feed is up.
  const Duration before = seconds(feed.outages().front().first.seconds() - 1.0);
  EXPECT_FALSE(feed.down_at(before));
  EXPECT_TRUE(feed.observe(before, 9.0).has_value());
}

TEST(DegradedFeed, WindowsAscendingAndDisjoint) {
  DegradedFeedConfig cfg;
  cfg.outage_fraction = 0.4;
  cfg.mean_outage = hours(1.0);
  DegradedFeed feed(cfg, days(20.0));
  const auto& w = feed.outages();
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LT(w[i - 1].second.seconds(), w[i].first.seconds());
  }
}

TEST(DegradedFeed, DeterministicAcrossInstances) {
  DegradedFeedConfig cfg;
  cfg.outage_fraction = 0.25;
  cfg.seed = 99;
  DegradedFeed a(cfg, days(30.0));
  DegradedFeed b(cfg, days(30.0));
  ASSERT_EQ(a.outages().size(), b.outages().size());
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages()[i].first.seconds(), b.outages()[i].first.seconds());
    EXPECT_DOUBLE_EQ(a.outages()[i].second.seconds(), b.outages()[i].second.seconds());
  }
}

TEST(DegradedFeed, ValidateRejectsBadConfigs) {
  EXPECT_THROW(DegradedFeed({.outage_fraction = -0.1}, days(1.0)),
               InvalidArgument);
  EXPECT_THROW(DegradedFeed({.outage_fraction = 1.1}, days(1.0)),
               InvalidArgument);
  EXPECT_THROW(
      DegradedFeed({.outage_fraction = 0.5, .mean_outage = seconds(0.0)}, days(1.0)),
      InvalidArgument);
  EXPECT_THROW(DegradedFeed({.outage_fraction = 0.5}, seconds(0.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::resilience
