// Simulator fault injection: kills, rollback, requeue/backoff, retry
// budgets, degraded feeds and the strict opt-in identity.

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "resilience/checkpoint_policy.hpp"
#include "resilience/degraded_feed.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::constant_trace;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;

Simulator::Config base_config(int nodes = 8) {
  Simulator::Config cfg;
  cfg.cluster = small_cluster(nodes);
  cfg.carbon_intensity = constant_trace(300.0, days(3.0));
  return cfg;
}

/// A failure event that takes down the whole cluster, guaranteeing every
/// running job is hit regardless of victim sampling.
NodeFailureEvent whole_cluster_failure(Duration at, int nodes,
                                       Duration repair = minutes(30.0)) {
  return {at, nodes, repair};
}

TEST(FaultInjection, EmptyScheduleIsBitIdenticalToSeedBehaviour) {
  // Strict opt-in: a FaultInjectionConfig with no events (even with other
  // knobs set) and no feed must reproduce the fault-free run exactly.
  auto jobs = std::vector<JobSpec>{rigid_job(1, seconds(0.0), 4, hours(3.0)),
                                   rigid_job(2, minutes(30.0), 8, hours(2.0)),
                                   rigid_job(3, hours(1.0), 2, hours(5.0))};
  auto cfg_plain = base_config();
  cfg_plain.carbon_intensity = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  auto cfg_faulty = cfg_plain;
  cfg_faulty.faults.max_retries = 7;
  cfg_faulty.faults.backoff_base = minutes(1.0);
  cfg_faulty.faults.victim_seed = 123456;

  GreedyScheduler a, b;
  const auto ra = Simulator(cfg_plain, jobs).run(a);
  const auto rb = Simulator(cfg_faulty, jobs).run(b);

  EXPECT_EQ(ra.makespan.seconds(), rb.makespan.seconds());
  EXPECT_EQ(ra.total_energy.joules(), rb.total_energy.joules());
  EXPECT_EQ(ra.total_carbon.grams(), rb.total_carbon.grams());
  EXPECT_EQ(rb.node_failures, 0);
  EXPECT_EQ(rb.job_failures, 0);
  EXPECT_EQ(rb.lost_node_seconds, 0.0);
  EXPECT_EQ(rb.wasted_energy.joules(), 0.0);
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
    EXPECT_EQ(ra.jobs[i].finish.seconds(), rb.jobs[i].finish.seconds());
    EXPECT_EQ(ra.jobs[i].energy.joules(), rb.jobs[i].energy.joules());
  }
}

TEST(FaultInjection, NonCheckpointableJobLosesAllProgressAndRetries) {
  auto job = rigid_job(1, seconds(0.0), 8, hours(2.0));  // fills the cluster
  auto cfg = base_config(8);
  cfg.faults.events = {whole_cluster_failure(hours(1.0), 8)};
  cfg.faults.backoff_base = minutes(10.0);

  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);

  EXPECT_EQ(r.node_failures, 8);
  EXPECT_EQ(r.job_failures, 1);
  EXPECT_EQ(r.jobs_failed, 0);
  ASSERT_EQ(r.completed_jobs, 1);
  EXPECT_EQ(r.jobs[0].failure_count, 1);
  EXPECT_TRUE(r.jobs[0].completed);
  // Scratch restart: ~1 h of 8-node progress destroyed.
  EXPECT_NEAR(r.lost_node_seconds, 8.0 * 3600.0, 8.0 * 120.0);
  EXPECT_GT(r.wasted_energy.joules(), 0.0);
  EXPECT_GT(r.wasted_carbon.grams(), 0.0);
  // Finish >= failure(1 h) + repair(30 min <= backoff path) + full rerun
  // (2 h): well past the fault-free 2 h.
  EXPECT_GT(r.jobs[0].finish.hours(), 3.0);
  EXPECT_LT(r.goodput_fraction(), 1.0);
}

TEST(FaultInjection, CheckpointedJobRestartsFromCheckpointNotScratch) {
  auto make_job = [] {
    auto j = rigid_job(1, seconds(0.0), 8, hours(2.0));
    j.checkpointable = true;
    j.checkpoint_overhead = minutes(1.0);
    return j;
  };
  auto cfg = base_config(8);
  cfg.faults.events = {whole_cluster_failure(hours(1.0), 8)};

  // Without checkpoints: scratch restart.
  GreedyScheduler plain;
  auto cfg_plain = cfg;
  const auto r_scratch = Simulator(cfg_plain, {make_job()}).run(plain);

  // With 15-minute periodic checkpoints: bounded rollback.
  GreedyScheduler inner;
  resilience::PeriodicCheckpointPolicy ckpt(inner, {.fixed_interval = minutes(15.0)});
  const auto r_ckpt = Simulator(cfg, {make_job()}).run(ckpt);

  ASSERT_EQ(r_scratch.completed_jobs, 1);
  ASSERT_EQ(r_ckpt.completed_jobs, 1);
  // Rollback bounded by the checkpoint interval (+ overhead charges):
  // far less work destroyed, and an earlier finish.
  EXPECT_LT(r_ckpt.lost_node_seconds, 0.5 * r_scratch.lost_node_seconds);
  EXPECT_LT(r_ckpt.jobs[0].finish.seconds(), r_scratch.jobs[0].finish.seconds());
  EXPECT_GT(r_ckpt.checkpoints_taken, 0);
  EXPECT_GT(r_ckpt.goodput_fraction(), r_scratch.goodput_fraction());
}

TEST(FaultInjection, RetryBudgetExhaustionAbandonsJob) {
  auto job = rigid_job(1, seconds(0.0), 8, hours(4.0));
  auto cfg = base_config(8);
  // Failures every 30 min forever; one retry allowed.
  for (double h = 0.5; h < 48.0; h += 0.5) {
    cfg.faults.events.push_back(whole_cluster_failure(hours(h), 8, minutes(5.0)));
  }
  cfg.faults.max_retries = 1;
  cfg.faults.backoff_base = minutes(5.0);

  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);

  EXPECT_EQ(r.completed_jobs, 0);
  EXPECT_EQ(r.jobs_failed, 1);
  EXPECT_TRUE(r.jobs[0].failed);
  EXPECT_FALSE(r.jobs[0].completed);
  EXPECT_EQ(r.jobs[0].failure_count, 2);  // initial + one retry
  EXPECT_DOUBLE_EQ(r.goodput_fraction(), 0.0);
}

TEST(FaultInjection, BackoffDelaysRequeue) {
  auto job = rigid_job(1, seconds(0.0), 8, hours(1.0));
  auto cfg = base_config(8);
  cfg.faults.events = {whole_cluster_failure(minutes(30.0), 8, minutes(1.0))};
  cfg.faults.backoff_base = hours(2.0);

  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);
  ASSERT_EQ(r.completed_jobs, 1);
  // Rerun cannot start before failure + 2 h backoff; finish ~ 3.5 h+.
  EXPECT_GE(r.jobs[0].finish.hours(), 0.5 + 2.0 + 1.0 - 0.1);
}

TEST(FaultInjection, IdleNodeFailureDoesNotKillJobs) {
  // 1-node job on an 8-node cluster; a single node failure most likely
  // hits an idle node — either way the job must still complete and the
  // node count must recover after repair.
  auto job = rigid_job(1, seconds(0.0), 1, hours(2.0));
  auto cfg = base_config(8);
  cfg.faults.events = {{minutes(10.0), 3, minutes(20.0)}};

  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);
  EXPECT_EQ(r.node_failures, 3);
  EXPECT_EQ(r.completed_jobs, 1);
}

TEST(FaultInjection, DegradedFeedHoldsLastValueForPolicies) {
  // Square-wave truth; feed dark from the start of a dirty half-period.
  // Policies see the held value; accounting sees the truth.
  auto job = rigid_job(1, hours(7.0), 4, hours(2.0));
  auto cfg = base_config(8);
  cfg.carbon_intensity = square_trace(100.0, 500.0, hours(6.0), days(2.0));

  resilience::DegradedFeedConfig fc;
  fc.outage_fraction = 1.0;  // permanently dark => held at the t=0 truth
  resilience::DegradedFeed feed(fc, days(2.0));
  cfg.feed = &feed;

  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);
  ASSERT_EQ(r.completed_jobs, 1);
  // Job ran 7h..9h inside the 500 g/kWh half-period: accounting must use
  // the true intensity, not the held 100.
  const double true_ci = 500.0;
  const double expected_g = r.jobs[0].energy.joules() / 3.6e6 * true_ci;
  EXPECT_NEAR(r.jobs[0].carbon.grams(), expected_g, expected_g * 0.05);
}

TEST(FaultInjection, ConstructorRejectsMalformedEvents) {
  auto cfg = base_config();
  cfg.faults.events = {{seconds(-1.0), 1, minutes(5.0)}};
  EXPECT_THROW(Simulator(cfg, std::vector<JobSpec>{}), InvalidArgument);
  cfg.faults.events = {{seconds(10.0), 0, minutes(5.0)}};
  EXPECT_THROW(Simulator(cfg, std::vector<JobSpec>{}), InvalidArgument);
  cfg.faults.events = {{seconds(10.0), 1, seconds(0.0)}};
  EXPECT_THROW(Simulator(cfg, std::vector<JobSpec>{}), InvalidArgument);
  cfg.faults.events.clear();
  cfg.faults.max_retries = -1;
  EXPECT_THROW(Simulator(cfg, std::vector<JobSpec>{}), InvalidArgument);
  cfg = base_config();
  cfg.faults.max_backoff = seconds(0.0);
  EXPECT_THROW(Simulator(cfg, std::vector<JobSpec>{}), InvalidArgument);
}

TEST(FaultInjection, BackoffIsCappedAtMaxBackoff) {
  // failure_count grows past where 2^(n-1) * base would exceed the cap;
  // requeue delay must plateau instead of stalling for simulated years.
  auto job = rigid_job(1, seconds(0.0), 8, hours(1.0));
  auto cfg = base_config(8);
  for (double h = 0.25; h < 6.0; h += 0.25) {
    cfg.faults.events.push_back(whole_cluster_failure(hours(h), 8, minutes(5.0)));
  }
  cfg.faults.max_retries = 40;
  cfg.faults.backoff_base = minutes(10.0);
  cfg.faults.max_backoff = minutes(30.0);

  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);
  ASSERT_EQ(r.completed_jobs, 1);
  // Uncapped, the 6th+ retries alone would wait 10 min * 2^5 = 5.3 h each;
  // capped at 30 min the job clears the 6 h storm within a couple of days.
  EXPECT_LT(r.jobs[0].finish.days(), 3.0);
  EXPECT_GT(r.jobs[0].failure_count, 5);
}

TEST(FaultInjection, UnsortedEventsAreApplied) {
  auto job = rigid_job(1, seconds(0.0), 8, hours(3.0));
  auto cfg = base_config(8);
  cfg.faults.events = {whole_cluster_failure(hours(2.0), 8),
                       whole_cluster_failure(hours(1.0), 8)};
  GreedyScheduler sched;
  const auto r = Simulator(cfg, {job}).run(sched);
  EXPECT_EQ(r.node_failures, 16);
  EXPECT_GE(r.job_failures, 1);
}

}  // namespace
}  // namespace greenhpc::hpcsim
