// FaultModel: seeded Weibull/exponential node-failure schedules with
// age-dependent hazard.

#include <gtest/gtest.h>

#include "lifecycle/fleet.hpp"
#include "resilience/fault_model.hpp"
#include "util/error.hpp"

namespace greenhpc::resilience {
namespace {

FaultModelConfig base_config() {
  FaultModelConfig c;
  c.nodes = 64;
  c.horizon = days(30.0);
  c.node_mtbf = hours(500.0);
  c.mean_repair = hours(2.0);
  c.seed = 42;
  return c;
}

TEST(FaultModel, NonPositiveMtbfMeansPerfectHardware) {
  auto cfg = base_config();
  cfg.node_mtbf = seconds(0.0);
  EXPECT_TRUE(FaultModel(cfg).schedule().empty());
  cfg.node_mtbf = seconds(-10.0);
  EXPECT_TRUE(FaultModel(cfg).schedule().empty());
  EXPECT_FALSE(FaultModel(cfg).injection().enabled());
}

TEST(FaultModel, ScheduleSortedWithinHorizonAndWellFormed) {
  const auto events = FaultModel(base_config()).schedule();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].time.seconds(), 0.0);
    EXPECT_LT(events[i].time, base_config().horizon);
    EXPECT_EQ(events[i].nodes, 1);
    EXPECT_GT(events[i].repair.seconds(), 0.0);
    if (i > 0) EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(FaultModel, EventCountTracksMtbf) {
  // 64 nodes x 720 h / 500 h MTBF ~ 92 expected failures (repairs eat a
  // little exposure time); statistical, so the band is generous.
  const auto events = FaultModel(base_config()).schedule();
  EXPECT_GT(events.size(), 40u);
  EXPECT_LT(events.size(), 180u);

  auto rare = base_config();
  rare.node_mtbf = hours(5000.0);
  EXPECT_LT(FaultModel(rare).schedule().size(), events.size());
}

TEST(FaultModel, AgeAccelerationRaisesFailureRate) {
  auto young = base_config();
  auto old_sys = base_config();
  old_sys.age_years = 8.0;
  old_sys.age_acceleration = 0.25;  // hazard x3 at 8 years
  EXPECT_DOUBLE_EQ(old_sys.hazard_multiplier(), 3.0);
  EXPECT_DOUBLE_EQ(old_sys.effective_mtbf().seconds(),
                   young.node_mtbf.seconds() / 3.0);
  EXPECT_GT(FaultModel(old_sys).schedule().size(),
            FaultModel(young).schedule().size());
}

TEST(FaultModel, ForSystemTiesAgeToServiceYears) {
  lifecycle::SystemLifetime sys{"SuperMUC-NG", 2018, std::nullopt};
  auto cfg = FaultModel::for_system(sys, 2026, base_config());
  EXPECT_DOUBLE_EQ(cfg.age_years, 8.0);
  auto decommissioned = FaultModel::for_system(
      lifecycle::SystemLifetime{"old", 2000, 2006}, 2026, base_config());
  EXPECT_DOUBLE_EQ(decommissioned.age_years, 6.0);
}

TEST(FaultModel, InjectionCarriesRetryPolicy) {
  const auto inj = FaultModel(base_config()).injection(5, minutes(20.0));
  EXPECT_TRUE(inj.enabled());
  EXPECT_EQ(inj.max_retries, 5);
  EXPECT_DOUBLE_EQ(inj.backoff_base.minutes(), 20.0);
}

TEST(FaultModel, WeibullShapeChangesScheduleButKeepsMean) {
  auto wearout = base_config();
  wearout.weibull_shape = 2.0;
  const auto exp_events = FaultModel(base_config()).schedule();
  const auto wb_events = FaultModel(wearout).schedule();
  ASSERT_FALSE(wb_events.empty());
  // Same mean inter-failure time: counts should agree within a factor.
  const double ratio = static_cast<double>(wb_events.size()) /
                       static_cast<double>(exp_events.size());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(FaultModel, ValidateRejectsBadConfigs) {
  auto cfg = base_config();
  cfg.weibull_shape = 0.0;
  EXPECT_THROW(FaultModel{cfg}, InvalidArgument);
  cfg = base_config();
  cfg.mean_repair = seconds(0.0);
  EXPECT_THROW(FaultModel{cfg}, InvalidArgument);
  cfg = base_config();
  cfg.age_acceleration = -1.0;
  EXPECT_THROW(FaultModel{cfg}, InvalidArgument);
  cfg = base_config();
  cfg.nodes = -1;
  EXPECT_THROW(FaultModel{cfg}, InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::resilience
