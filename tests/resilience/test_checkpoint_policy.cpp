// PeriodicCheckpointPolicy: Young/Daly interval and periodic in-place
// checkpoints through a live simulation.

#include <gtest/gtest.h>

#include <cmath>

#include "hpcsim/simulator.hpp"
#include "resilience/checkpoint_policy.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::resilience {
namespace {

using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::constant_trace;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;

TEST(YoungDaly, IntervalFormula) {
  // tau = sqrt(2 * delta * M / n): delta = 10 min, M = 500 h, n = 1.
  const Duration tau = PeriodicCheckpointPolicy::young_daly_interval(
      minutes(10.0), hours(500.0), 1);
  EXPECT_DOUBLE_EQ(tau.seconds(), std::sqrt(2.0 * 600.0 * 500.0 * 3600.0));
}

TEST(YoungDaly, IntervalShrinksWithJobSize) {
  const Duration one = PeriodicCheckpointPolicy::young_daly_interval(
      minutes(10.0), hours(500.0), 1);
  const Duration sixteen = PeriodicCheckpointPolicy::young_daly_interval(
      minutes(10.0), hours(500.0), 16);
  // n-node system MTBF is M/n, so tau scales as 1/sqrt(n).
  EXPECT_NEAR(sixteen.seconds(), one.seconds() / 4.0, 1e-9);
}

TEST(YoungDaly, RejectsNonPositiveInputs) {
  EXPECT_THROW((void)PeriodicCheckpointPolicy::young_daly_interval(
                   minutes(10.0), seconds(0.0), 1),
               InvalidArgument);
  EXPECT_THROW((void)PeriodicCheckpointPolicy::young_daly_interval(
                   minutes(10.0), hours(100.0), 0),
               InvalidArgument);
}

TEST(CheckpointPolicy, ValidationNeedsMtbfOrFixedInterval) {
  GreedyScheduler inner;
  EXPECT_THROW(PeriodicCheckpointPolicy(inner, {}), InvalidArgument);
  EXPECT_NO_THROW(
      PeriodicCheckpointPolicy(inner, {.node_mtbf = hours(100.0)}));
  EXPECT_NO_THROW(
      PeriodicCheckpointPolicy(inner, {.fixed_interval = hours(1.0)}));
}

TEST(CheckpointPolicy, WritesPeriodicCheckpoints) {
  auto job = rigid_job(1, seconds(0.0), 4, hours(6.0));
  job.checkpointable = true;
  job.checkpoint_overhead = minutes(2.0);

  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(8);
  cfg.carbon_intensity = constant_trace(300.0, days(2.0));
  hpcsim::Simulator sim(cfg, {job});

  GreedyScheduler inner;
  PeriodicCheckpointPolicy policy(inner, {.fixed_interval = minutes(30.0)});
  EXPECT_EQ(policy.name(), "greedy-test+ydckpt");
  const auto result = sim.run(policy);

  ASSERT_EQ(result.completed_jobs, 1);
  // ~6 h of work (stretched slightly by checkpoint overhead) at one
  // checkpoint per 30 min — roughly a dozen, definitely more than five.
  EXPECT_GT(result.checkpoints_taken, 5);
  EXPECT_EQ(result.jobs[0].checkpoint_count, result.checkpoints_taken);
  EXPECT_GT(result.checkpoint_node_seconds, 0.0);
  // Overhead share: checkpoint_count * 2 min * 4 nodes over ~6 h * 4.
  EXPECT_LT(result.checkpoint_overhead_share(), 0.15);
  EXPECT_GT(result.checkpoint_overhead_share(), 0.0);
}

TEST(CheckpointPolicy, SkipsNonCheckpointableJobs) {
  auto job = rigid_job(1, seconds(0.0), 2, hours(3.0));  // not checkpointable
  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(8);
  cfg.carbon_intensity = constant_trace(300.0, days(1.0));
  hpcsim::Simulator sim(cfg, {job});

  GreedyScheduler inner;
  PeriodicCheckpointPolicy policy(inner, {.fixed_interval = minutes(15.0)});
  const auto result = sim.run(policy);
  EXPECT_EQ(result.completed_jobs, 1);
  EXPECT_EQ(result.checkpoints_taken, 0);
  EXPECT_DOUBLE_EQ(result.checkpoint_node_seconds, 0.0);
}

TEST(CheckpointPolicy, MinIntervalClampsYoungDaly) {
  // Tiny overhead + short MTBF would give a sub-minute tau; the clamp
  // keeps the machine from checkpointing every tick.
  auto job = rigid_job(1, seconds(0.0), 1, hours(2.0));
  job.checkpointable = true;
  job.checkpoint_overhead = seconds(5.0);

  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(4);
  cfg.carbon_intensity = constant_trace(300.0, days(1.0));
  hpcsim::Simulator sim(cfg, {job});

  GreedyScheduler inner;
  CheckpointPolicyConfig pc;
  pc.node_mtbf = hours(1.0);
  pc.min_interval = minutes(20.0);
  PeriodicCheckpointPolicy policy(inner, pc);
  const auto result = sim.run(policy);
  ASSERT_EQ(result.completed_jobs, 1);
  // 2 h run, >= 20 min spacing: at most ~7 checkpoints.
  EXPECT_LE(result.checkpoints_taken, 7);
}

}  // namespace
}  // namespace greenhpc::resilience
