#include "telemetry/sensor_store.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::telemetry {
namespace {

TEST(Sensor, RecordAndLookup) {
  Sensor s("node0.power");
  EXPECT_TRUE(s.empty());
  s.record(seconds(0.0), 100.0);
  s.record(seconds(60.0), 200.0);
  EXPECT_EQ(s.samples().size(), 2u);
  EXPECT_EQ(s.value_at(seconds(0.0)), 100.0);
  EXPECT_EQ(s.value_at(seconds(59.0)), 100.0);
  EXPECT_EQ(s.value_at(seconds(60.0)), 200.0);
  EXPECT_EQ(s.value_at(seconds(1e6)), 200.0);
  EXPECT_FALSE(s.value_at(seconds(-1.0)).has_value());
}

TEST(Sensor, OutOfOrderRecordThrows) {
  Sensor s("x");
  s.record(seconds(10.0), 1.0);
  EXPECT_THROW(s.record(seconds(5.0), 2.0), greenhpc::InvalidArgument);
}

TEST(Sensor, SameTimestampOverwrites) {
  Sensor s("x");
  s.record(seconds(10.0), 1.0);
  s.record(seconds(10.0), 7.0);
  EXPECT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.value_at(seconds(10.0)), 7.0);
}

TEST(Sensor, IntegrateZeroOrderHold) {
  Sensor s("power");
  s.record(seconds(0.0), 100.0);
  s.record(seconds(60.0), 200.0);
  s.record(seconds(120.0), 50.0);
  // [0, 180): 100*60 + 200*60 + 50*60.
  EXPECT_DOUBLE_EQ(s.integrate(seconds(0.0), seconds(180.0)), 21000.0);
  // Partial: [30, 90) -> 100*30 + 200*30.
  EXPECT_DOUBLE_EQ(s.integrate(seconds(30.0), seconds(90.0)), 9000.0);
  // Beyond last sample the value holds.
  EXPECT_DOUBLE_EQ(s.integrate(seconds(120.0), seconds(240.0)), 50.0 * 120.0);
}

TEST(Sensor, IntegrateBeforeFirstSampleContributesNothing) {
  Sensor s("power");
  s.record(seconds(100.0), 10.0);
  EXPECT_DOUBLE_EQ(s.integrate(seconds(0.0), seconds(100.0)), 0.0);
  EXPECT_DOUBLE_EQ(s.integrate(seconds(0.0), seconds(150.0)), 500.0);
  EXPECT_DOUBLE_EQ(s.integrate(seconds(0.0), seconds(50.0)), 0.0);
}

TEST(Sensor, IntegrateEmptyAndDegenerate) {
  Sensor s("power");
  EXPECT_DOUBLE_EQ(s.integrate(seconds(0.0), seconds(10.0)), 0.0);
  s.record(seconds(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.integrate(seconds(3.0), seconds(3.0)), 0.0);
  EXPECT_THROW((void)s.integrate(seconds(5.0), seconds(1.0)), greenhpc::InvalidArgument);
}

TEST(Sensor, IntegrateWeightedProducts) {
  Sensor power("p"), ci("ci");
  power.record(seconds(0.0), 1000.0);     // 1 kW
  power.record(seconds(3600.0), 2000.0);  // 2 kW after an hour
  ci.record(seconds(0.0), 100.0);
  ci.record(seconds(1800.0), 300.0);  // intensity jumps mid-hour
  // [0, 7200): 1kW*100*1800 + 1kW*300*1800 + 2kW*300*3600 (in W*g/kWh*s).
  const double expected = 1000.0 * 100.0 * 1800.0 + 1000.0 * 300.0 * 1800.0 +
                          2000.0 * 300.0 * 3600.0;
  EXPECT_DOUBLE_EQ(power.integrate_weighted(ci, seconds(0.0), seconds(7200.0)), expected);
}

TEST(SensorStore, CreatesAndFinds) {
  SensorStore store;
  store.record("a.power", seconds(0.0), 1.0);
  store.record("b.power", seconds(0.0), 2.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.find("a.power"), nullptr);
  EXPECT_EQ(store.find("missing"), nullptr);
  const auto names = store.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.power");
}

TEST(SensorStore, EnergyQuery) {
  SensorStore store;
  store.record("sys.power", seconds(0.0), 1000.0);
  // 1 kW for 1 h = 1 kWh.
  EXPECT_NEAR(store.energy("sys.power", seconds(0.0), hours(1.0)).kilowatt_hours(), 1.0,
              1e-12);
  EXPECT_THROW((void)store.energy("nope", seconds(0.0), hours(1.0)),
               greenhpc::InvalidArgument);
}

TEST(SensorStore, CarbonQuery) {
  SensorStore store;
  store.record("sys.power", seconds(0.0), 1000.0);  // 1 kW
  store.record("sys.ci", seconds(0.0), 400.0);      // g/kWh
  // 1 kWh at 400 g/kWh = 400 g.
  EXPECT_NEAR(store.carbon("sys.power", "sys.ci", seconds(0.0), hours(1.0)).grams(),
              400.0, 1e-9);
  EXPECT_THROW((void)store.carbon("sys.power", "nope", seconds(0.0), hours(1.0)),
               greenhpc::InvalidArgument);
}

TEST(SensorStore, CarbonTracksIntensityChanges) {
  SensorStore store;
  store.record("p", seconds(0.0), 2000.0);  // 2 kW constant
  store.record("ci", seconds(0.0), 100.0);
  store.record("ci", seconds(3600.0), 500.0);
  // Hour 1: 2 kWh * 100 g; hour 2: 2 kWh * 500 g.
  EXPECT_NEAR(store.carbon("p", "ci", seconds(0.0), hours(2.0)).grams(), 1200.0, 1e-9);
}

TEST(Sensor, EmptyNameThrows) {
  EXPECT_THROW(Sensor(""), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::telemetry
