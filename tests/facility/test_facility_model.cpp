#include "facility/facility_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "carbon/grid_model.hpp"
#include "util/error.hpp"

namespace greenhpc::facility {
namespace {

util::TimeSeries flat(double value, Duration span, Duration step = hours(1.0)) {
  const auto n = static_cast<std::size_t>(span.seconds() / step.seconds());
  return util::TimeSeries(seconds(0.0), step, std::vector<double>(n, value));
}

TEST(HeatReuse, SeasonalDemandShape) {
  HeatReuseConfig cfg;
  // Mid-January demand near the winter ceiling, mid-July near the floor.
  EXPECT_NEAR(heating_demand_factor(cfg, days(15.0)), cfg.winter_demand, 0.01);
  EXPECT_NEAR(heating_demand_factor(cfg, days(197.0)), cfg.summer_demand, 0.01);
  // Shoulder seasons in between.
  const double spring = heating_demand_factor(cfg, days(105.0));
  EXPECT_GT(spring, cfg.summer_demand);
  EXPECT_LT(spring, cfg.winter_demand);
}

TEST(HeatReuse, CreditArithmetic) {
  HeatReuseConfig cfg;
  cfg.capture_fraction = 1.0;
  cfg.winter_demand = 1.0;
  cfg.summer_demand = 1.0;  // demand always 1 -> credit = E * ci_heat
  const Carbon credit =
      heat_reuse_credit(cfg, kilowatt_hours(100.0), seconds(0.0), days(1.0));
  EXPECT_NEAR(credit.grams(), 100.0 * 220.0, 1e-6);
}

TEST(HeatReuse, WinterCreditExceedsSummer) {
  HeatReuseConfig cfg;
  const Carbon winter =
      heat_reuse_credit(cfg, kilowatt_hours(100.0), days(5.0), days(25.0));
  const Carbon summer =
      heat_reuse_credit(cfg, kilowatt_hours(100.0), days(185.0), days(205.0));
  EXPECT_GT(winter.grams(), 3.0 * summer.grams());
}

TEST(Facility, EnergyComposition) {
  const auto it = flat(1.0e6, days(2.0));        // 1 MW IT
  const auto temp = flat(10.0, days(2.0));       // free cooling for all techs
  const auto ci = flat(300.0, days(2.0));
  const CoolingModel warm(CoolingTechnology::WarmWater);
  const auto r = evaluate_facility(it, temp, ci, warm, HeatReuseConfig{});
  EXPECT_NEAR(r.it_energy.megawatt_hours(), 48.0, 0.01);
  EXPECT_NEAR(r.mean_pue, 1.07, 1e-9);
  EXPECT_NEAR(r.facility_energy.megawatt_hours(), 48.0 * 1.07, 0.05);
  EXPECT_NEAR(r.gross_carbon.tonnes(), 48.0 * 1.07 * 0.3, 0.01);
  EXPECT_GT(r.reuse_credit.grams(), 0.0);
  EXPECT_LT(r.net_carbon().grams(), r.gross_carbon.grams());
}

TEST(Facility, NetCarbonFlooredAtZero) {
  // A clean grid plus aggressive reuse must not produce negative carbon.
  const auto it = flat(1.0e6, days(10.0));
  const auto temp = flat(0.0, days(10.0));
  const auto ci = flat(5.0, days(10.0));  // near-zero-carbon grid
  const CoolingModel warm(CoolingTechnology::WarmWater);
  HeatReuseConfig reuse;
  reuse.capture_fraction = 1.0;
  const auto r = evaluate_facility(it, temp, ci, warm, reuse);
  EXPECT_GT(r.reuse_credit.grams(), r.gross_carbon.grams());
  EXPECT_DOUBLE_EQ(r.net_carbon().grams(), 0.0);
}

TEST(Facility, WarmWaterBeatsAirOnNetCarbon) {
  carbon::GridModel grid(carbon::Region::Germany, 3);
  const auto ci = grid.generate(seconds(0.0), days(30.0), hours(1.0));
  WeatherModel weather(carbon::Region::Germany, 3);
  const auto temp = weather.generate(seconds(0.0), days(30.0), hours(1.0));
  const auto it = flat(3.0e6, days(30.0));
  HeatReuseConfig no_reuse;
  no_reuse.capture_fraction = 0.05;  // air-cooled: almost nothing to reuse
  const auto air = evaluate_facility(it, temp, ci, CoolingModel(CoolingTechnology::AirCooled),
                                     no_reuse);
  const auto warm = evaluate_facility(it, temp, ci,
                                      CoolingModel(CoolingTechnology::WarmWater),
                                      HeatReuseConfig{});
  EXPECT_LT(warm.net_carbon().grams(), 0.8 * air.net_carbon().grams());
}

TEST(Facility, ConstantHelperMatchesExplicitTrace) {
  const auto temp = flat(12.0, days(3.0));
  const auto ci = flat(250.0, days(3.0));
  const CoolingModel chilled(CoolingTechnology::ChilledWater);
  const auto a = evaluate_facility_constant(megawatts(2.0), seconds(0.0), days(3.0),
                                            temp, ci, chilled, HeatReuseConfig{});
  const auto b = evaluate_facility(flat(2.0e6, days(3.0)), temp, ci, chilled,
                                   HeatReuseConfig{});
  EXPECT_NEAR(a.facility_energy.joules(), b.facility_energy.joules(), 1.0);
  EXPECT_NEAR(a.net_carbon().grams(), b.net_carbon().grams(), 1.0);
}

TEST(Facility, Preconditions) {
  const auto temp = flat(10.0, days(1.0));
  const auto ci = flat(100.0, days(1.0));
  const CoolingModel warm(CoolingTechnology::WarmWater);
  util::TimeSeries empty(seconds(0.0), hours(1.0));
  EXPECT_THROW(
      (void)evaluate_facility(empty, temp, ci, warm, HeatReuseConfig{}),
      greenhpc::InvalidArgument);
  HeatReuseConfig bad;
  bad.winter_demand = 0.1;
  bad.summer_demand = 0.5;
  EXPECT_THROW((void)heating_demand_factor(bad, days(1.0)), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::facility
