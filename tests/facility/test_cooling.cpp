#include "facility/cooling.hpp"

#include <gtest/gtest.h>

#include "facility/weather.hpp"

namespace greenhpc::facility {
namespace {

TEST(Cooling, PueAlwaysAtLeastOne) {
  for (auto tech : {CoolingTechnology::AirCooled, CoolingTechnology::ChilledWater,
                    CoolingTechnology::WarmWater}) {
    CoolingModel model(tech);
    for (double t : {-20.0, 0.0, 15.0, 25.0, 40.0}) {
      EXPECT_GE(model.pue_at(t), 1.0) << cooling_name(tech) << " @ " << t;
    }
  }
}

TEST(Cooling, FreeCoolingRegimeIsFlat) {
  CoolingModel air(CoolingTechnology::AirCooled);
  EXPECT_DOUBLE_EQ(air.pue_at(-10.0), air.pue_at(10.0));
  EXPECT_GT(air.pue_at(25.0), air.pue_at(10.0));
}

TEST(Cooling, WarmWaterDominatesEverywhere) {
  CoolingModel air(CoolingTechnology::AirCooled);
  CoolingModel chilled(CoolingTechnology::ChilledWater);
  CoolingModel warm(CoolingTechnology::WarmWater);
  for (double t = -15.0; t <= 40.0; t += 5.0) {
    EXPECT_LT(warm.pue_at(t), chilled.pue_at(t)) << t;
    EXPECT_LT(chilled.pue_at(t), air.pue_at(t)) << t;
  }
}

TEST(Cooling, LrzClassPueNearPublishedValues) {
  // LRZ reports warm-water PUEs near 1.08 year-round; air-cooled German
  // sites are in the 1.35-1.5 band.
  WeatherModel weather(carbon::Region::Germany, 7);
  const auto year = weather.generate(seconds(0.0), days(365.0), hours(3.0));
  EXPECT_NEAR(CoolingModel(CoolingTechnology::WarmWater).mean_pue(year), 1.08, 0.02);
  const double air = CoolingModel(CoolingTechnology::AirCooled).mean_pue(year);
  EXPECT_GT(air, 1.30);
  EXPECT_LT(air, 1.55);
}

TEST(Cooling, SummerWorseThanWinterForAirCooling) {
  WeatherModel weather(carbon::Region::Germany, 7);
  const auto winter = weather.generate(seconds(0.0), days(30.0), hours(3.0));
  const auto summer = weather.generate(days(180.0), days(30.0), hours(3.0));
  CoolingModel air(CoolingTechnology::AirCooled);
  EXPECT_GT(air.mean_pue(summer), air.mean_pue(winter));
}

TEST(Cooling, PueSeriesMatchesPointwise) {
  WeatherModel weather(carbon::Region::Italy, 9);
  const auto temps = weather.generate(seconds(0.0), days(5.0), hours(6.0));
  CoolingModel model(CoolingTechnology::ChilledWater);
  const auto pues = model.pue_series(temps);
  ASSERT_EQ(pues.size(), temps.size());
  for (std::size_t i = 0; i < temps.size(); ++i) {
    EXPECT_DOUBLE_EQ(pues.at(i), model.pue_at(temps.at(i)));
  }
}

}  // namespace
}  // namespace greenhpc::facility
