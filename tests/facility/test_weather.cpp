#include "facility/weather.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::facility {
namespace {

TEST(Weather, DeterministicForSeed) {
  WeatherModel a(carbon::Region::Germany, 3);
  WeatherModel b(carbon::Region::Germany, 3);
  const auto ta = a.generate(seconds(0.0), days(10.0), hours(1.0));
  const auto tb = b.generate(seconds(0.0), days(10.0), hours(1.0));
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_DOUBLE_EQ(ta.at(i), tb.at(i));
}

TEST(Weather, WinterColderThanSummer) {
  WeatherModel model(carbon::Region::Germany, 5);
  // January (epoch day 0) vs July (day ~195).
  const double january = model.deterministic_component(days(10.0) + hours(12.0));
  const double july = model.deterministic_component(days(195.0) + hours(12.0));
  EXPECT_LT(january, july - 10.0);
}

TEST(Weather, AfternoonWarmerThanNight) {
  WeatherModel model(carbon::Region::Spain, 5);
  const double night = model.deterministic_component(days(180.0) + hours(4.0));
  const double afternoon = model.deterministic_component(days(180.0) + hours(15.0));
  EXPECT_GT(afternoon, night + 5.0);
}

TEST(Weather, AnnualMeanMatchesClimate) {
  for (carbon::Region r : {carbon::Region::Finland, carbon::Region::Spain}) {
    WeatherModel model(r, 11);
    const auto year = model.generate(seconds(0.0), days(365.0), hours(3.0));
    EXPECT_NEAR(year.summary().mean, climate(r).annual_mean, 2.5)
        << carbon::traits(r).name;
  }
}

TEST(Weather, FinlandColderThanSpain) {
  EXPECT_LT(climate(carbon::Region::Finland).annual_mean,
            climate(carbon::Region::Spain).annual_mean - 8.0);
}

TEST(Weather, InvalidTraitsThrow) {
  ClimateTraits bad = climate(carbon::Region::Germany);
  bad.ou_tau_hours = 0.0;
  EXPECT_THROW(WeatherModel(bad, 1), greenhpc::InvalidArgument);
  WeatherModel ok(carbon::Region::Germany, 1);
  EXPECT_THROW((void)ok.generate(seconds(0.0), seconds(0.0), hours(1.0)),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::facility
