#include "util/subprocess.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/deadline.hpp"

namespace greenhpc::util {
namespace {

TEST(Subprocess, CatRoundTripsLines) {
  Subprocess cat = Subprocess::spawn({"/bin/cat"});
  ASSERT_GT(cat.pid(), 0);
  EXPECT_TRUE(cat.running());

  LineWriter out(cat.stdin_fd());
  LineChannel in(cat.stdout_fd());
  EXPECT_TRUE(out.write_line("first"));
  EXPECT_TRUE(out.write_line("second line with spaces"));

  std::string line;
  while (!in.next_line(line)) ASSERT_NE(in.fill(), LineChannel::Fill::Eof);
  EXPECT_EQ(line, "first");
  while (!in.next_line(line)) ASSERT_NE(in.fill(), LineChannel::Fill::Eof);
  EXPECT_EQ(line, "second line with spaces");

  // EOF on stdin ends cat; the parent observes exit 0 and then EOF on the
  // read side — the coordinator's "worker finished cleanly" shape.
  cat.close_stdin();
  EXPECT_EQ(cat.wait(), 0);
  EXPECT_EQ(cat.exit_code(), 0);
  while (in.fill() == LineChannel::Fill::Data) {
  }
  EXPECT_TRUE(in.eof());
  EXPECT_FALSE(in.next_line(line));
}

TEST(Subprocess, ExecFailureSurfacesAsExit127) {
  Subprocess p = Subprocess::spawn({"/no/such/binary/greenhpc-missing"});
  p.wait();
  EXPECT_EQ(p.exit_code(), 127);
  EXPECT_FALSE(p.running());
}

TEST(Subprocess, EmptyArgvThrows) {
  EXPECT_THROW((void)Subprocess::spawn({}), std::runtime_error);
}

TEST(Subprocess, KillHardReapsAndIsIdempotent) {
  Subprocess p = Subprocess::spawn({"/bin/sleep", "60"});
  EXPECT_TRUE(p.running());
  p.kill_hard();
  EXPECT_FALSE(p.running());
  EXPECT_EQ(p.exit_code(), -1);  // signalled, not exited
  p.kill_hard();                 // no-op once reaped
  EXPECT_FALSE(p.running());
}

TEST(Subprocess, DefaultHandleIsInertlySafe) {
  Subprocess p;
  EXPECT_EQ(p.pid(), -1);
  EXPECT_FALSE(p.running());
  EXPECT_EQ(p.exit_code(), -1);
  p.kill_hard();
  p.close_stdin();
}

TEST(Subprocess, WriteToDeadPeerReturnsFalseNotSigpipe) {
  Subprocess p = Subprocess::spawn({"/bin/true"});
  p.wait();  // child gone; its stdin read end is closed
  // The first write may land in the pipe buffer; EPIPE is guaranteed once
  // the kernel sees the reader gone, so hammer until write_all reports it.
  const std::string big(1 << 16, 'x');
  bool saw_failure = false;
  for (int i = 0; i < 8 && !saw_failure; ++i) {
    saw_failure = !write_all(p.stdin_fd(), big);
  }
  EXPECT_TRUE(saw_failure);  // and the test process is still alive
}

TEST(Subprocess, LineWriterStaysBrokenAfterPeerDeath) {
  Subprocess p = Subprocess::spawn({"/bin/true"});
  p.wait();
  LineWriter out(p.stdin_fd());
  const std::string big(1 << 16, 'y');
  bool ok = true;
  for (int i = 0; i < 8 && ok; ++i) ok = out.write_line(big);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(out.write_line("short"));  // broken is sticky
}

TEST(Subprocess, PollReadableTimesOutThenFires) {
  Subprocess cat = Subprocess::spawn({"/bin/cat"});
  const std::vector<int> fds = {cat.stdout_fd(), -1};  // -1 entries skipped

  EXPECT_TRUE(poll_readable(fds, 0.02).empty());

  LineWriter out(cat.stdin_fd());
  ASSERT_TRUE(out.write_line("ping"));
  const std::vector<std::size_t> ready = poll_readable(fds, 2.0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0u);

  EXPECT_TRUE(poll_readable({}, 0.0).empty());
  EXPECT_TRUE(poll_readable({-1, -1}, 0.0).empty());
}

TEST(Subprocess, NonblockingChannelReportsWouldBlock) {
  Subprocess cat = Subprocess::spawn({"/bin/cat"});
  cat.set_stdout_nonblocking();
  LineChannel in(cat.stdout_fd());
  EXPECT_EQ(in.fill(), LineChannel::Fill::WouldBlock);
  EXPECT_FALSE(in.eof());

  LineWriter out(cat.stdin_fd());
  ASSERT_TRUE(out.write_line("data"));
  ASSERT_FALSE(poll_readable({cat.stdout_fd()}, 2.0).empty());
  EXPECT_EQ(in.fill(), LineChannel::Fill::Data);
  std::string line;
  ASSERT_TRUE(in.next_line(line));
  EXPECT_EQ(line, "data");

  cat.close_stdin();
  // Drain to EOF: WouldBlock while the exit races, then a definitive Eof.
  LineChannel::Fill f = in.fill();
  while (f == LineChannel::Fill::WouldBlock || f == LineChannel::Fill::Data) {
    (void)poll_readable({cat.stdout_fd()}, 2.0);
    f = in.fill();
  }
  EXPECT_EQ(f, LineChannel::Fill::Eof);
  EXPECT_EQ(in.fill(), LineChannel::Fill::Eof);  // Eof is sticky
}

TEST(Subprocess, MoveTransfersOwnership) {
  Subprocess a = Subprocess::spawn({"/bin/sleep", "60"});
  const pid_t pid = a.pid();
  Subprocess b = std::move(a);
  EXPECT_EQ(a.pid(), -1);
  EXPECT_EQ(b.pid(), pid);
  EXPECT_TRUE(b.running());
  b.kill_hard();
}

TEST(Deadline, SyntheticTimeSemantics) {
  Deadline d(10.0, 2.5);
  EXPECT_FALSE(d.expired(12.0));
  EXPECT_TRUE(d.expired(12.5));
  EXPECT_DOUBLE_EQ(d.remaining_s(11.0), 1.5);
  EXPECT_DOUBLE_EQ(d.remaining_s(13.0), 0.0);
  d.extend(13.0, 1.0);
  EXPECT_FALSE(d.expired(13.5));
  EXPECT_TRUE(d.expired(14.0));
}

TEST(MonotoneClock, AdvancesMonotonically) {
  MonotoneClock clock;
  const double a = clock.now_s();
  const double b = clock.now_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace greenhpc::util
