#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace greenhpc::util {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

/// Fresh scratch path per test; removes leftovers from earlier runs.
std::string scratch(const std::string& name) {
  const std::string path = ::testing::TempDir() + "greenhpc_atomic_" + name;
  std::remove(path.c_str());
  return path;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void TearDown() override { set_atomic_write_failure_hook(nullptr); }
};

TEST_F(AtomicFileTest, WritesFullContent) {
  const std::string path = scratch("basic");
  atomic_write_file(path, [](std::ostream& os) { os << "hello\nworld\n"; });
  EXPECT_EQ(read_all(path), "hello\nworld\n");
}

TEST_F(AtomicFileTest, OverwritesExistingContent) {
  const std::string path = scratch("overwrite");
  atomic_write_file(path, [](std::ostream& os) { os << "old content"; });
  atomic_write_file(path, [](std::ostream& os) { os << "new"; });
  EXPECT_EQ(read_all(path), "new");
}

TEST_F(AtomicFileTest, SimulatedCrashBeforeCommitLeavesNoFile) {
  // The satellite contract: a failure mid-publication must never leave a
  // partial file at the destination. The hook fires after the temporary
  // holds the full (here: partial-from-the-reader's-view) content but
  // before the rename — the crash point a SIGKILL between write and
  // commit would hit.
  const std::string path = scratch("crash_fresh");
  set_atomic_write_failure_hook([] { throw std::runtime_error("injected crash"); });
  EXPECT_THROW(
      atomic_write_file(path, [](std::ostream& os) { os << "half-written"; }),
      std::runtime_error);
  EXPECT_FALSE(exists(path)) << "destination must not exist after a torn write";
  // The temporary scratch must have been cleaned up too.
  EXPECT_FALSE(exists(path + ".tmp." + std::to_string(static_cast<long>(getpid()))));
}

TEST_F(AtomicFileTest, SimulatedCrashPreservesOldContent) {
  const std::string path = scratch("crash_existing");
  atomic_write_file(path, [](std::ostream& os) { os << "durable v1"; });
  set_atomic_write_failure_hook([] { throw std::runtime_error("injected crash"); });
  EXPECT_THROW(
      atomic_write_file(path, [](std::ostream& os) { os << "torn v2 ..."; }),
      std::runtime_error);
  EXPECT_EQ(read_all(path), "durable v1") << "old content must survive intact";
}

TEST_F(AtomicFileTest, BodyExceptionLeavesDestinationUntouched) {
  const std::string path = scratch("body_throw");
  atomic_write_file(path, [](std::ostream& os) { os << "keep me"; });
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& os) {
                                   os << "partial";
                                   throw std::runtime_error("body failed");
                                 }),
               std::runtime_error);
  EXPECT_EQ(read_all(path), "keep me");
}

TEST_F(AtomicFileTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir/greenhpc/file.json",
                                 [](std::ostream& os) { os << "x"; }),
               std::runtime_error);
  EXPECT_THROW(atomic_write_file("", [](std::ostream& os) { os << "x"; }),
               std::runtime_error);
}

TEST_F(AtomicFileTest, MissingParentLeavesNoStrayTemporaries) {
  // The temporary lives NEXT TO the destination, so a missing parent
  // must fail cleanly without scattering `.tmp.<pid>` files anywhere
  // else (cwd, /tmp, ...). Probe the only other plausible landing spot.
  const std::string dir = scratch("no_parent_dir");  // never created
  const std::string path = dir + "/report.json";
  EXPECT_THROW(atomic_write_file(path, [](std::ostream& os) { os << "x"; }),
               std::runtime_error);
  const std::string suffix = ".tmp." + std::to_string(static_cast<long>(getpid()));
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(path + suffix));
  EXPECT_FALSE(exists("report.json" + suffix));  // not dropped in cwd
}

TEST_F(AtomicFileTest, ParentDirectoryDisappearingMidWriteFailsCleanly) {
  // A run directory reaped by a janitor (or an operator's rm -rf)
  // between the temporary write and the rename: the commit must fail
  // with a clear error, not resurrect the directory or leave debris.
  const std::string dir = ::testing::TempDir() + "greenhpc_atomic_vanishing";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directory(dir));
  const std::string path = dir + "/report.json";
  set_atomic_write_failure_hook([dir] { std::filesystem::remove_all(dir); });
  EXPECT_THROW(atomic_write_file(path, [](std::ostream& os) { os << "gone"; }),
               std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(dir))
      << "the failed commit must not resurrect the removed directory";
}

TEST_F(AtomicFileTest, HookClearedAfterwardsCommitsNormally) {
  const std::string path = scratch("hook_cleared");
  set_atomic_write_failure_hook([] { throw std::runtime_error("injected"); });
  EXPECT_THROW(atomic_write_file(path, [](std::ostream& os) { os << "a"; }),
               std::runtime_error);
  set_atomic_write_failure_hook(nullptr);
  atomic_write_file(path, [](std::ostream& os) { os << "committed"; });
  EXPECT_EQ(read_all(path), "committed");
}

}  // namespace
}  // namespace greenhpc::util
