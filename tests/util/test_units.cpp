#include "util/units.hpp"

#include <gtest/gtest.h>

namespace greenhpc {
namespace {

TEST(Units, DurationConversions) {
  EXPECT_DOUBLE_EQ(minutes(1.0).seconds(), 60.0);
  EXPECT_DOUBLE_EQ(hours(2.0).minutes(), 120.0);
  EXPECT_DOUBLE_EQ(days(1.0).hours(), 24.0);
  EXPECT_DOUBLE_EQ(seconds(86400.0).days(), 1.0);
}

TEST(Units, PowerConversions) {
  EXPECT_DOUBLE_EQ(kilowatts(1.0).watts(), 1000.0);
  EXPECT_DOUBLE_EQ(megawatts(20.0).kilowatts(), 20000.0);  // Frontier-scale
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(kilowatt_hours(1.0).joules(), 3.6e6);
  EXPECT_DOUBLE_EQ(megawatt_hours(1.0).kilowatt_hours(), 1000.0);
}

TEST(Units, CarbonConversions) {
  EXPECT_DOUBLE_EQ(kilograms_co2(1.0).grams(), 1000.0);
  EXPECT_DOUBLE_EQ(tonnes_co2(2.5).kilograms(), 2500.0);
}

TEST(Units, PowerTimesDurationIsEnergy) {
  const Energy e = kilowatts(2.0) * hours(3.0);
  EXPECT_DOUBLE_EQ(e.kilowatt_hours(), 6.0);
  EXPECT_DOUBLE_EQ((hours(3.0) * kilowatts(2.0)).kilowatt_hours(), 6.0);
}

TEST(Units, EnergyOverDurationIsPower) {
  const Power p = kilowatt_hours(6.0) / hours(3.0);
  EXPECT_DOUBLE_EQ(p.kilowatts(), 2.0);
}

TEST(Units, EnergyTimesIntensityIsCarbon) {
  // 10 kWh at 300 g/kWh -> 3 kg.
  const Carbon c = kilowatt_hours(10.0) * grams_per_kwh(300.0);
  EXPECT_DOUBLE_EQ(c.kilograms(), 3.0);
  EXPECT_DOUBLE_EQ((grams_per_kwh(300.0) * kilowatt_hours(10.0)).kilograms(), 3.0);
}

TEST(Units, ArithmeticAndComparisons) {
  Power a = watts(100.0);
  a += watts(50.0);
  EXPECT_DOUBLE_EQ(a.watts(), 150.0);
  a -= watts(25.0);
  EXPECT_DOUBLE_EQ(a.watts(), 125.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a.watts(), 250.0);
  a /= 5.0;
  EXPECT_DOUBLE_EQ(a.watts(), 50.0);
  EXPECT_LT(watts(10.0), watts(20.0));
  EXPECT_EQ(watts(10.0), watts(10.0));
  EXPECT_DOUBLE_EQ(watts(30.0) / watts(10.0), 3.0);
  EXPECT_DOUBLE_EQ((watts(10.0) * 3.0).watts(), 30.0);
  EXPECT_DOUBLE_EQ((3.0 * watts(10.0)).watts(), 30.0);
  EXPECT_DOUBLE_EQ((watts(30.0) / 3.0).watts(), 10.0);
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(watts(1.0), watts(1.0 + 1e-12)));
  EXPECT_FALSE(approx_equal(watts(1.0), watts(1.1)));
  EXPECT_TRUE(approx_equal(watts(0.0), watts(0.0)));
  EXPECT_TRUE(approx_equal(watts(1e9), watts(1e9 * (1.0 + 1e-10))));
}

TEST(Units, FrontierSanityCheck) {
  // The paper: Frontier draws 20 MW continuously. One day at 400 g/kWh.
  const Energy day = megawatts(20.0) * days(1.0);
  EXPECT_DOUBLE_EQ(day.megawatt_hours(), 480.0);
  const Carbon c = day * grams_per_kwh(400.0);
  EXPECT_NEAR(c.tonnes(), 192.0, 1e-9);
}

}  // namespace
}  // namespace greenhpc
