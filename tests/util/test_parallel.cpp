#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace greenhpc::util {
namespace {

TEST(ThreadPool, ExecutesAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool survives the exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Nested call must not deadlock; it degrades to serial execution.
    parallel_for(4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 0.0);
  std::vector<double> squares(xs.size());
  parallel_for(xs.size(), [&](std::size_t i) { squares[i] = xs[i] * xs[i]; });
  double parallel_total = 0.0;
  for (double v : squares) parallel_total += v;
  double serial_total = 0.0;
  for (double v : xs) serial_total += v * v;
  EXPECT_DOUBLE_EQ(parallel_total, serial_total);
}

}  // namespace
}  // namespace greenhpc::util
